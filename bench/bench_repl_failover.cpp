// What does replication cost, and how fast does the cluster recover?
//
// Three in-process scenarios run the same sequential workload — one
// net::client driving acquire/release pairs over loopback TCP — against
// progressively more machinery:
//
//   plain     svc::service + net::server, no cluster at all: the
//             pre-repl baseline every earlier bench measured.
//   cluster1  a 1-member repl cluster. Quorum is 1, so no peer round
//             trip happens — the delta over `plain` is the pure
//             commit-gate overhead (drain into the log, watermark
//             bookkeeping, the gate's own wake-up).
//   cluster3  a 3-member cluster (quorum 2): every grant and release
//             now waits for one follower to append before the client
//             is acked — the real price of surviving a primary crash.
//
// The workload is sequential on purpose: each pair's latency is one
// full commit path with nothing pipelined in front of it, so p50/p99
// are commit-path latencies, not queueing artifacts. (Throughput under
// pipelining is bench_net_loopback's job.)
//
// The failover section answers the other question operators ask: after
// the primary dies, how long until someone else answers? Each trial
// builds a fresh 3-member cluster, acquires a lease through it, stops
// the primary's server and node in-process (the repl threads die
// mid-heartbeat, like a SIGKILL without the process teardown), and
// polls the survivors until one reports is_primary. Member 0 always
// wins the first term (it gets the short election timeout), so every
// trial measures the same thing: the survivors' 400–700ms randomized
// timeout plus one election round.
//
// Acceptance gate (enforced): only the plain baseline's throughput —
// >= 2000 pairs/s (>= 300 under --smoke). It is a collapse detector
// for the non-cluster path, deliberately generous: cluster numbers
// and failover times are reported, not gated, because they hinge on
// timer constants and CI scheduling jitter, and the ISSUE's contract
// is "clustering must not tax users who don't turn it on".
//
// Build & run:  ./build/bench/bench_repl_failover [--smoke] [--seed S]
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "repl/config.hpp"
#include "repl/node.hpp"
#include "svc/service.hpp"

namespace {

using namespace elect;
using namespace std::chrono_literals;

std::uint16_t reserve_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return 0;
  }
  socklen_t len = sizeof addr;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  const std::uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

/// An n-member cluster in one process (n == 1 is legal and means
/// quorum 1). Mirrors the test harness in tests/test_repl.cpp: member
/// 0 gets the short election timeout so it reliably takes term 1.
struct cluster {
  explicit cluster(int n, std::uint64_t seed) {
    base.fence_bump = 1000;
    base.heartbeat_ms = 25;
    base.commit_wait_ms = 5000;
    base.seed = seed;
    for (int i = 0; i < n; ++i) {
      base.members.push_back({"127.0.0.1", reserve_port()});
    }
    services.resize(static_cast<std::size_t>(n));
    nodes.resize(static_cast<std::size_t>(n));
    servers.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) start_member(i);
  }

  ~cluster() {
    for (auto& s : servers) {
      if (s) s->stop();
    }
    for (auto& m : nodes) {
      if (m) m->stop();
    }
  }

  void start_member(int i) {
    const auto idx = static_cast<std::size_t>(i);
    svc::service_config sc{.nodes = 4, .shards = 4};
    sc.record_commands = true;
    sc.session_id_base = static_cast<std::uint64_t>(i) << 24;
    services[idx] = std::make_unique<svc::service>(std::move(sc));

    repl::cluster_config cc = base;
    cc.self = i;
    cc.election_timeout_min_ms = i == 0 ? 100 : 400;
    cc.election_timeout_max_ms = i == 0 ? 150 : 700;
    nodes[idx] = std::make_unique<repl::node>(cc, *services[idx]);
    nodes[idx]->start();

    net::server_config nc;
    nc.bind_address = "127.0.0.1";
    nc.port = base.members[idx].port;
    repl::node* node = nodes[idx].get();
    nc.cluster.is_primary = [node] { return node->is_primary(); };
    nc.cluster.primary_hint = [node] { return node->primary_endpoint(); };
    nc.cluster.peer = [node](const net::wire::request& r) {
      return node->handle_peer(r);
    };
    nc.cluster.status_json = [node] { return node->status_json(); };
    nc.cluster.prom_text = [node] { return node->prom_text(); };
    servers[idx] = std::make_unique<net::server>(*services[idx], nc);
  }

  void stop_member(int i) {
    const auto idx = static_cast<std::size_t>(i);
    servers[idx]->stop();
    nodes[idx]->stop();
    stopped.push_back(i);
  }

  /// Live primary's member index, -1 if none. Stopped members report a
  /// stale in-memory role, so they are skipped.
  [[nodiscard]] int primary() const {
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const int m = static_cast<int>(i);
      if (std::find(stopped.begin(), stopped.end(), m) != stopped.end()) {
        continue;
      }
      if (nodes[i]->is_primary()) return m;
    }
    return -1;
  }

  [[nodiscard]] int wait_for_primary(std::chrono::milliseconds limit) const {
    const auto deadline = std::chrono::steady_clock::now() + limit;
    while (std::chrono::steady_clock::now() < deadline) {
      const int p = primary();
      if (p >= 0) return p;
      std::this_thread::sleep_for(5ms);
    }
    return -1;
  }

  [[nodiscard]] std::string endpoints_csv() const {
    std::string out;
    for (const auto& m : base.members) {
      if (!out.empty()) out += ",";
      out += m.to_string();
    }
    return out;
  }

  repl::cluster_config base;
  std::vector<int> stopped;
  std::vector<std::unique_ptr<svc::service>> services;
  std::vector<std::unique_ptr<repl::node>> nodes;
  std::vector<std::unique_ptr<net::server>> servers;
};

struct pair_stats {
  std::uint64_t pairs = 0;
  double seconds = 0.0;
  double pairs_per_s = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  std::uint64_t lost = 0;  // pairs where the acquire did not win
};

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

/// Drive `pairs` sequential acquire/release pairs over disjoint keys
/// through `endpoints`. Every acquire is expected to win (keys are
/// uncontended); a loss or connection error counts in `lost`.
pair_stats run_pairs(const std::string& endpoints, std::uint64_t pairs,
                     const char* label) {
  net::client client(endpoints);
  if (!client.connected()) {
    std::fprintf(stderr, "[%s] client failed to connect to %s\n", label,
                 endpoints.c_str());
    return {};
  }

  // Warm-up: first ops pay connection/election setup, keep them out of
  // the timed window.
  for (int i = 0; i < 8; ++i) {
    const std::string key = std::string(label) + "/warm/" + std::to_string(i);
    const auto a = client.try_acquire(key);
    if (a.won) (void)client.release(key, a.epoch);
  }

  pair_stats stats;
  std::vector<double> lat_us;
  lat_us.reserve(pairs);
  bench::stopwatch total;
  for (std::uint64_t i = 0; i < pairs; ++i) {
    const std::string key = std::string(label) + "/k" + std::to_string(i);
    bench::stopwatch one;
    const auto a = client.try_acquire(key);
    if (!a.won) {
      ++stats.lost;
      continue;
    }
    (void)client.release(key, a.epoch);
    lat_us.push_back(one.seconds() * 1e6);
  }
  stats.seconds = total.seconds();
  stats.pairs = pairs - stats.lost;
  stats.pairs_per_s =
      stats.seconds > 0 ? static_cast<double>(stats.pairs) / stats.seconds
                        : 0.0;
  stats.p50_us = percentile(lat_us, 0.50);
  stats.p99_us = percentile(lat_us, 0.99);
  std::printf(
      "[%s] %llu pairs in %.3fs — %.0f pairs/s, p50 %.1fus, p99 %.1fus, "
      "lost %llu\n",
      label, static_cast<unsigned long long>(stats.pairs), stats.seconds,
      stats.pairs_per_s, stats.p50_us, stats.p99_us,
      static_cast<unsigned long long>(stats.lost));
  return stats;
}

std::string stats_json(const pair_stats& s) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"pairs\":%llu,\"seconds\":%.6f,\"pairs_per_s\":%.1f,"
                "\"p50_us\":%.1f,\"p99_us\":%.1f,\"lost\":%llu}",
                static_cast<unsigned long long>(s.pairs), s.seconds,
                s.pairs_per_s, s.p50_us, s.p99_us,
                static_cast<unsigned long long>(s.lost));
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::uint64_t seed = bench::parse_seed(argc, argv, 42);
  const std::uint64_t pairs = smoke ? 300 : 2000;
  const int failover_trials = smoke ? 2 : 5;

  bench::json_emitter json("repl_failover");
  json.meta_field("seed", static_cast<std::int64_t>(seed));
  json.meta_field("smoke", smoke);
  json.meta_field("pairs_per_scenario", static_cast<std::int64_t>(pairs));
  json.meta_field("failover_trials",
                  static_cast<std::int64_t>(failover_trials));

  // --- plain: no cluster, the baseline the gate protects. -------------
  pair_stats plain;
  {
    svc::service_config sc{.nodes = 4, .shards = 4};
    svc::service service(std::move(sc));
    net::server_config nc;
    nc.bind_address = "127.0.0.1";
    nc.port = reserve_port();
    net::server server(service, nc);
    if (!server.listening()) {
      std::fprintf(stderr, "plain server failed to listen\n");
      return 1;
    }
    plain = run_pairs("127.0.0.1:" + std::to_string(nc.port), pairs, "plain");
  }
  json.raw("plain", stats_json(plain));

  // --- cluster1: quorum 1, commit gate only. --------------------------
  pair_stats c1;
  {
    cluster one(1, seed);
    if (one.wait_for_primary(10s) < 0) {
      std::fprintf(stderr, "cluster1 never elected a primary\n");
      return 1;
    }
    c1 = run_pairs(one.endpoints_csv(), pairs, "cluster1");
  }
  json.raw("cluster1", stats_json(c1));

  // --- cluster3: quorum 2, one follower round trip per commit. --------
  pair_stats c3;
  {
    cluster three(3, seed);
    if (three.wait_for_primary(10s) < 0) {
      std::fprintf(stderr, "cluster3 never elected a primary\n");
      return 1;
    }
    c3 = run_pairs(three.endpoints_csv(), pairs, "cluster3");
  }
  json.raw("cluster3", stats_json(c3));

  if (plain.pairs_per_s > 0) {
    json.field("cluster1_overhead_x", c1.pairs_per_s > 0
                                          ? plain.pairs_per_s / c1.pairs_per_s
                                          : 0.0);
    json.field("cluster3_overhead_x", c3.pairs_per_s > 0
                                          ? plain.pairs_per_s / c3.pairs_per_s
                                          : 0.0);
  }

  // --- failover: hard-stop the primary, time the succession. ----------
  std::vector<double> failover_ms;
  for (int t = 0; t < failover_trials; ++t) {
    cluster three(3, seed + static_cast<std::uint64_t>(t) * 1000003);
    const int p = three.wait_for_primary(10s);
    if (p < 0) {
      std::fprintf(stderr, "failover trial %d: no initial primary\n", t);
      return 1;
    }
    // A held lease rides through the crash so the trial exercises the
    // fence path, not an empty registry.
    net::client client(three.endpoints_csv());
    const auto held = client.try_acquire("failover/held");
    if (!held.won) {
      std::fprintf(stderr, "failover trial %d: setup acquire lost\n", t);
      return 1;
    }
    bench::stopwatch sw;
    three.stop_member(p);
    const int np = three.wait_for_primary(10s);
    if (np < 0) {
      std::fprintf(stderr, "failover trial %d: no new primary\n", t);
      return 1;
    }
    const double ms = sw.seconds() * 1e3;
    failover_ms.push_back(ms);
    std::printf("[failover] trial %d: member %d -> member %d in %.0fms\n", t,
                p, np, ms);
  }
  {
    std::string arr = "[";
    for (std::size_t i = 0; i < failover_ms.size(); ++i) {
      if (i > 0) arr += ",";
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.1f", failover_ms[i]);
      arr += buf;
    }
    arr += "]";
    json.raw("failover_ms", arr);
    json.field("failover_max_ms", percentile(failover_ms, 1.0));
  }

  json.write();

  const double floor = smoke ? 300.0 : 2000.0;
  if (plain.pairs_per_s < floor || plain.lost > 0) {
    std::fprintf(stderr,
                 "GATE FAILED: plain baseline %.0f pairs/s (floor %.0f), "
                 "%llu lost\n",
                 plain.pairs_per_s, floor,
                 static_cast<unsigned long long>(plain.lost));
    return 1;
  }
  std::printf("gate ok: plain %.0f pairs/s >= %.0f\n", plain.pairs_per_s,
              floor);
  return 0;
}
