// E6 — Renaming: message complexity, time, and the [AAG+10] baseline.
//
// Theorem 4.2: Figure 3 renames with expected O(n²) total messages;
// Theorem A.13: O(log² n) communicate calls per processor. The [AAG+10]
// baseline (random-order probing) has expected Ω(n) per-processor
// iterations. We sweep n for both algorithms under benign and
// contention-delaying adversaries.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "exp/harness.hpp"
#include "exp/table.hpp"

int main() {
  using namespace elect;
  bench::print_header(
      "E6", "strong renaming vs the [AAG+10] baseline",
      "Thm 4.2: O(n^2) messages; Thm A.13: O(log^2 n) time; baseline "
      "random-order probing pays Ω(n) trials per processor");

  const std::vector<int> sizes = {8, 16, 32, 64};
  const int trials = 4;

  exp::table t({"n", "ours: messages", "ours: msgs/n^2",
                "ours: max comm calls", "ours: max iterations",
                "baseline: max iterations", "ours msgs (delayer adv)"});
  std::vector<double> xs, message_series, time_series, ours_iters,
      baseline_iters;

  for (const int n : sizes) {
    exp::trial_config ours;
    ours.kind = exp::algo::renaming;
    ours.n = n;
    ours.seed = 1;
    const auto ours_agg = exp::run_trials(ours, trials);

    exp::trial_config delayed = ours;
    delayed.adversary = "contention-delayer";
    const auto delayed_agg = exp::run_trials(delayed, trials);

    exp::trial_config baseline = ours;
    baseline.kind = exp::algo::baseline_renaming;
    const auto baseline_agg = exp::run_trials(baseline, trials);

    const double messages = ours_agg.total_messages.mean();
    const double nn = static_cast<double>(n) * n;
    xs.push_back(n);
    message_series.push_back(messages);
    time_series.push_back(ours_agg.max_comm_calls.mean());
    ours_iters.push_back(ours_agg.max_iterations.mean());
    baseline_iters.push_back(baseline_agg.max_iterations.mean());

    t.add_row({std::to_string(n), exp::fmt_int(messages),
               exp::fmt(messages / nn, 2),
               exp::fmt(ours_agg.max_comm_calls.mean(), 1),
               exp::fmt(ours_agg.max_iterations.mean(), 1),
               exp::fmt(baseline_agg.max_iterations.mean(), 1),
               exp::fmt_int(delayed_agg.total_messages.mean())});
  }
  t.print(std::cout);
  std::cout << "\n";
  bench::print_fit("ours: total messages", xs, message_series);
  bench::print_fit("ours: max comm calls", xs, time_series);
  bench::print_fit("ours: max iterations", xs, ours_iters);
  bench::print_fit("baseline: max iterations", xs, baseline_iters);
  std::cout << "\nExpected shape: ours' messages n^2 with flat msgs/n^2; "
               "ours' iterations polylog; baseline iterations linear-ish "
               "in n — the crossover the paper trades a log factor of "
               "time for.\n";
  return 0;
}
