// Shared helpers for the experiment binaries: headers, fit-ranking
// printouts, and a tiny stopwatch. Each bench regenerates one experiment
// from DESIGN.md §3 and prints markdown tables that EXPERIMENTS.md embeds.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/fit.hpp"
#include "exp/table.hpp"

namespace elect::bench {

/// Parse `--seed N` from the bench's argv, falling back to the bench's
/// historical default when absent — so unseeded runs reproduce the
/// numbers every earlier PR published. Benches derive all their PRNG
/// streams (service seed, per-row offsets) from this one value and
/// stamp it into BENCH_*.json as meta.seed, which is what lets a
/// perf-trajectory diff say "same workload, different code" — or lets
/// the chaos harness replay a bench row that behaved strangely.
inline std::uint64_t parse_seed(int argc, char** argv,
                                std::uint64_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0) {
      return std::strtoull(argv[i + 1], nullptr, 10);
    }
  }
  return fallback;
}

inline std::string exp_fmt(double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", v);
  return buffer;
}

inline void print_header(const std::string& id, const std::string& title,
                         const std::string& paper_claim) {
  std::cout << "\n## " << id << " — " << title << "\n\n";
  std::cout << "Paper claim: " << paper_claim << "\n\n";
}

/// Print the top growth-law fits for a measured series.
inline void print_fit(const std::string& series_name,
                      const std::vector<double>& xs,
                      const std::vector<double>& ys, int top = 3) {
  const auto ranked = rank_growth_laws(xs, ys);
  std::cout << "Shape fit for `" << series_name << "` (best R² first): ";
  for (int i = 0; i < top && i < static_cast<int>(ranked.size()); ++i) {
    if (i > 0) std::cout << ", ";
    std::cout << ranked[i].law << " (R²=" << exp_fmt(ranked[i].r_squared)
              << ")";
  }
  std::cout << "\n";
}

/// Machine-readable results sidecar: accumulates scalar fields and table
/// rows, then writes `BENCH_<name>.json` next to the bench's stdout
/// markdown. Every bench emits one so the perf trajectory across PRs can
/// be diffed without re-parsing tables.
///
/// Every file is stamped with a `meta` object — build type, git sha,
/// compiler — injected at build time (see the bench loop in
/// CMakeLists.txt), so two BENCH_*.json artifacts are only ever compared
/// knowing which commit and optimization level produced them. Benches
/// add run-shape metadata (smoke mode, sweep config) via meta_field().
class json_emitter {
 public:
  explicit json_emitter(std::string bench_name)
      : name_(std::move(bench_name)) {
    meta_field("git_sha",
#ifdef ELECT_GIT_SHA
               ELECT_GIT_SHA
#else
               "unknown"
#endif
    );
    meta_field("build_type",
#ifdef ELECT_BUILD_TYPE
               ELECT_BUILD_TYPE
#else
               "unknown"
#endif
    );
#ifdef __VERSION__
    meta_field("compiler", __VERSION__);
#endif
    // When the run happened, next to which commit produced it: two
    // BENCH_*.json artifacts with the same git_sha can still be hours
    // apart (rebuilds, reruns); the UTC timestamp disambiguates.
    std::time_t now = std::time(nullptr);
    std::tm utc{};
    if (gmtime_r(&now, &utc) != nullptr) {
      char stamp[32];
      if (std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%SZ", &utc) >
          0) {
        meta_field("timestamp", stamp);
      }
    }
  }

  /// Add one provenance/config entry to the `meta` object.
  json_emitter& meta_field(const std::string& key, const std::string& value) {
    meta_.emplace_back(key, "\"" + exp::json_escape(value) + "\"");
    return *this;
  }

  /// Literals must land on the string overload, not convert to bool.
  json_emitter& meta_field(const std::string& key, const char* value) {
    return meta_field(key, std::string(value));
  }

  json_emitter& meta_field(const std::string& key, bool value) {
    meta_.emplace_back(key, value ? "true" : "false");
    return *this;
  }

  json_emitter& meta_field(const std::string& key, std::int64_t value) {
    std::ostringstream out;
    out << value;
    meta_.emplace_back(key, out.str());
    return *this;
  }

  json_emitter& field(const std::string& key, const std::string& value) {
    return raw(key, "\"" + exp::json_escape(value) + "\"");
  }

  json_emitter& field(const std::string& key, double value) {
    std::ostringstream out;
    out.precision(15);  // round-trips counters and rates, no 6-digit loss
    out << value;
    return raw(key, out.str());
  }

  json_emitter& field(const std::string& key, std::uint64_t value) {
    std::ostringstream out;
    out << value;
    return raw(key, out.str());
  }

  json_emitter& field(const std::string& key, std::int64_t value) {
    std::ostringstream out;
    out << value;
    return raw(key, out.str());
  }

  json_emitter& field(const std::string& key, int value) {
    return field(key, static_cast<std::int64_t>(value));
  }

  /// Attach a rendered exp::table as a JSON array of row objects.
  json_emitter& table(const std::string& key, const exp::table& t) {
    std::ostringstream out;
    t.print_json(out);
    return raw(key, out.str());
  }

  /// Attach pre-serialized JSON verbatim (nested objects/arrays).
  json_emitter& raw(const std::string& key, std::string json) {
    fields_.emplace_back(key, std::move(json));
    return *this;
  }

  /// Write BENCH_<name>.json in the working directory.
  void write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::ofstream out(path);
    out << "{\"bench\":\"" << exp::json_escape(name_) << "\"";
    out << ",\"meta\":{";
    for (std::size_t i = 0; i < meta_.size(); ++i) {
      if (i > 0) out << ",";
      out << "\"" << exp::json_escape(meta_[i].first)
          << "\":" << meta_[i].second;
    }
    out << "}";
    for (const auto& [key, json] : fields_) {
      out << ",\"" << exp::json_escape(key) << "\":" << json;
    }
    out << "}\n";
    std::cout << "\n[json] wrote " << path << "\n";
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> meta_;
  std::vector<std::pair<std::string, std::string>> fields_;
};

class stopwatch {
 public:
  stopwatch() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace elect::bench
