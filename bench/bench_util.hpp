// Shared helpers for the experiment binaries: headers, fit-ranking
// printouts, and a tiny stopwatch. Each bench regenerates one experiment
// from DESIGN.md §3 and prints markdown tables that EXPERIMENTS.md embeds.
#pragma once

#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/fit.hpp"

namespace elect::bench {

inline std::string exp_fmt(double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", v);
  return buffer;
}

inline void print_header(const std::string& id, const std::string& title,
                         const std::string& paper_claim) {
  std::cout << "\n## " << id << " — " << title << "\n\n";
  std::cout << "Paper claim: " << paper_claim << "\n\n";
}

/// Print the top growth-law fits for a measured series.
inline void print_fit(const std::string& series_name,
                      const std::vector<double>& xs,
                      const std::vector<double>& ys, int top = 3) {
  const auto ranked = rank_growth_laws(xs, ys);
  std::cout << "Shape fit for `" << series_name << "` (best R² first): ";
  for (int i = 0; i < top && i < static_cast<int>(ranked.size()); ++i) {
    if (i > 0) std::cout << ", ";
    std::cout << ranked[i].law << " (R²=" << exp_fmt(ranked[i].r_squared)
              << ")";
  }
  std::cout << "\n";
}

class stopwatch {
 public:
  stopwatch() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace elect::bench
