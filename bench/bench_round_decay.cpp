// E7 — Round structure: participant decay and round counts (Claim A.4,
// Theorem A.5).
//
// Claim A.4: the expected number of participants decreases by at least a
// constant fraction every two rounds; Theorem A.5 turns the
// O(log² k)-per-phase survivor bound into O(log* k) rounds total. We
// count, per round r, how many participants ever enter round r, plus the
// distribution of the maximum round.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "exp/harness.hpp"
#include "exp/table.hpp"

int main() {
  using namespace elect;
  bench::print_header(
      "E7", "participant decay across rounds",
      "Claim A.4: constant-fraction decay every 2 rounds; Thm A.5: "
      "O(log* k) rounds in expectation");

  const std::vector<int> sizes = {32, 64, 128, 256};
  const int trials = 6;
  const int max_round_printed = 6;

  std::vector<std::string> headers = {"n", "log* n"};
  for (int r = 1; r <= max_round_printed; ++r) {
    headers.push_back("reach r>=" + std::to_string(r));
  }
  headers.push_back("max round (mean)");
  headers.push_back("max round (max)");
  exp::table t(headers);

  std::vector<double> xs, round_series;
  for (const int n : sizes) {
    std::vector<double> reach(static_cast<std::size_t>(max_round_printed) + 1,
                              0.0);
    sample_stats max_round;
    for (int trial = 0; trial < trials; ++trial) {
      exp::trial_config config;
      config.kind = exp::algo::leader_elect;
      config.n = n;
      config.seed = 1 + static_cast<std::uint64_t>(trial);
      const auto result = exp::run_trial(config);
      if (!result.completed) continue;
      std::int64_t top = 0;
      for (const std::int64_t r : result.rounds) {
        top = std::max(top, r);
        for (int level = 1; level <= max_round_printed; ++level) {
          if (r >= level) reach[static_cast<std::size_t>(level)] += 1.0;
        }
      }
      max_round.add(static_cast<double>(top));
    }
    std::vector<std::string> row = {std::to_string(n),
                                    std::to_string(log_star(n))};
    for (int level = 1; level <= max_round_printed; ++level) {
      row.push_back(
          exp::fmt(reach[static_cast<std::size_t>(level)] / trials, 1));
    }
    row.push_back(exp::fmt(max_round.mean(), 1));
    row.push_back(exp::fmt(max_round.max(), 0));
    t.add_row(row);
    xs.push_back(n);
    round_series.push_back(max_round.mean());
  }
  t.print(std::cout);
  std::cout << "\n";
  bench::print_fit("max round vs n", xs, round_series);
  std::cout << "\nExpected shape: the per-round columns collapse steeply "
               "(n -> polylog -> O(1)); the max round grows like log* n — "
               "i.e. it barely moves across a 8x range of n.\n";
  return 0;
}
