// Wire-level load generator for elect::net: an in-process server over a
// loopback TCP socket, hammered by C client connections each keeping a
// window of P requests pipelined.
//
// The unit of work is one acquire/release *pair* (what a remote lock
// user does per critical section): a try_acquire round-trip followed by
// a fenced release round-trip. Each connection owns P disjoint keys and
// drives them in lockstep windows — P acquires submitted back-to-back,
// completed, then P releases — so the socket always carries a deep
// pipeline but a release never overtakes its own acquire.
//
// Keys are disjoint per connection: with the adaptive strategy every
// epoch is granted by the registry CAS, so the numbers measure the
// network edge (framing, epoll batching, dispatch, response path)
// rather than distributed-election cost — which is exactly what this
// bench exists to track. The sweep varies reactors (the multi-reactor
// scaling story), connections, pipeline depth, and client stripes; the
// acceptance row is 32 connections at the default depth on 4 reactors,
// and multi_reactor_speedup reports the 4-reactor/1-reactor ratio
// (reported, not gated: on a 1-core CI box the reactors time-slice one
// CPU and the ratio is noise; on real hardware it should clear 3x).
//
// The fanout mode (always run; size it with --watchers N) measures the
// watch-push fast lane: N raw-socket subscribers watch ONE key, a
// driver client releases it, and the bench reports the p50/p99 of
// release-to-push-receipt across all watchers and rounds — the
// "everyone learns the leader died" latency at scale.
//
// Acceptance gate (enforced): >= 50k pairs/s on the 4-reactor
// 32-connection row (>= 5k under --smoke, where op counts shrink and
// CI machines vary), and zero lost acquires everywhere.
//
// Build & run:
//   ./build/bench/bench_net_loopback [--smoke] [--watchers N] [--seed S]
#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <arpa/inet.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "exp/table.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "svc/service.hpp"

namespace {

using namespace elect;

// Service PRNG seed for both experiments; `--seed N` overrides (the
// historical default 3 keeps unseeded runs comparable to earlier
// BENCH_net_loopback.json artifacts). File-scope because the two
// run_* functions build their own service_config.
std::uint64_t bench_seed = 3;

struct sweep_row {
  int reactors = 1;
  int stripes = 1;  // connections per net::client
  int connections = 0;
  int pipeline = 0;
  int rounds = 0;  // windows per connection; pairs = rounds * pipeline
};

struct sweep_result {
  double seconds = 0.0;
  std::uint64_t pairs = 0;
  double pairs_per_s = 0.0;
  std::uint64_t lost = 0;  // acquires that did not win (must stay 0)
  svc::service_report service_report;
  net::net_report net;
};

sweep_result run_sweep(const sweep_row& row) {
  svc::service_config service_config{.nodes = 8, .shards = 8, .seed = bench_seed};
  // Adaptive: disjoint keys ride the CAS fast path, so the wire is the
  // thing under test, not the election ladder.
  service_config.default_strategy = election::strategy_kind::adaptive;
  svc::service service(std::move(service_config));
  net::server_config server_config;
  server_config.executors = 8;
  server_config.reactors = row.reactors;
  server_config.max_inflight_per_connection = 2 * row.pipeline;
  net::server server(service, std::move(server_config));
  ELECT_CHECK_MSG(server.listening(), "loopback bind failed");

  std::vector<std::unique_ptr<net::client>> clients;
  clients.reserve(static_cast<std::size_t>(row.connections));
  for (int c = 0; c < row.connections; ++c) {
    clients.push_back(std::make_unique<net::client>(
        "127.0.0.1", server.port(), row.stripes));
    ELECT_CHECK_MSG(clients.back()->connected(), "client connect failed");
  }

  std::atomic<bool> go{false};
  std::atomic<std::uint64_t> lost{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(row.connections));
  for (int c = 0; c < row.connections; ++c) {
    threads.emplace_back([&, c] {
      net::client& client = *clients[static_cast<std::size_t>(c)];
      std::vector<std::string> keys;
      std::vector<std::uint64_t> ids(static_cast<std::size_t>(row.pipeline));
      std::vector<std::uint64_t> epochs(
          static_cast<std::size_t>(row.pipeline));
      for (int p = 0; p < row.pipeline; ++p) {
        keys.push_back("loop/" + std::to_string(c) + "/" +
                       std::to_string(p));
      }
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int round = 0; round < row.rounds; ++round) {
        for (int p = 0; p < row.pipeline; ++p) {
          const auto i = static_cast<std::size_t>(p);
          ids[i] = client.submit(net::wire::op::try_acquire, keys[i]);
        }
        for (int p = 0; p < row.pipeline; ++p) {
          const auto i = static_cast<std::size_t>(p);
          const auto r = client.take(ids[i]);
          if (!r.has_value() || !r->won()) {
            lost.fetch_add(1, std::memory_order_relaxed);
            epochs[i] = ~0ull;
            continue;
          }
          epochs[i] = r->epoch;
        }
        for (int p = 0; p < row.pipeline; ++p) {
          const auto i = static_cast<std::size_t>(p);
          ids[i] = epochs[i] == ~0ull
                       ? 0
                       : client.submit(net::wire::op::release_fenced, keys[i],
                                       epochs[i]);
        }
        for (int p = 0; p < row.pipeline; ++p) {
          const auto i = static_cast<std::size_t>(p);
          if (ids[i] != 0) (void)client.take(ids[i]);
        }
      }
    });
  }

  bench::stopwatch timer;
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  const double seconds = timer.seconds();

  sweep_result result;
  result.seconds = seconds;
  result.pairs = static_cast<std::uint64_t>(row.connections) *
                 static_cast<std::uint64_t>(row.rounds) *
                 static_cast<std::uint64_t>(row.pipeline);
  result.pairs_per_s = static_cast<double>(result.pairs) / seconds;
  result.lost = lost.load();
  result.net = server.report();
  result.service_report = service.report();
  clients.clear();
  server.stop();
  return result;
}

// ---------------------------------------------------------------------
// Watch-fanout mode: N raw-socket watchers on one key, event-delivery
// latency measured from the driver's release to each watcher's receipt.

struct fanout_result {
  int watchers = 0;
  int rounds = 0;
  std::uint64_t received = 0;  // released-events collected (want W*R)
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double events_per_s = 0.0;  // push throughput during collection
  net::net_report net;
};

/// Blocking connect + hello + watch handshake for one raw watcher
/// socket. Returns the connected fd (made non-blocking), or -1.
int connect_watcher(std::uint16_t port, const std::string& key) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

  const auto roundtrip = [fd](const net::wire::request& req)
      -> std::optional<net::wire::response> {
    const auto frame = net::wire::encode_request(req);
    std::size_t sent = 0;
    while (sent < frame.size()) {
      const ssize_t wrote =
          ::send(fd, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
      if (wrote <= 0) {
        if (wrote < 0 && errno == EINTR) continue;
        return std::nullopt;
      }
      sent += static_cast<std::size_t>(wrote);
    }
    net::wire::frame_reader reader;
    std::uint8_t buffer[4096];
    for (;;) {
      const ssize_t got = ::recv(fd, buffer, sizeof buffer, 0);
      if (got <= 0) {
        if (got < 0 && errno == EINTR) continue;
        return std::nullopt;
      }
      if (!reader.feed(buffer, static_cast<std::size_t>(got))) {
        return std::nullopt;
      }
      if (auto body = reader.next()) return net::wire::decode_response(*body);
    }
  };

  net::wire::request hello = net::wire::make_hello_request();
  hello.id = 1;
  auto answer = roundtrip(hello);
  if (!answer.has_value() || answer->result != net::wire::status::ok) {
    ::close(fd);
    return -1;
  }
  net::wire::request watch;
  watch.id = 2;
  watch.kind = net::wire::op::watch;
  watch.key = key;
  answer = roundtrip(watch);
  if (!answer.has_value() || answer->result != net::wire::status::ok) {
    ::close(fd);
    return -1;
  }
  const int fl = ::fcntl(fd, F_GETFL, 0);
  (void)::fcntl(fd, F_SETFL, fl | O_NONBLOCK);
  return fd;
}

fanout_result run_fanout(int want_watchers, int rounds) {
  // Each watcher costs two fds (client socket + server connection, same
  // process); raise the limit to the hard cap and clamp the fleet to
  // what fits with headroom for the server's own descriptors.
  rlimit lim{};
  if (::getrlimit(RLIMIT_NOFILE, &lim) == 0 && lim.rlim_cur < lim.rlim_max) {
    lim.rlim_cur = lim.rlim_max;
    (void)::setrlimit(RLIMIT_NOFILE, &lim);
    (void)::getrlimit(RLIMIT_NOFILE, &lim);
  }
  const auto fd_budget = static_cast<long>(
      std::min<rlim_t>(lim.rlim_cur, 1u << 20));
  const int watchers = static_cast<int>(
      std::min<long>(want_watchers, std::max<long>(1, (fd_budget - 256) / 2)));

  svc::service_config service_config{.nodes = 8, .shards = 8, .seed = bench_seed};
  service_config.default_strategy = election::strategy_kind::adaptive;
  svc::service service(std::move(service_config));
  net::server_config server_config;
  server_config.executors = 4;
  server_config.max_connections = watchers + 64;
  server_config.max_watches_per_connection = 4;
  net::server server(service, std::move(server_config));
  ELECT_CHECK_MSG(server.listening(), "loopback bind failed");

  const std::string key = "fan/key";
  const int epfd = ::epoll_create1(EPOLL_CLOEXEC);
  ELECT_CHECK_MSG(epfd >= 0, "epoll_create1 failed");
  std::vector<int> fds;
  std::vector<net::wire::frame_reader> readers(
      static_cast<std::size_t>(watchers));
  fds.reserve(static_cast<std::size_t>(watchers));
  for (int w = 0; w < watchers; ++w) {
    const int fd = connect_watcher(server.port(), key);
    ELECT_CHECK_MSG(fd >= 0, "watcher connect failed");
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u32 = static_cast<std::uint32_t>(w);
    ELECT_CHECK_MSG(::epoll_ctl(epfd, EPOLL_CTL_ADD, fd, &ev) == 0,
                    "watcher epoll add failed");
    fds.push_back(fd);
  }

  net::client driver("127.0.0.1", server.port());
  ELECT_CHECK_MSG(driver.connected(), "driver connect failed");

  // Collect event frames across all watcher sockets until `elected` and
  // `released` counts each reach `want` or the deadline passes. Returns
  // receipt timestamps of `released` events.
  const auto collect = [&](std::uint64_t want,
                           std::vector<std::chrono::steady_clock::time_point>*
                               released_at) -> std::uint64_t {
    std::uint64_t elected = 0;
    std::uint64_t released = 0;
    epoll_event events[256];
    std::uint8_t buffer[64 * 1024];
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while ((elected < want || released < want) &&
           std::chrono::steady_clock::now() < deadline) {
      const int ready = ::epoll_wait(epfd, events, 256, 1000);
      for (int i = 0; i < ready; ++i) {
        const auto w = static_cast<std::size_t>(events[i].data.u32);
        for (;;) {
          const ssize_t got = ::recv(fds[w], buffer, sizeof buffer, 0);
          if (got <= 0) break;  // EAGAIN (or a dead socket: the count
                                // shortfall reports it)
          const auto stamp = std::chrono::steady_clock::now();
          ELECT_CHECK_MSG(
              readers[w].feed(buffer, static_cast<std::size_t>(got)),
              "watcher deframe failed");
          while (auto body = readers[w].next()) {
            const auto r = net::wire::decode_response(*body);
            if (!r.has_value()) continue;
            const auto e = net::wire::parse_event(*r);
            if (!e.has_value()) continue;
            if (e->kind == svc::transition::elected) {
              ++elected;
            } else if (e->kind == svc::transition::released) {
              ++released;
              if (released_at != nullptr) released_at->push_back(stamp);
            }
          }
        }
      }
    }
    return released;
  };

  std::vector<double> latencies_ms;
  latencies_ms.reserve(static_cast<std::size_t>(watchers) *
                       static_cast<std::size_t>(rounds));
  std::uint64_t received = 0;
  bench::stopwatch total;
  for (int round = 0; round < rounds; ++round) {
    const auto acquired = driver.try_acquire(key);
    ELECT_CHECK_MSG(acquired.won, "driver acquire lost");
    // The release is the measured edge: one wire op fans out to every
    // watcher; each receipt's latency is stamped against t0.
    std::vector<std::chrono::steady_clock::time_point> released_at;
    released_at.reserve(static_cast<std::size_t>(watchers));
    const auto t0 = std::chrono::steady_clock::now();
    (void)driver.release(key, acquired.epoch);
    received += collect(static_cast<std::uint64_t>(watchers), &released_at);
    for (const auto& stamp : released_at) {
      latencies_ms.push_back(
          std::chrono::duration<double, std::milli>(stamp - t0).count());
    }
  }
  const double seconds = total.seconds();

  fanout_result result;
  result.watchers = watchers;
  result.rounds = rounds;
  result.received = received;
  result.net = server.report();
  if (!latencies_ms.empty()) {
    std::sort(latencies_ms.begin(), latencies_ms.end());
    const auto at = [&](double q) {
      const auto idx = static_cast<std::size_t>(
          q * static_cast<double>(latencies_ms.size() - 1));
      return latencies_ms[idx];
    };
    result.p50_ms = at(0.50);
    result.p99_ms = at(0.99);
  }
  // Throughput over the whole run (both transitions pushed per round).
  result.events_per_s =
      static_cast<double>(2 * received) / std::max(seconds, 1e-9);

  driver.close();
  for (const int fd : fds) ::close(fd);
  ::close(epfd);
  server.stop();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int watchers_arg = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--watchers") == 0 && i + 1 < argc) {
      watchers_arg = std::atoi(argv[i + 1]);
      ++i;
    }
  }
  const int rounds = smoke ? 40 : 400;
  bench_seed = bench::parse_seed(argc, argv, bench_seed);

  bench::print_header(
      "E11", "Wire-level loopback throughput (elect::net)",
      "the network edge must not eat the fast path: pipelined remote "
      "acquire/release pairs ride the adaptive CAS with no distributed "
      "protocol, so loopback throughput is bounded by framing + epoll "
      "batching, not elections — and with N reactors, by N of them");

  const std::vector<sweep_row> rows = {
      {/*reactors=*/1, /*stripes=*/1, /*connections=*/1, /*pipeline=*/8,
       rounds},
      {/*reactors=*/1, /*stripes=*/1, /*connections=*/32, /*pipeline=*/8,
       rounds},  // single-reactor baseline
      {/*reactors=*/2, /*stripes=*/1, /*connections=*/32, /*pipeline=*/8,
       rounds},
      {/*reactors=*/4, /*stripes=*/1, /*connections=*/32, /*pipeline=*/8,
       rounds},  // acceptance row
      {/*reactors=*/4, /*stripes=*/4, /*connections=*/8, /*pipeline=*/8,
       rounds},  // striped clients: 8 clients x 4 stripes = 32 sockets
  };

  exp::table table({"reactors", "stripes", "conns", "pipeline", "pairs",
                    "pairs/s", "p50 ms", "p99 ms", "writev",
                    "frames/writev", "lost", "sec"});
  bench::json_emitter json("net_loopback");
  json.meta_field("smoke", smoke);
  json.meta_field("seed", static_cast<std::int64_t>(bench_seed));
  json.meta_field("rounds_per_connection", static_cast<std::int64_t>(rounds));

  double baseline_pairs_per_s = 0.0;
  double acceptance_pairs_per_s = 0.0;
  std::string acceptance_net_json;
  std::uint64_t total_lost = 0;
  for (const sweep_row& row : rows) {
    const sweep_result result = run_sweep(row);
    total_lost += result.lost;
    const double coalesce =
        result.net.writev_calls == 0
            ? 0.0
            : static_cast<double>(result.net.frames_flushed) /
                  static_cast<double>(result.net.writev_calls);
    table.add_row({std::to_string(row.reactors), std::to_string(row.stripes),
                   std::to_string(row.connections),
                   std::to_string(row.pipeline), std::to_string(result.pairs),
                   exp::fmt_int(result.pairs_per_s),
                   exp::fmt(result.service_report.acquire_p50_ms, 3),
                   exp::fmt(result.service_report.acquire_p99_ms, 3),
                   std::to_string(result.net.writev_calls),
                   exp::fmt(coalesce, 1), std::to_string(result.lost),
                   exp::fmt(result.seconds, 2)});
    if (row.reactors == 1 && row.connections == 32 && row.stripes == 1) {
      baseline_pairs_per_s = result.pairs_per_s;
    }
    if (row.reactors == 4 && row.connections == 32 && row.stripes == 1) {
      acceptance_pairs_per_s = result.pairs_per_s;
      acceptance_net_json = result.net.to_json();
    }
  }

  table.print(std::cout);
  const double speedup = baseline_pairs_per_s <= 0.0
                             ? 0.0
                             : acceptance_pairs_per_s / baseline_pairs_per_s;
  std::cout << "\n4-reactor 32-connection row: "
            << exp::fmt_int(acceptance_pairs_per_s)
            << " acquire/release pairs/s (acceptance gate: >= "
            << (smoke ? "5k smoke" : "50k") << "); "
            << exp::fmt(speedup, 2)
            << "x the single-reactor row (reported, not gated: "
            << std::thread::hardware_concurrency() << " cores here)\n";

  // Fanout mode: 1 key, many watchers, release-to-receipt latency.
  const int fanout_watchers =
      watchers_arg > 0 ? watchers_arg : (smoke ? 500 : 10'000);
  const int fanout_rounds = smoke ? 10 : 20;
  const fanout_result fan = run_fanout(fanout_watchers, fanout_rounds);
  std::cout << "\nwatch fanout: " << fan.watchers << " watchers on 1 key, "
            << fan.rounds << " release rounds -> delivery p50 "
            << exp::fmt(fan.p50_ms, 3) << " ms, p99 "
            << exp::fmt(fan.p99_ms, 3) << " ms, "
            << exp::fmt_int(fan.events_per_s) << " events/s pushed ("
            << fan.received << "/"
            << static_cast<std::uint64_t>(fan.watchers) *
                   static_cast<std::uint64_t>(fan.rounds)
            << " released events received)\n";

  json.table("sweep", table);
  json.field("baseline_pairs_per_s", baseline_pairs_per_s);
  json.field("acceptance_pairs_per_s", acceptance_pairs_per_s);
  json.field("multi_reactor_speedup", speedup);
  json.field("lost_acquires", total_lost);
  if (!acceptance_net_json.empty()) {
    // Carries the per-reactor rows (connections / accepted / wakeups /
    // writev / frames_flushed / drain_batches / requests per reactor).
    json.raw("acceptance_net", acceptance_net_json);
  }
  json.field("fanout_watchers", static_cast<std::int64_t>(fan.watchers));
  json.field("fanout_rounds", static_cast<std::int64_t>(fan.rounds));
  json.field("fanout_received", fan.received);
  json.field("fanout_delivery_p50_ms", fan.p50_ms);
  json.field("fanout_delivery_p99_ms", fan.p99_ms);
  json.field("fanout_events_per_s", fan.events_per_s);
  json.raw("fanout_net", fan.net.to_json());
  json.write();

  // Disjoint keys: every acquire must win; a loss is a correctness bug
  // (or a protocol error), not noise.
  if (total_lost != 0) {
    std::cout << "FAILURE: " << total_lost
              << " lost acquires on disjoint keys\n";
    return 1;
  }
  // Every watcher must hear every release — the fanout lane drops
  // events only for dead or wedged consumers, and this bench has
  // neither.
  if (fan.received != static_cast<std::uint64_t>(fan.watchers) *
                          static_cast<std::uint64_t>(fan.rounds)) {
    std::cout << "FANOUT FAILURE: missing released events\n";
    return 1;
  }
  // The gate is enforced, not just printed — a regression that drags the
  // wire below it turns the bench (and the CI smoke step) red. Smoke
  // machines vary wildly, so the smoke gate only catches collapses.
  const double gate = smoke ? 5'000.0 : 50'000.0;
  if (acceptance_pairs_per_s < gate) {
    std::cout << "ACCEPTANCE FAILURE: " << exp::fmt_int(acceptance_pairs_per_s)
              << " pairs/s < " << exp::fmt_int(gate) << "\n";
    return 1;
  }
  return 0;
}
