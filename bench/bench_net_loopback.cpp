// Wire-level load generator for elect::net: an in-process server over a
// loopback TCP socket, hammered by C client connections each keeping a
// window of P requests pipelined.
//
// The unit of work is one acquire/release *pair* (what a remote lock
// user does per critical section): a try_acquire round-trip followed by
// a fenced release round-trip. Each connection owns P disjoint keys and
// drives them in lockstep windows — P acquires submitted back-to-back,
// completed, then P releases — so the socket always carries a deep
// pipeline but a release never overtakes its own acquire.
//
// Keys are disjoint per connection: with the adaptive strategy every
// epoch is granted by the registry CAS, so the numbers measure the
// network edge (framing, epoll batching, dispatch, response path)
// rather than distributed-election cost — which is exactly what this
// bench exists to track. The pipeline sweep shows what the depth buys;
// the acceptance row is 32 connections at the default depth.
//
// Acceptance gate (enforced): >= 50k pairs/s on the 32-connection row
// (>= 5k under --smoke, where op counts shrink and CI machines vary).
//
// Build & run:  ./build/bench/bench_net_loopback [--smoke]
#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "exp/table.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "svc/service.hpp"

namespace {

using namespace elect;

struct sweep_row {
  int connections = 0;
  int pipeline = 0;
  int rounds = 0;  // windows per connection; pairs = rounds * pipeline
};

struct sweep_result {
  double seconds = 0.0;
  std::uint64_t pairs = 0;
  double pairs_per_s = 0.0;
  std::uint64_t lost = 0;  // acquires that did not win (must stay 0)
  svc::service_report service_report;
  net::net_report net;
};

sweep_result run_sweep(const sweep_row& row) {
  svc::service_config service_config{.nodes = 8, .shards = 8, .seed = 3};
  // Adaptive: disjoint keys ride the CAS fast path, so the wire is the
  // thing under test, not the election ladder.
  service_config.default_strategy = election::strategy_kind::adaptive;
  svc::service service(std::move(service_config));
  net::server_config server_config;
  server_config.executors = 8;
  server_config.max_inflight_per_connection = 2 * row.pipeline;
  net::server server(service, std::move(server_config));
  ELECT_CHECK_MSG(server.listening(), "loopback bind failed");

  std::vector<std::unique_ptr<net::client>> clients;
  clients.reserve(static_cast<std::size_t>(row.connections));
  for (int c = 0; c < row.connections; ++c) {
    clients.push_back(
        std::make_unique<net::client>("127.0.0.1", server.port()));
    ELECT_CHECK_MSG(clients.back()->connected(), "client connect failed");
  }

  std::atomic<bool> go{false};
  std::atomic<std::uint64_t> lost{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(row.connections));
  for (int c = 0; c < row.connections; ++c) {
    threads.emplace_back([&, c] {
      net::client& client = *clients[static_cast<std::size_t>(c)];
      std::vector<std::string> keys;
      std::vector<std::uint64_t> ids(static_cast<std::size_t>(row.pipeline));
      std::vector<std::uint64_t> epochs(
          static_cast<std::size_t>(row.pipeline));
      for (int p = 0; p < row.pipeline; ++p) {
        keys.push_back("loop/" + std::to_string(c) + "/" +
                       std::to_string(p));
      }
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int round = 0; round < row.rounds; ++round) {
        for (int p = 0; p < row.pipeline; ++p) {
          const auto i = static_cast<std::size_t>(p);
          ids[i] = client.submit(net::wire::op::try_acquire, keys[i]);
        }
        for (int p = 0; p < row.pipeline; ++p) {
          const auto i = static_cast<std::size_t>(p);
          const auto r = client.take(ids[i]);
          if (!r.has_value() || !r->won()) {
            lost.fetch_add(1, std::memory_order_relaxed);
            epochs[i] = ~0ull;
            continue;
          }
          epochs[i] = r->epoch;
        }
        for (int p = 0; p < row.pipeline; ++p) {
          const auto i = static_cast<std::size_t>(p);
          ids[i] = epochs[i] == ~0ull
                       ? 0
                       : client.submit(net::wire::op::release_fenced, keys[i],
                                       epochs[i]);
        }
        for (int p = 0; p < row.pipeline; ++p) {
          const auto i = static_cast<std::size_t>(p);
          if (ids[i] != 0) (void)client.take(ids[i]);
        }
      }
    });
  }

  bench::stopwatch timer;
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  const double seconds = timer.seconds();

  sweep_result result;
  result.seconds = seconds;
  result.pairs = static_cast<std::uint64_t>(row.connections) *
                 static_cast<std::uint64_t>(row.rounds) *
                 static_cast<std::uint64_t>(row.pipeline);
  result.pairs_per_s = static_cast<double>(result.pairs) / seconds;
  result.lost = lost.load();
  result.net = server.report();
  result.service_report = service.report();
  clients.clear();
  server.stop();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const int rounds = smoke ? 40 : 400;

  bench::print_header(
      "E11", "Wire-level loopback throughput (elect::net)",
      "the network edge must not eat the fast path: pipelined remote "
      "acquire/release pairs ride the adaptive CAS with no distributed "
      "protocol, so loopback throughput is bounded by framing + epoll "
      "batching, not elections");

  const std::vector<sweep_row> rows = {
      {/*connections=*/1, /*pipeline=*/1, rounds},
      {/*connections=*/1, /*pipeline=*/8, rounds},
      {/*connections=*/8, /*pipeline=*/8, rounds},
      {/*connections=*/32, /*pipeline=*/1, rounds},
      {/*connections=*/32, /*pipeline=*/8, rounds},  // acceptance row
  };

  exp::table table({"conns", "pipeline", "pairs", "pairs/s", "p50 ms",
                    "p99 ms", "frames_in", "batches", "frames/batch",
                    "lost", "sec"});
  bench::json_emitter json("net_loopback");
  json.meta_field("smoke", smoke);
  json.meta_field("rounds_per_connection", static_cast<std::int64_t>(rounds));

  double acceptance_pairs_per_s = 0.0;
  std::string acceptance_net_json;
  std::uint64_t total_lost = 0;
  for (const sweep_row& row : rows) {
    const sweep_result result = run_sweep(row);
    total_lost += result.lost;
    const double batch_factor =
        result.net.dispatch_batches == 0
            ? 0.0
            : static_cast<double>(result.net.requests) /
                  static_cast<double>(result.net.dispatch_batches);
    table.add_row({std::to_string(row.connections),
                   std::to_string(row.pipeline),
                   std::to_string(result.pairs),
                   exp::fmt_int(result.pairs_per_s),
                   exp::fmt(result.service_report.acquire_p50_ms, 3),
                   exp::fmt(result.service_report.acquire_p99_ms, 3),
                   std::to_string(result.net.frames_in),
                   std::to_string(result.net.dispatch_batches),
                   exp::fmt(batch_factor, 1),
                   std::to_string(result.lost),
                   exp::fmt(result.seconds, 2)});
    if (row.connections == 32 && row.pipeline == 8) {
      acceptance_pairs_per_s = result.pairs_per_s;
      acceptance_net_json = result.net.to_json();
    }
  }

  table.print(std::cout);
  std::cout << "\n32-connection pipelined row: "
            << exp::fmt_int(acceptance_pairs_per_s)
            << " acquire/release pairs/s (acceptance gate: >= "
            << (smoke ? "5k smoke" : "50k") << ")\n";

  json.table("sweep", table);
  json.field("acceptance_pairs_per_s", acceptance_pairs_per_s);
  json.field("lost_acquires", total_lost);
  if (!acceptance_net_json.empty()) {
    json.raw("acceptance_net", acceptance_net_json);
  }
  json.write();

  // Disjoint keys: every acquire must win; a loss is a correctness bug
  // (or a protocol error), not noise.
  if (total_lost != 0) {
    std::cout << "FAILURE: " << total_lost
              << " lost acquires on disjoint keys\n";
    return 1;
  }
  // The gate is enforced, not just printed — a regression that drags the
  // wire below it turns the bench (and the CI smoke step) red. Smoke
  // machines vary wildly, so the smoke gate only catches collapses.
  const double gate = smoke ? 5'000.0 : 50'000.0;
  if (acceptance_pairs_per_s < gate) {
    std::cout << "ACCEPTANCE FAILURE: " << exp::fmt_int(acceptance_pairs_per_s)
              << " pairs/s < " << exp::fmt_int(gate) << "\n";
    return 1;
  }
  return 0;
}
