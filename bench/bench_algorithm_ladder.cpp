// E11 — The algorithm ladder: tournament vs recursive plain-pill vs
// heterogeneous PoisonPill.
//
// Three generations of strong-adversary leader election, implemented
// side by side:
//   Θ(log n)      — tournament tree [AGTV92];
//   O(log log n)  — recursive plain PoisonPill (the §3.1 remark);
//   O(log* n)     — the paper's Figure 6.
// We report the rounds/levels played by the eventual winner and the time
// proxy (max communicate calls). Every trial re-checks the unique-winner
// invariant.
#include <cstdlib>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "exp/harness.hpp"
#include "exp/table.hpp"

int main() {
  using namespace elect;
  bench::print_header(
      "E11", "algorithm ladder: log n vs log log n vs log* n",
      "§3.1: the plain technique applied recursively yields O(log log n); "
      "Figure 6's heterogeneous phases reach O(log* n); the tournament "
      "stays Θ(log n)");

  const std::vector<int> sizes = {8, 32, 128};
  const int trials = 5;

  exp::table t({"n", "tournament: time", "recursive: time", "figure-6: time",
                "tournament: winner levels", "recursive: max round",
                "figure-6: max round"});

  for (const int n : sizes) {
    const auto measure = [&](exp::algo kind) {
      exp::trial_config config;
      config.kind = kind;
      config.n = n;
      config.seed = 1;
      const auto aggregate = exp::run_trials(config, trials);
      if (aggregate.winners.min() != 1.0 || aggregate.winners.max() != 1.0) {
        std::cerr << "UNIQUE-WINNER VIOLATION for " << exp::to_string(kind)
                  << " at n=" << n << "\n";
        std::exit(EXIT_FAILURE);
      }
      return aggregate;
    };
    const auto tournament = measure(exp::algo::tournament);
    const auto recursive = measure(exp::algo::recursive_pill);
    const auto figure6 = measure(exp::algo::leader_elect);
    t.add_row({std::to_string(n),
               exp::fmt(tournament.max_comm_calls.mean(), 1),
               exp::fmt(recursive.max_comm_calls.mean(), 1),
               exp::fmt(figure6.max_comm_calls.mean(), 1),
               exp::fmt(tournament.max_round.mean(), 1),
               exp::fmt(recursive.max_round.mean(), 1),
               exp::fmt(figure6.max_round.mean(), 1)});
  }
  t.print(std::cout);
  std::cout << "\nExpected shape: tournament levels = log2(n) exactly; "
               "recursive rounds grow very slowly (log log n); figure-6 "
               "rounds are essentially flat (log* n). Time columns order "
               "the three algorithms the same way at large n.\n";
  return 0;
}
