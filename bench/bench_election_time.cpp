// E1 — Election time: PoisonPill LeaderElect vs the tournament baseline.
//
// Theorem A.5: the paper's algorithm elects a leader in O(log* k)
// expected communicate calls per processor; the tournament [AGTV92] needs
// Θ(log n). We sweep n (with k = n participants), measure the time proxy
// of Claim 2.1 (max communicate calls by any participant), and fit both
// series against candidate growth laws. The absolute numbers are
// simulator-specific; the shape — flat-ish vs logarithmic, and the
// widening gap — is the reproduced result.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "exp/harness.hpp"
#include "exp/table.hpp"

int main() {
  using namespace elect;
  bench::print_header(
      "E1", "election time vs n (ours vs tournament)",
      "Thm A.5: O(log* k) communicate calls/processor vs Θ(log n) for the "
      "tournament tree");

  const std::vector<int> sizes = {8, 16, 32, 64, 128, 256};
  const int trials_ours = 5;
  const int trials_tournament = 3;

  exp::table t({"n", "log2 n", "log* n", "ours: max comm calls (mean)",
                "tournament: max comm calls (mean)", "ratio tourn/ours"});
  std::vector<double> xs, ours_series, tournament_series;

  for (const int n : sizes) {
    exp::trial_config ours;
    ours.kind = exp::algo::leader_elect;
    ours.n = n;
    ours.seed = 1;
    const auto ours_agg = exp::run_trials(ours, trials_ours);

    exp::trial_config tournament = ours;
    tournament.kind = exp::algo::tournament;
    const auto tournament_agg =
        exp::run_trials(tournament, trials_tournament);

    const double ours_mean = ours_agg.max_comm_calls.mean();
    const double tournament_mean = tournament_agg.max_comm_calls.mean();
    xs.push_back(n);
    ours_series.push_back(ours_mean);
    tournament_series.push_back(tournament_mean);

    t.add_row({std::to_string(n), exp::fmt(std::log2(n), 1),
               std::to_string(log_star(n)), exp::fmt(ours_mean, 1),
               exp::fmt(tournament_mean, 1),
               exp::fmt(tournament_mean / ours_mean, 2)});
  }
  t.print(std::cout);
  std::cout << "\n";
  bench::print_fit("ours", xs, ours_series);
  bench::print_fit("tournament", xs, tournament_series);

  const auto growth = [](const std::vector<double>& series) {
    return series.back() / series.front();
  };
  std::cout << "\nGrowth across the sweep (n grew "
            << exp::fmt(xs.back() / xs.front(), 0)
            << "x): ours " << exp::fmt(growth(ours_series), 2)
            << "x, tournament " << exp::fmt(growth(tournament_series), 2)
            << "x. log2(n) grew "
            << exp::fmt(std::log2(xs.back()) / std::log2(xs.front()), 2)
            << "x, log*(n) grew "
            << exp::fmt(static_cast<double>(log_star(xs.back())) /
                            static_cast<double>(log_star(xs.front())),
                        2)
            << "x.\n";
  std::cout << "Expected shape: `ours` grows like log* n (nearly flat; a "
               "low best-R² here just reflects flatness), `tournament` "
               "like log n; the ratio column widens with n.\n";
  return 0;
}
