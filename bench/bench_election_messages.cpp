// E2 — Election message complexity and the Ω(kn) lower bound.
//
// Theorem A.5: O(kn) expected total messages for k participants among n
// processors; Corollary B.3: any algorithm needs Ω(αkn). With k = n the
// two pin total messages to Θ(n²). We sweep n, measure total messages
// (requests + ACKs + collect replies) and the normalized constant
// messages/(k·n), which must stay flat if the bound is met.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "exp/harness.hpp"
#include "exp/table.hpp"

int main() {
  using namespace elect;
  bench::print_header(
      "E2", "election message complexity (k = n)",
      "Thm A.5: O(kn) messages; Cor B.3: Ω(kn) lower bound — so "
      "messages/(kn) should be a flat constant");

  const std::vector<int> sizes = {8, 16, 32, 64, 128, 256};
  const int trials = 5;

  exp::table t({"n", "total messages (mean)", "wire KiB (mean)",
                "messages/(k*n)", "requests only/(k*n)"});
  std::vector<double> xs, messages_series, normalized;

  for (const int n : sizes) {
    exp::trial_config config;
    config.kind = exp::algo::leader_elect;
    config.n = n;
    config.seed = 1;
    double total = 0, wire = 0, requests = 0;
    for (int trial = 0; trial < trials; ++trial) {
      config.seed = 1 + static_cast<std::uint64_t>(trial);
      const auto result = exp::run_trial(config);
      total += static_cast<double>(result.total_messages);
      wire += static_cast<double>(result.wire_bytes);
      requests += static_cast<double>(result.request_messages);
    }
    total /= trials;
    wire /= trials;
    requests /= trials;
    const double kn = static_cast<double>(n) * n;
    xs.push_back(n);
    messages_series.push_back(total);
    normalized.push_back(total / kn);
    t.add_row({std::to_string(n), exp::fmt_int(total),
               exp::fmt(wire / 1024.0, 1), exp::fmt(total / kn, 2),
               exp::fmt(requests / kn, 2)});
  }
  t.print(std::cout);
  std::cout << "\n";
  bench::print_fit("total messages", xs, messages_series);
  std::cout << "\nExpected shape: total messages ranked n^2 (= kn with "
               "k = n), matching both the O(kn) upper and the Ω(kn) lower "
               "bound. The messages/(k*n) column must stay bounded by a "
               "constant: it *decreases monotonically toward* the "
               "asymptotic constant, because the per-participant fixed "
               "costs (doorway, winner's extra rounds — the o(kn) tail) "
               "amortize away as n grows.\n";

  double lo = normalized.front(), hi = normalized.front();
  bool monotone_decreasing = true;
  for (std::size_t i = 0; i < normalized.size(); ++i) {
    lo = std::min(lo, normalized[i]);
    hi = std::max(hi, normalized[i]);
    if (i > 0 && normalized[i] > normalized[i - 1] + 1.0) {
      monotone_decreasing = false;
    }
  }
  std::cout << "messages/(kn) range across the sweep: [" << exp::fmt(lo, 2)
            << ", " << exp::fmt(hi, 2) << "], "
            << (monotone_decreasing ? "decreasing toward" : "NOT settling at")
            << " a bounded constant — "
            << (monotone_decreasing ? "consistent with Θ(kn)."
                                    : "unexpected, investigate.")
            << "\n";
  return 0;
}
