// E8 — Wall-clock latency on real threads (google-benchmark).
//
// The reproduction hint says a multicore laptop with std::atomic-style
// primitives suffices: this bench runs the identical protocol coroutines
// on the thread-per-processor runtime and measures end-to-end election /
// renaming latency, ours vs the tournament baseline. Shape expectation:
// the tournament's latency grows noticeably faster with n than
// LeaderElect's (its winner must ascend log2(n) sequential levels).
#include <benchmark/benchmark.h>

#include "election/leader_elect.hpp"
#include "election/tournament.hpp"
#include "engine/node.hpp"
#include "mt/cluster.hpp"
#include "renaming/renaming.hpp"

namespace {

using namespace elect;

std::uint64_t next_seed() {
  static std::uint64_t seed = 1;
  return seed++;
}

void run_election(int n, bool tournament) {
  mt::cluster cluster(n, next_seed());
  for (process_id pid = 0; pid < n; ++pid) {
    if (tournament) {
      cluster.attach(pid, [](engine::node& node) {
        return engine::erase_result(
            election::tournament_elect(node, election::tournament_params{}));
      });
    } else {
      cluster.attach(pid, [](engine::node& node) {
        return engine::erase_result(election::leader_elect(node));
      });
    }
  }
  cluster.start();
  cluster.wait();
}

void BM_LeaderElect(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) run_election(n, /*tournament=*/false);
}

void BM_Tournament(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) run_election(n, /*tournament=*/true);
}

void BM_Renaming(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    mt::cluster cluster(n, next_seed());
    for (process_id pid = 0; pid < n; ++pid) {
      cluster.attach(pid, [](engine::node& node) {
        return renaming::get_name(node, renaming::renaming_params{});
      });
    }
    cluster.start();
    cluster.wait();
  }
}

}  // namespace

BENCHMARK(BM_LeaderElect)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(10);
BENCHMARK(BM_Tournament)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(10);
BENCHMARK(BM_Renaming)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(5);

BENCHMARK_MAIN();
