// E5 — Adaptivity: cost depends on participants k, not system size n.
//
// Theorem A.5: with k participants the algorithm takes O(log* k) time and
// O(kn) messages. We fix n and sweep k; time should stay near-flat in k
// while messages grow linearly in k.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "exp/harness.hpp"
#include "exp/table.hpp"

int main() {
  using namespace elect;
  bench::print_header(
      "E5", "adaptivity: k participants at fixed n = 128",
      "Thm A.5: O(log* k) time and O(kn) messages — contention-adaptive");

  const int n = 128;
  const std::vector<int> ks = {1, 2, 4, 8, 16, 32, 64, 128};
  const int trials = 5;

  exp::table t({"k", "max comm calls (mean)", "total messages (mean)",
                "messages/(k*n)"});
  std::vector<double> xs, time_series, message_series;

  for (const int k : ks) {
    exp::trial_config config;
    config.kind = exp::algo::leader_elect;
    config.n = n;
    config.participants = k;
    config.seed = 1;
    const auto aggregate = exp::run_trials(config, trials);
    const double time = aggregate.max_comm_calls.mean();
    const double messages = aggregate.total_messages.mean();
    xs.push_back(k);
    time_series.push_back(time);
    message_series.push_back(messages);
    t.add_row({std::to_string(k), exp::fmt(time, 1), exp::fmt_int(messages),
               exp::fmt(messages / (static_cast<double>(k) * n), 2)});
  }
  t.print(std::cout);
  std::cout << "\n";
  bench::print_fit("time vs k", xs, time_series);
  bench::print_fit("messages vs k", xs, message_series);
  std::cout << "\nExpected shape: time near-flat in k (log*/const laws); "
               "messages linear in k; messages/(k*n) flat.\n";
  return 0;
}
