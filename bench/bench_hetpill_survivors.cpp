// E4 — Heterogeneous PoisonPill survivor decomposition (Lemmas 3.6, 3.7).
//
// Lemma 3.6: expected O(log k) survivors that flipped 0;
// Lemma 3.7: expected O(log² k) processors that flip 1.
// Total expected survivors per phase: O(log² k) — the key improvement
// over the plain technique's Θ(sqrt k). Sweep k under the sequential
// adversary (the plain technique's worst case) and uniform scheduling.
#include <cstdlib>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "exp/harness.hpp"
#include "exp/table.hpp"

int main() {
  using namespace elect;
  bench::print_header(
      "E4", "Heterogeneous PoisonPill survivors per phase",
      "Lemma 3.6: O(log k) zero-flip survivors; Lemma 3.7: O(log^2 k) "
      "one-flippers; total O(log^2 k) — breaking the plain sqrt barrier");

  const std::vector<int> sizes = {8, 16, 32, 64, 128};
  const int trials = 12;

  exp::table t({"k", "log2 k", "log2^2 k", "survivors seq (mean)",
                "zero-flip surv seq", "one-flippers seq",
                "survivors uniform", "plain-PP survivors seq (contrast)"});
  std::vector<double> xs, het_series, plain_series;

  for (const int n : sizes) {
    exp::trial_config het;
    het.kind = exp::algo::het_pp_phase;
    het.n = n;
    het.seed = 1;
    het.adversary = "sequential";
    const auto het_seq = exp::run_trials(het, trials);
    if (het_seq.winners.min() < 1.0) {
      std::cerr << "SURVIVOR INVARIANT VIOLATION at k=" << n << "\n";
      return EXIT_FAILURE;
    }
    het.adversary = "uniform";
    const auto het_uni = exp::run_trials(het, trials);

    exp::trial_config plain = het;
    plain.kind = exp::algo::plain_pp_phase;
    plain.adversary = "sequential";
    const auto plain_seq = exp::run_trials(plain, trials);

    const double log2k = std::log2(static_cast<double>(n));
    xs.push_back(n);
    het_series.push_back(het_seq.winners.mean());
    plain_series.push_back(plain_seq.winners.mean());
    t.add_row({std::to_string(n), exp::fmt(log2k, 1),
               exp::fmt(log2k * log2k, 1),
               exp::fmt(het_seq.winners.mean(), 1),
               exp::fmt(het_seq.zero_flip_survivors.mean(), 1),
               exp::fmt(het_seq.one_flippers.mean(), 1),
               exp::fmt(het_uni.winners.mean(), 1),
               exp::fmt(plain_seq.winners.mean(), 1)});
  }
  t.print(std::cout);
  std::cout << "\n";
  bench::print_fit("het survivors (sequential)", xs, het_series);
  bench::print_fit("plain survivors (sequential)", xs, plain_series);
  std::cout << "\nExpected shape: heterogeneous survivors polylog "
               "(log/log^2 laws rank first), plain survivors sqrt(n); the "
               "gap grows with k.\n"
               "Note: under the strictly sequential schedule the first "
               "participant has |l| = 1 and flips 1 with probability 1, so "
               "every later 0-flipper observes a non-low status and dies — "
               "zero-flip survivors are exactly 0 there, comfortably inside "
               "Lemma 3.6's O(log k) upper bound.\n";
  return 0;
}
