// E10 — Lease churn under crashing clients.
//
// Crash-tolerance load test for elect::svc: C client threads hammer K
// keys, and every winner "crashes" every crash_period-th win — it walks
// away without releasing, exactly the failure the PR-1 service could not
// survive (one wedged key per crash, forever). With leases the sweeper
// force-releases each crashed key after the TTL, so throughput keeps
// flowing; the grid sweeps TTL × sweep-interval to show the recovery
// latency / sweeper overhead trade-off against a no-crash baseline.
//
// After the load phase every "crashed" client comes back as a zombie and
// replays release(key, epoch) with its dead lease's fencing token; all of
// them must bounce off the epoch fence (stale_epoch), which the last two
// columns verify (fenced == crashes, recovered == expirations/crashes).
//
// Build & run:  ./build/bench/bench_svc_churn
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "exp/table.hpp"
#include "svc/service.hpp"

namespace {

using namespace elect;

struct churn_row {
  std::uint64_t ttl_ms = 0;
  std::uint64_t sweep_ms = 0;
  int clients = 8;
  int keys = 16;
  int nodes = 4;
  /// Load-phase length — several TTLs, so crashed keys are reclaimed and
  /// re-won *during* the run, not just at the end.
  std::uint64_t run_ms = 250;
  /// Crash (skip the release) on every Nth win; 0 = never crash.
  int crash_period = 4;
};

struct churn_result {
  double seconds = 0.0;
  svc::service_report report;
  std::uint64_t crashes = 0;
  std::uint64_t zombie_fenced = 0;
  double throughput = 0.0;
};

churn_result run_row(const churn_row& row, std::uint64_t seed) {
  svc::service service(
      svc::service_config{.nodes = row.nodes,
                          .shards = 4,
                          .seed = seed,
                          .lease_ttl_ms = row.ttl_ms,
                          .sweep_interval_ms = row.sweep_ms});
  std::vector<svc::service::session> sessions;
  sessions.reserve(static_cast<std::size_t>(row.clients));
  for (int c = 0; c < row.clients; ++c) sessions.push_back(service.connect());

  // Each client records the leases it abandoned: (key, epoch) fencing
  // tokens it will replay as a zombie after the leases are long dead.
  std::vector<std::vector<std::pair<std::string, std::uint64_t>>> abandoned(
      static_cast<std::size_t>(row.clients));
  std::atomic<bool> go{false};
  std::atomic<std::uint64_t> crashes{0};

  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(row.clients));
  for (int c = 0; c < row.clients; ++c) {
    clients.emplace_back([&, c] {
      auto& session = sessions[static_cast<std::size_t>(c)];
      auto& my_abandoned = abandoned[static_cast<std::size_t>(c)];
      int wins = 0;
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(row.run_ms);
      for (int op = 0; std::chrono::steady_clock::now() < deadline; ++op) {
        const std::string key =
            "churn/" + std::to_string((c + op) % row.keys);
        const auto result = session.try_acquire(key);
        if (!result.won) continue;
        ++wins;
        if (row.crash_period != 0 && wins % row.crash_period == 0) {
          // "Crash": keep the lease, never release. Only the sweeper can
          // give this key back to the other clients.
          my_abandoned.emplace_back(key, result.epoch);
          crashes.fetch_add(1, std::memory_order_relaxed);
        } else {
          session.release(key, result.epoch);
        }
      }
    });
  }

  bench::stopwatch timer;
  go.store(true, std::memory_order_release);
  for (auto& t : clients) t.join();
  const double seconds = timer.seconds();

  // Let every abandoned lease expire, then replay the zombies' releases:
  // each must be fenced off by the bumped epoch.
  std::uint64_t zombie_fenced = 0;
  if (row.crash_period != 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(row.ttl_ms + 3 * row.sweep_ms + 5));
    service.sweep_now();
    for (int c = 0; c < row.clients; ++c) {
      auto& session = sessions[static_cast<std::size_t>(c)];
      for (const auto& [key, epoch] : abandoned[static_cast<std::size_t>(c)]) {
        if (session.release(key, epoch) == svc::lease_status::stale_epoch) {
          ++zombie_fenced;
        }
      }
    }
  }

  churn_result result;
  result.seconds = seconds;
  result.report = service.report();
  result.crashes = crashes.load();
  result.zombie_fenced = zombie_fenced;
  result.throughput =
      static_cast<double>(result.report.acquires) / seconds;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  // Historical default 1: `bench_svc_churn` with no flags runs the
  // exact workload every earlier BENCH_svc_churn.json was measured on.
  const std::uint64_t seed = bench::parse_seed(argc, argv, 1);
  bench::print_header(
      "E10", "Lease churn with crashing clients (TTL × sweep grid)",
      "a crashed winner cannot wedge a key: the sweeper reclaims it "
      "within ~TTL + sweep, zombies are fenced by the epoch, and "
      "throughput survives a 25% client crash rate");

  const std::vector<churn_row> rows = {
      // No-crash baseline (leases on, nobody abandons).
      {/*ttl_ms=*/40, /*sweep_ms=*/10, /*clients=*/8, /*keys=*/16,
       /*nodes=*/4, /*run_ms=*/250, /*crash_period=*/0},
      // Crashing clients across the TTL × sweep grid.
      {/*ttl_ms=*/20, /*sweep_ms=*/5, /*clients=*/8, /*keys=*/16,
       /*nodes=*/4, /*run_ms=*/250, /*crash_period=*/4},
      {/*ttl_ms=*/40, /*sweep_ms=*/10, /*clients=*/8, /*keys=*/16,
       /*nodes=*/4, /*run_ms=*/250, /*crash_period=*/4},
      {/*ttl_ms=*/80, /*sweep_ms=*/20, /*clients=*/8, /*keys=*/16,
       /*nodes=*/4, /*run_ms=*/250, /*crash_period=*/4},
      {/*ttl_ms=*/40, /*sweep_ms=*/40, /*clients=*/8, /*keys=*/16,
       /*nodes=*/4, /*run_ms=*/250, /*crash_period=*/4},
  };

  exp::table table({"ttl ms", "sweep ms", "crash 1/N", "acquires", "wins",
                    "crashes", "expired", "fenced", "acq/s", "p99 ms",
                    "sec"});
  bench::json_emitter json("svc_churn");
  json.meta_field("seed", static_cast<std::int64_t>(seed));
  std::string acceptance_json;

  for (std::size_t i = 0; i < rows.size(); ++i) {
    const churn_row& row = rows[i];
    const churn_result result = run_row(row, seed + i);
    const svc::service_report& report = result.report;
    table.add_row({std::to_string(row.ttl_ms), std::to_string(row.sweep_ms),
                   row.crash_period == 0
                       ? "never"
                       : "1/" + std::to_string(row.crash_period),
                   std::to_string(report.acquires),
                   std::to_string(report.wins),
                   std::to_string(result.crashes),
                   std::to_string(report.expirations),
                   std::to_string(result.zombie_fenced),
                   exp::fmt_int(result.throughput),
                   exp::fmt(report.acquire_p99_ms, 3),
                   exp::fmt(result.seconds, 2)});
    // Acceptance row: the middle crashing-clients configuration.
    if (row.crash_period != 0 && row.ttl_ms == 40 && row.sweep_ms == 10) {
      std::ostringstream out;
      out << "{\"throughput_acq_per_s\":" << result.throughput
          << ",\"crashes\":" << result.crashes
          << ",\"expirations\":" << report.expirations
          << ",\"zombies_fenced\":" << result.zombie_fenced
          << ",\"all_zombies_fenced\":"
          << (result.zombie_fenced == result.crashes ? "true" : "false")
          << ",\"service\":" << report.to_json() << "}";
      acceptance_json = out.str();
    }
  }

  table.print(std::cout);
  std::cout << "\nEvery crashed lease is reclaimed by the sweeper "
               "(expired == crashes) and every zombie release bounces "
               "off the epoch fence (fenced == crashes). Shorter TTLs "
               "hand crashed keys back sooner, so wins rise as ttl "
               "falls.\n";

  json.table("grid", table);
  if (!acceptance_json.empty()) {
    json.raw("acceptance_crashing_clients", acceptance_json);
  }
  json.write();
  return 0;
}
