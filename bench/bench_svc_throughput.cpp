// E9 — Election-service throughput on real threads.
//
// Load test for elect::svc: C client threads hammer K keys through one
// sharded service (N-node pool, S registry shards). Each operation is a
// try_acquire; winners release immediately, so every key is perpetually
// re-elected and the service is saturated with fresh elections.
//
// The sweep now spans *strategy × contention*: every election strategy
// (full Figure-6 protocol, sifter_pill, doorway_only, and the
// contention-adaptive fast path) runs a 1-client uncontended row — the
// common case of a real lock service, where `adaptive` must win by
// skipping the distributed protocol entirely — the try_acquire
// acceptance row (64 keys × 8 shards × 32 clients; epochs are so short
// here that attempts rarely overlap, so adaptive legitimately keeps
// riding the CAS), and a blocking-handoff row (few keys, every client
// in acquire()/release(), keys continuously held) where overlapping
// attempts push the contention estimate past 1 and `adaptive`
// demonstrably falls back to the distributed protocol (fastpath% < 100,
// msg/acq > 0) while staying no worse than `full`.
//
// Reported per sweep row: aggregate acquire throughput (ops/s), win
// count, fast-path hit rate, p50/p99 acquire latency, messages per
// acquire, and the transport's mailbox-push coalescing factor.
//
// Build & run:  ./build/bench/bench_svc_throughput [--smoke]
// (--smoke shrinks ops per client for CI smoke runs.)
#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "election/strategy.hpp"
#include "exp/table.hpp"
#include "svc/service.hpp"

namespace {

using namespace elect;
using election::strategy_kind;

struct sweep_row {
  strategy_kind strategy = strategy_kind::full;
  int keys = 0;
  int clients = 0;
  int shards = 0;
  int nodes = 8;
  int ops_per_client = 0;
  /// try: independent try_acquire ops (lost acquires are cheap). handoff:
  /// blocking acquire()/release() — keys stay continuously held, so
  /// attempts overlap and the adaptive fallback actually fires.
  bool blocking = false;
  /// Critical-section length for handoff rows. Non-zero matters on few
  /// cores: sub-microsecond epochs fit inside one scheduler timeslice,
  /// so rival attempts never overlap and no row would ever observe
  /// contention. Holding (asleep, core yielded) lets the waiters
  /// register attempts in the held epoch. Handoff acq/s is therefore
  /// dominated by the hold — those rows measure *fallback behaviour*
  /// (fastpath%, msg/acq), not peak throughput.
  int hold_us = 0;
};

struct sweep_result {
  double seconds = 0.0;
  svc::service_report report;
  double throughput = 0.0;
  double coalescing = 1.0;
};

sweep_result run_sweep(const sweep_row& row, std::uint64_t seed) {
  svc::service_config config{.nodes = row.nodes,
                             .shards = row.shards,
                             .seed = seed};
  config.default_strategy = row.strategy;
  svc::service service(std::move(config));
  std::vector<svc::service::session> sessions;
  sessions.reserve(static_cast<std::size_t>(row.clients));
  for (int c = 0; c < row.clients; ++c) sessions.push_back(service.connect());

  std::atomic<bool> go{false};
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(row.clients));
  for (int c = 0; c < row.clients; ++c) {
    clients.emplace_back([&, c] {
      auto& session = sessions[static_cast<std::size_t>(c)];
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int op = 0; op < row.ops_per_client; ++op) {
        // Stride through the keyspace from a per-client offset so every
        // key sees both solo and contended epochs.
        const int k = (c + op) % row.keys;
        const std::string key = "bench/" + std::to_string(k);
        const auto result =
            row.blocking ? session.acquire(key) : session.try_acquire(key);
        if (result.won) {
          if (row.hold_us > 0) {
            std::this_thread::sleep_for(std::chrono::microseconds(row.hold_us));
          }
          session.release(key, result.epoch);
        }
      }
    });
  }

  bench::stopwatch timer;
  go.store(true, std::memory_order_release);
  for (auto& t : clients) t.join();
  const double seconds = timer.seconds();

  sweep_result result;
  result.seconds = seconds;
  result.report = service.report();
  result.throughput =
      static_cast<double>(result.report.acquires) / seconds;
  result.coalescing =
      result.report.mailbox_pushes == 0
          ? 1.0
          : static_cast<double>(result.report.total_messages) /
                static_cast<double>(result.report.mailbox_pushes);
  return result;
}

constexpr strategy_kind kAllStrategies[] = {
    strategy_kind::full, strategy_kind::sifter_pill,
    strategy_kind::doorway_only, strategy_kind::adaptive};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  // Smoke mode (CI): same sweep shape, fewer ops per client.
  const int scale = smoke ? 4 : 1;

  bench::print_header(
      "E9", "Election-service throughput (strategy × contention)",
      "uncontended acquires need no distributed protocol at all (adaptive "
      "fast path); contended acquires pay per-strategy elimination cost, "
      "O(log* k) communicate calls for the full Figure-6 ladder");

  std::vector<sweep_row> rows;
  // Uncontended: 1 client cycling 4 keys — the common case of a real
  // lock service. The acceptance gate compares adaptive vs full here.
  for (const strategy_kind s : kAllStrategies) {
    rows.push_back({s, /*keys=*/4, /*clients=*/1, /*shards=*/2, /*nodes=*/8,
                    /*ops_per_client=*/512 / scale});
  }
  // Moderate contention.
  for (const strategy_kind s : kAllStrategies) {
    rows.push_back({s, /*keys=*/16, /*clients=*/8, /*shards=*/4, /*nodes=*/8,
                    /*ops_per_client=*/64 / scale});
  }
  // Acceptance row: 64 keys × 8 shards × 32 clients, per strategy.
  for (const strategy_kind s : kAllStrategies) {
    rows.push_back({s, /*keys=*/64, /*clients=*/32, /*shards=*/8,
                    /*nodes=*/8, /*ops_per_client=*/32 / scale});
  }
  // Blocking handoff: 16 clients queueing on 4 continuously-held keys
  // (1ms critical sections) — the scenario where the adaptive fallback
  // to the protocol must fire.
  for (const strategy_kind s : kAllStrategies) {
    rows.push_back({s, /*keys=*/4, /*clients=*/16, /*shards=*/2,
                    /*nodes=*/8, /*ops_per_client=*/16 / scale,
                    /*blocking=*/true, /*hold_us=*/1000});
  }

  exp::table table({"strategy", "mode", "keys", "clients", "shards",
                    "acquires", "wins", "acq/s", "fastpath%", "p50 ms",
                    "p99 ms", "msg/acq", "coalesce", "sec"});
  bench::json_emitter json("svc_throughput");

  double uncontended_full = 0.0;
  double uncontended_adaptive = 0.0;
  std::string acceptance_json;
  std::string acceptance_adaptive_json;
  svc::fast_path_report handoff_adaptive_fast_path;
  double handoff_adaptive_throughput = 0.0;
  double handoff_full_throughput = 0.0;

  for (std::size_t i = 0; i < rows.size(); ++i) {
    const sweep_row& row = rows[i];
    const sweep_result result = run_sweep(row, /*seed=*/1 + i);
    const svc::service_report& report = result.report;
    // Share of *acquires* granted by the CAS (not the CAS attempt hit
    // rate): contended adaptive acquires skip the CAS entirely, so this
    // is the number that shows the protocol fallback taking over.
    const double fastpath_pct =
        report.acquires == 0
            ? 0.0
            : 100.0 * static_cast<double>(report.fast_path.hits) /
                  static_cast<double>(report.acquires);
    table.add_row({std::string(election::to_string(row.strategy)),
                   row.blocking ? "handoff" : "try",
                   std::to_string(row.keys), std::to_string(row.clients),
                   std::to_string(row.shards),
                   std::to_string(report.acquires),
                   std::to_string(report.wins),
                   exp::fmt_int(result.throughput),
                   exp::fmt(fastpath_pct, 1),
                   exp::fmt(report.acquire_p50_ms, 3),
                   exp::fmt(report.acquire_p99_ms, 3),
                   exp::fmt(report.messages_per_acquire, 1),
                   exp::fmt(result.coalescing, 2),
                   exp::fmt(result.seconds, 2)});

    const bool uncontended = row.clients == 1;
    if (uncontended && row.strategy == strategy_kind::full) {
      uncontended_full = result.throughput;
    }
    if (uncontended && row.strategy == strategy_kind::adaptive) {
      uncontended_adaptive = result.throughput;
    }
    if (row.blocking && row.strategy == strategy_kind::adaptive) {
      handoff_adaptive_fast_path = report.fast_path;
      handoff_adaptive_throughput = result.throughput;
    }
    if (row.blocking && row.strategy == strategy_kind::full) {
      handoff_full_throughput = result.throughput;
    }
    if (row.keys == 64 && row.clients == 32 && row.shards == 8) {
      std::ostringstream out;
      out << "{\"throughput_acq_per_s\":" << result.throughput
          << ",\"p99_ms\":" << report.acquire_p99_ms
          << ",\"service\":" << report.to_json() << "}";
      if (row.strategy == strategy_kind::full) {
        acceptance_json = out.str();
      } else if (row.strategy == strategy_kind::adaptive) {
        acceptance_adaptive_json = out.str();
      }
    }
  }

  table.print(std::cout);
  const double speedup = uncontended_full == 0.0
                             ? 0.0
                             : uncontended_adaptive / uncontended_full;
  std::cout << "\nuncontended 1-client: full " << exp::fmt_int(uncontended_full)
            << " acq/s vs adaptive " << exp::fmt_int(uncontended_adaptive)
            << " acq/s — " << exp::fmt(speedup, 1)
            << "x (acceptance gate: >= 3x)\n";

  json.table("sweep", table);
  json.field("uncontended_full_acq_per_s", uncontended_full);
  json.field("uncontended_adaptive_acq_per_s", uncontended_adaptive);
  json.field("uncontended_adaptive_speedup", speedup);
  json.field("handoff_full_acq_per_s", handoff_full_throughput);
  json.field("handoff_adaptive_acq_per_s", handoff_adaptive_throughput);
  json.field("handoff_adaptive_fastpath_hit_rate",
             handoff_adaptive_fast_path.hit_rate());
  json.field("handoff_adaptive_fallbacks",
             handoff_adaptive_fast_path.fallbacks);
  if (!acceptance_json.empty()) json.raw("acceptance_64x8x32", acceptance_json);
  if (!acceptance_adaptive_json.empty()) {
    json.raw("acceptance_64x8x32_adaptive", acceptance_adaptive_json);
  }
  json.write();
  // The gate is enforced, not just printed: a regression that erases the
  // fast path's advantage turns the bench (and the CI smoke job) red.
  // 3x leaves two orders of magnitude of headroom over measured ~300-500x,
  // so scheduler noise cannot trip it.
  if (speedup < 3.0) {
    std::cout << "ACCEPTANCE FAILURE: adaptive uncontended speedup "
              << exp::fmt(speedup, 2) << "x < 3x\n";
    return 1;
  }
  return 0;
}
