// E9 — Election-service throughput on real threads.
//
// Load test for elect::svc: C client threads hammer K keys through one
// sharded service (N-node pool, S registry shards). Each operation is a
// try_acquire; winners release immediately, so every key is perpetually
// re-elected and the service is saturated with fresh Figure-6 instances.
//
// Reported per sweep row: aggregate acquire throughput (ops/s), win
// fraction, p50/p99 acquire latency, messages per acquire, and the
// transport's mailbox-push coalescing factor. The acceptance row is
// 64 keys × 8 shards × 32 clients.
//
// Build & run:  ./build/bench/bench_svc_throughput
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "exp/table.hpp"
#include "svc/service.hpp"

namespace {

using namespace elect;

struct sweep_row {
  int keys = 0;
  int clients = 0;
  int shards = 0;
  int nodes = 8;
  int ops_per_client = 0;
};

struct sweep_result {
  double seconds = 0.0;
  svc::service_report report;
  double throughput = 0.0;
  double coalescing = 1.0;
};

sweep_result run_sweep(const sweep_row& row, std::uint64_t seed) {
  svc::service service(svc::service_config{.nodes = row.nodes,
                                           .shards = row.shards,
                                           .seed = seed});
  std::vector<svc::service::session> sessions;
  sessions.reserve(static_cast<std::size_t>(row.clients));
  for (int c = 0; c < row.clients; ++c) sessions.push_back(service.connect());

  std::atomic<bool> go{false};
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(row.clients));
  for (int c = 0; c < row.clients; ++c) {
    clients.emplace_back([&, c] {
      auto& session = sessions[static_cast<std::size_t>(c)];
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int op = 0; op < row.ops_per_client; ++op) {
        // Stride through the keyspace from a per-client offset so every
        // key sees both solo and contended epochs.
        const int k = (c + op) % row.keys;
        const std::string key = "bench/" + std::to_string(k);
        if (session.try_acquire(key).won) session.release(key);
      }
    });
  }

  bench::stopwatch timer;
  go.store(true, std::memory_order_release);
  for (auto& t : clients) t.join();
  const double seconds = timer.seconds();

  sweep_result result;
  result.seconds = seconds;
  result.report = service.report();
  result.throughput =
      static_cast<double>(result.report.acquires) / seconds;
  result.coalescing =
      result.report.mailbox_pushes == 0
          ? 1.0
          : static_cast<double>(result.report.total_messages) /
                static_cast<double>(result.report.mailbox_pushes);
  return result;
}

}  // namespace

int main() {
  bench::print_header(
      "E9", "Election-service throughput (keys × clients × shards)",
      "one leader per (key, epoch) under heavy concurrent load; per-op "
      "cost stays flat as independent instances multiplex over one pool");

  const std::vector<sweep_row> rows = {
      {/*keys=*/8, /*clients=*/4, /*shards=*/2, /*nodes=*/8,
       /*ops_per_client=*/64},
      {/*keys=*/16, /*clients=*/8, /*shards=*/4, /*nodes=*/8,
       /*ops_per_client=*/64},
      {/*keys=*/64, /*clients=*/16, /*shards=*/8, /*nodes=*/8,
       /*ops_per_client=*/48},
      // Acceptance row: 64 keys × 8 shards × 32 clients.
      {/*keys=*/64, /*clients=*/32, /*shards=*/8, /*nodes=*/8,
       /*ops_per_client=*/32},
  };

  exp::table table({"keys", "clients", "shards", "nodes", "acquires",
                    "wins", "acq/s", "p50 ms", "p99 ms", "msg/acq",
                    "coalesce", "sec"});
  bench::json_emitter json("svc_throughput");
  std::string acceptance_json;

  for (std::size_t i = 0; i < rows.size(); ++i) {
    const sweep_row& row = rows[i];
    const sweep_result result = run_sweep(row, /*seed=*/1 + i);
    const svc::service_report& report = result.report;
    table.add_row({std::to_string(row.keys), std::to_string(row.clients),
                   std::to_string(row.shards), std::to_string(row.nodes),
                   std::to_string(report.acquires),
                   std::to_string(report.wins),
                   exp::fmt_int(result.throughput),
                   exp::fmt(report.acquire_p50_ms, 3),
                   exp::fmt(report.acquire_p99_ms, 3),
                   exp::fmt(report.messages_per_acquire, 1),
                   exp::fmt(result.coalescing, 2),
                   exp::fmt(result.seconds, 2)});
    if (row.keys == 64 && row.clients == 32 && row.shards == 8) {
      std::ostringstream out;
      out << "{\"throughput_acq_per_s\":" << result.throughput
          << ",\"p99_ms\":" << report.acquire_p99_ms
          << ",\"service\":" << report.to_json() << "}";
      acceptance_json = out.str();
    }
  }

  table.print(std::cout);

  json.table("sweep", table);
  if (!acceptance_json.empty()) json.raw("acceptance_64x8x32", acceptance_json);
  json.write();
  return 0;
}
