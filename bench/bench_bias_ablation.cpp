// E9 — Bias ablation for plain PoisonPill (§3.2's optimality discussion).
//
// "Setting the probability of flipping 1 to 1/sqrt(n) is provably
// optimal. [...] With a larger probability, more than sqrt(n) processors
// are expected to get a high priority and survive. With a smaller
// probability, at least the first sqrt(n) processors are expected to all
// have low priority and survive." We sweep the bias exponent under the
// sequential adversary and show the survivor minimum sits at 1/sqrt(n).
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "exp/harness.hpp"
#include "exp/table.hpp"

int main() {
  using namespace elect;
  bench::print_header(
      "E9", "PoisonPill coin-bias ablation (sequential adversary)",
      "§3.2: bias 1/sqrt(n) is optimal — larger biases over-populate "
      "high-priority survivors, smaller biases let a long low-priority "
      "prefix survive; there are always Ω(sqrt n) survivors");

  const int n = 121;  // sqrt(n) = 11
  const int trials = 16;
  const std::vector<double> exponents = {0.0, 0.25, 0.5, 0.75, 1.0};

  exp::table t({"bias = n^-e", "e", "bias value", "survivors (mean)",
                "one-flippers (mean)", "zero-flip survivors (mean)"});

  double best = 1e9;
  double best_exponent = -1;
  for (const double e : exponents) {
    const double bias = std::pow(static_cast<double>(n), -e);
    exp::trial_config config;
    config.kind = exp::algo::plain_pp_phase;
    config.n = n;
    config.seed = 1;
    config.adversary = "sequential";
    config.bias = bias;
    const auto aggregate = exp::run_trials(config, trials);
    const double survivors = aggregate.winners.mean();
    if (survivors < best) {
      best = survivors;
      best_exponent = e;
    }
    t.add_row({"n^-" + exp::fmt(e, 2), exp::fmt(e, 2), exp::fmt(bias, 4),
               exp::fmt(survivors, 1),
               exp::fmt(aggregate.one_flippers.mean(), 1),
               exp::fmt(aggregate.zero_flip_survivors.mean(), 1)});
  }
  t.print(std::cout);
  std::cout << "\nMinimum mean survivors at exponent e = "
            << exp::fmt(best_exponent, 2)
            << " (paper: e = 0.5, i.e. bias 1/sqrt(n); survivors there "
               "~ 2*sqrt(n) = "
            << exp::fmt(2.0 * std::sqrt(static_cast<double>(n)), 1)
            << ").\n";
  return 0;
}
