// E3 — Plain PoisonPill survivors per phase (Claims 3.1 / 3.2).
//
// Claim 3.2: O(sqrt n) expected survivors under any strong-adversary
// schedule; the sequential schedule makes this tight. We sweep n and
// measure survivors under the portfolio of adversaries. Every trial also
// re-checks Claim 3.1 (>= 1 survivor).
#include <cstdlib>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "exp/harness.hpp"
#include "exp/table.hpp"

int main() {
  using namespace elect;
  bench::print_header(
      "E3", "plain PoisonPill survivors per phase",
      "Claim 3.1: always >= 1 survivor; Claim 3.2: expected O(sqrt n) "
      "survivors, tight under the sequential schedule");

  const std::vector<int> sizes = {16, 36, 64, 121, 196};
  const std::vector<std::string> adversaries = {"uniform", "round-robin",
                                                "sequential",
                                                "flip-adaptive"};
  const int trials = 8;

  exp::table t({"n", "sqrt n", "uniform", "round-robin", "sequential",
                "flip-adaptive"});
  std::vector<double> xs, sequential_series;

  for (const int n : sizes) {
    std::vector<std::string> row = {std::to_string(n),
                                    exp::fmt(std::sqrt(double(n)), 1)};
    for (const std::string& adversary : adversaries) {
      exp::trial_config config;
      config.kind = exp::algo::plain_pp_phase;
      config.n = n;
      config.seed = 1;
      config.adversary = adversary;
      const auto aggregate = exp::run_trials(config, trials);
      if (aggregate.winners.min() < 1.0) {
        std::cerr << "CLAIM 3.1 VIOLATION at n=" << n << " adv=" << adversary
                  << "\n";
        return EXIT_FAILURE;
      }
      row.push_back(exp::fmt(aggregate.winners.mean(), 1));
      if (adversary == "sequential") {
        xs.push_back(n);
        sequential_series.push_back(aggregate.winners.mean());
      }
    }
    t.add_row(row);
  }
  t.print(std::cout);
  std::cout << "\n";
  bench::print_fit("survivors under sequential adversary", xs,
                   sequential_series);
  std::cout << "\nExpected shape: all columns track sqrt(n) (the "
               "sequential column is the tight Θ(sqrt n) case; the "
               "flip-adaptive attack buys the adversary nothing thanks to "
               "the commit stage — contrast with E10).\n";
  return 0;
}
