// E10 — Why the poison pill is needed: naive sifting vs the adaptive
// adversary (paper §1, "Techniques").
//
// A commit-less sifting round sheds participants under benign schedules
// but is defeated completely by an adversary that inspects coin flips:
// it freezes the 1-flippers and runs the 0-flippers to completion, so
// they see no 1 and all survive. The identical adversary gains nothing
// against PoisonPill, whose commit stage replicates the evidence before
// the flip is visible — the catch-22 of Claim 3.2's proof.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "exp/harness.hpp"
#include "exp/table.hpp"

int main() {
  using namespace elect;
  bench::print_header(
      "E10", "naive sifter vs PoisonPill under the flip-adaptive adversary",
      "§1: an adaptive adversary forces ~all survivors on a naive sifter; "
      "the poison-pill commit stage removes that power");

  const std::vector<int> sizes = {16, 64, 144};
  const int trials = 16;

  exp::table t({"n", "sqrt n", "sifter: uniform", "sifter: flip-adaptive",
                "poisonpill: uniform", "poisonpill: flip-adaptive"});

  for (const int n : sizes) {
    const auto survivors = [&](exp::algo kind, const std::string& adversary) {
      exp::trial_config config;
      config.kind = kind;
      config.n = n;
      config.seed = 1;
      config.adversary = adversary;
      return exp::run_trials(config, trials).winners.mean();
    };
    t.add_row({std::to_string(n),
               exp::fmt(std::sqrt(static_cast<double>(n)), 1),
               exp::fmt(survivors(exp::algo::naive_sifter, "uniform"), 1),
               exp::fmt(survivors(exp::algo::naive_sifter, "flip-adaptive"),
                        1),
               exp::fmt(survivors(exp::algo::plain_pp_phase, "uniform"), 1),
               exp::fmt(
                   survivors(exp::algo::plain_pp_phase, "flip-adaptive"),
                   1)});
  }
  t.print(std::cout);
  std::cout << "\nExpected shape: the 'sifter: flip-adaptive' column "
               "tracks n (attack succeeds — nearly everyone survives); "
               "every other column tracks sqrt(n).\n";
  return 0;
}
