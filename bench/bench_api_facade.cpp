// Facade-overhead bench for elect::api: what does the one-API layer
// cost over the raw surfaces it wraps?
//
// The unit of work is one acquire/release pair on a key private to the
// worker (adaptive strategy => registry CAS fast path), measured four
// ways:
//
//   raw-local    svc::service::session directly (the PR-1 surface)
//   api-local    api::client over the same service (lease construction,
//                heartbeat registration, RAII release)
//   raw-remote   net::client over a loopback elect_server
//   api-remote   api::client over the same server
//
// The local rows expose the facade's constant overhead (two shared_ptr
// allocations + one mutex hop per pair) against a sub-microsecond
// baseline; the remote rows show it drowning in one round-trip of
// loopback TCP, which is the regime the facade is for.
//
// Acceptance gate (enforced): api-local must stay within 8x of
// raw-local, and api-remote within 1.6x of raw-remote (generous: the
// absolute cost is tens of microseconds against a syscall-bound
// round-trip; the gate exists to catch accidental O(held-leases) work
// or extra round-trips sneaking into the lease path).
//
// Build & run:  ./build/bench/bench_api_facade [--smoke]
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "api/client.hpp"
#include "bench_util.hpp"
#include "exp/table.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "svc/service.hpp"

namespace {

using namespace elect;

svc::service_config tuned_config() {
  svc::service_config config{.nodes = 4, .shards = 4, .seed = 5};
  config.default_strategy = election::strategy_kind::adaptive;
  // A long TTL: leases behave like production (expiring, renewable) but
  // the heartbeat never fires inside the measurement window, so the
  // numbers isolate the acquire/release path itself.
  config.lease_ttl_ms = 60'000;
  config.sweep_interval_ms = 15'000;
  return config;
}

double pairs_per_second(std::uint64_t pairs, double seconds) {
  return seconds <= 0.0 ? 0.0 : static_cast<double>(pairs) / seconds;
}

double run_raw_local(svc::service& service, const std::string& key,
                     std::uint64_t pairs) {
  auto session = service.connect();
  const bench::stopwatch clock;
  for (std::uint64_t i = 0; i < pairs; ++i) {
    const auto won = session.try_acquire(key);
    ELECT_CHECK_MSG(won.won, "private key must be won");
    ELECT_CHECK(session.release(key, won.epoch) == svc::lease_status::ok);
  }
  return pairs_per_second(pairs, clock.seconds());
}

double run_api(api::client& client, const std::string& key,
               std::uint64_t pairs) {
  const bench::stopwatch clock;
  for (std::uint64_t i = 0; i < pairs; ++i) {
    api::acquired won = client.try_acquire(key);
    ELECT_CHECK_MSG(won.won(), "private key must be won");
    // RAII release at end of iteration — the facade's whole point; the
    // explicit call keeps the verdict checked.
    ELECT_CHECK(won.lease.release() == api::lease_status::ok);
  }
  return pairs_per_second(pairs, clock.seconds());
}

double run_raw_remote(const std::string& host, std::uint16_t port,
                      const std::string& key, std::uint64_t pairs) {
  net::client client(host, port);
  ELECT_CHECK_MSG(client.connected(), "loopback connect failed");
  const bench::stopwatch clock;
  for (std::uint64_t i = 0; i < pairs; ++i) {
    const auto won = client.try_acquire(key);
    ELECT_CHECK_MSG(won.won, "private key must be won");
    ELECT_CHECK(client.release(key, won.epoch) == svc::lease_status::ok);
  }
  return pairs_per_second(pairs, clock.seconds());
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::uint64_t local_pairs = smoke ? 20'000 : 200'000;
  const std::uint64_t remote_pairs = smoke ? 2'000 : 20'000;

  bench::print_header("API-FACADE", "elect::api overhead vs raw surfaces",
                      "facade cost must be constant and transport-bound, "
                      "not lease-count-bound");

  svc::service service(tuned_config());
  net::server server(service, net::server_config{});
  ELECT_CHECK_MSG(server.listening(), "loopback bind failed");

  // Distinct keys per mode keep every epoch uncontended and every
  // acquire on the CAS fast path.
  const double raw_local =
      run_raw_local(service, "bench/raw-local", local_pairs);
  double api_local = 0.0;
  {
    api::client client(service);
    api_local = run_api(client, "bench/api-local", local_pairs);
  }
  const double raw_remote =
      run_raw_remote("127.0.0.1", server.port(), "bench/raw-remote",
                     remote_pairs);
  double api_remote = 0.0;
  {
    api::client client("127.0.0.1", server.port());
    ELECT_CHECK_MSG(client.connected(), "loopback connect failed");
    api_remote = run_api(client, "bench/api-remote", remote_pairs);
  }

  exp::table table({"mode", "pairs/s", "vs raw"});
  table.add_row({"raw-local", bench::exp_fmt(raw_local), "1.000"});
  table.add_row({"api-local", bench::exp_fmt(api_local),
                 bench::exp_fmt(raw_local / api_local)});
  table.add_row({"raw-remote", bench::exp_fmt(raw_remote), "1.000"});
  table.add_row({"api-remote", bench::exp_fmt(api_remote),
                 bench::exp_fmt(raw_remote / api_remote)});
  table.print(std::cout);

  bench::json_emitter json("api_facade");
  json.meta_field("smoke", smoke)
      .meta_field("local_pairs", static_cast<std::int64_t>(local_pairs))
      .meta_field("remote_pairs", static_cast<std::int64_t>(remote_pairs))
      .field("raw_local_pairs_per_s", raw_local)
      .field("api_local_pairs_per_s", api_local)
      .field("raw_remote_pairs_per_s", raw_remote)
      .field("api_remote_pairs_per_s", api_remote)
      .field("local_overhead_x", raw_local / api_local)
      .field("remote_overhead_x", raw_remote / api_remote);
  json.write();

  const double local_x = raw_local / api_local;
  const double remote_x = raw_remote / api_remote;
  std::printf("facade overhead: %.2fx local, %.2fx remote\n", local_x,
              remote_x);
  if (local_x > 8.0) {
    std::printf("FAIL: api-local more than 8x slower than raw-local\n");
    return 1;
  }
  if (remote_x > 1.6) {
    std::printf("FAIL: api-remote more than 1.6x slower than raw-remote\n");
    return 1;
  }
  return 0;
}
