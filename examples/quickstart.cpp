// Quickstart: the election service through elect::api — acquire a
// leadership lease, watch the leader change, hand off, all in ~40
// lines of client code.
//
// api::client is the one client surface for the whole system: the same
// calls (and the same semantics) work against an in-process
// svc::service, as here, or against a remote elect_server over TCP —
// construct with api::client("host:port") and nothing else changes.
// Leadership is RAII: the returned lease carries the fencing epoch
// internally, a heartbeat renews it at TTL/3, and leaving scope
// releases it.
//
// (The paper's Figure-6 protocol itself, on the simulated asynchronous
// network with pluggable adversaries, is demonstrated in
// examples/adversary_lab.cpp and examples/cluster_coordinator.cpp.)
//
// Build & run:  ./build/examples/quickstart
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "api/client.hpp"
#include "common/check.hpp"
#include "svc/service.hpp"

int main() {
  using namespace elect;
  const std::string key = "clusters/prod/leader";

  // The service: 4 pool nodes, leases of 2s (heartbeat-renewed by
  // clients), adaptive strategy — uncontended acquires skip the
  // distributed protocol entirely.
  svc::service_config config{.nodes = 4, .shards = 2, .seed = 2015};
  config.lease_ttl_ms = 2000;
  config.default_strategy = election::strategy_kind::adaptive;
  ELECT_CHECK(!config.validate().has_value());
  svc::service service(std::move(config));

  // One client per participant, exactly like one session per
  // participant.
  api::client alice(service);
  api::client bob(service);
  api::client observer(service);

  // The observer watches leadership changes — elected / released /
  // expired, delivered (asynchronously, on the watch hub's notifier
  // thread) within the lease TTL + sweep bound.
  std::atomic<int> transitions{0};
  api::subscription sub =
      observer.watch(key, [&](const api::watch_event& e) {
        transitions.fetch_add(1);
        std::printf("  [watch] %s: %s at epoch %llu\n", e.key.c_str(),
                    std::string(svc::to_string(e.kind)).c_str(),
                    static_cast<unsigned long long>(e.epoch));
      });

  std::uint64_t first_epoch = 0;
  {
    api::acquired held = alice.acquire(key);
    ELECT_CHECK_MSG(held.won(), "uncontended acquire must win");
    first_epoch = held.epoch;
    std::printf("alice leads at epoch %llu (fast path: %s); lease "
                "deadline is heartbeat-managed\n",
                static_cast<unsigned long long>(held.epoch),
                held.fast_path ? "yes" : "no");
    ELECT_CHECK(!bob.try_acquire(key).won());  // unique winner per epoch
    // `held` goes out of scope: RAII release — no epoch bookkeeping,
    // no explicit call, no leaked leadership on early returns.
  }

  api::acquired takeover = bob.acquire(key);
  ELECT_CHECK_MSG(takeover.won(), "handoff after release must win");
  ELECT_CHECK(takeover.epoch > first_epoch);
  std::printf("bob takes over at epoch %llu\n",
              static_cast<unsigned long long>(takeover.epoch));
  ELECT_CHECK(takeover.lease.release() == api::lease_status::ok);

  // Two elections and two releases happened: wait for all four events
  // (delivery is asynchronous but promptly bounded).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (transitions.load() < 4 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  sub.cancel();
  std::printf("observer saw %d leader transitions\n", transitions.load());
  ELECT_CHECK_MSG(transitions.load() >= 4,
                  "watch must observe both elections and both releases");
  return 0;
}
