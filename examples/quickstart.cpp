// Quickstart: elect a leader among 16 simulated processors.
//
// Demonstrates the three steps every simulator-based program follows:
//   1. create a kernel (the asynchronous network + scheduler) with an
//      adversary strategy;
//   2. attach the protocol coroutine to each participating processor;
//   3. run, then read results and complexity metrics.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "adversary/basic.hpp"
#include "election/leader_elect.hpp"
#include "engine/node.hpp"
#include "sim/kernel.hpp"

int main() {
  using namespace elect;
  constexpr int n = 16;

  // A uniformly random scheduler; see adversary/ for hostile strategies.
  adversary::uniform_random adversary;
  sim::kernel kernel(sim::kernel_config{.n = n, .seed = 2015}, adversary);

  // Everyone participates. leader_elect is the paper's Figure-6
  // algorithm: doorway, then rounds of PreRound + HeterogeneousPoisonPill.
  for (process_id pid = 0; pid < n; ++pid) {
    kernel.attach(pid,
                  engine::erase_result(election::leader_elect(kernel.node_at(pid))));
  }

  const auto run = kernel.run();
  std::printf("run completed: %s after %llu events\n",
              run.completed ? "yes" : "no",
              static_cast<unsigned long long>(run.events));

  for (process_id pid = 0; pid < n; ++pid) {
    const auto outcome = static_cast<election::tas_result>(kernel.result_of(pid));
    std::printf("  processor %2d: %s (reached round %lld)\n", pid,
                election::to_string(outcome).c_str(),
                static_cast<long long>(kernel.node_at(pid).probe().round));
  }

  const auto& metrics = kernel.metrics();
  std::printf("\ncomplexity (paper: O(log* k) time, O(kn) messages):\n");
  std::printf("  max communicate calls by any processor: %llu\n",
              static_cast<unsigned long long>(metrics.max_communicate_calls()));
  std::printf("  total messages: %llu (%.1f per processor pair)\n",
              static_cast<unsigned long long>(metrics.total_messages()),
              static_cast<double>(metrics.total_messages()) / (n * n));
  std::printf("  wire bytes: %llu\n",
              static_cast<unsigned long long>(metrics.wire_bytes));
  return 0;
}
