// restore_fence — the two halves of the snapshot/restore fencing story,
// as a scriptable binary (CI's examples-smoke drives it).
//
//   ./build/examples/restore_fence --hold 127.0.0.1:7400 locks/demo
//       acquire the key and stay connected: prints "held epoch=E" and
//       sleeps until killed. The live connection is what keeps the
//       lease out of the disconnect-reclaim path while the server
//       snapshots it.
//
//   ./build/examples/restore_fence --verify 127.0.0.1:7400 locks/demo E
//       the post-restore check: a fenced release with the pre-restart
//       epoch E must answer stale_epoch (the restore bumped every
//       restored key), and a fresh acquire must then win a newer epoch.
//       Exits 0 only when both hold.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "net/client.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: restore_fence --hold <host:port> <key>\n"
               "       restore_fence --verify <host:port> <key> <epoch>\n");
  return 2;
}

bool split_endpoint(const std::string& endpoint, std::string& host,
                    std::uint16_t& port) {
  const std::size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon + 1 >= endpoint.size()) {
    return false;
  }
  host = endpoint.substr(0, colon);
  port = static_cast<std::uint16_t>(
      std::atoi(endpoint.c_str() + colon + 1));
  return port != 0;
}

int run_hold(const std::string& host, std::uint16_t port,
             const std::string& key) {
  elect::net::client client(host, port);
  if (!client.connected()) {
    std::fprintf(stderr, "connect to %s:%u failed\n", host.c_str(), port);
    return 1;
  }
  const elect::svc::acquire_result r = client.try_acquire(key);
  if (!r.won) {
    std::fprintf(stderr, "acquire of %s lost\n", key.c_str());
    return 1;
  }
  std::printf("held epoch=%llu\n", static_cast<unsigned long long>(r.epoch));
  std::fflush(stdout);
  // Stay connected (and silent) until killed: the smoke test SIGKILLs
  // the server out from under this process, then kills it too.
  for (;;) usleep(200 * 1000);
}

int run_verify(const std::string& host, std::uint16_t port,
               const std::string& key, std::uint64_t old_epoch) {
  elect::net::client client(host, port);
  if (!client.connected()) {
    std::fprintf(stderr, "connect to %s:%u failed\n", host.c_str(), port);
    return 1;
  }
  const elect::svc::lease_status fenced = client.release(key, old_epoch);
  if (fenced != elect::svc::lease_status::stale_epoch) {
    std::fprintf(stderr,
                 "expected stale_epoch for pre-restart epoch %llu, got %d\n",
                 static_cast<unsigned long long>(old_epoch),
                 static_cast<int>(fenced));
    return 1;
  }
  const elect::svc::acquire_result r = client.try_acquire(key);
  if (!r.won || r.epoch <= old_epoch) {
    std::fprintf(stderr, "re-acquire failed (won=%d epoch=%llu)\n",
                 r.won ? 1 : 0,
                 static_cast<unsigned long long>(r.epoch));
    return 1;
  }
  std::printf("fenced epoch=%llu reacquired epoch=%llu\n",
              static_cast<unsigned long long>(old_epoch),
              static_cast<unsigned long long>(r.epoch));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) return usage();
  std::string host;
  std::uint16_t port = 0;
  if (!split_endpoint(argv[2], host, port)) return usage();
  const std::string key = argv[3];
  if (std::strcmp(argv[1], "--hold") == 0) {
    return run_hold(host, port, key);
  }
  if (std::strcmp(argv[1], "--verify") == 0 && argc >= 5) {
    return run_verify(host, port, key,
                      static_cast<std::uint64_t>(std::atoll(argv[4])));
  }
  return usage();
}
