// elect_chaos — seeded chaos runner over the real svc + net + cmd
// stacks.
//
// The run launches a real elect_server (fork/exec, journaling events
// and snapshotting its command log), puts the chaos::nemesis proxy in
// front of it, and drives N worker threads through the proxy doing
// acquire/renew/release/watch churn. A seed-derived plan of fault
// phases (drop, duplicate, delay, dribble, sever, group partitions,
// plus kill -9 + --restore restarts) runs against them; every worker
// op lands in a shared history, and chaos::check validates the merged
// histories plus the per-incarnation journals against the service's
// safety contract (unique leader per (key, epoch), monotonic epochs,
// real-time order, fenced zombies, ordered watch streams).
//
//   ./build/examples/elect_chaos --seed 7
//   ./build/examples/elect_chaos --seed 7 --smoke     # CI budget (~4s)
//   ./build/examples/elect_chaos --replay out/trace   # rerun a failure
//   ./build/examples/elect_chaos --plant-fence-bug    # expects a catch
//   ./build/examples/elect_chaos --cluster 3 --seed 7 # replicated mode
//
// --cluster N forks an N-member replicated cluster (elect_server
// --cluster), one nemesis proxy in front of each member, and workers
// holding multi-endpoint clients that chase not_primary redirects.
// Every kill phase becomes kill-the-PRIMARY: SIGKILL the member
// currently holding the term mid-churn, let the survivors elect and
// fence, then respawn the victim as a follower (durable vote state, so
// a respawn cannot double-vote its old term). The checker rules R1-R5
// run unchanged over the merged client histories — the authoritative
// evidence; member journals are kept as artifacts but not fed to the
// checker, since R2's incarnation ordering is defined for one process,
// not a fleet of replicas journaling the same replayed grants.
//
// Every run writes artifacts to --dir (default chaos_out): the trace
// (replayable plan), histories.jsonl, per-incarnation journals and
// server logs, and report.txt. Exit 0 = checker green (or, under
// --plant-fence-bug, the planted bug was caught); 1 = safety violation
// (or a planted bug NOT caught); 2 = usage/setup error.
//
// --plant-fence-bug runs the server with --fence-bump 1: restored
// epochs are fenced by only +1, so epochs granted after the last
// snapshot and before the kill can be re-granted after the restore —
// a real double-grant the checker must convict (R1/R2/R3).

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "chaos/checker.hpp"
#include "chaos/history.hpp"
#include "chaos/nemesis.hpp"
#include "chaos/schedule.hpp"
#include "common/rng.hpp"
#include "net/client.hpp"

namespace {

using namespace elect;

std::chrono::steady_clock::time_point run_epoch;

std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - run_epoch)
          .count());
}

std::uint16_t free_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return 0;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  std::uint16_t port = 0;
  socklen_t len = sizeof addr;
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) == 0 &&
      ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port = ntohs(addr.sin_port);
  }
  ::close(fd);
  return port;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return "";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// The managed elect_server child process: spawn, kill -9, restart
/// with --restore, per-incarnation journal and log files.
class server_process {
 public:
  server_process(std::string binary, std::string dir, std::uint16_t port,
                 std::uint64_t fence_bump)
      : binary_(std::move(binary)),
        dir_(std::move(dir)),
        port_(port),
        fence_bump_(fence_bump) {}

  ~server_process() {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      (void)::waitpid(pid_, nullptr, 0);
    }
  }

  [[nodiscard]] int incarnation() const { return incarnation_; }
  [[nodiscard]] std::string journal_path(int incarnation) const {
    return dir_ + "/journal." + std::to_string(incarnation) + ".jsonl";
  }
  [[nodiscard]] std::string snapshot_path() const {
    return dir_ + "/state.elsn";
  }

  /// Spawn (or respawn) the server. Restores from the snapshot when one
  /// exists — which, after the first kill -9, is exactly the crash-
  /// restart story the harness is here to test.
  bool spawn(std::uint64_t snapshot_interval_ms) {
    const bool restore = ::access(snapshot_path().c_str(), R_OK) == 0;
    std::vector<std::string> args = {
        binary_,
        "--port", std::to_string(port_),
        "--shards", "4",
        "--ttl-ms", "300",
        "--admin", "on",
        "--journal", journal_path(incarnation_),
        "--snapshot", snapshot_path(),
        "--snapshot-interval-ms", std::to_string(snapshot_interval_ms),
        "--fence-bump", std::to_string(fence_bump_),
    };
    if (restore) {
      args.push_back("--restore");
      args.push_back(snapshot_path());
    }
    const pid_t pid = ::fork();
    if (pid < 0) return false;
    if (pid == 0) {
      const std::string log =
          dir_ + "/server." + std::to_string(incarnation_) + ".log";
      const int fd = ::open(log.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (fd >= 0) {
        ::dup2(fd, STDOUT_FILENO);
        ::dup2(fd, STDERR_FILENO);
        ::close(fd);
      }
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      ::execv(binary_.c_str(), argv.data());
      std::_Exit(127);
    }
    pid_ = pid;
    return wait_ready();
  }

  /// kill -9 and reap; the next spawn() is a new incarnation restoring
  /// from whatever snapshot survived.
  void kill9() {
    if (pid_ <= 0) return;
    ::kill(pid_, SIGKILL);
    (void)::waitpid(pid_, nullptr, 0);
    pid_ = -1;
    incarnation_++;
  }

  /// Let the journal flusher drain, then stop. Called once at run end;
  /// SIGTERM first so a graceful shutdown can flush, SIGKILL as the
  /// backstop.
  void stop() {
    if (pid_ <= 0) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    ::kill(pid_, SIGTERM);
    for (int i = 0; i < 20; ++i) {
      if (::waitpid(pid_, nullptr, WNOHANG) == pid_) {
        pid_ = -1;
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    ::kill(pid_, SIGKILL);
    (void)::waitpid(pid_, nullptr, 0);
    pid_ = -1;
  }

 private:
  bool wait_ready() {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(8);
    while (std::chrono::steady_clock::now() < deadline) {
      net::client probe("127.0.0.1", port_);
      if (probe.connected()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    return false;
  }

  std::string binary_;
  std::string dir_;
  std::uint16_t port_ = 0;
  std::uint64_t fence_bump_ = 1;
  pid_t pid_ = -1;
  int incarnation_ = 0;
};

/// An N-member replicated cluster of elect_server children. Members
/// keep fixed ports (the --cluster list all of them agree on) and
/// durable vote state, so a killed member respawns into the same seat
/// as a follower and catches up over the peer channel.
class cluster_fleet {
 public:
  cluster_fleet(std::string binary, std::string dir,
                std::vector<std::uint16_t> ports, std::uint64_t fence_bump)
      : binary_(std::move(binary)),
        dir_(std::move(dir)),
        ports_(std::move(ports)),
        fence_bump_(fence_bump),
        pids_(ports_.size(), -1),
        incarnations_(ports_.size(), 0) {
    for (std::size_t i = 0; i < ports_.size(); ++i) {
      if (!members_.empty()) members_ += ",";
      members_ += "127.0.0.1:" + std::to_string(ports_[i]);
    }
  }

  ~cluster_fleet() {
    for (std::size_t i = 0; i < pids_.size(); ++i) {
      if (pids_[i] > 0) {
        ::kill(pids_[i], SIGKILL);
        (void)::waitpid(pids_[i], nullptr, 0);
      }
    }
  }

  [[nodiscard]] int size() const { return static_cast<int>(ports_.size()); }
  [[nodiscard]] std::uint16_t port(int member) const {
    return ports_[static_cast<std::size_t>(member)];
  }
  [[nodiscard]] const std::string& members_csv() const { return members_; }
  [[nodiscard]] std::string journal_path(int member, int incarnation) const {
    return dir_ + "/journal.m" + std::to_string(member) + "." +
           std::to_string(incarnation) + ".jsonl";
  }
  [[nodiscard]] int incarnation(int member) const {
    return incarnations_[static_cast<std::size_t>(member)];
  }

  bool spawn(int member) {
    const auto idx = static_cast<std::size_t>(member);
    const std::string votes = dir_ + "/votes-m" + std::to_string(member);
    (void)::mkdir(votes.c_str(), 0755);
    std::vector<std::string> args = {
        binary_,
        "--cluster", members_,
        "--cluster-self", std::to_string(member),
        "--cluster-dir", votes,
        "--shards", "4",
        "--ttl-ms", "300",
        "--admin", "on",
        "--journal", journal_path(member, incarnations_[idx]),
        "--fence-bump", std::to_string(fence_bump_),
    };
    const pid_t pid = ::fork();
    if (pid < 0) return false;
    if (pid == 0) {
      const std::string log = dir_ + "/server.m" + std::to_string(member) +
                              "." + std::to_string(incarnations_[idx]) +
                              ".log";
      const int fd = ::open(log.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (fd >= 0) {
        ::dup2(fd, STDOUT_FILENO);
        ::dup2(fd, STDERR_FILENO);
        ::close(fd);
      }
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      ::execv(binary_.c_str(), argv.data());
      std::_Exit(127);
    }
    pids_[idx] = pid;
    return wait_ready(member);
  }

  bool spawn_all() {
    for (int i = 0; i < size(); ++i) {
      if (!spawn(i)) return false;
    }
    return true;
  }

  void kill9(int member) {
    const auto idx = static_cast<std::size_t>(member);
    if (pids_[idx] <= 0) return;
    ::kill(pids_[idx], SIGKILL);
    (void)::waitpid(pids_[idx], nullptr, 0);
    pids_[idx] = -1;
    incarnations_[idx]++;
  }

  /// Ask each live member who it thinks it is; the one answering
  /// "role":"primary" for itself is the victim a kill phase wants.
  /// -1 while the cluster is mid-election (or unreachable).
  [[nodiscard]] int find_primary() const {
    for (int m = 0; m < size(); ++m) {
      if (pids_[static_cast<std::size_t>(m)] <= 0) continue;
      net::client probe("127.0.0.1", port(m));
      if (!probe.connected()) continue;
      const auto status = probe.admin(net::wire::op::admin_cluster_status);
      if (!status.has_value() ||
          status->result != net::wire::status::ok) {
        continue;
      }
      if (status->body.find("\"role\":\"primary\"") != std::string::npos) {
        return m;
      }
    }
    return -1;
  }

  /// Bounded wait for a primary to exist — a kill phase should aim at
  /// a real primary, not fire into an election.
  [[nodiscard]] int await_primary(std::uint64_t limit_ms) const {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(limit_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      const int p = find_primary();
      if (p >= 0) return p;
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    return -1;
  }

  void stop_all() {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    for (std::size_t i = 0; i < pids_.size(); ++i) {
      if (pids_[i] <= 0) continue;
      ::kill(pids_[i], SIGTERM);
    }
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(2);
    for (std::size_t i = 0; i < pids_.size(); ++i) {
      if (pids_[i] <= 0) continue;
      while (std::chrono::steady_clock::now() < deadline) {
        if (::waitpid(pids_[i], nullptr, WNOHANG) == pids_[i]) {
          pids_[i] = -1;
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
      if (pids_[i] > 0) {
        ::kill(pids_[i], SIGKILL);
        (void)::waitpid(pids_[i], nullptr, 0);
        pids_[i] = -1;
      }
    }
  }

 private:
  bool wait_ready(int member) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(8);
    while (std::chrono::steady_clock::now() < deadline) {
      net::client probe("127.0.0.1", port(member));
      if (probe.connected()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    return false;
  }

  std::string binary_;
  std::string dir_;
  std::vector<std::uint16_t> ports_;
  std::uint64_t fence_bump_ = 1;
  std::string members_;
  std::vector<pid_t> pids_;
  std::vector<int> incarnations_;
};

chaos::outcome map_acquire(const svc::acquire_result& r) {
  if (r.won) return chaos::outcome::ok;
  if (r.connection_lost) return chaos::outcome::connection_lost;
  if (r.timed_out) return chaos::outcome::timed_out;
  if (r.rejected) return chaos::outcome::rejected;
  return chaos::outcome::lost;
}

chaos::outcome map_lease(svc::lease_status s) {
  switch (s) {
    case svc::lease_status::ok: return chaos::outcome::ok;
    case svc::lease_status::stale_epoch: return chaos::outcome::stale_epoch;
    case svc::lease_status::not_leader: return chaos::outcome::not_leader;
    case svc::lease_status::connection_lost:
      return chaos::outcome::connection_lost;
  }
  return chaos::outcome::rejected;
}

struct worker_config {
  int id = 0;
  std::uint64_t seed = 1;
  std::uint16_t nemesis_port = 0;
  /// Cluster mode: "host:port,host:port,..." of every member's nemesis
  /// front. Non-empty wins over nemesis_port — the client chases
  /// not_primary redirects across the list.
  std::string endpoints;
  int keys = 4;
  std::uint64_t acquire_timeout_ms = 80;
};

/// One churn worker: reconnect through the nemesis as needed, watch one
/// key, and loop try_acquire_for -> renew* -> release, recording every
/// op. Connection loss (the nemesis severing a tainted or partitioned
/// pair) is recovered by building a fresh client.
void worker_main(const worker_config& config, chaos::collector* sink,
                 const std::atomic<bool>* stop) {
  rng_stream rng(config.seed, {0x776f726bULL /* "work" */,
                               static_cast<std::uint64_t>(config.id)});
  std::unique_ptr<net::client> client;
  const std::string watch_key =
      "key-" + std::to_string(config.id % config.keys);

  while (!stop->load(std::memory_order_relaxed)) {
    if (client == nullptr || !client->connected()) {
      client.reset();
      client = config.endpoints.empty()
                   ? std::make_unique<net::client>("127.0.0.1",
                                                   config.nemesis_port)
                   : std::make_unique<net::client>(config.endpoints);
      if (!client->connected()) {
        client.reset();
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        continue;
      }
      // Re-anchor the watch on every new connection; events record
      // straight into the shared history.
      const int worker_id = config.id;
      (void)client->watch(watch_key, [sink, worker_id,
                                      watch_key](const svc::watch_event& e) {
        chaos::record r;
        r.start_us = r.end_us = now_us();
        r.worker = worker_id;
        r.op = chaos::op_kind::watch_event;
        r.result = chaos::outcome::ok;
        r.key = watch_key;
        r.epoch = e.epoch;
        r.transition = static_cast<std::uint8_t>(e.kind);
        r.session = e.session;
        sink->add(r);
      });
    }

    const std::string key =
        "key-" + std::to_string(rng.below(static_cast<std::uint64_t>(
                     config.keys)));
    chaos::record acq;
    acq.worker = config.id;
    acq.op = chaos::op_kind::acquire;
    acq.key = key;
    acq.start_us = now_us();
    const svc::acquire_result won = client->try_acquire_for(
        key, std::chrono::milliseconds(config.acquire_timeout_ms));
    acq.end_us = now_us();
    acq.result = map_acquire(won);
    acq.epoch = won.epoch;
    sink->add(acq);

    if (won.won) {
      const int renews = static_cast<int>(rng.between(0, 2));
      for (int i = 0; i < renews; ++i) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(rng.between(2, 10)));
        chaos::record ren;
        ren.worker = config.id;
        ren.op = chaos::op_kind::renew;
        ren.key = key;
        ren.epoch = won.epoch;
        ren.start_us = now_us();
        ren.result = map_lease(client->renew(key, won.epoch));
        ren.end_us = now_us();
        sink->add(ren);
        if (ren.result != chaos::outcome::ok) break;
      }
      chaos::record rel;
      rel.worker = config.id;
      rel.op = chaos::op_kind::release;
      rel.key = key;
      rel.epoch = won.epoch;
      rel.start_us = now_us();
      rel.result = map_lease(client->release(key, won.epoch));
      rel.end_us = now_us();
      sink->add(rel);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(rng.between(1, 4)));
  }
}

/// The replicated-cluster run: N members, one nemesis per member,
/// kill phases aimed at the current primary. Returns the process exit
/// code (0 green, 1 violation, 2 setup failure).
int run_cluster(const chaos::plan& plan, const std::string& dir,
                std::uint64_t seed, int cluster_size, int workers, int keys,
                bool smoke, const std::string& server_bin) {
  std::vector<std::uint16_t> ports;
  for (int i = 0; i < cluster_size; ++i) {
    const std::uint16_t p = free_port();
    if (p == 0) {
      std::fprintf(stderr, "cannot allocate member ports\n");
      return 2;
    }
    ports.push_back(p);
  }
  cluster_fleet fleet(server_bin, dir, ports, 1ull << 20);
  if (!fleet.spawn_all()) {
    std::fprintf(stderr, "cannot start the %d-member cluster\n", cluster_size);
    return 2;
  }

  // One nemesis in front of each member; peer traffic between members
  // stays direct (member ports), so replication survives client-side
  // fault policies and the kill phases are the cluster-level nemesis.
  std::vector<std::unique_ptr<chaos::nemesis>> nemeses;
  std::string endpoints;
  for (int m = 0; m < cluster_size; ++m) {
    chaos::nemesis_config nc;
    nc.upstream_port = fleet.port(m);
    nc.seed = seed ^ (0x6E656D00ull + static_cast<std::uint64_t>(m));
    auto nem = std::make_unique<chaos::nemesis>(nc);
    if (!nem->running()) {
      std::fprintf(stderr, "cannot start nemesis %d\n", m);
      return 2;
    }
    if (!endpoints.empty()) endpoints += ",";
    endpoints += "127.0.0.1:" + std::to_string(nem->port());
    nemeses.push_back(std::move(nem));
  }

  const int first_primary = fleet.await_primary(8000);
  if (first_primary < 0) {
    std::fprintf(stderr, "no primary emerged from the initial election\n");
    return 2;
  }
  std::printf(
      "chaos seed %llu: %d-member cluster (%s), primary m%d, %d workers, "
      "%d keys, %zu phases%s\n",
      static_cast<unsigned long long>(seed), cluster_size,
      fleet.members_csv().c_str(), first_primary, workers, keys,
      plan.phases.size(), smoke ? " [smoke]" : "");

  chaos::collector sink;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    worker_config wc;
    wc.id = i;
    wc.seed = seed;
    wc.endpoints = endpoints;
    wc.keys = keys;
    // Commit waits ride on every cluster grant; give acquires headroom.
    wc.acquire_timeout_ms = smoke ? 100 : 160;
    threads.emplace_back([wc, &sink, &stop] { worker_main(wc, &sink, &stop); });
  }

  bool setup_failed = false;
  for (const chaos::phase& ph : plan.phases) {
    std::printf("[%7.3fs] phase %-10s %ums%s\n",
                static_cast<double>(now_us()) / 1e6, ph.name.c_str(),
                ph.duration_ms,
                ph.kill_server ? " (kill the primary)" : "");
    if (ph.kill_server) {
      // Aim at a real primary (firing into an election kills a
      // follower, which proves nothing), drop it mid-churn, and
      // respawn it as a follower that must catch up and stay fenced.
      const int victim = fleet.await_primary(4000);
      if (victim >= 0) {
        fleet.kill9(victim);
        for (auto& nem : nemeses) nem->sever_all();
        if (!fleet.spawn(victim)) {
          std::fprintf(stderr, "member m%d respawn failed\n", victim);
          setup_failed = true;
          break;
        }
      }
    }
    for (auto& nem : nemeses) nem->set_policy(ph.policy);
    std::this_thread::sleep_for(std::chrono::milliseconds(ph.duration_ms));
  }

  for (auto& nem : nemeses) nem->set_policy({});
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true, std::memory_order_relaxed);
  for (auto& nem : nemeses) nem->sever_all();
  for (std::thread& t : threads) t.join();
  chaos::nemesis_stats faults;
  for (auto& nem : nemeses) {
    const chaos::nemesis_stats s = nem->stats();
    faults.pairs_accepted += s.pairs_accepted;
    faults.pairs_severed += s.pairs_severed;
    faults.taint_severs += s.taint_severs;
    faults.frames_forwarded += s.frames_forwarded;
    faults.frames_dropped += s.frames_dropped;
    faults.frames_duplicated += s.frames_duplicated;
    faults.frames_delayed += s.frames_delayed;
    faults.frames_dribbled += s.frames_dribbled;
    nem->stop();
  }
  fleet.stop_all();

  // Client histories are the evidence; member journals stay on disk as
  // artifacts (R2's incarnation ordering is a one-process notion).
  const std::vector<chaos::record> records = sink.take();
  const chaos::report report = chaos::check(records, {});

  (void)write_file(dir + "/histories.jsonl", chaos::to_jsonl(records));
  (void)write_file(dir + "/report.txt", report.to_string());

  std::printf(
      "nemesis (summed over %d proxies): %llu pairs (%llu severed, "
      "%llu taint-severs), %llu frames forwarded, %llu dropped, "
      "%llu duplicated, %llu delayed, %llu dribbled\n",
      cluster_size, static_cast<unsigned long long>(faults.pairs_accepted),
      static_cast<unsigned long long>(faults.pairs_severed),
      static_cast<unsigned long long>(faults.taint_severs),
      static_cast<unsigned long long>(faults.frames_forwarded),
      static_cast<unsigned long long>(faults.frames_dropped),
      static_cast<unsigned long long>(faults.frames_duplicated),
      static_cast<unsigned long long>(faults.frames_delayed),
      static_cast<unsigned long long>(faults.frames_dribbled));
  std::printf("%s", report.to_string().c_str());
  std::printf("artifacts in %s/ (trace, histories.jsonl, journals, logs)\n",
              dir.c_str());
  if (setup_failed) return 2;
  return report.ok() ? 0 : 1;
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--seed N] [--smoke] [--replay TRACE] [--plant-fence-bug]\n"
      "          [--dir PATH] [--workers N] [--keys N] [--phase-ms N]\n"
      "          [--server-bin PATH] [--cluster N]\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  run_epoch = std::chrono::steady_clock::now();

  std::uint64_t seed = 1;
  bool smoke = false;
  bool plant_fence_bug = false;
  std::string replay_path;
  std::string dir = "chaos_out";
  int workers = 8;
  int keys = 4;
  std::uint32_t phase_ms = 0;  // 0 = default by mode
  std::string server_bin;
  int cluster_size = 0;  // 0 = single-node; >= 3 = replicated cluster

  for (int i = 1; i < argc; ++i) {
    const char* flag = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (std::strcmp(flag, "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(flag, "--plant-fence-bug") == 0) {
      plant_fence_bug = true;
    } else if (std::strcmp(flag, "--seed") == 0) {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      seed = static_cast<std::uint64_t>(std::strtoull(v, nullptr, 10));
    } else if (std::strcmp(flag, "--replay") == 0) {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      replay_path = v;
    } else if (std::strcmp(flag, "--dir") == 0) {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      dir = v;
    } else if (std::strcmp(flag, "--workers") == 0) {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      workers = std::atoi(v);
    } else if (std::strcmp(flag, "--keys") == 0) {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      keys = std::atoi(v);
    } else if (std::strcmp(flag, "--phase-ms") == 0) {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      phase_ms = static_cast<std::uint32_t>(std::atoi(v));
    } else if (std::strcmp(flag, "--server-bin") == 0) {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      server_bin = v;
    } else if (std::strcmp(flag, "--cluster") == 0) {
      const char* v = value();
      if (v == nullptr) return usage(argv[0]);
      cluster_size = std::atoi(v);
    } else {
      return usage(argv[0]);
    }
  }
  if (workers < 1 || keys < 1) return usage(argv[0]);
  if (cluster_size != 0 && (cluster_size < 3 || cluster_size > 5)) {
    std::fprintf(stderr, "--cluster takes 3..5 members\n");
    return 2;
  }
  if (cluster_size != 0 && plant_fence_bug) {
    // The planted bug is a restore-fence defect; cluster failover never
    // takes the --restore path, so the plant would be vacuously green.
    std::fprintf(stderr, "--plant-fence-bug is a single-node drill\n");
    return 2;
  }
  if (phase_ms == 0) phase_ms = smoke ? 400 : 800;
  if (server_bin.empty()) {
    // Default: elect_server next to this binary.
    std::string self = argv[0];
    const auto slash = self.rfind('/');
    server_bin = (slash == std::string::npos ? std::string(".")
                                             : self.substr(0, slash)) +
                 "/elect_server";
  }

  (void)::mkdir(dir.c_str(), 0755);

  // ---- plan: derive from seed, or replay a recorded trace ----------
  chaos::plan plan;
  if (!replay_path.empty()) {
    const auto parsed = chaos::parse_trace(read_file(replay_path));
    if (!parsed.has_value()) {
      std::fprintf(stderr, "cannot parse trace %s\n", replay_path.c_str());
      return 2;
    }
    plan = *parsed;
    seed = plan.seed;
    std::printf("replaying trace %s (seed %llu, %zu phases)\n",
                replay_path.c_str(), static_cast<unsigned long long>(seed),
                plan.phases.size());
  } else {
    plan = chaos::make_plan(seed, phase_ms, smoke);
  }
  if (!write_file(dir + "/trace", chaos::to_trace(plan))) {
    std::fprintf(stderr, "cannot write %s/trace\n", dir.c_str());
    return 2;
  }

  if (cluster_size != 0) {
    return run_cluster(plan, dir, seed, cluster_size, workers, keys, smoke,
                       server_bin);
  }

  const std::uint16_t server_port = free_port();
  if (server_port == 0) {
    std::fprintf(stderr, "cannot allocate a server port\n");
    return 2;
  }
  const std::uint64_t fence_bump = plant_fence_bug ? 1 : (1ull << 20);
  // A wider snapshot interval widens the crash gap the planted bug
  // needs; the sound default keeps dumps frequent, like production.
  const std::uint64_t snapshot_interval_ms = plant_fence_bug ? 600 : 150;

  server_process server(server_bin, dir, server_port, fence_bump);
  if (!server.spawn(snapshot_interval_ms)) {
    std::fprintf(stderr, "cannot start %s on port %u\n", server_bin.c_str(),
                 server_port);
    return 2;
  }

  chaos::nemesis_config nemesis_config;
  nemesis_config.upstream_port = server_port;
  nemesis_config.seed = seed;
  chaos::nemesis nemesis(nemesis_config);
  if (!nemesis.running()) {
    std::fprintf(stderr, "cannot start the nemesis proxy\n");
    return 2;
  }
  std::printf(
      "chaos seed %llu: server pid on :%u, nemesis on :%u, %d workers, "
      "%d keys, %zu phases%s%s\n",
      static_cast<unsigned long long>(seed), server_port, nemesis.port(),
      workers, keys, plan.phases.size(), smoke ? " [smoke]" : "",
      plant_fence_bug ? " [PLANTED FENCE BUG]" : "");

  // ---- workers ------------------------------------------------------
  chaos::collector sink;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    worker_config wc;
    wc.id = i;
    wc.seed = seed;
    wc.nemesis_port = nemesis.port();
    wc.keys = keys;
    wc.acquire_timeout_ms = smoke ? 50 : 80;
    threads.emplace_back([wc, &sink, &stop] { worker_main(wc, &sink, &stop); });
  }

  // ---- phase driver -------------------------------------------------
  bool setup_failed = false;
  for (const chaos::phase& ph : plan.phases) {
    std::printf("[%7.3fs] phase %-10s %ums%s\n",
                static_cast<double>(now_us()) / 1e6, ph.name.c_str(),
                ph.duration_ms, ph.kill_server ? " (kill -9 + restore)" : "");
    if (ph.kill_server) {
      server.kill9();
      // Cut every relayed connection: the dead upstream sockets are
      // gone anyway, and clients re-anchor against the restart.
      nemesis.sever_all();
      if (!server.spawn(snapshot_interval_ms)) {
        std::fprintf(stderr, "server restart failed\n");
        setup_failed = true;
        break;
      }
    }
    nemesis.set_policy(ph.policy);
    std::this_thread::sleep_for(std::chrono::milliseconds(ph.duration_ms));
  }

  // Quiesce: quiet policy so in-flight calls complete, then stop the
  // workers (a final sever frees anything still wedged).
  nemesis.set_policy({});
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true, std::memory_order_relaxed);
  nemesis.sever_all();
  for (std::thread& t : threads) t.join();
  const chaos::nemesis_stats faults = nemesis.stats();
  nemesis.stop();
  const int incarnations = server.incarnation() + 1;
  server.stop();

  // ---- evidence + checking -----------------------------------------
  const std::vector<chaos::record> records = sink.take();
  std::vector<chaos::incarnation_evidence> journals;
  journals.reserve(static_cast<std::size_t>(incarnations));
  for (int inc = 0; inc < incarnations; ++inc) {
    journals.push_back(
        chaos::parse_journal(read_file(server.journal_path(inc))));
  }
  const chaos::report report = chaos::check(records, journals);

  (void)write_file(dir + "/histories.jsonl", chaos::to_jsonl(records));
  (void)write_file(dir + "/report.txt", report.to_string());

  std::printf(
      "nemesis: %llu pairs (%llu severed, %llu taint-severs), "
      "%llu frames forwarded, %llu dropped, %llu duplicated, "
      "%llu delayed, %llu dribbled\n",
      static_cast<unsigned long long>(faults.pairs_accepted),
      static_cast<unsigned long long>(faults.pairs_severed),
      static_cast<unsigned long long>(faults.taint_severs),
      static_cast<unsigned long long>(faults.frames_forwarded),
      static_cast<unsigned long long>(faults.frames_dropped),
      static_cast<unsigned long long>(faults.frames_duplicated),
      static_cast<unsigned long long>(faults.frames_delayed),
      static_cast<unsigned long long>(faults.frames_dribbled));
  std::printf("%s", report.to_string().c_str());
  std::printf("artifacts in %s/ (trace, histories.jsonl, journals, logs)\n",
              dir.c_str());

  if (setup_failed) return 2;
  if (plant_fence_bug) {
    // Inverted verdict: the planted bug *must* be caught. A green
    // checker here means the harness lost its teeth.
    if (report.ok()) {
      std::printf("PLANTED BUG NOT CAUGHT — checker is blind\n");
      return 1;
    }
    std::printf("planted fencing bug caught, as required\n");
    return 0;
  }
  return report.ok() ? 0 : 1;
}
