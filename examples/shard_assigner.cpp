// Shard assignment via the election service: n workers must split n
// shards among themselves, each taking exactly one, with no coordinator
// and no agreed-on order — the task-allocation flavour of the paper's
// §4, written against elect::api.
//
// Every shard is a service key; owning a shard means holding its key's
// lease. Each worker walks the shard list starting from its own offset
// and try_acquire()s until it wins one, then stops — keeping the RAII
// lease alive for as long as it owns the shard. One pass suffices: a
// worker only loses a key to a distinct worker that won it and
// stopped, and there are as many shards as workers, so the pigeonhole
// principle hands everyone exactly one shard.
//
// This version also demonstrates *per-key strategy selection*: the
// service-wide default is `adaptive` (workers start from distinct
// offsets, so most keys see exactly one acquirer and are granted by the
// CAS fast path, no distributed protocol at all), while the four
// "orders-*" shards — pretend they are the fought-over ones — are pinned
// to the paper's full Figure-6 protocol and the "events-*" shards to the
// doorway_only rung of the ladder. The per-strategy counters in the
// report show where each acquire went; unique ownership holds under
// every mix because all strategies preserve TAS semantics.
//
// Build & run:  ./build/examples/shard_assigner
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/client.hpp"
#include "election/strategy.hpp"
#include "svc/service.hpp"

int main() {
  using namespace elect;
  constexpr int workers = 12;
  const char* shards[workers] = {
      "users-00", "users-01", "users-02", "users-03",
      "orders-00", "orders-01", "orders-02", "orders-03",
      "events-00", "events-01", "events-02", "events-03"};

  svc::service_config config{.nodes = workers, .shards = 4, .seed = 7};
  // Default: adaptive — uncontended keys skip the protocol entirely.
  config.default_strategy = election::strategy_kind::adaptive;
  // Per-key overrides: contested order shards get the full protocol,
  // event shards the cheapest doorway-only rung.
  for (const char* key : {"orders-00", "orders-01", "orders-02", "orders-03"}) {
    config.key_strategies[key] = election::strategy_kind::full;
  }
  for (const char* key : {"events-00", "events-01", "events-02", "events-03"}) {
    config.key_strategies[key] = election::strategy_kind::doorway_only;
  }
  svc::service service(std::move(config));
  std::vector<std::unique_ptr<api::client>> clients;
  for (int w = 0; w < workers; ++w) {
    clients.push_back(std::make_unique<api::client>(service));
  }

  std::vector<int> assignment(workers, -1);    // worker -> shard index
  std::vector<api::lease> ownership(workers);  // the held shard, RAII
  std::vector<std::thread> threads;
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      auto& client = *clients[static_cast<std::size_t>(w)];
      for (int probe = 0; probe < workers; ++probe) {
        const int s = (w + probe) % workers;
        api::acquired won = client.try_acquire(shards[s]);
        if (won.won()) {
          assignment[static_cast<std::size_t>(w)] = s;
          // Keep the lease: ownership of the shard is the live object.
          ownership[static_cast<std::size_t>(w)] = std::move(won.lease);
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  std::vector<bool> taken(workers, false);
  std::printf("shard assignment (each worker wins a unique slot):\n");
  for (int w = 0; w < workers; ++w) {
    const int s = assignment[static_cast<std::size_t>(w)];
    if (s < 0) {
      std::printf("  worker %2d UNASSIGNED — pigeonhole broken!\n", w);
      return 1;
    }
    const api::lease& lease = ownership[static_cast<std::size_t>(w)];
    std::printf("  worker %2d -> shard %2d (%s), epoch %llu, lease %s\n", w,
                s, shards[s],
                static_cast<unsigned long long>(lease.epoch()),
                lease.held() ? "held" : "LOST");
    if (!lease.held() || lease.key() != shards[s]) {
      std::printf("  OWNERSHIP NOT HELD — lease invariant broken!\n");
      return 1;
    }
    if (taken[static_cast<std::size_t>(s)]) {
      std::printf("  DUPLICATE ASSIGNMENT — unique leadership broken!\n");
      return 1;
    }
    taken[static_cast<std::size_t>(s)] = true;
  }

  const auto report = service.report();
  std::printf("all %d shards covered exactly once; %llu acquires, %llu "
              "messages, p99 acquire %.3f ms\n",
              workers, static_cast<unsigned long long>(report.acquires),
              static_cast<unsigned long long>(report.total_messages),
              report.acquire_p99_ms);
  std::printf("per-strategy acquires/wins:");
  for (int k = 0; k < election::strategy_kind_count; ++k) {
    const auto& s = report.strategies[static_cast<std::size_t>(k)];
    if (s.acquires == 0) continue;
    std::printf(" %s %llu/%llu",
                std::string(election::to_string(
                                static_cast<election::strategy_kind>(k)))
                    .c_str(),
                static_cast<unsigned long long>(s.acquires),
                static_cast<unsigned long long>(s.wins));
  }
  std::printf("\nadaptive fast path: %llu hits, %llu conflicts, %llu "
              "fallbacks (hit rate %.0f%%)\n",
              static_cast<unsigned long long>(report.fast_path.hits),
              static_cast<unsigned long long>(report.fast_path.conflicts),
              static_cast<unsigned long long>(report.fast_path.fallbacks),
              100.0 * report.fast_path.hit_rate());
  std::printf("registry shard occupancy:");
  for (int s = 0; s < service.registry().shard_count(); ++s) {
    std::printf(" %zu", service.registry().keys_in_shard(s));
  }
  std::printf("\n");
  // Workers step down: moving ownership out of scope releases all 12
  // leases (RAII), leaving the registry clean.
  ownership.clear();
  return 0;
}
