// Shard assignment via strong renaming — the task-allocation flavour of
// the paper's §4: n workers must split n shards among themselves, each
// taking exactly one, with no coordinator and no agreed-on order.
//
// Each worker runs Figure 3's getName; the name it wins is the shard it
// owns. The renaming guarantee (names unique, in [0, n)) is exactly the
// assignment invariant. Runs on real threads.
//
// Build & run:  ./build/examples/shard_assigner
#include <cstdio>
#include <vector>

#include "engine/node.hpp"
#include "mt/cluster.hpp"
#include "renaming/renaming.hpp"

int main() {
  using namespace elect;
  constexpr int workers = 12;
  const char* shards[workers] = {
      "users-00", "users-01", "users-02", "users-03",
      "orders-00", "orders-01", "orders-02", "orders-03",
      "events-00", "events-01", "events-02", "events-03"};

  mt::cluster cluster(workers, /*seed=*/7);
  for (process_id pid = 0; pid < workers; ++pid) {
    cluster.attach(pid, [](engine::node& node) {
      return renaming::get_name(node, renaming::renaming_params{});
    });
  }
  cluster.start();
  cluster.wait();

  std::vector<bool> taken(workers, false);
  std::printf("shard assignment (each worker wins a unique slot):\n");
  for (process_id pid = 0; pid < workers; ++pid) {
    const auto shard = cluster.result_of(pid);
    std::printf("  worker %2d -> shard %lld (%s), after %lld attempts\n",
                pid, static_cast<long long>(shard), shards[shard],
                static_cast<long long>(cluster.probe(pid).iterations));
    if (taken[static_cast<std::size_t>(shard)]) {
      std::printf("  DUPLICATE ASSIGNMENT — renaming broken!\n");
      return 1;
    }
    taken[static_cast<std::size_t>(shard)] = true;
  }
  std::printf("all %d shards covered exactly once; total messages: %llu\n",
              workers,
              static_cast<unsigned long long>(cluster.total_messages()));
  return 0;
}
