// Cluster coordinator election on real threads — the scenario the paper's
// introduction motivates: n fault-prone workers must agree on a single
// coordinator, quickly, without any pre-existing order.
//
// Eight worker threads elect a coordinator with the O(log* n) algorithm
// (election instance 1). The coordinator then "retires" and a second
// election (instance 2) picks a successor among the remaining workers —
// showing how disjoint instances give repeated, independent elections.
//
// Build & run:  ./build/examples/cluster_coordinator
#include <cstdio>

#include "election/leader_elect.hpp"
#include "engine/node.hpp"
#include "mt/cluster.hpp"

int main() {
  using namespace elect;
  constexpr int workers = 8;

  // --- Term 1: everyone competes. -------------------------------------
  process_id coordinator = no_process;
  {
    mt::cluster cluster(workers, /*seed=*/1);
    for (process_id pid = 0; pid < workers; ++pid) {
      cluster.attach(pid, [](engine::node& node) {
        return engine::erase_result(election::leader_elect(
            node, election::leader_elect_params{election::election_id{1}}));
      });
    }
    cluster.start();
    cluster.wait();
    for (process_id pid = 0; pid < workers; ++pid) {
      if (cluster.result_of(pid) ==
          static_cast<std::int64_t>(election::tas_result::win)) {
        coordinator = pid;
      }
    }
    std::printf("term 1: worker %d elected coordinator (%llu messages)\n",
                coordinator,
                static_cast<unsigned long long>(cluster.total_messages()));
  }

  // --- Term 2: the coordinator retires; the others elect a successor. --
  {
    mt::cluster cluster(workers, /*seed=*/2);
    for (process_id pid = 0; pid < workers; ++pid) {
      if (pid == coordinator) continue;  // retired — serves, won't contend
      cluster.attach(pid, [](engine::node& node) {
        return engine::erase_result(election::leader_elect(
            node, election::leader_elect_params{election::election_id{2}}));
      });
    }
    cluster.start();
    cluster.wait();
    process_id successor = no_process;
    for (process_id pid = 0; pid < workers; ++pid) {
      if (pid == coordinator) continue;
      if (cluster.result_of(pid) ==
          static_cast<std::int64_t>(election::tas_result::win)) {
        successor = pid;
      }
    }
    std::printf("term 2: worker %d elected successor (%llu messages)\n",
                successor,
                static_cast<unsigned long long>(cluster.total_messages()));
  }
  std::printf("done: one coordinator per term, no central authority.\n");
  return 0;
}
