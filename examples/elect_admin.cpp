// elect_admin — live introspection of a running elect_server over the
// wire admin ops (v3). The server must be started with admin enabled
// (elect_server --admin on), or every command answers "denied".
//
//   ./build/examples/elect_admin --host 127.0.0.1 --port 7400 list
//       every registered key: holder, epoch, lease remaining, grant
//       mode, contention estimate — as one JSON array.
//
//   ./build/examples/elect_admin --port 7400 inspect locks/demo
//       one key's snapshot as a JSON object; exit 1 if never acquired.
//
//   ./build/examples/elect_admin --port 7400 force-release locks/demo
//       the operator's "kick the stuck leader" lever: unconditionally
//       ends the key's current epoch. The deposed holder's next fenced
//       op answers stale_epoch.
//
//   ./build/examples/elect_admin --port 7400 snapshot
//       take a command-log snapshot: the server persists it to its
//       --snapshot path (when configured) and answers with the log
//       stats (recording/recorded/retained/bytes) as JSON.
//
//   ./build/examples/elect_admin --port 7400 tail locks/demo
//       subscribe to the key's leader transitions (the same watch
//       stream api::client::watch consumes) and print one line per
//       event until Ctrl-C. Does not need --admin on.
//
//   ./build/examples/elect_admin --port 7400 cluster-status
//       one cluster member's replication view (role, term, leader,
//       commit/applied indices, peer lag) as JSON. Answered by every
//       member — primary or follower — and does not need --admin on;
//       "{\"role\":\"standalone\"}" from a non-cluster server.
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "api/client.hpp"
#include "net/client.hpp"
#include "svc/watch.hpp"

namespace {

volatile std::sig_atomic_t interrupted = 0;

void on_signal(int) { interrupted = 1; }

int usage() {
  std::fprintf(
      stderr,
      "usage: elect_admin [--host H] [--port P] <command>\n"
      "  list                 all keys as JSON (requires --admin on)\n"
      "  inspect <key>        one key as JSON (requires --admin on)\n"
      "  force-release <key>  end the key's epoch (requires --admin on)\n"
      "  snapshot             snapshot state + log stats (requires --admin "
      "on)\n"
      "  tail <key>           stream leader transitions until Ctrl-C\n"
      "  cluster-status       replication role/term/lag as JSON (any "
      "member)\n");
  return 2;
}

/// One admin round trip; prints the JSON body (or the failure) and
/// returns the process exit code.
int run_admin(elect::net::client& wire, elect::net::wire::op kind,
              const std::string& key) {
  const auto r = wire.admin(kind, key);
  if (!r.has_value()) {
    std::fprintf(stderr, "connection lost\n");
    return 1;
  }
  using status = elect::net::wire::status;
  switch (r->result) {
    case status::ok:
      if (!r->body.empty()) {
        std::printf("%s\n", r->body.c_str());
      } else {
        std::printf("ok epoch=%llu\n",
                    static_cast<unsigned long long>(r->epoch));
      }
      return 0;
    case status::denied:
      std::fprintf(stderr,
                   "denied: server started without --admin on\n");
      return 1;
    case status::not_leader:
      std::fprintf(stderr, "key not found (never acquired / not held)\n");
      return 1;
    default:
      std::fprintf(stderr, "failed: %s\n",
                   std::string(to_string(r->result)).c_str());
      return 1;
  }
}

int run_tail(const std::string& host, std::uint16_t port,
             const std::string& key) {
  elect::api::client client(host, port);
  if (!client.connected()) {
    std::fprintf(stderr, "connect to %s:%u failed\n", host.c_str(), port);
    return 1;
  }
  auto sub = client.watch(key, [](const elect::svc::watch_event& e) {
    std::printf("%s key=%s epoch=%llu session=%d\n",
                std::string(to_string(e.kind)).c_str(), e.key.c_str(),
                static_cast<unsigned long long>(e.epoch), e.session);
    std::fflush(stdout);
  });
  if (!sub.active()) {
    std::fprintf(stderr, "watch subscription failed\n");
    return 1;
  }
  std::printf("tailing %s (Ctrl-C stops)\n", key.c_str());
  struct sigaction action {};
  action.sa_handler = on_signal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
  while (!interrupted) usleep(100 * 1000);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace elect;

  std::string host = "127.0.0.1";
  std::uint16_t port = 7400;
  int at = 1;
  while (at + 1 < argc && argv[at][0] == '-') {
    if (std::strcmp(argv[at], "--host") == 0) {
      host = argv[at + 1];
    } else if (std::strcmp(argv[at], "--port") == 0) {
      port = static_cast<std::uint16_t>(std::atoi(argv[at + 1]));
    } else {
      return usage();
    }
    at += 2;
  }
  if (at >= argc) return usage();
  const std::string command = argv[at];
  const std::string key = at + 1 < argc ? argv[at + 1] : "";

  if (command == "tail") {
    if (key.empty()) return usage();
    return run_tail(host, port, key);
  }

  net::wire::op kind;
  if (command == "list") {
    kind = net::wire::op::admin_list;
  } else if (command == "inspect" && !key.empty()) {
    kind = net::wire::op::admin_inspect;
  } else if (command == "force-release" && !key.empty()) {
    kind = net::wire::op::admin_force_release;
  } else if (command == "snapshot") {
    kind = net::wire::op::admin_snapshot;
  } else if (command == "cluster-status") {
    kind = net::wire::op::admin_cluster_status;
  } else {
    return usage();
  }

  net::client wire(host, port);
  if (!wire.connected()) {
    std::fprintf(stderr, "connect to %s:%u failed\n", host.c_str(), port);
    return 1;
  }
  return run_admin(wire, kind, key);
}
