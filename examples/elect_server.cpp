// Standalone election server: the svc::service behind the elect::net
// TCP front-end, as a runnable binary. This is what "remote" examples
// and real clients talk to.
//
//   ./build/examples/elect_server --port 7400
//   ./build/examples/elect_server --port 7400 --nodes 8 --shards 8 \
//       --ttl-ms 5000 --strategy adaptive
//   ./build/examples/elect_server --port 7400 --http-port 7401 \
//       --admin on --slow-ms 50 --journal events.jsonl
//   ./build/examples/elect_server --port 7400 --reactors 4
//
// --reactors N runs N per-core network reactors (default: hardware
// concurrency; the ELECT_REACTORS env var overrides the default). The
// banner reports whether accept is SO_REUSEPORT-sharded across them or
// dealt round-robin from a single listener.
//
// --http-port starts the HTTP side-channel (GET /metrics Prometheus
// text, /report JSON, /healthz). --admin on enables the wire admin ops
// the elect_admin CLI uses. --slow-ms arms slow-request trace capture;
// --journal appends structured event records as JSONL.
//
// Durability:
//
//   ./build/examples/elect_server --port 7400 --snapshot state.elsn \
//       --snapshot-interval-ms 1000
//       record the command log and dump a binary snapshot of the
//       registry to state.elsn (write-to-temp + rename) every interval;
//       `elect_admin snapshot` forces one on demand.
//
//   ./build/examples/elect_server --port 7400 --restore state.elsn
//       seed the registry from a snapshot before serving. Every
//       restored key's epoch is bumped, so leases granted before the
//       restart answer stale_epoch — pre-restart holders are fenced
//       out, not silently trusted.
//
// Cluster mode (replicated, epoch-fenced failover — see src/repl/):
//
//   ./build/examples/elect_server \
//       --cluster 127.0.0.1:7400,127.0.0.1:7410,127.0.0.1:7420 \
//       --cluster-self 0 --cluster-dir /tmp/elect-node0
//       one member of a replicated election cluster. The listen port
//       comes from the member's own endpoint in the --cluster list
//       (--port is ignored). Mutating client ops are only served by
//       the elected primary (others answer not_primary with the
//       primary's endpoint; api::client's comma-list constructor
//       follows the redirect). --cluster-dir persists the member's
//       vote state so a restart cannot double-vote a term.
//       --fence-bump is the promotion fence: every epoch jumps by it
//       on failover so a dead primary's unacked grants can never be
//       silently honored.
//
// Runs until SIGINT/SIGTERM (so `elect_server &` with stdin closed
// keeps serving). Prints the combined net + service metrics JSON on
// exit — and on every `r` + newline typed on stdin, so you can watch
// counters move while clients hammer it.
//
// The binary is also its own ops client (the elect::api facade over
// TCP):
//
//   ./build/examples/elect_server --report 127.0.0.1:7400
//       fetch and print a running server's metrics JSON, then exit.
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <sys/stat.h>

#include "api/client.hpp"
#include "common/check.hpp"
#include "net/server.hpp"
#include "repl/node.hpp"
#include "svc/service.hpp"

namespace {

volatile std::sig_atomic_t interrupted = 0;

void on_signal(int) { interrupted = 1; }

/// Write-to-temp + rename, same discipline as the server's
/// admin_snapshot path: a crash mid-dump never tears the file a later
/// --restore will read.
bool dump_snapshot(const std::string& path,
                   const std::vector<std::uint8_t>& bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) return false;
  const bool wrote =
      bytes.empty() ||
      std::fwrite(bytes.data(), 1, bytes.size(), file) == bytes.size();
  const bool ok = wrote && std::fflush(file) == 0;
  if (std::fclose(file) != 0 || !ok ||
      std::rename(tmp.c_str(), path.c_str()) != 0) {
    (void)std::remove(tmp.c_str());
    return false;
  }
  return true;
}

/// Periodic snapshot dumper. Trims the command log on every dump: the
/// snapshot already captures everything the trimmed prefix encoded, so
/// a long-running server holds a bounded log, not an unbounded replay
/// history.
class snapshotter {
 public:
  snapshotter(elect::svc::service& service, std::string path,
              std::uint64_t interval_ms)
      : service_(service), path_(std::move(path)),
        interval_(std::chrono::milliseconds(interval_ms)) {
    thread_ = std::thread([this] { run(); });
  }

  ~snapshotter() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    cv_.notify_all();
    thread_.join();
    // One final dump so a clean shutdown leaves the freshest state.
    (void)dump_snapshot(path_, service_.registry().snapshot(true));
  }

 private:
  void run() {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      if (cv_.wait_for(lock, interval_, [this] { return stopping_; })) {
        return;
      }
      lock.unlock();
      if (!dump_snapshot(path_, service_.registry().snapshot(true))) {
        std::fprintf(stderr, "snapshot dump to %s failed\n", path_.c_str());
      }
      lock.lock();
    }
  }

  elect::svc::service& service_;
  const std::string path_;
  const std::chrono::milliseconds interval_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace elect;

  // Line-buffer stdout even when redirected to a file: scripts (and
  // CI) background the server and poll the log for the banner, which
  // otherwise sits in a full 4K stdio buffer until exit.
  std::setvbuf(stdout, nullptr, _IOLBF, 0);

  svc::service_config service_config{.nodes = 8, .shards = 8};
  service_config.default_strategy = election::strategy_kind::adaptive;
  service_config.lease_ttl_ms = 5000;
  net::server_config server_config;
  server_config.port = 7400;
  std::string snapshot_path;
  std::uint64_t snapshot_interval_ms = 1000;
  std::string restore_path;
  // A snapshot is a *prefix* of history: epochs granted after the last
  // dump and before a kill -9 are invisible to --restore, so fencing
  // restored epochs by +1 could re-grant an epoch a pre-crash client
  // already won. 2^20 jumps restored keys clear past any plausible
  // crash gap; --fence-bump 1 reintroduces the collision (the chaos
  // harness's plantable fencing bug).
  std::uint64_t fence_bump = 1ull << 20;
  std::string cluster_members;
  int cluster_self = 0;
  std::string cluster_dir;
  std::uint64_t cluster_seed = 1;

  for (int i = 1; i + 1 < argc; i += 2) {
    const char* flag = argv[i];
    const char* value = argv[i + 1];
    if (std::strcmp(flag, "--report") == 0) {
      // Client mode: one api::client round trip to a running server.
      api::client probe{std::string(value)};
      if (!probe.connected()) {
        std::fprintf(stderr, "connect to %s failed\n", value);
        return 1;
      }
      const std::string json = probe.metrics_json();
      if (json.empty()) {
        std::fprintf(stderr, "metrics fetch from %s failed\n", value);
        return 1;
      }
      std::printf("%s\n", json.c_str());
      return 0;
    }
    if (std::strcmp(flag, "--port") == 0) {
      server_config.port = static_cast<std::uint16_t>(std::atoi(value));
    } else if (std::strcmp(flag, "--bind") == 0) {
      server_config.bind_address = value;
    } else if (std::strcmp(flag, "--nodes") == 0) {
      service_config.nodes = std::atoi(value);
    } else if (std::strcmp(flag, "--shards") == 0) {
      service_config.shards = std::atoi(value);
    } else if (std::strcmp(flag, "--ttl-ms") == 0) {
      service_config.lease_ttl_ms =
          static_cast<std::uint64_t>(std::atoll(value));
    } else if (std::strcmp(flag, "--strategy") == 0) {
      const auto parsed = election::parse_strategy(value);
      ELECT_CHECK_MSG(parsed.has_value(), "unknown --strategy");
      service_config.default_strategy = *parsed;
    } else if (std::strcmp(flag, "--reactors") == 0) {
      server_config.reactors = std::atoi(value);
    } else if (std::strcmp(flag, "--http-port") == 0) {
      server_config.http_enabled = true;
      server_config.http_port = static_cast<std::uint16_t>(std::atoi(value));
    } else if (std::strcmp(flag, "--admin") == 0) {
      server_config.enable_admin = std::strcmp(value, "on") == 0;
    } else if (std::strcmp(flag, "--slow-ms") == 0) {
      service_config.slow_request_threshold_ms =
          static_cast<std::uint64_t>(std::atoll(value));
    } else if (std::strcmp(flag, "--journal") == 0) {
      service_config.journal_events = true;
      service_config.journal_path = value;
    } else if (std::strcmp(flag, "--snapshot") == 0) {
      snapshot_path = value;
    } else if (std::strcmp(flag, "--snapshot-interval-ms") == 0) {
      snapshot_interval_ms = static_cast<std::uint64_t>(std::atoll(value));
    } else if (std::strcmp(flag, "--restore") == 0) {
      restore_path = value;
    } else if (std::strcmp(flag, "--fence-bump") == 0) {
      fence_bump = static_cast<std::uint64_t>(std::atoll(value));
    } else if (std::strcmp(flag, "--cluster") == 0) {
      cluster_members = value;
    } else if (std::strcmp(flag, "--cluster-self") == 0) {
      cluster_self = std::atoi(value);
    } else if (std::strcmp(flag, "--cluster-dir") == 0) {
      cluster_dir = value;
    } else if (std::strcmp(flag, "--cluster-seed") == 0) {
      cluster_seed = static_cast<std::uint64_t>(std::atoll(value));
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag);
      return 2;
    }
  }

  // Fail with a usable message on a bad flag combination instead of a
  // deep ELECT_CHECK abort somewhere inside the service.
  if (const auto error = service_config.validate()) {
    std::fprintf(stderr, "invalid configuration: %s\n", error->c_str());
    return 2;
  }
  if (!snapshot_path.empty()) {
    if (snapshot_interval_ms == 0) {
      std::fprintf(stderr, "--snapshot-interval-ms must be >= 1\n");
      return 2;
    }
    // Snapshots only make sense over a recorded command log; arm it
    // before the service sees any traffic, and let admin_snapshot
    // persist to the same file on demand.
    service_config.record_commands = true;
    server_config.snapshot_path = snapshot_path;
  }
  std::optional<repl::cluster_config> cluster;
  if (!cluster_members.empty()) {
    repl::cluster_config cc;
    const auto parsed = repl::parse_endpoints(cluster_members);
    if (!parsed.has_value()) {
      std::fprintf(stderr, "malformed --cluster list: %s\n",
                   cluster_members.c_str());
      return 2;
    }
    cc.members = *parsed;
    cc.self = cluster_self;
    cc.fence_bump = fence_bump;
    cc.state_dir = cluster_dir;
    cc.seed = cluster_seed;
    if (const auto error = cc.validate()) {
      std::fprintf(stderr, "invalid cluster configuration: %s\n",
                   error->c_str());
      return 2;
    }
    if (!cluster_dir.empty()) (void)::mkdir(cluster_dir.c_str(), 0755);
    // The replicated log drains the registry's command log; the member
    // listens where its own --cluster entry says, whatever --port said.
    service_config.record_commands = true;
    // Disjoint per-member session ids: a lease replicated from another
    // member's log must never match a live local session, so a
    // failed-over holder fences (stale/not_leader) instead of
    // accidentally renewing a stranger's lease.
    service_config.session_id_base = cc.self << 24;
    server_config.bind_address = cc.members[static_cast<std::size_t>(cc.self)].host;
    server_config.port = cc.members[static_cast<std::size_t>(cc.self)].port;
    cluster = std::move(cc);
  }
  svc::service service(std::move(service_config));
  if (!restore_path.empty()) {
    std::ifstream in(restore_path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot read snapshot %s\n", restore_path.c_str());
      return 1;
    }
    const std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    // fence_restored: pre-restart leaseholders presenting restored
    // epochs must see stale_epoch, never a silently honored lease. The
    // bump also has to clear the crash gap — see fence_bump above.
    if (const auto error = service.registry().restore(
            bytes, /*fence_restored=*/true, fence_bump)) {
      std::fprintf(stderr, "restore from %s failed: %s\n",
                   restore_path.c_str(), error->c_str());
      return 1;
    }
    std::printf("restored %s (all restored epochs fenced, bump %llu)\n",
                restore_path.c_str(),
                static_cast<unsigned long long>(fence_bump));
  }
  std::optional<repl::node> cluster_node;
  if (cluster.has_value()) {
    // The node starts before the server listens: the commit gate and
    // sweeper suspension must be armed before any client op can land.
    // Outbound peer connects just retry until the other members'
    // servers come up.
    cluster_node.emplace(*cluster, service);
    cluster_node->start();
    repl::node* node = &*cluster_node;
    server_config.cluster.is_primary = [node] { return node->is_primary(); };
    server_config.cluster.primary_hint = [node] {
      return node->primary_endpoint();
    };
    server_config.cluster.peer = [node](const net::wire::request& r) {
      return node->handle_peer(r);
    };
    server_config.cluster.status_json = [node] { return node->status_json(); };
    server_config.cluster.prom_text = [node] { return node->prom_text(); };
  }
  net::server server(service, server_config);
  if (!server.listening()) {
    std::fprintf(stderr, "bind %s:%u failed\n",
                 server_config.bind_address.c_str(), server_config.port);
    return 1;
  }
  std::printf(
      "elect_server listening on %s:%u (strategy %s, ttl %llu ms, "
      "%d reactor%s, %s accept)\n",
      server_config.bind_address.c_str(), server.port(),
      std::string(election::to_string(service.config().default_strategy))
          .c_str(),
      static_cast<unsigned long long>(service.config().lease_ttl_ms),
      server.reactor_count(), server.reactor_count() == 1 ? "" : "s",
      server.reuseport_sharded() ? "SO_REUSEPORT-sharded" : "single-listener");
  if (server_config.http_enabled) {
    if (server.http_listening()) {
      std::printf("metrics at http://%s:%u/metrics (also /report, /healthz)\n",
                  server_config.bind_address.c_str(), server.http_port());
    } else {
      std::fprintf(stderr, "http bind %s:%u failed; continuing without\n",
                   server_config.bind_address.c_str(),
                   server_config.http_port);
    }
  }
  if (server_config.enable_admin) {
    std::printf(
        "admin ops enabled (elect_admin list/inspect/force-release/"
        "snapshot)\n");
  }
  if (cluster_node.has_value()) {
    std::printf(
        "cluster member %d of %d (%s), quorum %d, fence bump %llu%s%s\n",
        cluster_node->id(), static_cast<int>(cluster->members.size()),
        cluster->members[static_cast<std::size_t>(cluster->self)]
            .to_string()
            .c_str(),
        cluster->quorum(), static_cast<unsigned long long>(fence_bump),
        cluster_dir.empty() ? "" : ", vote state in ",
        cluster_dir.empty() ? "" : cluster_dir.c_str());
  }
  std::optional<snapshotter> snapshots;
  if (!snapshot_path.empty()) {
    snapshots.emplace(service, snapshot_path, snapshot_interval_ms);
    std::printf("snapshotting to %s every %llu ms\n", snapshot_path.c_str(),
                static_cast<unsigned long long>(snapshot_interval_ms));
  }
  std::printf("type 'r' + enter for a metrics report; Ctrl-C stops\n");

  // sigaction without SA_RESTART (std::signal on glibc restarts
  // syscalls): Ctrl-C must interrupt the fgets below, not wait for the
  // next line of input.
  struct sigaction action {};
  action.sa_handler = on_signal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
  char line[16];
  while (!interrupted && std::fgets(line, sizeof line, stdin) != nullptr) {
    if (line[0] == 'r') std::printf("%s\n", server.report_json().c_str());
  }
  // stdin closed (typical when backgrounded): keep serving on signals.
  while (!interrupted) usleep(200 * 1000);

  std::printf("%s\n", server.report_json().c_str());
  server.stop();
  return 0;
}
