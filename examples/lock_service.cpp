// A toy distributed lock service built from repeated leader elections —
// the "mutual exclusion" direction the paper's Future Work suggests.
//
// Lock round r is one leader-election instance: whoever wins instance r
// holds the lock for round r. A holder releases by propagating a
// monotone "released[r]" flag; the losers of round r wait for that flag
// and then compete in round r+1. Every thread acquires the lock exactly
// once, so after `threads` rounds everyone has had its critical section.
//
// This is intentionally simple (no fairness, busy-wait on release), but
// mutual exclusion per round is inherited directly from the unique-winner
// guarantee of test-and-set.
//
// Build & run:  ./build/examples/lock_service
#include <atomic>
#include <cstdio>

#include "election/leader_elect.hpp"
#include "engine/node.hpp"
#include "engine/views.hpp"
#include "mt/cluster.hpp"

namespace {

using namespace elect;

engine::var_id release_flag(std::uint32_t round) {
  return {engine::var_family::test_flags, 9000, round};
}

std::atomic<int> holders_inside{0};
std::atomic<int> cs_entries{0};

/// Acquire-once lock client: competes in rounds until it wins one; runs
/// its critical section; releases; returns the round it held the lock in.
engine::task<std::int64_t> lock_client(engine::node& self) {
  for (std::uint32_t round = 1;; ++round) {
    const auto outcome = co_await election::leader_elect(
        self, election::leader_elect_params{
                  election::election_id{1000 + round}});
    if (outcome == election::tas_result::win) {
      // ---- critical section ----
      const int concurrent = holders_inside.fetch_add(1) + 1;
      ELECT_CHECK_MSG(concurrent == 1, "mutual exclusion violated");
      cs_entries.fetch_add(1);
      std::printf("  round %2u: worker %d in the critical section\n", round,
                  self.id());
      holders_inside.fetch_sub(1);
      // ---- release ----
      auto delta = self.stage_flags(release_flag(round), {0});
      co_await self.propagate(release_flag(round), delta);
      co_return static_cast<std::int64_t>(round);
    }
    // Lost round `round`: wait until its holder releases, then retry.
    for (;;) {
      const auto views = co_await self.collect(release_flag(round));
      bool released = false;
      engine::for_each_view<engine::or_flags>(
          views, [&](const engine::or_flags& flags) {
            released = released || flags.test(0);
          });
      if (released) break;
    }
  }
}

}  // namespace

int main() {
  constexpr int workers = 4;
  mt::cluster cluster(workers, /*seed=*/11);
  for (process_id pid = 0; pid < workers; ++pid) {
    cluster.attach(pid,
                   [](engine::node& node) { return lock_client(node); });
  }
  std::printf("%d workers contending for a distributed lock:\n", workers);
  cluster.start();
  cluster.wait();
  std::printf("critical-section entries: %d (expected %d), never more "
              "than one holder at a time.\n",
              cs_entries.load(), workers);
  return cs_entries.load() == workers ? 0 : 1;
}
