// A distributed lock built on the election service — the "mutual
// exclusion" direction the paper's Future Work suggests.
//
// One svc::service key is the lock. Each worker opens a session and
// calls acquire(key): under the hood the service runs one Figure-6
// leader-election instance per epoch, the unique winner holds the lock,
// and release() bumps the key's epoch, which both wakes the blocked
// losers and starts a fresh election for them to contend in. Mutual
// exclusion per epoch is inherited directly from the unique-winner
// guarantee of test-and-set; fair hand-off comes from repeated epochs.
//
// Two modes, same loop:
//
//   ./build/examples/lock_service
//       in-process: workers are svc sessions on a local service.
//
//   ./build/examples/lock_service --remote 127.0.0.1:7400
//       remote: workers are net::client TCP connections to a running
//       elect_server (see examples/elect_server.cpp). The acquire
//       blocks server-side; the unique-winner guarantee now spans
//       processes and hosts, and a worker that crashes mid-hold is
//       fenced by the server's disconnect-on-close hook + lease TTL.
#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "net/client.hpp"
#include "svc/service.hpp"

namespace {

constexpr int workers = 4;
const std::string lock_key = "locks/demo";

std::atomic<int> holders_inside{0};
std::atomic<int> cs_entries{0};

/// One worker's life, generic over the handle type — the in-process
/// session and the remote client expose the same acquire/release calls.
template <typename Lock>
void contend(Lock& lock, int worker) {
  const auto held = lock.acquire(lock_key);
  ELECT_CHECK_MSG(held.won, "acquire failed");
  // ---- critical section ----
  const int concurrent = holders_inside.fetch_add(1) + 1;
  ELECT_CHECK_MSG(concurrent == 1, "mutual exclusion violated");
  cs_entries.fetch_add(1);
  std::printf("  epoch %2llu: worker %d in the critical section\n",
              static_cast<unsigned long long>(held.epoch), worker);
  holders_inside.fetch_sub(1);
  // ---- release: wakes the losers into a fresh election ----
  lock.release(lock_key, held.epoch);
}

int run_local() {
  using namespace elect;
  svc::service service(
      svc::service_config{.nodes = workers, .shards = 2, .seed = 11});
  std::vector<svc::service::session> sessions;
  for (int w = 0; w < workers; ++w) sessions.push_back(service.connect());

  std::printf("%d workers contending for a distributed lock:\n", workers);
  std::vector<std::thread> threads;
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back(
        [&, w] { contend(sessions[static_cast<std::size_t>(w)], w); });
  }
  for (auto& t : threads) t.join();

  const auto report = service.report();
  std::printf("critical-section entries: %d (expected %d), never more "
              "than one holder at a time.\n",
              cs_entries.load(), workers);
  std::printf("service: %llu acquires, %llu messages (%.1f msg/acquire), "
              "p99 acquire %.3f ms\n",
              static_cast<unsigned long long>(report.acquires),
              static_cast<unsigned long long>(report.total_messages),
              report.messages_per_acquire, report.acquire_p99_ms);
  return cs_entries.load() == workers ? 0 : 1;
}

int run_remote(const std::string& host, std::uint16_t port) {
  using namespace elect;
  std::vector<std::unique_ptr<net::client>> clients;
  for (int w = 0; w < workers; ++w) {
    clients.push_back(std::make_unique<net::client>(host, port));
    if (!clients.back()->connected()) {
      std::fprintf(stderr,
                   "connect to %s:%u failed — is elect_server running?\n",
                   host.c_str(), port);
      return 1;
    }
  }

  std::printf("%d remote workers contending over TCP %s:%u:\n", workers,
              host.c_str(), port);
  std::vector<std::thread> threads;
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back(
        [&, w] { contend(*clients[static_cast<std::size_t>(w)], w); });
  }
  for (auto& t : threads) t.join();

  std::printf("critical-section entries: %d (expected %d), never more "
              "than one holder at a time.\n",
              cs_entries.load(), workers);
  // Polite exit: release server-side state now instead of via the
  // close hook.
  for (auto& client : clients) (void)client->disconnect();
  return cs_entries.load() == workers ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--remote") == 0) {
      const std::string target = argv[i + 1];
      const std::size_t colon = target.rfind(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "--remote wants host:port\n");
        return 2;
      }
      return run_remote(target.substr(0, colon),
                        static_cast<std::uint16_t>(
                            std::atoi(target.c_str() + colon + 1)));
    }
  }
  return run_local();
}
