// A distributed lock built on the election service — the "mutual
// exclusion" direction the paper's Future Work suggests.
//
// One svc::service key is the lock. Each worker thread opens a session
// and calls acquire(key): under the hood the service runs one Figure-6
// leader-election instance per epoch, the unique winner holds the lock,
// and release() bumps the key's epoch, which both wakes the blocked
// losers and starts a fresh election for them to contend in. Mutual
// exclusion per epoch is inherited directly from the unique-winner
// guarantee of test-and-set; fair hand-off comes from repeated epochs.
//
// Contrast with the pre-service version of this example, which busy-
// waited on a hand-rolled release flag: sessions now sleep on the
// registry's epoch condition variable until the holder releases.
//
// Build & run:  ./build/examples/lock_service
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "svc/service.hpp"

int main() {
  using namespace elect;
  constexpr int workers = 4;
  const std::string lock_key = "locks/demo";

  svc::service service(
      svc::service_config{.nodes = workers, .shards = 2, .seed = 11});
  std::vector<svc::service::session> sessions;
  for (int w = 0; w < workers; ++w) sessions.push_back(service.connect());

  std::atomic<int> holders_inside{0};
  std::atomic<int> cs_entries{0};

  std::printf("%d workers contending for a distributed lock:\n", workers);
  std::vector<std::thread> threads;
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      auto& session = sessions[static_cast<std::size_t>(w)];
      const auto held = session.acquire(lock_key);
      // ---- critical section ----
      const int concurrent = holders_inside.fetch_add(1) + 1;
      ELECT_CHECK_MSG(concurrent == 1, "mutual exclusion violated");
      cs_entries.fetch_add(1);
      std::printf("  epoch %2llu: worker %d in the critical section\n",
                  static_cast<unsigned long long>(held.epoch), w);
      holders_inside.fetch_sub(1);
      // ---- release: wakes the losers into a fresh election ----
      session.release(lock_key);
    });
  }
  for (auto& t : threads) t.join();

  const auto report = service.report();
  std::printf("critical-section entries: %d (expected %d), never more "
              "than one holder at a time.\n",
              cs_entries.load(), workers);
  std::printf("service: %llu acquires, %llu messages (%.1f msg/acquire), "
              "p99 acquire %.3f ms\n",
              static_cast<unsigned long long>(report.acquires),
              static_cast<unsigned long long>(report.total_messages),
              report.messages_per_acquire, report.acquire_p99_ms);
  return cs_entries.load() == workers ? 0 : 1;
}
