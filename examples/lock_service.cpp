// A distributed lock built on the election service — the "mutual
// exclusion" direction the paper's Future Work suggests.
//
// One service key is the lock. Each worker opens an api::client and
// calls acquire(key): under the hood the service runs one election
// instance per epoch, the unique winner holds the lock as an RAII
// lease, and destroying the lease bumps the key's epoch — which both
// wakes the blocked losers and starts a fresh election for them to
// contend in. Mutual exclusion per epoch is inherited directly from
// the unique-winner guarantee of test-and-set; fair hand-off comes
// from repeated epochs.
//
// Two modes, ONE code path — that is the point of elect::api. The
// worker below is written once against api::client; the only
// difference between the modes is how the client is constructed:
//
//   ./build/examples/lock_service
//       in-process: clients on a local service.
//
//   ./build/examples/lock_service --remote 127.0.0.1:7400
//       remote: clients are TCP connections to a running elect_server
//       (see examples/elect_server.cpp). The unique-winner guarantee
//       now spans processes and hosts, and a worker that crashes
//       mid-hold is fenced by the server's disconnect-on-close hook +
//       lease TTL. (Before elect::api this file forked into a session
//       path and a net::client path.)
#include <atomic>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "api/client.hpp"
#include "common/check.hpp"
#include "svc/service.hpp"

namespace {

constexpr int workers = 4;
const std::string lock_key = "locks/demo";

std::atomic<int> holders_inside{0};
std::atomic<int> cs_entries{0};

/// One worker's life. Written once; local and remote clients behave
/// identically behind the facade.
void contend(elect::api::client& client, int worker) {
  elect::api::acquired held = client.acquire(lock_key);
  ELECT_CHECK_MSG(held.won(), "acquire failed");
  // ---- critical section ----
  const int concurrent = holders_inside.fetch_add(1) + 1;
  ELECT_CHECK_MSG(concurrent == 1, "mutual exclusion violated");
  cs_entries.fetch_add(1);
  std::printf("  epoch %2llu: worker %d in the critical section\n",
              static_cast<unsigned long long>(held.epoch), worker);
  holders_inside.fetch_sub(1);
  // ---- `held` leaves scope: RAII release wakes the losers ----
}

int run(const std::function<std::unique_ptr<elect::api::client>()>& connect,
        elect::svc::service* local) {
  std::vector<std::unique_ptr<elect::api::client>> clients;
  for (int w = 0; w < workers; ++w) {
    clients.push_back(connect());
    if (!clients.back()->connected()) {
      std::fprintf(stderr,
                   "client %d failed to connect — is elect_server "
                   "running?\n",
                   w);
      return 1;
    }
  }

  std::printf("%d workers contending for a distributed lock:\n", workers);
  std::vector<std::thread> threads;
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back(
        [&, w] { contend(*clients[static_cast<std::size_t>(w)], w); });
  }
  for (auto& t : threads) t.join();

  std::printf("critical-section entries: %d (expected %d), never more "
              "than one holder at a time.\n",
              cs_entries.load(), workers);
  if (local != nullptr) {
    const auto report = local->report();
    std::printf("service: %llu acquires, %llu messages (%.1f msg/acquire), "
                "p99 acquire %.3f ms\n",
                static_cast<unsigned long long>(report.acquires),
                static_cast<unsigned long long>(report.total_messages),
                report.messages_per_acquire, report.acquire_p99_ms);
  }
  return cs_entries.load() == workers ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace elect;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--remote") == 0) {
      const std::string endpoint = argv[i + 1];
      return run(
          [&] { return std::make_unique<api::client>(endpoint); },
          /*local=*/nullptr);
    }
  }
  svc::service service(
      svc::service_config{.nodes = workers, .shards = 2, .seed = 11});
  return run([&] { return std::make_unique<api::client>(service); },
             &service);
}
