// Adversary lab: watch scheduling strategies attack the protocols.
//
// Reproduces, at demo scale, the story of the paper's introduction:
//   1. a naive sifting round looks great under a benign scheduler;
//   2. a strong adaptive adversary that inspects coin flips destroys it
//      (everyone survives);
//   3. the PoisonPill commit stage takes that power away;
//   4. crash faults (up to ceil(n/2)-1) do not break leader election.
//
// Build & run:  ./build/examples/adversary_lab
#include <cstdio>
#include <string>
#include <vector>

#include "exp/harness.hpp"

int main() {
  using namespace elect;
  constexpr int n = 49;  // sqrt(n) = 7

  const auto survivors = [&](exp::algo kind, const std::string& adversary) {
    double total = 0;
    const int trials = 10;
    for (int t = 0; t < trials; ++t) {
      exp::trial_config config;
      config.kind = kind;
      config.n = n;
      config.seed = 1 + static_cast<std::uint64_t>(t);
      config.adversary = adversary;
      total += exp::run_trial(config).winners;
    }
    return total / trials;
  };

  std::printf("n = %d participants, one elimination phase, mean over 10 "
              "runs (sqrt(n) = 7):\n\n", n);
  std::printf("  naive sifter, benign scheduler:       %5.1f survivors\n",
              survivors(exp::algo::naive_sifter, "uniform"));
  std::printf("  naive sifter, flip-inspecting adversary: %5.1f survivors "
              "(attack succeeds — nobody was eliminated)\n",
              survivors(exp::algo::naive_sifter, "flip-adaptive"));
  std::printf("  PoisonPill, same adversary:            %5.1f survivors "
              "(commit stage defuses the attack)\n",
              survivors(exp::algo::plain_pp_phase, "flip-adaptive"));
  std::printf("  PoisonPill, sequential adversary:      %5.1f survivors "
              "(the Θ(sqrt n) worst case)\n",
              survivors(exp::algo::plain_pp_phase, "sequential"));
  std::printf("  Heterogeneous PoisonPill, sequential:  %5.1f survivors "
              "(the paper's O(log^2 n) fix)\n",
              survivors(exp::algo::het_pp_phase, "sequential"));

  // Crash faults: the full election still elects at most one leader and
  // every surviving processor terminates.
  std::printf("\nfull election under maximal crash injection "
              "(t = ceil(n/2)-1 = %d):\n", max_crash_faults(n));
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    exp::trial_config config;
    config.kind = exp::algo::leader_elect;
    config.n = n;
    config.seed = seed;
    config.adversary = "uniform";
    config.crashes = max_crash_faults(n);
    const auto result = exp::run_trial(config);
    std::printf("  seed %llu: completed=%s winners=%d crashed=%d\n",
                static_cast<unsigned long long>(seed),
                result.completed ? "yes" : "no", result.winners,
                result.crashed_participants);
  }
  return 0;
}
