// Leader failover after a client crash — the lease-based answer to "what
// if the winner never calls release()?".
//
// A primary session wins the election for a key and then "crashes": its
// thread exits without releasing, exactly what a killed process or a
// network partition looks like to the service. Without leases the key
// would be wedged forever and the standby would block in acquire() for
// good. With a TTL the sweeper force-releases the dead lease, the
// standby's blocked acquire wakes into a fresh election and wins, and
// when the old primary comes back as a zombie its release()/renew() with
// the stale epoch are fenced off — the standby's leadership is untouched.
//
// Build & run:  ./build/examples/lease_failover
#include <chrono>
#include <cstdio>
#include <thread>

#include "common/check.hpp"
#include "svc/service.hpp"

int main() {
  using namespace elect;
  using clock = std::chrono::steady_clock;
  const std::string key = "primary/db";

  svc::service service(svc::service_config{.nodes = 4,
                                           .shards = 2,
                                           .seed = 42,
                                           .lease_ttl_ms = 100,
                                           .sweep_interval_ms = 20});
  auto primary = service.connect();
  auto standby = service.connect();

  // The primary wins and then crashes mid-lease: no release, no renew.
  const auto held = primary.try_acquire(key);
  ELECT_CHECK_MSG(held.won, "solo acquire must win");
  std::printf("primary (session %d) elected at epoch %llu, lease ttl %llu "
              "ms — and now it crashes without releasing.\n",
              primary.id(), static_cast<unsigned long long>(held.epoch),
              static_cast<unsigned long long>(service.config().lease_ttl_ms));

  // The standby blocks in acquire(). Only the lease sweeper can unblock
  // it; measure how long failover takes end to end.
  const auto before = clock::now();
  const auto takeover = standby.acquire(key);
  const auto failover_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(clock::now() -
                                                            before)
          .count();
  ELECT_CHECK_MSG(takeover.won, "standby must inherit the key");
  ELECT_CHECK_MSG(takeover.epoch > held.epoch,
                  "failover must land in a later epoch");
  std::printf("standby (session %d) took over at epoch %llu after ~%lld ms "
              "(ttl + sweep interval).\n",
              standby.id(),
              static_cast<unsigned long long>(takeover.epoch),
              static_cast<long long>(failover_ms));

  // The "dead" primary resurfaces and tries to act on its old lease. The
  // epoch fence turns both calls away; the standby keeps the key.
  const auto zombie_release = primary.release(key, held.epoch);
  const auto zombie_renew = primary.renew(key, held.epoch);
  ELECT_CHECK(zombie_release == svc::lease_status::stale_epoch);
  ELECT_CHECK(zombie_renew == svc::lease_status::stale_epoch);
  ELECT_CHECK(service.registry().leader_of(key) == standby.id());
  std::printf("zombie primary came back: release -> stale_epoch, renew -> "
              "stale_epoch; standby still leads.\n");

  // The standby is a well-behaved leader: it renews while working, then
  // steps down gracefully.
  for (int i = 0; i < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    ELECT_CHECK(standby.renew(key, takeover.epoch) == svc::lease_status::ok);
  }
  ELECT_CHECK(standby.release(key, takeover.epoch) == svc::lease_status::ok);

  const auto report = service.report();
  std::printf("service: %llu acquires, %llu expirations, %llu renewals, "
              "%llu stale fences.\n",
              static_cast<unsigned long long>(report.acquires),
              static_cast<unsigned long long>(report.expirations),
              static_cast<unsigned long long>(report.renewals),
              static_cast<unsigned long long>(report.stale_fences));
  return report.expirations >= 1 && report.stale_fences >= 2 ? 0 : 1;
}
