// Leader failover after a client crash — the lease-based answer to
// "what if the winner never calls release()?", through elect::api.
//
// A primary wins the election for a key and then "crashes":
// lease.abandon() walks away without releasing and stops the
// heartbeat, exactly what a killed process looks like to the service.
// Without leases the key would be wedged forever. With a TTL the
// sweeper force-releases the dead lease, the standby's blocked
// acquire wakes into a fresh election and wins, and when the old
// primary comes back as a zombie its release() with the stale claim is
// fenced off — the standby's leadership is untouched. A watch on the
// key narrates every transition as it happens.
//
// Contrast with the pre-api version of this example, which hand-carried
// the winning epoch into renew()/release() calls on a timer: here the
// heartbeat renews automatically at TTL/3 (the standby holds the key
// across several TTLs below without a single explicit renew), and the
// epoch lives inside the lease.
//
// Build & run:  ./build/examples/lease_failover
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "api/client.hpp"
#include "common/check.hpp"
#include "svc/service.hpp"

int main() {
  using namespace elect;
  using clock = std::chrono::steady_clock;
  const std::string key = "primary/db";

  svc::service service(svc::service_config{.nodes = 4,
                                           .shards = 2,
                                           .seed = 42,
                                           .lease_ttl_ms = 100,
                                           .sweep_interval_ms = 20});
  api::client primary(service);
  api::client standby(service);
  api::client observer(service);

  std::atomic<int> expirations_seen{0};
  api::subscription sub =
      observer.watch(key, [&](const api::watch_event& e) {
        std::printf("  [watch] %s at epoch %llu\n",
                    std::string(svc::to_string(e.kind)).c_str(),
                    static_cast<unsigned long long>(e.epoch));
        if (e.kind == api::transition::expired) expirations_seen.fetch_add(1);
      });

  // The primary wins and then crashes mid-lease: no release, no renew.
  api::acquired held = primary.try_acquire(key);
  ELECT_CHECK_MSG(held.won(), "solo acquire must win");
  std::printf("primary elected at epoch %llu, lease ttl %llu ms — and now "
              "it crashes without releasing.\n",
              static_cast<unsigned long long>(held.epoch),
              static_cast<unsigned long long>(service.config().lease_ttl_ms));
  held.lease.abandon();

  // The standby blocks in acquire(). Only the lease sweeper can unblock
  // it; measure how long failover takes end to end.
  const auto before = clock::now();
  api::acquired takeover = standby.acquire(key);
  const auto failover_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(clock::now() -
                                                            before)
          .count();
  ELECT_CHECK_MSG(takeover.won(), "standby must inherit the key");
  ELECT_CHECK_MSG(takeover.epoch > held.epoch,
                  "failover must land in a later epoch");
  std::printf("standby took over at epoch %llu after ~%lld ms "
              "(ttl + sweep interval).\n",
              static_cast<unsigned long long>(takeover.epoch),
              static_cast<long long>(failover_ms));

  // The "dead" primary resurfaces and tries to step down with its old
  // claim. The epoch fence turns it away; the standby keeps the key.
  ELECT_CHECK(held.lease.release() == api::lease_status::stale_epoch);
  std::printf("zombie primary came back: release -> stale_epoch; standby "
              "still leads.\n");

  // The standby just keeps working: the client's heartbeat renews the
  // lease at TTL/3 under it. Three full TTLs pass with zero explicit
  // renew calls and leadership holds.
  std::this_thread::sleep_for(std::chrono::milliseconds(
      3 * service.config().lease_ttl_ms));
  ELECT_CHECK_MSG(takeover.lease.held() && !takeover.lease.lost(),
                  "auto-renew must carry the lease past 3x TTL");
  ELECT_CHECK(takeover.lease.release() == api::lease_status::ok);

  const auto report = service.report();
  std::printf("service: %llu acquires, %llu expirations, %llu renewals, "
              "%llu stale fences; watch saw %d expiry.\n",
              static_cast<unsigned long long>(report.acquires),
              static_cast<unsigned long long>(report.expirations),
              static_cast<unsigned long long>(report.renewals),
              static_cast<unsigned long long>(report.stale_fences),
              expirations_seen.load());
  return report.expirations >= 1 && report.renewals >= 3 &&
                 report.stale_fences >= 1
             ? 0
             : 1;
}
