file(REMOVE_RECURSE
  "CMakeFiles/test_renaming.dir/tests/test_renaming.cpp.o"
  "CMakeFiles/test_renaming.dir/tests/test_renaming.cpp.o.d"
  "tests/test_renaming"
  "tests/test_renaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_renaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
