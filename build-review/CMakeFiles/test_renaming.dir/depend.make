# Empty dependencies file for test_renaming.
# This may be replaced when dependencies are built.
