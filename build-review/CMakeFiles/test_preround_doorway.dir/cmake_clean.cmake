file(REMOVE_RECURSE
  "CMakeFiles/test_preround_doorway.dir/tests/test_preround_doorway.cpp.o"
  "CMakeFiles/test_preround_doorway.dir/tests/test_preround_doorway.cpp.o.d"
  "tests/test_preround_doorway"
  "tests/test_preround_doorway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_preround_doorway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
