# Empty dependencies file for test_preround_doorway.
# This may be replaced when dependencies are built.
