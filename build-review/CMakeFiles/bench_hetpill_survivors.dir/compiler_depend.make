# Empty compiler generated dependencies file for bench_hetpill_survivors.
# This may be replaced when dependencies are built.
