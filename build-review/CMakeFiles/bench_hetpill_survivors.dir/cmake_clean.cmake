file(REMOVE_RECURSE
  "CMakeFiles/bench_hetpill_survivors.dir/bench/bench_hetpill_survivors.cpp.o"
  "CMakeFiles/bench_hetpill_survivors.dir/bench/bench_hetpill_survivors.cpp.o.d"
  "bench/bench_hetpill_survivors"
  "bench/bench_hetpill_survivors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hetpill_survivors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
