# Empty dependencies file for test_svc_strategy.
# This may be replaced when dependencies are built.
