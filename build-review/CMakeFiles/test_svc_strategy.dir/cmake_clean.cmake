file(REMOVE_RECURSE
  "CMakeFiles/test_svc_strategy.dir/tests/test_svc_strategy.cpp.o"
  "CMakeFiles/test_svc_strategy.dir/tests/test_svc_strategy.cpp.o.d"
  "tests/test_svc_strategy"
  "tests/test_svc_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_svc_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
