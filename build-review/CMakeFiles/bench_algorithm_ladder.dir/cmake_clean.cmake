file(REMOVE_RECURSE
  "CMakeFiles/bench_algorithm_ladder.dir/bench/bench_algorithm_ladder.cpp.o"
  "CMakeFiles/bench_algorithm_ladder.dir/bench/bench_algorithm_ladder.cpp.o.d"
  "bench/bench_algorithm_ladder"
  "bench/bench_algorithm_ladder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_algorithm_ladder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
