# Empty compiler generated dependencies file for bench_algorithm_ladder.
# This may be replaced when dependencies are built.
