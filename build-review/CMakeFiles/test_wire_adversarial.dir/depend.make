# Empty dependencies file for test_wire_adversarial.
# This may be replaced when dependencies are built.
