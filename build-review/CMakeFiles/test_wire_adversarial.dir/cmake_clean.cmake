file(REMOVE_RECURSE
  "CMakeFiles/test_wire_adversarial.dir/tests/test_wire_adversarial.cpp.o"
  "CMakeFiles/test_wire_adversarial.dir/tests/test_wire_adversarial.cpp.o.d"
  "tests/test_wire_adversarial"
  "tests/test_wire_adversarial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wire_adversarial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
