# Empty compiler generated dependencies file for test_engine_node.
# This may be replaced when dependencies are built.
