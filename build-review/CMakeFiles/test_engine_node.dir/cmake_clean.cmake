file(REMOVE_RECURSE
  "CMakeFiles/test_engine_node.dir/tests/test_engine_node.cpp.o"
  "CMakeFiles/test_engine_node.dir/tests/test_engine_node.cpp.o.d"
  "tests/test_engine_node"
  "tests/test_engine_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
