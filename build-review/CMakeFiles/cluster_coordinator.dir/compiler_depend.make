# Empty compiler generated dependencies file for cluster_coordinator.
# This may be replaced when dependencies are built.
