file(REMOVE_RECURSE
  "CMakeFiles/cluster_coordinator.dir/examples/cluster_coordinator.cpp.o"
  "CMakeFiles/cluster_coordinator.dir/examples/cluster_coordinator.cpp.o.d"
  "examples/cluster_coordinator"
  "examples/cluster_coordinator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_coordinator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
