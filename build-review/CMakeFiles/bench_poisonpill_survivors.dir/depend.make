# Empty dependencies file for bench_poisonpill_survivors.
# This may be replaced when dependencies are built.
