file(REMOVE_RECURSE
  "CMakeFiles/bench_poisonpill_survivors.dir/bench/bench_poisonpill_survivors.cpp.o"
  "CMakeFiles/bench_poisonpill_survivors.dir/bench/bench_poisonpill_survivors.cpp.o.d"
  "bench/bench_poisonpill_survivors"
  "bench/bench_poisonpill_survivors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_poisonpill_survivors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
