# Empty dependencies file for test_het_poison_pill.
# This may be replaced when dependencies are built.
