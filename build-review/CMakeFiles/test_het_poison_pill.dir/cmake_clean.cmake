file(REMOVE_RECURSE
  "CMakeFiles/test_het_poison_pill.dir/tests/test_het_poison_pill.cpp.o"
  "CMakeFiles/test_het_poison_pill.dir/tests/test_het_poison_pill.cpp.o.d"
  "tests/test_het_poison_pill"
  "tests/test_het_poison_pill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_het_poison_pill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
