file(REMOVE_RECURSE
  "CMakeFiles/test_history.dir/tests/test_history.cpp.o"
  "CMakeFiles/test_history.dir/tests/test_history.cpp.o.d"
  "tests/test_history"
  "tests/test_history.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_history.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
