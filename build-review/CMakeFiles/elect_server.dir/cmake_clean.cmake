file(REMOVE_RECURSE
  "CMakeFiles/elect_server.dir/examples/elect_server.cpp.o"
  "CMakeFiles/elect_server.dir/examples/elect_server.cpp.o.d"
  "examples/elect_server"
  "examples/elect_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elect_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
