# Empty compiler generated dependencies file for elect_server.
# This may be replaced when dependencies are built.
