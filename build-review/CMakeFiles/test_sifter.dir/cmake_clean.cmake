file(REMOVE_RECURSE
  "CMakeFiles/test_sifter.dir/tests/test_sifter.cpp.o"
  "CMakeFiles/test_sifter.dir/tests/test_sifter.cpp.o.d"
  "tests/test_sifter"
  "tests/test_sifter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sifter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
