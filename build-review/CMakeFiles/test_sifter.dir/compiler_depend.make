# Empty compiler generated dependencies file for test_sifter.
# This may be replaced when dependencies are built.
