file(REMOVE_RECURSE
  "CMakeFiles/bench_sifter_vs_adaptive.dir/bench/bench_sifter_vs_adaptive.cpp.o"
  "CMakeFiles/bench_sifter_vs_adaptive.dir/bench/bench_sifter_vs_adaptive.cpp.o.d"
  "bench/bench_sifter_vs_adaptive"
  "bench/bench_sifter_vs_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sifter_vs_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
