# Empty dependencies file for bench_sifter_vs_adaptive.
# This may be replaced when dependencies are built.
