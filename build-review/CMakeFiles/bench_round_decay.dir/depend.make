# Empty dependencies file for bench_round_decay.
# This may be replaced when dependencies are built.
