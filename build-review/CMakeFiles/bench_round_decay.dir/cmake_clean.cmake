file(REMOVE_RECURSE
  "CMakeFiles/bench_round_decay.dir/bench/bench_round_decay.cpp.o"
  "CMakeFiles/bench_round_decay.dir/bench/bench_round_decay.cpp.o.d"
  "bench/bench_round_decay"
  "bench/bench_round_decay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_round_decay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
