# Empty compiler generated dependencies file for bench_adaptivity.
# This may be replaced when dependencies are built.
