file(REMOVE_RECURSE
  "CMakeFiles/bench_adaptivity.dir/bench/bench_adaptivity.cpp.o"
  "CMakeFiles/bench_adaptivity.dir/bench/bench_adaptivity.cpp.o.d"
  "bench/bench_adaptivity"
  "bench/bench_adaptivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adaptivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
