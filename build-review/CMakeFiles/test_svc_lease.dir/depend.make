# Empty dependencies file for test_svc_lease.
# This may be replaced when dependencies are built.
