file(REMOVE_RECURSE
  "CMakeFiles/test_svc_lease.dir/tests/test_svc_lease.cpp.o"
  "CMakeFiles/test_svc_lease.dir/tests/test_svc_lease.cpp.o.d"
  "tests/test_svc_lease"
  "tests/test_svc_lease.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_svc_lease.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
