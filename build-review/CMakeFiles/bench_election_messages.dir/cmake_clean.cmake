file(REMOVE_RECURSE
  "CMakeFiles/bench_election_messages.dir/bench/bench_election_messages.cpp.o"
  "CMakeFiles/bench_election_messages.dir/bench/bench_election_messages.cpp.o.d"
  "bench/bench_election_messages"
  "bench/bench_election_messages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_election_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
