# Empty compiler generated dependencies file for bench_election_messages.
# This may be replaced when dependencies are built.
