# Empty dependencies file for test_mt.
# This may be replaced when dependencies are built.
