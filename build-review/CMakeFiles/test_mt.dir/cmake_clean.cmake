file(REMOVE_RECURSE
  "CMakeFiles/test_mt.dir/tests/test_mt.cpp.o"
  "CMakeFiles/test_mt.dir/tests/test_mt.cpp.o.d"
  "tests/test_mt"
  "tests/test_mt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
