# Empty dependencies file for adversary_lab.
# This may be replaced when dependencies are built.
