file(REMOVE_RECURSE
  "CMakeFiles/adversary_lab.dir/examples/adversary_lab.cpp.o"
  "CMakeFiles/adversary_lab.dir/examples/adversary_lab.cpp.o.d"
  "examples/adversary_lab"
  "examples/adversary_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adversary_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
