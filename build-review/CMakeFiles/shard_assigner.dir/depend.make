# Empty dependencies file for shard_assigner.
# This may be replaced when dependencies are built.
