file(REMOVE_RECURSE
  "CMakeFiles/shard_assigner.dir/examples/shard_assigner.cpp.o"
  "CMakeFiles/shard_assigner.dir/examples/shard_assigner.cpp.o.d"
  "examples/shard_assigner"
  "examples/shard_assigner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shard_assigner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
