# Empty compiler generated dependencies file for bench_api_facade.
# This may be replaced when dependencies are built.
