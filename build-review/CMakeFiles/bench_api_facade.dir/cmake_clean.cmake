file(REMOVE_RECURSE
  "CMakeFiles/bench_api_facade.dir/bench/bench_api_facade.cpp.o"
  "CMakeFiles/bench_api_facade.dir/bench/bench_api_facade.cpp.o.d"
  "bench/bench_api_facade"
  "bench/bench_api_facade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_api_facade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
