# Empty dependencies file for test_poison_pill.
# This may be replaced when dependencies are built.
