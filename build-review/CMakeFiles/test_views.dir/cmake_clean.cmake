file(REMOVE_RECURSE
  "CMakeFiles/test_views.dir/tests/test_views.cpp.o"
  "CMakeFiles/test_views.dir/tests/test_views.cpp.o.d"
  "tests/test_views"
  "tests/test_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
