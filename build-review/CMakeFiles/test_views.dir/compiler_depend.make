# Empty compiler generated dependencies file for test_views.
# This may be replaced when dependencies are built.
