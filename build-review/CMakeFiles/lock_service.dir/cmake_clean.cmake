file(REMOVE_RECURSE
  "CMakeFiles/lock_service.dir/examples/lock_service.cpp.o"
  "CMakeFiles/lock_service.dir/examples/lock_service.cpp.o.d"
  "examples/lock_service"
  "examples/lock_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lock_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
