# Empty dependencies file for lock_service.
# This may be replaced when dependencies are built.
