file(REMOVE_RECURSE
  "libelect_core.a"
)
