# Empty dependencies file for elect_core.
# This may be replaced when dependencies are built.
