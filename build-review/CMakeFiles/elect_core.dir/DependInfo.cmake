
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/abd/register.cpp" "CMakeFiles/elect_core.dir/src/abd/register.cpp.o" "gcc" "CMakeFiles/elect_core.dir/src/abd/register.cpp.o.d"
  "/root/repo/src/api/backend.cpp" "CMakeFiles/elect_core.dir/src/api/backend.cpp.o" "gcc" "CMakeFiles/elect_core.dir/src/api/backend.cpp.o.d"
  "/root/repo/src/api/client.cpp" "CMakeFiles/elect_core.dir/src/api/client.cpp.o" "gcc" "CMakeFiles/elect_core.dir/src/api/client.cpp.o.d"
  "/root/repo/src/consensus/quorum_consensus.cpp" "CMakeFiles/elect_core.dir/src/consensus/quorum_consensus.cpp.o" "gcc" "CMakeFiles/elect_core.dir/src/consensus/quorum_consensus.cpp.o.d"
  "/root/repo/src/election/doorway.cpp" "CMakeFiles/elect_core.dir/src/election/doorway.cpp.o" "gcc" "CMakeFiles/elect_core.dir/src/election/doorway.cpp.o.d"
  "/root/repo/src/election/het_poison_pill.cpp" "CMakeFiles/elect_core.dir/src/election/het_poison_pill.cpp.o" "gcc" "CMakeFiles/elect_core.dir/src/election/het_poison_pill.cpp.o.d"
  "/root/repo/src/election/history.cpp" "CMakeFiles/elect_core.dir/src/election/history.cpp.o" "gcc" "CMakeFiles/elect_core.dir/src/election/history.cpp.o.d"
  "/root/repo/src/election/leader_elect.cpp" "CMakeFiles/elect_core.dir/src/election/leader_elect.cpp.o" "gcc" "CMakeFiles/elect_core.dir/src/election/leader_elect.cpp.o.d"
  "/root/repo/src/election/poison_pill.cpp" "CMakeFiles/elect_core.dir/src/election/poison_pill.cpp.o" "gcc" "CMakeFiles/elect_core.dir/src/election/poison_pill.cpp.o.d"
  "/root/repo/src/election/preround.cpp" "CMakeFiles/elect_core.dir/src/election/preround.cpp.o" "gcc" "CMakeFiles/elect_core.dir/src/election/preround.cpp.o.d"
  "/root/repo/src/election/recursive_pill.cpp" "CMakeFiles/elect_core.dir/src/election/recursive_pill.cpp.o" "gcc" "CMakeFiles/elect_core.dir/src/election/recursive_pill.cpp.o.d"
  "/root/repo/src/election/sifter.cpp" "CMakeFiles/elect_core.dir/src/election/sifter.cpp.o" "gcc" "CMakeFiles/elect_core.dir/src/election/sifter.cpp.o.d"
  "/root/repo/src/election/strategy.cpp" "CMakeFiles/elect_core.dir/src/election/strategy.cpp.o" "gcc" "CMakeFiles/elect_core.dir/src/election/strategy.cpp.o.d"
  "/root/repo/src/election/tournament.cpp" "CMakeFiles/elect_core.dir/src/election/tournament.cpp.o" "gcc" "CMakeFiles/elect_core.dir/src/election/tournament.cpp.o.d"
  "/root/repo/src/engine/message.cpp" "CMakeFiles/elect_core.dir/src/engine/message.cpp.o" "gcc" "CMakeFiles/elect_core.dir/src/engine/message.cpp.o.d"
  "/root/repo/src/engine/node.cpp" "CMakeFiles/elect_core.dir/src/engine/node.cpp.o" "gcc" "CMakeFiles/elect_core.dir/src/engine/node.cpp.o.d"
  "/root/repo/src/engine/values.cpp" "CMakeFiles/elect_core.dir/src/engine/values.cpp.o" "gcc" "CMakeFiles/elect_core.dir/src/engine/values.cpp.o.d"
  "/root/repo/src/exp/harness.cpp" "CMakeFiles/elect_core.dir/src/exp/harness.cpp.o" "gcc" "CMakeFiles/elect_core.dir/src/exp/harness.cpp.o.d"
  "/root/repo/src/exp/table.cpp" "CMakeFiles/elect_core.dir/src/exp/table.cpp.o" "gcc" "CMakeFiles/elect_core.dir/src/exp/table.cpp.o.d"
  "/root/repo/src/mt/cluster.cpp" "CMakeFiles/elect_core.dir/src/mt/cluster.cpp.o" "gcc" "CMakeFiles/elect_core.dir/src/mt/cluster.cpp.o.d"
  "/root/repo/src/net/client.cpp" "CMakeFiles/elect_core.dir/src/net/client.cpp.o" "gcc" "CMakeFiles/elect_core.dir/src/net/client.cpp.o.d"
  "/root/repo/src/net/server.cpp" "CMakeFiles/elect_core.dir/src/net/server.cpp.o" "gcc" "CMakeFiles/elect_core.dir/src/net/server.cpp.o.d"
  "/root/repo/src/net/wire.cpp" "CMakeFiles/elect_core.dir/src/net/wire.cpp.o" "gcc" "CMakeFiles/elect_core.dir/src/net/wire.cpp.o.d"
  "/root/repo/src/renaming/baseline_renaming.cpp" "CMakeFiles/elect_core.dir/src/renaming/baseline_renaming.cpp.o" "gcc" "CMakeFiles/elect_core.dir/src/renaming/baseline_renaming.cpp.o.d"
  "/root/repo/src/renaming/renaming.cpp" "CMakeFiles/elect_core.dir/src/renaming/renaming.cpp.o" "gcc" "CMakeFiles/elect_core.dir/src/renaming/renaming.cpp.o.d"
  "/root/repo/src/sim/kernel.cpp" "CMakeFiles/elect_core.dir/src/sim/kernel.cpp.o" "gcc" "CMakeFiles/elect_core.dir/src/sim/kernel.cpp.o.d"
  "/root/repo/src/svc/metrics.cpp" "CMakeFiles/elect_core.dir/src/svc/metrics.cpp.o" "gcc" "CMakeFiles/elect_core.dir/src/svc/metrics.cpp.o.d"
  "/root/repo/src/svc/registry.cpp" "CMakeFiles/elect_core.dir/src/svc/registry.cpp.o" "gcc" "CMakeFiles/elect_core.dir/src/svc/registry.cpp.o.d"
  "/root/repo/src/svc/service.cpp" "CMakeFiles/elect_core.dir/src/svc/service.cpp.o" "gcc" "CMakeFiles/elect_core.dir/src/svc/service.cpp.o.d"
  "/root/repo/src/svc/watch.cpp" "CMakeFiles/elect_core.dir/src/svc/watch.cpp.o" "gcc" "CMakeFiles/elect_core.dir/src/svc/watch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
