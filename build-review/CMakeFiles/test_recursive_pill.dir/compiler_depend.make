# Empty compiler generated dependencies file for test_recursive_pill.
# This may be replaced when dependencies are built.
