file(REMOVE_RECURSE
  "CMakeFiles/test_recursive_pill.dir/tests/test_recursive_pill.cpp.o"
  "CMakeFiles/test_recursive_pill.dir/tests/test_recursive_pill.cpp.o.d"
  "tests/test_recursive_pill"
  "tests/test_recursive_pill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_recursive_pill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
