# Empty dependencies file for test_values.
# This may be replaced when dependencies are built.
