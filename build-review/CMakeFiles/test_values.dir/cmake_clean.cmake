file(REMOVE_RECURSE
  "CMakeFiles/test_values.dir/tests/test_values.cpp.o"
  "CMakeFiles/test_values.dir/tests/test_values.cpp.o.d"
  "tests/test_values"
  "tests/test_values.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_values.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
