# Empty dependencies file for bench_bias_ablation.
# This may be replaced when dependencies are built.
