file(REMOVE_RECURSE
  "CMakeFiles/bench_bias_ablation.dir/bench/bench_bias_ablation.cpp.o"
  "CMakeFiles/bench_bias_ablation.dir/bench/bench_bias_ablation.cpp.o.d"
  "bench/bench_bias_ablation"
  "bench/bench_bias_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bias_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
