file(REMOVE_RECURSE
  "CMakeFiles/test_election.dir/tests/test_election.cpp.o"
  "CMakeFiles/test_election.dir/tests/test_election.cpp.o.d"
  "tests/test_election"
  "tests/test_election.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_election.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
