file(REMOVE_RECURSE
  "CMakeFiles/test_svc_metrics.dir/tests/test_svc_metrics.cpp.o"
  "CMakeFiles/test_svc_metrics.dir/tests/test_svc_metrics.cpp.o.d"
  "tests/test_svc_metrics"
  "tests/test_svc_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_svc_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
