file(REMOVE_RECURSE
  "CMakeFiles/bench_net_loopback.dir/bench/bench_net_loopback.cpp.o"
  "CMakeFiles/bench_net_loopback.dir/bench/bench_net_loopback.cpp.o.d"
  "bench/bench_net_loopback"
  "bench/bench_net_loopback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_net_loopback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
