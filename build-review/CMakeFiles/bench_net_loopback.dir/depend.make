# Empty dependencies file for bench_net_loopback.
# This may be replaced when dependencies are built.
