file(REMOVE_RECURSE
  "CMakeFiles/bench_mt_latency.dir/bench/bench_mt_latency.cpp.o"
  "CMakeFiles/bench_mt_latency.dir/bench/bench_mt_latency.cpp.o.d"
  "bench/bench_mt_latency"
  "bench/bench_mt_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mt_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
