# Empty compiler generated dependencies file for bench_mt_latency.
# This may be replaced when dependencies are built.
