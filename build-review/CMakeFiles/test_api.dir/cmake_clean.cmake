file(REMOVE_RECURSE
  "CMakeFiles/test_api.dir/tests/test_api.cpp.o"
  "CMakeFiles/test_api.dir/tests/test_api.cpp.o.d"
  "tests/test_api"
  "tests/test_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
