file(REMOVE_RECURSE
  "CMakeFiles/bench_svc_throughput.dir/bench/bench_svc_throughput.cpp.o"
  "CMakeFiles/bench_svc_throughput.dir/bench/bench_svc_throughput.cpp.o.d"
  "bench/bench_svc_throughput"
  "bench/bench_svc_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_svc_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
