# Empty dependencies file for test_tournament.
# This may be replaced when dependencies are built.
