file(REMOVE_RECURSE
  "CMakeFiles/test_tournament.dir/tests/test_tournament.cpp.o"
  "CMakeFiles/test_tournament.dir/tests/test_tournament.cpp.o.d"
  "tests/test_tournament"
  "tests/test_tournament.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tournament.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
