file(REMOVE_RECURSE
  "CMakeFiles/bench_election_time.dir/bench/bench_election_time.cpp.o"
  "CMakeFiles/bench_election_time.dir/bench/bench_election_time.cpp.o.d"
  "bench/bench_election_time"
  "bench/bench_election_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_election_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
