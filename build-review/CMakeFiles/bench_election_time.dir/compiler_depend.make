# Empty compiler generated dependencies file for bench_election_time.
# This may be replaced when dependencies are built.
