# Empty compiler generated dependencies file for lease_failover.
# This may be replaced when dependencies are built.
