file(REMOVE_RECURSE
  "CMakeFiles/lease_failover.dir/examples/lease_failover.cpp.o"
  "CMakeFiles/lease_failover.dir/examples/lease_failover.cpp.o.d"
  "examples/lease_failover"
  "examples/lease_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lease_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
