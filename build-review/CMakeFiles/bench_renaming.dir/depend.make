# Empty dependencies file for bench_renaming.
# This may be replaced when dependencies are built.
