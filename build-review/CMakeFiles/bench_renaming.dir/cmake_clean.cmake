file(REMOVE_RECURSE
  "CMakeFiles/bench_renaming.dir/bench/bench_renaming.cpp.o"
  "CMakeFiles/bench_renaming.dir/bench/bench_renaming.cpp.o.d"
  "bench/bench_renaming"
  "bench/bench_renaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_renaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
