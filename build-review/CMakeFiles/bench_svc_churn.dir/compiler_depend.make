# Empty compiler generated dependencies file for bench_svc_churn.
# This may be replaced when dependencies are built.
