file(REMOVE_RECURSE
  "CMakeFiles/bench_svc_churn.dir/bench/bench_svc_churn.cpp.o"
  "CMakeFiles/bench_svc_churn.dir/bench/bench_svc_churn.cpp.o.d"
  "bench/bench_svc_churn"
  "bench/bench_svc_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_svc_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
