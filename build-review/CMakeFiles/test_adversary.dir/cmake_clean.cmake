file(REMOVE_RECURSE
  "CMakeFiles/test_adversary.dir/tests/test_adversary.cpp.o"
  "CMakeFiles/test_adversary.dir/tests/test_adversary.cpp.o.d"
  "tests/test_adversary"
  "tests/test_adversary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adversary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
