// Multithreaded runtime: the same protocol coroutines on real threads.
//
// One OS thread per processor runs an event loop over a concurrent
// mailbox; the transport pushes messages straight into the target's
// mailbox. Scheduling is whatever the OS does — this is the "std::atomic
// on a multicore laptop" deployment of the algorithms, used by the
// examples, the stress tests and the wall-clock benchmark (E8).
//
// Unlike the simulator there is no adversary and no determinism; safety
// properties (unique winner, unique names) must hold under every OS
// schedule, which is exactly what the stress tests assert.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "engine/message.hpp"
#include "engine/metrics.hpp"
#include "engine/node.hpp"
#include "engine/task.hpp"

namespace elect::mt {

class cluster;

/// Per-processor concurrent mailbox (mutex + condition variable; single
/// consumer — the owning thread).
class mailbox {
 public:
  void push(engine::message m) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      queue_.push_back(std::move(m));
    }
    ready_.notify_one();
  }

  /// Drain everything currently queued; blocks until at least one message
  /// arrives or stop() is called. Returns false on stop-and-empty.
  bool drain_blocking(std::deque<engine::message>& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [&] { return stopped_ || !queue_.empty(); });
    if (queue_.empty()) return false;
    out.swap(queue_);
    return true;
  }

  /// Non-blocking drain.
  bool drain(std::deque<engine::message>& out) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return false;
    out.swap(queue_);
    return true;
  }

  void stop() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stopped_ = true;
    }
    ready_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<engine::message> queue_;
  bool stopped_ = false;
};

/// A set of n processors on n threads. Usage:
///   cluster c(n, seed);
///   c.attach(pid, [](engine::node& node) { return protocol(node); });
///   c.start(); c.wait();           // blocks until all protocols return
///   c.result_of(pid);
class cluster {
 public:
  using protocol_factory =
      std::function<engine::task<std::int64_t>(engine::node&)>;

  cluster(int n, std::uint64_t seed);
  ~cluster();

  cluster(const cluster&) = delete;
  cluster& operator=(const cluster&) = delete;

  [[nodiscard]] int n() const noexcept { return n_; }

  /// Register a protocol for processor pid. Call before start().
  void attach(process_id pid, protocol_factory factory);

  /// Launch all threads.
  void start();

  /// Block until every attached protocol has returned, then shut the
  /// cluster down (all threads join).
  void wait();

  [[nodiscard]] std::int64_t result_of(process_id pid) const;
  [[nodiscard]] const engine::debug_probe& probe(process_id pid) const;

  /// Total messages pushed through the transport.
  [[nodiscard]] std::uint64_t total_messages() const noexcept;

 private:
  class transport_impl;
  void thread_main(process_id pid);

  int n_;
  std::uint64_t seed_;
  engine::metrics metrics_;
  std::unique_ptr<transport_impl> transport_;
  std::vector<std::unique_ptr<mailbox>> mailboxes_;
  std::vector<std::unique_ptr<engine::node>> nodes_;
  std::vector<protocol_factory> factories_;
  std::vector<std::thread> threads_;
  std::vector<std::int64_t> results_;
  std::vector<bool> attached_;

  std::mutex done_mutex_;
  std::condition_variable all_done_;
  int pending_protocols_ = 0;
  bool started_ = false;
};

}  // namespace elect::mt
