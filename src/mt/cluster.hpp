// Multithreaded runtime: the same protocol coroutines on real threads.
//
// One OS thread per processor runs an event loop over a concurrent
// mailbox; the transport pushes messages straight into the target's
// mailbox. Scheduling is whatever the OS does — this is the "std::atomic
// on a multicore laptop" deployment of the algorithms, used by the
// examples, the stress tests and the wall-clock benchmark (E8).
//
// Unlike the simulator there is no adversary and no determinism; safety
// properties (unique winner, unique names) must hold under every OS
// schedule, which is exactly what the stress tests assert.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "engine/message.hpp"
#include "engine/metrics.hpp"
#include "engine/node.hpp"
#include "engine/task.hpp"

namespace elect::mt {

class cluster;

/// Per-processor concurrent mailbox (mutex + condition variable; single
/// consumer — the owning thread).
class mailbox {
 public:
  void push(engine::message m) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      queue_.push_back(std::move(m));
    }
    ready_.notify_one();
  }

  /// Append a whole same-destination batch under one lock acquisition
  /// with a single wakeup (the coalescing transport's fast path). The
  /// batch is consumed (left empty, capacity retained).
  void push_batch(std::vector<engine::message>& batch) {
    if (batch.empty()) return;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      for (engine::message& m : batch) queue_.push_back(std::move(m));
    }
    ready_.notify_one();
    batch.clear();
  }

  /// Wake the owning thread without delivering a message. Out-of-band
  /// producers (the election service handing a job to a driver coroutine)
  /// use this to get the event loop to run its idle hook.
  void poke() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      poked_ = true;
    }
    ready_.notify_one();
  }

  /// Drain everything currently queued by swapping the whole deque out
  /// under one lock; blocks until a message arrives, the mailbox is
  /// poked, or stop() is called. Returns false on stop-and-empty; a bare
  /// poke returns true with `out` empty.
  bool drain_blocking(std::deque<engine::message>& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [&] { return stopped_ || poked_ || !queue_.empty(); });
    poked_ = false;
    if (queue_.empty()) return !stopped_;
    out.swap(queue_);
    return true;
  }

  /// Non-blocking drain.
  bool drain(std::deque<engine::message>& out) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return false;
    out.swap(queue_);
    return true;
  }

  void stop() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stopped_ = true;
    }
    ready_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<engine::message> queue_;
  bool stopped_ = false;
  bool poked_ = false;
};

struct cluster_options {
  /// Coalesce same-destination messages produced by one computation step
  /// into a single mailbox push (one lock + one wakeup per destination
  /// instead of per message). Delivery order per (sender, destination)
  /// pair is preserved; the model tolerates any cross-pair reordering.
  bool batch_transport = true;
};

/// A set of n processors on n threads. Usage:
///   cluster c(n, seed);
///   c.attach(pid, [](engine::node& node) { return protocol(node); });
///   c.start(); c.wait();           // blocks until all protocols return
///   c.result_of(pid);
class cluster {
 public:
  using protocol_factory =
      std::function<engine::task<std::int64_t>(engine::node&)>;

  cluster(int n, std::uint64_t seed)
      : cluster(n, seed, cluster_options{}) {}
  cluster(int n, std::uint64_t seed, cluster_options options);
  ~cluster();

  cluster(const cluster&) = delete;
  cluster& operator=(const cluster&) = delete;

  [[nodiscard]] int n() const noexcept { return n_; }

  /// Register a protocol for processor pid. Call before start().
  void attach(process_id pid, protocol_factory factory);

  /// Register a hook that pid's thread runs after every computation step
  /// and on every poke(). The election service uses this to hand queued
  /// jobs to a long-running driver coroutine from the node's own thread
  /// (coroutine frames are not thread-safe). Call before start().
  void set_idle_hook(process_id pid, std::function<void()> hook);

  /// Wake pid's event loop even if no message is in flight (runs the idle
  /// hook). Safe from any thread once the cluster is constructed.
  void poke(process_id pid);

  /// Launch all threads.
  void start();

  /// Block until every attached protocol has returned, then shut the
  /// cluster down (all threads join).
  void wait();

  [[nodiscard]] std::int64_t result_of(process_id pid) const;
  [[nodiscard]] const engine::debug_probe& probe(process_id pid) const;

  /// Total messages pushed through the transport.
  [[nodiscard]] std::uint64_t total_messages() const noexcept;

  /// Mailbox pushes performed by the transport. With batching enabled
  /// this is <= total_messages(); the ratio is the coalescing factor.
  [[nodiscard]] std::uint64_t total_mailbox_pushes() const noexcept;

  /// Complexity counters for the whole pool (communicate calls etc.).
  [[nodiscard]] const engine::metrics& runtime_metrics() const noexcept {
    return metrics_;
  }

 private:
  class transport_impl;
  void thread_main(process_id pid);

  int n_;
  std::uint64_t seed_;
  cluster_options options_;
  engine::metrics metrics_;
  std::unique_ptr<transport_impl> transport_;
  std::vector<std::unique_ptr<mailbox>> mailboxes_;
  std::vector<std::unique_ptr<engine::node>> nodes_;
  std::vector<protocol_factory> factories_;
  std::vector<std::function<void()>> idle_hooks_;
  std::vector<std::thread> threads_;
  std::vector<std::int64_t> results_;
  std::vector<bool> attached_;

  std::mutex done_mutex_;
  std::condition_variable all_done_;
  int pending_protocols_ = 0;
  bool started_ = false;
};

}  // namespace elect::mt
