#include "mt/cluster.hpp"

#include <atomic>

namespace elect::mt {

/// Concurrent transport: pushes messages into target mailboxes. In
/// batching mode a send is staged in a per-(sender, destination) bucket
/// and the sender's thread flushes all buckets between computation steps,
/// so the k messages one step produces for a destination cost one lock
/// acquisition and one wakeup instead of k.
class cluster::transport_impl final : public engine::transport {
 public:
  transport_impl(cluster& owner, int n, bool batching)
      : owner_(owner), batching_(batching) {
    if (batching_) {
      buckets_.resize(static_cast<std::size_t>(n));
      for (auto& row : buckets_) row.resize(static_cast<std::size_t>(n));
    }
  }

  void send(engine::message m) override {
    messages_.fetch_add(1, std::memory_order_relaxed);
    const auto to = static_cast<std::size_t>(m.to);
    ELECT_CHECK(to < owner_.mailboxes_.size());
    if (!batching_) {
      pushes_.fetch_add(1, std::memory_order_relaxed);
      owner_.mailboxes_[to]->push(std::move(m));
      return;
    }
    const auto from = static_cast<std::size_t>(m.from);
    ELECT_CHECK(from < buckets_.size());
    buckets_[from][to].push_back(std::move(m));
  }

  /// Deliver everything `pid` staged since its last flush. Only pid's own
  /// thread may call this (the bucket row is single-writer).
  void flush(process_id pid) {
    if (!batching_) return;
    auto& row = buckets_[static_cast<std::size_t>(pid)];
    for (std::size_t to = 0; to < row.size(); ++to) {
      if (row[to].empty()) continue;
      pushes_.fetch_add(1, std::memory_order_relaxed);
      owner_.mailboxes_[to]->push_batch(row[to]);
    }
  }

  [[nodiscard]] std::uint64_t total_messages() const noexcept {
    return messages_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t total_pushes() const noexcept {
    return pushes_.load(std::memory_order_relaxed);
  }

 private:
  cluster& owner_;
  bool batching_;
  /// buckets_[from][to]: messages staged by `from` for `to`.
  std::vector<std::vector<std::vector<engine::message>>> buckets_;
  std::atomic<std::uint64_t> messages_{0};
  std::atomic<std::uint64_t> pushes_{0};
};

cluster::cluster(int n, std::uint64_t seed, cluster_options options)
    : n_(n),
      seed_(seed),
      options_(options),
      metrics_(n),
      transport_(std::make_unique<transport_impl>(*this, n,
                                                  options.batch_transport)),
      factories_(static_cast<std::size_t>(n)),
      idle_hooks_(static_cast<std::size_t>(n)),
      results_(static_cast<std::size_t>(n), -1),
      attached_(static_cast<std::size_t>(n), false) {
  ELECT_CHECK(n >= 1);
  mailboxes_.reserve(static_cast<std::size_t>(n));
  nodes_.reserve(static_cast<std::size_t>(n));
  for (process_id pid = 0; pid < n; ++pid) {
    mailboxes_.push_back(std::make_unique<mailbox>());
    nodes_.push_back(std::make_unique<engine::node>(
        pid, n, *transport_,
        rng_stream(seed, {0x6c7aULL, static_cast<std::uint64_t>(pid)}),
        metrics_));
  }
}

cluster::~cluster() {
  for (auto& mb : mailboxes_) mb->stop();
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
}

void cluster::attach(process_id pid, protocol_factory factory) {
  ELECT_CHECK(!started_);
  ELECT_CHECK(pid >= 0 && pid < n_);
  ELECT_CHECK(factory != nullptr);
  const auto index = static_cast<std::size_t>(pid);
  ELECT_CHECK(!attached_[index]);
  factories_[index] = std::move(factory);
  attached_[index] = true;
  pending_protocols_++;
}

void cluster::set_idle_hook(process_id pid, std::function<void()> hook) {
  ELECT_CHECK(!started_);
  ELECT_CHECK(pid >= 0 && pid < n_);
  idle_hooks_[static_cast<std::size_t>(pid)] = std::move(hook);
}

void cluster::poke(process_id pid) {
  ELECT_CHECK(pid >= 0 && pid < n_);
  mailboxes_[static_cast<std::size_t>(pid)]->poke();
}

void cluster::start() {
  ELECT_CHECK(!started_);
  started_ = true;
  threads_.reserve(static_cast<std::size_t>(n_));
  for (process_id pid = 0; pid < n_; ++pid) {
    threads_.emplace_back([this, pid] { thread_main(pid); });
  }
}

void cluster::thread_main(process_id pid) {
  const auto index = static_cast<std::size_t>(pid);
  engine::node& node = *nodes_[index];
  mailbox& mb = *mailboxes_[index];

  const std::function<void()>& idle_hook = idle_hooks_[index];

  if (attached_[index]) {
    node.attach_protocol(factories_[index](node));
    node.computation_step();  // invoke the protocol (sends first requests)
  }
  transport_->flush(pid);
  bool reported = false;
  const auto report_if_done = [&] {
    if (!reported && attached_[index] && node.protocol_done()) {
      reported = true;
      {
        const std::lock_guard<std::mutex> lock(done_mutex_);
        results_[index] = node.protocol_result();
        pending_protocols_--;
      }
      all_done_.notify_all();
    }
  };
  report_if_done();

  std::deque<engine::message> batch;
  for (;;) {
    batch.clear();
    if (!mb.drain_blocking(batch)) break;  // stopped and empty
    for (engine::message& m : batch) node.deliver(std::move(m));
    node.computation_step();
    if (idle_hook) idle_hook();  // may resume a parked driver coroutine
    transport_->flush(pid);      // everything this step staged goes out
    report_if_done();
  }
}

void cluster::wait() {
  ELECT_CHECK(started_);
  {
    std::unique_lock<std::mutex> lock(done_mutex_);
    all_done_.wait(lock, [&] { return pending_protocols_ == 0; });
  }
  // All protocols returned; tear the service layer down.
  for (auto& mb : mailboxes_) mb->stop();
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
}

std::int64_t cluster::result_of(process_id pid) const {
  ELECT_CHECK(pid >= 0 && pid < n_);
  const auto index = static_cast<std::size_t>(pid);
  ELECT_CHECK_MSG(attached_[index], "no protocol attached");
  return results_[index];
}

const engine::debug_probe& cluster::probe(process_id pid) const {
  ELECT_CHECK(pid >= 0 && pid < n_);
  return nodes_[static_cast<std::size_t>(pid)]->probe();
}

std::uint64_t cluster::total_messages() const noexcept {
  return transport_->total_messages();
}

std::uint64_t cluster::total_mailbox_pushes() const noexcept {
  return transport_->total_pushes();
}

}  // namespace elect::mt
