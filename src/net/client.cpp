#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <iterator>
#include <thread>
#include <utility>
#include <vector>

#include "obs/trace.hpp"

namespace elect::net {

namespace {

// Retry policy for `busy` answers (the server's blocking-op capacity is
// full): exponential backoff from busy_backoff_initial doubling to
// busy_backoff_cap. The retry is *bounded* — acquire() gives up once
// busy_retry_budget of cumulative backoff has been slept and reports
// `rejected` (the server has effectively been unavailable that whole
// time); try_acquire_for() is bounded by its own deadline. Before this,
// busy could surface to callers indistinguishable from a shutdown
// rejection after a single fixed-delay retry loop.
constexpr auto busy_backoff_initial = std::chrono::milliseconds(1);
constexpr auto busy_backoff_cap = std::chrono::milliseconds(256);
constexpr auto busy_retry_budget = std::chrono::seconds(30);

/// One step of the backoff ladder: sleep `next`, then double it (capped).
std::chrono::milliseconds backoff_step(std::chrono::milliseconds& next) {
  const auto slept = next;
  std::this_thread::sleep_for(slept);
  next = std::min(next * 2, busy_backoff_cap);
  return slept;
}

bool write_all(int fd, const std::uint8_t* data, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t wrote = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (wrote > 0) {
      sent += static_cast<std::size_t>(wrote);
      continue;
    }
    if (wrote < 0 && errno == EINTR) continue;
    return false;  // blocking socket: anything else is a dead peer
  }
  return true;
}

std::chrono::steady_clock::time_point deadline_from_remaining(
    std::uint64_t remaining_ms) {
  if (remaining_ms == wire::lease_forever) {
    return std::chrono::steady_clock::time_point::max();
  }
  return std::chrono::steady_clock::now() +
         std::chrono::milliseconds(remaining_ms);
}

}  // namespace

namespace {

/// Connect + synchronous hello handshake for one stripe. Returns the
/// connected fd (session id through `session_id`), or -1.
int connect_channel(const std::string& host, std::uint16_t port,
                    std::uint64_t hello_id, std::uint64_t* session_id) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

  // Handshake synchronously, before any reader thread exists: one hello
  // frame out, one response frame back on the still-quiet socket.
  wire::request hello = wire::make_hello_request();
  hello.id = hello_id;
  const auto frame = wire::encode_request(hello);
  if (!write_all(fd, frame.data(), frame.size())) {
    ::close(fd);
    return -1;
  }
  wire::frame_reader reader;
  std::optional<wire::response> answer;
  std::uint8_t buffer[4096];
  while (!answer.has_value()) {
    const ssize_t got = ::recv(fd, buffer, sizeof buffer, 0);
    if (got <= 0) {
      if (got < 0 && errno == EINTR) continue;
      break;
    }
    if (!reader.feed(buffer, static_cast<std::size_t>(got))) break;
    if (auto body = reader.next()) answer = wire::decode_response(*body);
  }
  if (!answer.has_value() || answer->kind != wire::op::hello ||
      answer->result != wire::status::ok) {
    ::close(fd);
    return -1;
  }
  *session_id = answer->epoch;
  return fd;
}

}  // namespace

std::string_view to_string(close_reason r) {
  switch (r) {
    case close_reason::none: return "none";
    case close_reason::local_close: return "local_close";
    case close_reason::severed: return "severed";
  }
  return "unknown";
}

client::client(const std::string& host, std::uint16_t port)
    : client(host, port, 1) {}

client::client(const std::string& host, std::uint16_t port, int stripes) {
  (void)open_channels(host, port, stripes);
}

namespace {

/// "host:port" with a digit-only port in [1, 65535]; nullopt otherwise.
std::optional<std::pair<std::string, std::uint16_t>> parse_host_port(
    const std::string& text) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= text.size()) {
    return std::nullopt;
  }
  std::uint32_t port = 0;
  for (std::size_t i = colon + 1; i < text.size(); ++i) {
    if (text[i] < '0' || text[i] > '9') return std::nullopt;
    port = port * 10 + static_cast<std::uint32_t>(text[i] - '0');
    if (port > 65535) return std::nullopt;
  }
  if (port == 0) return std::nullopt;
  return std::make_pair(text.substr(0, colon),
                        static_cast<std::uint16_t>(port));
}

}  // namespace

client::client(const std::string& endpoints) {
  std::size_t begin = 0;
  while (begin <= endpoints.size()) {
    std::size_t end = endpoints.find(',', begin);
    if (end == std::string::npos) end = endpoints.size();
    if (end > begin) {
      if (auto parsed = parse_host_port(endpoints.substr(begin, end - begin));
          parsed.has_value()) {
        endpoints_.push_back(std::move(*parsed));
      }
    }
    begin = end + 1;
  }
  if (endpoints_.empty()) {
    reason_.store(close_reason::severed, std::memory_order_release);
    return;
  }
  if (endpoints_.size() == 1) {
    // A single endpoint keeps the exact fixed-target behavior: no
    // redirect-following, same failure mapping as (host, port).
    const auto target = endpoints_[0];
    endpoints_.clear();
    (void)open_channels(target.first, target.second, 1);
    return;
  }
  for (std::size_t i = 0; i < endpoints_.size(); ++i) {
    if (open_channels(endpoints_[i].first, endpoints_[i].second, 1)) {
      endpoint_index_ = i;
      return;
    }
    // open_channels left `severed` behind; clear it so the next
    // candidate starts from a clean slate.
    reason_.store(close_reason::none, std::memory_order_release);
  }
  reason_.store(close_reason::severed, std::memory_order_release);
}

bool client::open_channels(const std::string& host, std::uint16_t port,
                           int stripes) {
  const int n = std::clamp(stripes, 1, 64);
  channels_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto ch = std::make_unique<channel>();
    ch->fd = connect_channel(host, port, next_id_.fetch_add(1),
                             &ch->session_id);
    if (ch->fd < 0) {
      // One stripe failing fails the client: close the ones that made
      // it (no reader threads exist yet, so plain close is safe). A
      // failed connect is a sever — the user never got a connection to
      // close.
      for (auto& done : channels_) {
        ::close(done->fd);
        done->fd = -1;
      }
      channels_.clear();
      reason_.store(close_reason::severed, std::memory_order_release);
      return false;
    }
    channels_.push_back(std::move(ch));
  }
  open_.store(true, std::memory_order_release);
  for (auto& ch : channels_) {
    channel* chp = ch.get();
    ch->reader = std::thread([this, chp] { reader_main(*chp); });
  }
  return true;
}

bool client::reopen_locked(const std::string& host, std::uint16_t port) {
  // Tear down like close(), but resurrectably: sockets and readers go,
  // the channel structs (and every outstanding route() reference) stay.
  for (auto& ch : channels_) {
    if (ch->fd >= 0) ::shutdown(ch->fd, SHUT_RDWR);
  }
  fail();
  for (auto& ch : channels_) {
    if (ch->reader.joinable()) ch->reader.join();
  }
  for (auto& ch : channels_) {
    const std::lock_guard<std::mutex> lock(ch->write_mutex);
    if (ch->fd >= 0) ::close(ch->fd);
    ch->fd = -1;
  }
  {
    const std::lock_guard<std::mutex> lock(pending_mutex_);
    for (auto it = pending_.begin(); it != pending_.end();) {
      it = it->second.done ? std::next(it) : pending_.erase(it);
    }
  }
  pending_cv_.notify_all();

  // Reconnect every channel to the new target. The old readers are
  // joined, so assigning fresh fds and threads into the same structs
  // races nothing.
  for (auto& ch : channels_) {
    ch->fd = connect_channel(host, port, next_id_.fetch_add(1),
                             &ch->session_id);
    if (ch->fd < 0) {
      for (auto& done : channels_) {
        if (done->fd >= 0) ::close(done->fd);
        done->fd = -1;
      }
      return false;
    }
  }
  reason_.store(close_reason::none, std::memory_order_release);
  open_.store(true, std::memory_order_release);
  for (auto& ch : channels_) {
    channel* chp = ch.get();
    ch->reader = std::thread([this, chp] { reader_main(*chp); });
  }
  generation_.fetch_add(1, std::memory_order_release);
  return true;
}

bool client::failover(std::uint64_t seen_generation, const std::string& hint) {
  if (endpoints_.empty()) return false;
  bool reconnected = false;
  {
    const std::lock_guard<std::mutex> close_lock(close_mutex_);
    if (close_done_) return false;
    if (generation_.load(std::memory_order_acquire) != seen_generation) {
      // Someone already failed over since the caller's redirect; just
      // retry against whatever they connected to.
      return open_.load(std::memory_order_acquire);
    }
    // Hint first (the deposed member usually knows its successor), then
    // the rest of the ring starting after the current member.
    if (const auto hinted = parse_host_port(hint); hinted.has_value()) {
      if (reopen_locked(hinted->first, hinted->second)) {
        for (std::size_t i = 0; i < endpoints_.size(); ++i) {
          if (endpoints_[i] == *hinted) endpoint_index_ = i;
        }
        reconnected = true;
      }
    }
    for (std::size_t step = 1;
         !reconnected && step <= endpoints_.size(); ++step) {
      const std::size_t i = (endpoint_index_ + step) % endpoints_.size();
      if (reopen_locked(endpoints_[i].first, endpoints_[i].second)) {
        endpoint_index_ = i;
        reconnected = true;
      }
    }
  }
  if (reconnected) resubscribe_watches();
  return reconnected;
}

void client::resubscribe_watches() {
  std::vector<std::string> keys;
  {
    const std::lock_guard<std::mutex> lock(watch_mutex_);
    for (auto& [key, ks] : key_subs_) {
      ks.server_id = 0;
      ks.subscribing = true;
      keys.push_back(key);
    }
  }
  for (const std::string& key : keys) {
    const auto r = call(wire::op::watch, key, 0, 0);
    const std::lock_guard<std::mutex> lock(watch_mutex_);
    const auto it = key_subs_.find(key);
    if (it == key_subs_.end()) continue;  // last watcher left meanwhile
    it->second.subscribing = false;
    if (r.has_value() && r->result == wire::status::ok) {
      it->second.server_id = r->epoch;
    }
  }
}

std::optional<wire::response> client::call_routed(wire::op kind,
                                                  const std::string& key,
                                                  std::uint64_t epoch,
                                                  std::uint64_t timeout_ms) {
  if (endpoints_.empty()) return call(kind, key, epoch, timeout_ms);
  // Budget: enough rounds to ride out one full election (randomized
  // timeout + votes) with every member probed a few times.
  const int max_attempts = static_cast<int>(endpoints_.size()) * 4 + 4;
  auto backoff = std::chrono::milliseconds(25);
  for (int attempt = 0;; ++attempt) {
    const std::uint64_t gen = generation_.load(std::memory_order_acquire);
    auto r = call(kind, key, epoch, timeout_ms);
    const bool redirected =
        r.has_value() && r->result == wire::status::not_primary;
    const bool severed =
        !r.has_value() && reason() == close_reason::severed;
    if ((!redirected && !severed) || attempt >= max_attempts) return r;
    std::this_thread::sleep_for(backoff);
    if (backoff < std::chrono::milliseconds(400)) backoff *= 2;
    // Even a failed failover round is worth looping past: the next
    // attempt may find a member back up mid-election.
    (void)failover(gen, redirected ? r->body : std::string());
  }
}

client::~client() { close(); }

std::uint64_t client::session_id() const noexcept {
  return channels_.empty() ? 0 : channels_[0]->session_id;
}

client::channel& client::route(const std::string& key) {
  if (channels_.size() == 1 || key.empty()) return *channels_[0];
  return *channels_[std::hash<std::string>{}(key) % channels_.size()];
}

void client::close() {
  // One-shot and self-serializing: concurrent close() calls (or close
  // racing the destructor) park here instead of double-closing fds.
  const std::lock_guard<std::mutex> close_lock(close_mutex_);
  if (close_done_) return;
  close_done_ = true;
  // Claim the cause before any socket is touched: once the shutdown
  // lands, the reader threads break out and call fail(), whose CAS must
  // find local_close already set. A client that was severed earlier
  // keeps `severed` — the first cause wins.
  close_reason expected = close_reason::none;
  (void)reason_.compare_exchange_strong(expected, close_reason::local_close,
                                        std::memory_order_acq_rel);
  // shutdown() unblocks each reader (recv returns 0); the fds are
  // closed only after the readers joined so they cannot be recycled
  // under a racing recv.
  for (auto& ch : channels_) {
    if (ch->fd >= 0) ::shutdown(ch->fd, SHUT_RDWR);
  }
  fail();
  for (auto& ch : channels_) {
    if (ch->reader.joinable()) ch->reader.join();
  }
  {
    const std::lock_guard<std::mutex> lock(watch_mutex_);
    watch_stop_ = true;
  }
  watch_cv_.notify_all();
  if (event_thread_.joinable()) event_thread_.join();
  for (auto& ch : channels_) {
    // Under the write lock: a submit racing this close either writes
    // before us (onto a shut-down socket — a clean failure) or observes
    // fd < 0 and fails without touching a recycled descriptor.
    const std::lock_guard<std::mutex> lock(ch->write_mutex);
    if (ch->fd >= 0) ::close(ch->fd);
    ch->fd = -1;
  }
  // Drop routing slots nobody answered and nobody will: waiters were
  // woken by fail() and report connection loss; un-taken slots must not
  // outlive the close that orphaned them.
  {
    const std::lock_guard<std::mutex> lock(pending_mutex_);
    for (auto it = pending_.begin(); it != pending_.end();) {
      it = it->second.done ? std::next(it) : pending_.erase(it);
    }
  }
  pending_cv_.notify_all();
}

void client::fail() {
  // Anything reaching fail() without close() having claimed the reason
  // first is a sever: peer EOF, protocol poison, a failed send.
  close_reason expected = close_reason::none;
  (void)reason_.compare_exchange_strong(expected, close_reason::severed,
                                        std::memory_order_acq_rel);
  open_.store(false, std::memory_order_release);
  {
    const std::lock_guard<std::mutex> lock(pending_mutex_);
    // Slots stay in the map, not-done: take() wakes, sees the
    // connection closed, and reports the loss.
  }
  pending_cv_.notify_all();
}

void client::reader_main(channel& ch) {
  wire::frame_reader reader;
  std::uint8_t buffer[64 * 1024];
  for (;;) {
    const ssize_t got = ::recv(ch.fd, buffer, sizeof buffer, 0);
    if (got <= 0) {
      if (got < 0 && errno == EINTR) continue;
      break;  // EOF / error / local close()
    }
    if (!reader.feed(buffer, static_cast<std::size_t>(got))) break;
    while (auto body = reader.next()) {
      auto response = wire::decode_response(*body);
      if (!response.has_value()) {
        fail();
        return;
      }
      if (response->kind == wire::op::event) {
        // Unsolicited push frame: not a reply, route it to the watch
        // callbacks instead of a pending slot.
        dispatch_event(*response);
        continue;
      }
      const std::uint64_t id = response->id;
      {
        const std::lock_guard<std::mutex> lock(pending_mutex_);
        const auto it = pending_.find(id);
        // Unknown ids are tolerated: a response can race a waiter that
        // gave up (connection-loss path) and already erased its slot.
        if (it != pending_.end()) {
          it->second.response = std::move(*response);
          it->second.done = true;
        }
      }
      pending_cv_.notify_all();
    }
  }
  fail();
}

std::uint64_t client::submit(wire::op kind, const std::string& key,
                             std::uint64_t epoch, std::uint64_t timeout_ms) {
  if (channels_.empty()) return 0;
  return submit_impl(route(key), kind, key, epoch, timeout_ms,
                     /*expect_reply=*/true);
}

std::uint64_t client::submit_impl(channel& ch, wire::op kind,
                                  const std::string& key, std::uint64_t epoch,
                                  std::uint64_t timeout_ms,
                                  bool expect_reply) {
  if (!open_.load(std::memory_order_acquire)) return 0;
  // An oversized key would be rejected server-side by killing the whole
  // connection (protocol violation); refuse it here instead, as one
  // failed call.
  if (key.size() > wire::max_key_bytes) return 0;
  wire::request r;
  r.id = next_id_.fetch_add(1);
  r.kind = kind;
  r.key = key;
  r.epoch = epoch;
  r.timeout_ms = timeout_ms;
  // Carry the caller's trace across the wire (v3): the server serves
  // the request under the same id, so its spans join this trace.
  r.trace_id = obs::current();
  // Register the slot before the frame can possibly be answered.
  if (expect_reply) {
    const std::lock_guard<std::mutex> lock(pending_mutex_);
    pending_.emplace(r.id, slot{});
  }
  const auto frame = wire::encode_request(r);
  const std::lock_guard<std::mutex> lock(ch.write_mutex);
  if (ch.fd < 0 || !write_all(ch.fd, frame.data(), frame.size())) {
    fail();
    // Leave the slot: take() reports the loss uniformly.
  }
  return r.id;
}

std::optional<wire::response> client::take(std::uint64_t id) {
  if (id == 0) return std::nullopt;
  std::unique_lock<std::mutex> lock(pending_mutex_);
  pending_cv_.wait(lock, [&] {
    const auto it = pending_.find(id);
    // A vanished slot means close() swept it: report the loss. (Waking
    // on !open_ alone would miss a slot erased after the wake.)
    if (it == pending_.end()) return true;
    return it->second.done || !open_.load(std::memory_order_acquire);
  });
  const auto it = pending_.find(id);
  if (it == pending_.end() || !it->second.done) {
    if (it != pending_.end()) pending_.erase(it);
    return std::nullopt;  // connection died first
  }
  wire::response r = std::move(it->second.response);
  pending_.erase(it);
  return r;
}

std::optional<wire::response> client::call(wire::op kind,
                                           const std::string& key,
                                           std::uint64_t epoch,
                                           std::uint64_t timeout_ms) {
  const obs::scoped_span span(obs::phase::wire_rtt);
  return take(submit(kind, key, epoch, timeout_ms));
}

// ---------------------------------------------------------------------
// Session API mirror.

svc::acquire_result client::to_acquire_result(
    const std::optional<wire::response>& r) const {
  svc::acquire_result result;
  if (!r.has_value()) {
    result.rejected = true;  // transport loss: the service is gone to us
    // A sever (vs our own close()) is flagged so the caller knows the
    // server may still count it as holder until TTL/reclaim fences it.
    result.connection_lost = reason() == close_reason::severed;
    return result;
  }
  result.epoch = r->epoch;
  result.won = r->won();
  result.fast_path = r->fast_path();
  result.rejected = r->result == wire::status::rejected;
  result.timed_out = r->result == wire::status::timed_out;
  if (result.won) {
    result.lease_deadline = deadline_from_remaining(r->lease_remaining_ms);
  }
  return result;
}

svc::acquire_result client::try_acquire(const std::string& key) {
  const auto start = std::chrono::steady_clock::now();
  auto result = to_acquire_result(call_routed(wire::op::try_acquire, key, 0, 0));
  result.latency_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  return result;
}

svc::acquire_result client::acquire(const std::string& key) {
  const auto start = std::chrono::steady_clock::now();
  auto backoff = busy_backoff_initial;
  std::chrono::milliseconds slept{0};
  for (;;) {
    const auto r = call_routed(wire::op::acquire, key, 0, 0);
    if (r.has_value() && r->result == wire::status::busy) {
      if (slept >= busy_retry_budget) {
        // The waiter cap has been full for the entire retry budget:
        // treat the server as unavailable rather than spinning forever.
        svc::acquire_result result;
        result.rejected = true;
        return result;
      }
      slept += backoff_step(backoff);
      continue;
    }
    auto result = to_acquire_result(r);
    result.latency_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    return result;
  }
}

svc::acquire_result client::try_acquire_for(const std::string& key,
                                            std::chrono::milliseconds timeout) {
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + timeout;
  auto backoff = busy_backoff_initial;
  for (;;) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    const auto budget = std::max(left, std::chrono::milliseconds(0));
    const auto r =
        call_routed(wire::op::try_acquire_for, key, 0,
                    static_cast<std::uint64_t>(budget.count()));
    if (r.has_value() && r->result == wire::status::busy) {
      if (std::chrono::steady_clock::now() + backoff >= deadline) {
        svc::acquire_result result;
        result.timed_out = true;
        return result;
      }
      (void)backoff_step(backoff);
      continue;
    }
    auto result = to_acquire_result(r);
    result.latency_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    return result;
  }
}

namespace {

/// The lease-status verdict for a call that got no response: our own
/// close() keeps the original crash-semantics mapping (stale_epoch —
/// the server reclaims on disconnect, PR 4); a sever is reported as
/// connection_lost so the caller can tell a fenced epoch from a dead
/// wire.
svc::lease_status lost_status(close_reason r) {
  return r == close_reason::local_close ? svc::lease_status::stale_epoch
                                        : svc::lease_status::connection_lost;
}

}  // namespace

svc::lease_status client::release(const std::string& key) {
  const auto r = call_routed(wire::op::release, key, 0, 0);
  if (!r.has_value()) return lost_status(reason());
  return wire::to_lease_status(r->result);
}

svc::lease_status client::release(const std::string& key,
                                  std::uint64_t epoch) {
  const auto r = call_routed(wire::op::release_fenced, key, epoch, 0);
  if (!r.has_value()) return lost_status(reason());
  return wire::to_lease_status(r->result);
}

svc::lease_status client::renew(const std::string& key, std::uint64_t epoch) {
  return renew(key, epoch, nullptr);
}

svc::lease_status client::renew(
    const std::string& key, std::uint64_t epoch,
    std::chrono::steady_clock::time_point* refreshed_deadline) {
  const auto r = call_routed(wire::op::renew, key, epoch, 0);
  if (!r.has_value()) return lost_status(reason());
  if (r->result == wire::status::ok && refreshed_deadline != nullptr) {
    *refreshed_deadline = deadline_from_remaining(r->lease_remaining_ms);
  }
  return wire::to_lease_status(r->result);
}

std::uint64_t client::watch(const std::string& key,
                            std::function<void(const svc::watch_event&)> fn) {
  if (!open_.load(std::memory_order_acquire)) return 0;
  // Register locally *before* the wire op: the server starts pushing the
  // moment it subscribes, and an event overtaking the ack must find the
  // callback. One key = one server-side subscription however many local
  // callbacks watch it; later watch() calls piggyback on the in-flight
  // (or established) subscription instead of issuing a second wire op —
  // which would otherwise double every delivery.
  std::uint64_t id = 0;
  bool need_subscribe = false;
  {
    const std::lock_guard<std::mutex> lock(watch_mutex_);
    if (watch_stop_) return 0;
    id = next_watch_id_++;
    watches_.emplace(id, watch_entry{key, std::move(fn)});
    key_subscription& ks = key_subs_[key];
    ks.refs++;
    if (ks.server_id == 0 && !ks.subscribing) {
      ks.subscribing = true;
      need_subscribe = true;
    }
    if (!event_thread_.joinable()) {
      event_thread_ = std::thread([this] { event_main(); });
    }
  }
  if (!need_subscribe) return id;

  const auto r = call(wire::op::watch, key, 0, 0);
  std::uint64_t orphan_server_id = 0;
  bool failed = false;
  {
    const std::lock_guard<std::mutex> lock(watch_mutex_);
    const auto ks = key_subs_.find(key);
    if (!r.has_value() || r->result != wire::status::ok) {
      failed = true;
      watches_.erase(id);
      if (ks != key_subs_.end()) {
        ks->second.subscribing = false;
        ks->second.refs--;
        // Piggybacked refs (concurrent watch() calls that trusted this
        // subscribe) are stranded without a server subscription; a
        // refused/failed subscribe means the transport or service is
        // going away, so they fail with the connection.
        if (ks->second.refs == 0) key_subs_.erase(ks);
      }
    } else if (ks != key_subs_.end()) {
      ks->second.subscribing = false;
      if (ks->second.refs == 0) {
        // Everyone unwatched while the subscribe was in flight; we are
        // the last owner of the server-side handle.
        orphan_server_id = r->epoch;
        key_subs_.erase(ks);
      } else {
        ks->second.server_id = r->epoch;
      }
    }
  }
  if (orphan_server_id != 0) {
    // The unwatch must ride the stripe that owns the subscription: the
    // server only honors an unwatch from the connection that watched.
    (void)submit_impl(route(key), wire::op::unwatch, "", orphan_server_id, 0,
                      /*expect_reply=*/false);
  }
  return failed ? 0 : id;
}

void client::unwatch(std::uint64_t id) {
  std::uint64_t server_id = 0;
  std::string key;
  {
    std::unique_lock<std::mutex> lock(watch_mutex_);
    const auto it = watches_.find(id);
    if (it == watches_.end()) return;
    key = it->second.key;
    watches_.erase(it);
    const auto ks = key_subs_.find(key);
    if (ks != key_subs_.end()) {
      ks->second.refs--;
      // The server-side subscription dies with its last local ref. If a
      // subscribe is still in flight, watch() observes refs == 0 at ack
      // time and cancels it there instead.
      if (ks->second.refs == 0 && !ks->second.subscribing) {
        server_id = ks->second.server_id;
        key_subs_.erase(ks);
      }
    }
    // The after-return guarantee: wait out an in-flight delivery —
    // unless we *are* the delivery (a callback cancelling itself).
    if (std::this_thread::get_id() != event_thread_.get_id()) {
      watch_cv_.wait(lock, [&] { return delivering_watch_ != id; });
    }
  }
  // Fire-and-forget (expect_reply=false): semantically the unwatch
  // needs no answer, and it keeps the op issuable from inside a watch
  // callback without waiting on any reply. Routed by the watch's key so
  // it lands on the stripe whose connection owns the subscription.
  if (server_id != 0) {
    (void)submit_impl(route(key), wire::op::unwatch, "", server_id, 0,
                      /*expect_reply=*/false);
  }
}

void client::dispatch_event(const wire::response& r) {
  auto event = wire::parse_event(r);
  if (!event.has_value()) return;  // malformed push: drop, don't kill
  // Reader thread: queue only. Callbacks run on the event thread, so a
  // callback making synchronous calls on this client does not deadlock
  // against the reader that must route its replies.
  {
    const std::lock_guard<std::mutex> lock(watch_mutex_);
    if (watch_stop_) return;
    // A frame racing the key's last unwatch has no audience; and past
    // the cap (a wedged callback) events drop rather than buffer
    // without bound — same policy as the server-side hub.
    if (key_subs_.find(event->key) == key_subs_.end()) return;
    if (event_queue_.size() >= max_queued_watch_events) return;
    event_queue_.push_back(std::move(*event));
  }
  watch_cv_.notify_all();
}

void client::event_main() {
  std::unique_lock<std::mutex> lock(watch_mutex_);
  for (;;) {
    watch_cv_.wait(lock,
                   [this] { return watch_stop_ || !event_queue_.empty(); });
    if (watch_stop_) return;
    const svc::watch_event event = std::move(event_queue_.front());
    event_queue_.pop_front();
    // Snapshot the audience, then deliver one at a time outside the
    // lock, re-checking liveness so an unwatch() between deliveries
    // keeps its after-return guarantee.
    std::vector<std::pair<std::uint64_t,
                          std::function<void(const svc::watch_event&)>>>
        targets;
    for (const auto& [id, entry] : watches_) {
      if (entry.key == event.key) targets.emplace_back(id, entry.fn);
    }
    for (const auto& [id, fn] : targets) {
      if (watches_.find(id) == watches_.end()) continue;  // unwatched since
      delivering_watch_ = id;
      lock.unlock();
      fn(event);
      lock.lock();
      delivering_watch_ = 0;
      watch_cv_.notify_all();
    }
  }
}

std::size_t client::disconnect() {
  // Every stripe is its own server session holding its own keys:
  // disconnect them all, pipelined (submit all, then take all).
  std::vector<std::uint64_t> ids;
  ids.reserve(channels_.size());
  for (auto& ch : channels_) {
    ids.push_back(submit_impl(*ch, wire::op::disconnect, "", 0, 0,
                              /*expect_reply=*/true));
  }
  std::size_t released = 0;
  for (const std::uint64_t id : ids) {
    const auto r = take(id);
    if (r.has_value() && r->result == wire::status::ok) {
      released += static_cast<std::size_t>(r->epoch);
    }
  }
  return released;
}

std::string client::metrics_json() {
  const auto r = call(wire::op::metrics, "", 0, 0);
  if (!r.has_value() || r->result != wire::status::ok) return "";
  return r->body;
}

std::optional<wire::response> client::admin(wire::op kind,
                                            const std::string& key,
                                            std::uint64_t epoch) {
  if (kind != wire::op::admin_list && kind != wire::op::admin_inspect &&
      kind != wire::op::admin_force_release &&
      kind != wire::op::admin_snapshot &&
      kind != wire::op::admin_commands &&
      kind != wire::op::admin_cluster_status) {
    return std::nullopt;
  }
  return call(kind, key, epoch, 0);
}

}  // namespace elect::net
