#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>

namespace elect::net {

namespace {

/// Back-off between retries when the server answers `busy` (its
/// blocking-op capacity is full).
constexpr auto busy_backoff = std::chrono::milliseconds(5);

bool write_all(int fd, const std::uint8_t* data, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t wrote = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (wrote > 0) {
      sent += static_cast<std::size_t>(wrote);
      continue;
    }
    if (wrote < 0 && errno == EINTR) continue;
    return false;  // blocking socket: anything else is a dead peer
  }
  return true;
}

std::chrono::steady_clock::time_point deadline_from_remaining(
    std::uint64_t remaining_ms) {
  if (remaining_ms == wire::lease_forever) {
    return std::chrono::steady_clock::time_point::max();
  }
  return std::chrono::steady_clock::now() +
         std::chrono::milliseconds(remaining_ms);
}

}  // namespace

client::client(const std::string& host, std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    ::close(fd_);
    fd_ = -1;
    return;
  }
  const int one = 1;
  (void)::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

  // Handshake synchronously, before the reader thread exists: one hello
  // frame out, one response frame back on the still-quiet socket.
  wire::request hello = wire::make_hello_request();
  hello.id = next_id_.fetch_add(1);
  const auto frame = wire::encode_request(hello);
  if (!write_all(fd_, frame.data(), frame.size())) {
    ::close(fd_);
    fd_ = -1;
    return;
  }
  wire::frame_reader reader;
  std::optional<wire::response> answer;
  std::uint8_t buffer[4096];
  while (!answer.has_value()) {
    const ssize_t got = ::recv(fd_, buffer, sizeof buffer, 0);
    if (got <= 0) {
      if (got < 0 && errno == EINTR) continue;
      break;
    }
    if (!reader.feed(buffer, static_cast<std::size_t>(got))) break;
    if (auto body = reader.next()) answer = wire::decode_response(*body);
  }
  if (!answer.has_value() || answer->kind != wire::op::hello ||
      answer->result != wire::status::ok) {
    ::close(fd_);
    fd_ = -1;
    return;
  }
  session_id_ = answer->epoch;
  open_.store(true, std::memory_order_release);
  reader_ = std::thread([this] { reader_main(); });
}

client::~client() { close(); }

void client::close() {
  // shutdown() unblocks the reader (recv returns 0); the fd itself is
  // closed only after the reader joined so it cannot be recycled under
  // a racing recv.
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
  fail();
  if (reader_.joinable()) reader_.join();
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

void client::fail() {
  open_.store(false, std::memory_order_release);
  {
    const std::lock_guard<std::mutex> lock(pending_mutex_);
    // Slots stay in the map, not-done: take() wakes, sees the
    // connection closed, and reports the loss.
  }
  pending_cv_.notify_all();
}

void client::reader_main() {
  wire::frame_reader reader;
  std::uint8_t buffer[64 * 1024];
  for (;;) {
    const ssize_t got = ::recv(fd_, buffer, sizeof buffer, 0);
    if (got <= 0) {
      if (got < 0 && errno == EINTR) continue;
      break;  // EOF / error / local close()
    }
    if (!reader.feed(buffer, static_cast<std::size_t>(got))) break;
    while (auto body = reader.next()) {
      auto response = wire::decode_response(*body);
      if (!response.has_value()) {
        fail();
        return;
      }
      const std::uint64_t id = response->id;
      {
        const std::lock_guard<std::mutex> lock(pending_mutex_);
        const auto it = pending_.find(id);
        // Unknown ids are tolerated: a response can race a waiter that
        // gave up (connection-loss path) and already erased its slot.
        if (it != pending_.end()) {
          it->second.response = std::move(*response);
          it->second.done = true;
        }
      }
      pending_cv_.notify_all();
    }
  }
  fail();
}

std::uint64_t client::submit(wire::op kind, const std::string& key,
                             std::uint64_t epoch, std::uint64_t timeout_ms) {
  if (!open_.load(std::memory_order_acquire)) return 0;
  // An oversized key would be rejected server-side by killing the whole
  // connection (protocol violation); refuse it here instead, as one
  // failed call.
  if (key.size() > wire::max_key_bytes) return 0;
  wire::request r;
  r.id = next_id_.fetch_add(1);
  r.kind = kind;
  r.key = key;
  r.epoch = epoch;
  r.timeout_ms = timeout_ms;
  // Register the slot before the frame can possibly be answered.
  {
    const std::lock_guard<std::mutex> lock(pending_mutex_);
    pending_.emplace(r.id, slot{});
  }
  const auto frame = wire::encode_request(r);
  const std::lock_guard<std::mutex> lock(write_mutex_);
  if (!write_all(fd_, frame.data(), frame.size())) {
    fail();
    // Leave the slot: take() reports the loss uniformly.
  }
  return r.id;
}

std::optional<wire::response> client::take(std::uint64_t id) {
  if (id == 0) return std::nullopt;
  std::unique_lock<std::mutex> lock(pending_mutex_);
  pending_cv_.wait(lock, [&] {
    const auto it = pending_.find(id);
    const bool done = it != pending_.end() && it->second.done;
    return done || !open_.load(std::memory_order_acquire);
  });
  const auto it = pending_.find(id);
  if (it == pending_.end() || !it->second.done) {
    if (it != pending_.end()) pending_.erase(it);
    return std::nullopt;  // connection died first
  }
  wire::response r = std::move(it->second.response);
  pending_.erase(it);
  return r;
}

std::optional<wire::response> client::call(wire::op kind,
                                           const std::string& key,
                                           std::uint64_t epoch,
                                           std::uint64_t timeout_ms) {
  return take(submit(kind, key, epoch, timeout_ms));
}

// ---------------------------------------------------------------------
// Session API mirror.

svc::acquire_result client::to_acquire_result(
    const std::optional<wire::response>& r) {
  svc::acquire_result result;
  if (!r.has_value()) {
    result.rejected = true;  // transport loss: the service is gone to us
    return result;
  }
  result.epoch = r->epoch;
  result.won = r->won();
  result.fast_path = r->fast_path();
  result.rejected = r->result == wire::status::rejected;
  result.timed_out = r->result == wire::status::timed_out;
  if (result.won) {
    result.lease_deadline = deadline_from_remaining(r->lease_remaining_ms);
  }
  return result;
}

svc::acquire_result client::try_acquire(const std::string& key) {
  const auto start = std::chrono::steady_clock::now();
  auto result = to_acquire_result(call(wire::op::try_acquire, key, 0, 0));
  result.latency_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  return result;
}

svc::acquire_result client::acquire(const std::string& key) {
  const auto start = std::chrono::steady_clock::now();
  for (;;) {
    const auto r = call(wire::op::acquire, key, 0, 0);
    if (r.has_value() && r->result == wire::status::busy) {
      std::this_thread::sleep_for(busy_backoff);
      continue;
    }
    auto result = to_acquire_result(r);
    result.latency_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    return result;
  }
}

svc::acquire_result client::try_acquire_for(const std::string& key,
                                            std::chrono::milliseconds timeout) {
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + timeout;
  for (;;) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    const auto budget = std::max(left, std::chrono::milliseconds(0));
    const auto r =
        call(wire::op::try_acquire_for, key, 0,
             static_cast<std::uint64_t>(budget.count()));
    if (r.has_value() && r->result == wire::status::busy) {
      if (std::chrono::steady_clock::now() + busy_backoff >= deadline) {
        svc::acquire_result result;
        result.timed_out = true;
        return result;
      }
      std::this_thread::sleep_for(busy_backoff);
      continue;
    }
    auto result = to_acquire_result(r);
    result.latency_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    return result;
  }
}

svc::lease_status client::release(const std::string& key) {
  const auto r = call(wire::op::release, key, 0, 0);
  if (!r.has_value()) return svc::lease_status::stale_epoch;
  return wire::to_lease_status(r->result);
}

svc::lease_status client::release(const std::string& key,
                                  std::uint64_t epoch) {
  const auto r = call(wire::op::release_fenced, key, epoch, 0);
  if (!r.has_value()) return svc::lease_status::stale_epoch;
  return wire::to_lease_status(r->result);
}

svc::lease_status client::renew(const std::string& key, std::uint64_t epoch) {
  const auto r = call(wire::op::renew, key, epoch, 0);
  if (!r.has_value()) return svc::lease_status::stale_epoch;
  return wire::to_lease_status(r->result);
}

std::size_t client::disconnect() {
  const auto r = call(wire::op::disconnect, "", 0, 0);
  if (!r.has_value() || r->result != wire::status::ok) return 0;
  return static_cast<std::size_t>(r->epoch);
}

std::string client::metrics_json() {
  const auto r = call(wire::op::metrics, "", 0, 0);
  if (!r.has_value() || r->result != wire::status::ok) return "";
  return r->body;
}

}  // namespace elect::net
