// elect::net::wire — the versioned, length-prefixed binary protocol
// between net::client and net::server.
//
// Framing: every message on the socket is one *frame*:
//
//   [u32 length][length bytes of body]
//
// with the length in little-endian and capped at max_frame_bytes (an
// oversized length is a protocol violation and kills the connection —
// it is either corruption or a hostile peer, not backpressure).
//
// The first frame each way is the handshake: the client sends a hello
// request carrying the protocol magic + version in its epoch field, the
// server answers with a hello response whose epoch field is the svc
// session id backing the connection. Version mismatches are rejected
// before any election state is touched.
//
// After the handshake, every request carries a client-chosen 64-bit
// request id. The server may answer requests *out of order* (a metrics
// fetch overtakes a blocking acquire parked on a held key); the id is
// what lets the client route each response to its waiter, which is the
// whole basis of pipelining many in-flight calls over one socket.
//
// Status codes map the service's result types onto the wire explicitly
// (`acquire_result` flags and `lease_status` values), plus the two
// conditions only the network edge can produce: `busy` (the server's
// blocking-op cap is full — retry) and `bad_request` (undecodable
// frame — fatal for the connection).
//
// All integers are little-endian; strings are u32 length + bytes. The
// encoding is byte-exact across platforms — no struct punning.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "svc/registry.hpp"
#include "svc/watch.hpp"

namespace elect::net::wire {

/// "ELN" + version byte, carried in the hello exchange.
inline constexpr std::uint32_t protocol_magic = 0x454C4E00u;
/// v4: requests grow an unconditional `body` string (the peer
/// replication ops carry log-entry batches, votes, and snapshots in
/// it), the status enum gains `not_primary` (cluster redirect, body =
/// the primary's endpoint hint) and `connection_lost` (previously
/// encoded defensively as stale_epoch), and the op range 17.. carries
/// the elect::repl peer channel (peer_vote / peer_append /
/// peer_snapshot) plus admin_cluster_status. The codec rejects
/// trailing bytes, so "optional" fields are expressed as version bumps
/// and the handshake keeps v3 peers out before any frame can misparse.
/// (v3 added the trace id + admin ops; v2 watch/unwatch + events.)
inline constexpr std::uint16_t protocol_version = 4;

/// Hard cap on one frame's body. Requests are tiny (a key plus a few
/// integers); responses are bounded by the metrics JSON. Anything
/// larger is corruption, not load.
inline constexpr std::uint32_t max_frame_bytes = 1u << 20;

/// Keys longer than this are a protocol violation: the server drops
/// the connection on decode, and net::client refuses to submit one.
inline constexpr std::uint32_t max_key_bytes = 4096;

/// Message types. Values are wire format — append only, never renumber.
enum class op : std::uint8_t {
  hello = 0,
  /// One-shot election attempt (session::try_acquire).
  try_acquire = 1,
  /// Blocking acquire; the server parks the request (not the socket)
  /// until the key is won, the service stops, or the connection dies.
  acquire = 2,
  /// Bounded blocking acquire; timeout_ms bounds the server-side wait.
  try_acquire_for = 3,
  /// Unfenced release (session::release(key)).
  release = 4,
  /// Epoch-fenced release (session::release(key, epoch)).
  release_fenced = 5,
  /// Lease renewal (session::renew(key, epoch)).
  renew = 6,
  /// Graceful drop of everything this connection holds. The server also
  /// applies this implicitly when the socket closes — see net::server.
  disconnect = 7,
  /// Fetch the combined net + service metrics report as JSON.
  metrics = 8,
  /// Subscribe to leader transitions on `key`. The ok response carries
  /// the server-side subscription id in `epoch`; matching transitions
  /// then arrive as unsolicited `event` frames on the same connection.
  watch = 9,
  /// Cancel a watch subscription; `epoch` carries the id the watch
  /// response returned. Always answers ok (cancelling an unknown or
  /// foreign id is a no-op).
  unwatch = 10,
  /// Server->client push: one leader transition on a watched key. Not a
  /// response — `id` is 0 (client request ids start at 1), which is how
  /// the client's reader routes it to watch callbacks instead of a
  /// pending call. `body` is the key, `epoch` the transition's epoch,
  /// `flags` the svc::transition value, and `lease_remaining_ms` the
  /// affected svc session id (two's complement; -1 = none).
  event = 11,
  /// Admin: snapshot every registered key as a JSON array in `body`.
  /// Gated by server_config.enable_admin — `denied` when off.
  admin_list = 12,
  /// Admin: snapshot one key as a JSON object in `body`; `not_leader`
  /// when the key was never acquired. Same gate as admin_list.
  admin_inspect = 13,
  /// Admin: unconditionally end `key`'s current epoch (the operator's
  /// "kick the stuck leader" lever); `not_leader` when unheld. Same
  /// gate as admin_list.
  admin_force_release = 14,
  /// Admin: take a command-log snapshot. The server encodes the
  /// registry's binary snapshot, writes it to the configured snapshot
  /// path (when set), and answers with a small JSON object in `body`
  /// describing the command log (recording/recorded/retained/bytes).
  /// Same gate as admin_list.
  admin_snapshot = 15,
  /// Admin: page through the registry's retained command log (the
  /// replayable stream behind snapshots). `epoch` carries the page
  /// offset into the collected stream; the response `body` is a JSON
  /// object {"total":N,"offset":O,"commands":[...]} holding as many
  /// commands (cmd::to_json objects, shard-by-shard seq order) as fit
  /// one frame, and the response `epoch` echoes the next offset. The
  /// chaos checker's command-stream access. Same gate as admin_list;
  /// `rejected` when the registry is not recording.
  admin_commands = 16,
  /// Admin: the cluster's view of itself as a JSON object in `body` —
  /// node id, role, term, commit/last index, per-peer replication lag,
  /// and the current primary's endpoint. Answered by every cluster
  /// node (it is how elect_admin finds the primary); `denied` on a
  /// non-cluster server. Unlike the other admin ops it is NOT gated by
  /// enable_admin — discovering the primary is part of the client
  /// protocol, not an operator surface.
  admin_cluster_status = 17,
  /// Peer channel (elect::repl): request a vote for `epoch` = term.
  /// `body` is a repl-encoded vote request (candidate id, last log
  /// index/term); the response body carries the verdict. `denied` on a
  /// non-cluster server.
  peer_vote = 18,
  /// Peer channel: append log entries. `body` is a repl-encoded batch
  /// (term, leader id, prev index/term, commit index, entries); an
  /// empty batch is the heartbeat. The response body carries (term,
  /// match index, success).
  peer_append = 19,
  /// Peer channel: install a registry snapshot on a lagging follower.
  /// `body` is a repl-encoded header + the binary registry snapshot
  /// (cmd::snapshot format).
  peer_snapshot = 20,
};

inline constexpr int op_count = 21;

[[nodiscard]] std::string_view to_string(op kind);

/// Response status. Values are wire format — append only.
enum class status : std::uint8_t {
  /// Acquire won / release ok / renew ok / metrics served.
  ok = 0,
  /// Acquire attempt lost (somebody else holds the epoch).
  lost = 1,
  /// try_acquire_for: the timeout elapsed before the key came free.
  timed_out = 2,
  /// The service stopped (acquire_result::rejected).
  rejected = 3,
  /// lease_status::stale_epoch — the presented epoch is not current.
  stale_epoch = 4,
  /// lease_status::not_leader — current epoch, but not the holder.
  not_leader = 5,
  /// The server's blocking-op capacity is exhausted; retry after a
  /// backoff. Only acquire/try_acquire_for can see this.
  busy = 6,
  /// Undecodable or ill-formed request. The server answers once (when
  /// it still has a request id to echo) and closes the connection.
  bad_request = 7,
  /// An admin op on a server whose config does not enable the admin
  /// surface. The connection stays up.
  denied = 8,
  /// Cluster redirect: this node is a replica, not the primary —
  /// mutating ops must go to the primary. The response `body` carries
  /// the primary's "host:port" endpoint hint when known (empty while
  /// an election is in flight); net::client's multi-endpoint
  /// constructor follows it transparently.
  not_primary = 9,
  /// The mutation could not be quorum-committed before the ack (the
  /// primary lost its quorum mid-operation), or — client-side — the
  /// transport died underneath the call. Until v4 the client-side
  /// verdict was encoded defensively as stale_epoch; it now round-trips
  /// as itself.
  connection_lost = 10,
};

/// Highest valid status value (decode bound — keep in sync with the
/// enum's last member).
inline constexpr std::uint8_t status_max =
    static_cast<std::uint8_t>(status::connection_lost);

[[nodiscard]] std::string_view to_string(status s);

/// `lease_remaining_ms` value meaning "the lease never expires".
inline constexpr std::uint64_t lease_forever = ~0ull;

/// One client->server message. Unused fields encode as zero.
struct request {
  std::uint64_t id = 0;
  op kind = op::hello;
  std::string key;
  /// release_fenced / renew: the fencing token. hello: magic|version.
  std::uint64_t epoch = 0;
  /// try_acquire_for: wait bound in milliseconds.
  std::uint64_t timeout_ms = 0;
  /// Request trace id (obs::mint), 0 when untraced. The server serves
  /// the request under this id so its spans join the client's trace.
  std::uint64_t trace_id = 0;
  /// Opaque payload (v4): the repl peer ops carry their encoded batch /
  /// vote / snapshot here. Empty for every client-facing op.
  std::string body;
};

/// Response flag bits.
inline constexpr std::uint8_t flag_won = 1u << 0;
inline constexpr std::uint8_t flag_fast_path = 1u << 1;

/// One server->client message. `epoch` is the election epoch for
/// acquire-family ops, the svc session id for hello, and the released
/// count for disconnect.
struct response {
  std::uint64_t id = 0;
  op kind = op::hello;
  status result = status::ok;
  std::uint8_t flags = 0;
  std::uint64_t epoch = 0;
  /// Winner only: milliseconds of lease left when the response was
  /// built (lease_forever when leases are disabled). The client turns
  /// this back into a deadline on its own clock.
  std::uint64_t lease_remaining_ms = 0;
  /// metrics: the JSON report. Empty otherwise.
  std::string body;

  [[nodiscard]] bool won() const noexcept { return (flags & flag_won) != 0; }
  [[nodiscard]] bool fast_path() const noexcept {
    return (flags & flag_fast_path) != 0;
  }
};

// ---------------------------------------------------------------------
// Encoding. encode_* produce a complete frame (length prefix included)
// ready to write to the socket.

[[nodiscard]] std::vector<std::uint8_t> encode_request(const request& r);
[[nodiscard]] std::vector<std::uint8_t> encode_response(const response& r);

/// The hello exchange, expressed through the same request/response
/// shapes so one codec covers everything.
[[nodiscard]] request make_hello_request();
[[nodiscard]] response make_hello_response(std::uint64_t session_id);
/// Does this decoded hello request carry our magic + version?
[[nodiscard]] bool hello_version_ok(const request& r);

/// The watch push frame (op::event), expressed through the response
/// shape so the existing codec and framing carry it. parse_event is the
/// inverse; empty when `r` is not a well-formed event frame.
[[nodiscard]] response make_event(const svc::watch_event& e);
[[nodiscard]] std::optional<svc::watch_event> parse_event(const response& r);

// ---------------------------------------------------------------------
// Decoding. Both take one frame *body* (the length prefix already
// stripped by frame_reader) and return empty on any malformation:
// short buffer, trailing garbage, unknown op/status, oversized key.

[[nodiscard]] std::optional<request> decode_request(
    const std::vector<std::uint8_t>& body);
[[nodiscard]] std::optional<response> decode_response(
    const std::vector<std::uint8_t>& body);

// ---------------------------------------------------------------------
// Status mapping helpers shared by client and server.

[[nodiscard]] status from_lease_status(svc::lease_status s);
[[nodiscard]] svc::lease_status to_lease_status(status s);

// ---------------------------------------------------------------------
// frame_reader: incremental deframer. Feed it whatever the socket
// yields; it splits complete frames off and queues their bodies.

class frame_reader {
 public:
  /// Append `n` raw bytes. Returns false on a protocol violation (a
  /// frame length above max_frame_bytes) — the connection must die;
  /// the reader is poisoned and will never yield another frame.
  [[nodiscard]] bool feed(const std::uint8_t* data, std::size_t n);

  /// Pop the next complete frame body, if one is buffered.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> next();

  [[nodiscard]] bool poisoned() const noexcept { return poisoned_; }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;  // parsed prefix of buffer_, reclaimed lazily
  std::deque<std::vector<std::uint8_t>> frames_;
  bool poisoned_ = false;
};

}  // namespace elect::net::wire
