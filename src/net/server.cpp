#include "net/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <utility>

#include "common/check.hpp"
#include "obs/prom.hpp"
#include "obs/trace.hpp"

namespace elect::net {

namespace {

using namespace std::chrono_literals;

/// Which reactor's loop is THIS thread? Lets posts targeted at the
/// reactor we are already running on execute inline instead of taking
/// the inbox + eventfd detour (the common case for handshake replies
/// and protocol errors, which are produced on the read path itself).
thread_local const void* current_reactor_tls = nullptr;

/// Milliseconds of lease left, for the wire (clamped at zero; the
/// sentinel for "never expires" is wire::lease_forever).
std::uint64_t lease_remaining_ms(
    std::chrono::steady_clock::time_point deadline) {
  if (deadline == std::chrono::steady_clock::time_point::max()) {
    return wire::lease_forever;
  }
  const auto left = deadline - std::chrono::steady_clock::now();
  if (left <= std::chrono::steady_clock::duration::zero()) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(left).count());
}

/// Write the whole buffer to a non-blocking socket, parking on POLLOUT
/// when the send buffer is full. Only the HTTP side-channel still uses
/// this (a scrape response is one small buffered write); wire frames go
/// through the per-connection output rings and writev.
bool write_all(int fd, const std::uint8_t* data, std::size_t n,
               const std::atomic<bool>& stopping,
               const std::chrono::steady_clock::time_point* deadline =
                   nullptr) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t wrote = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (wrote > 0) {
      sent += static_cast<std::size_t>(wrote);
      continue;
    }
    if (wrote < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{fd, POLLOUT, 0};
      (void)::poll(&pfd, 1, 100);
      if (stopping.load(std::memory_order_relaxed)) return false;
      if (deadline != nullptr &&
          std::chrono::steady_clock::now() >= *deadline) {
        return false;
      }
      continue;
    }
    if (wrote < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

/// Records the server-side `serve` span for a traced request and runs
/// the slow-request check when it ends. Destructor-driven so every
/// early return in serve()/serve_blocking() is covered, and the span
/// exists in the ring *before* the capture formats the trace.
class serve_trace {
 public:
  serve_trace(std::uint64_t trace, wire::op kind) noexcept
      : trace_(trace), kind_(kind),
        start_(trace != 0 ? obs::now_ns() : 0) {}

  serve_trace(const serve_trace&) = delete;
  serve_trace& operator=(const serve_trace&) = delete;

  ~serve_trace() {
    if (trace_ == 0) return;
    const std::uint64_t end = obs::now_ns();
    obs::record_for(trace_, obs::phase::serve, start_, end);
    std::string label = "serve ";
    label += wire::to_string(kind_);
    (void)obs::maybe_capture_slow(
        trace_, std::chrono::nanoseconds(end - start_), label);
  }

 private:
  std::uint64_t trace_;
  wire::op kind_;
  std::uint64_t start_;
};

void json_escape_into(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// One key_inspection as the JSON object the admin ops return.
/// lease_remaining_ms is null for a non-expiring (or absent) lease.
std::string inspection_json(const svc::key_inspection& k) {
  std::string out;
  out += "{\"key\":\"";
  json_escape_into(out, k.key);
  out += "\",\"epoch\":";
  out += std::to_string(k.entry.epoch);
  out += ",\"leader\":";
  out += std::to_string(k.leader);
  out += ",\"mode\":\"";
  out.append(k.mode.data(), k.mode.size());
  out += "\",\"lease_remaining_ms\":";
  const std::uint64_t left = lease_remaining_ms(k.lease_deadline);
  if (k.leader < 0 || left == wire::lease_forever) {
    out += "null";
  } else {
    out += std::to_string(left);
  }
  out += ",\"attempts_this_epoch\":";
  out += std::to_string(k.attempts_this_epoch);
  out += ",\"last_epoch_attempts\":";
  out += std::to_string(k.last_epoch_attempts);
  out += '}';
  return out;
}

/// Persist a snapshot via write-to-temp + rename, so a crash mid-write
/// never leaves a torn file where a restore expects a whole one.
bool write_snapshot_file(const std::string& path,
                         const std::vector<std::uint8_t>& bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) return false;
  const bool wrote =
      bytes.empty() ||
      std::fwrite(bytes.data(), 1, bytes.size(), file) == bytes.size();
  const bool flushed = std::fflush(file) == 0;
  const bool closed = std::fclose(file) == 0;
  if (!(wrote && flushed && closed)) {
    (void)std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    (void)std::remove(tmp.c_str());
    return false;
  }
  return true;
}

/// The network front-end's own Prometheus series, appended after the
/// service-level series obs::render_prometheus produces.
void render_net_prometheus(std::string& out, const net_report& r) {
  obs::prom_gauge(out, "elect_net_connections_active",
                  "Open client connections.", r.connections_active);
  obs::prom_counter(out, "elect_net_connections_accepted_total",
                    "Connections accepted.", r.connections_accepted);
  obs::prom_counter(out, "elect_net_connections_refused_total",
                    "Connections refused at the cap.", r.connections_refused);
  obs::prom_counter(out, "elect_net_requests_total", "Wire requests decoded.",
                    r.requests);
  obs::prom_counter(out, "elect_net_frames_in_total", "Frames received.",
                    r.frames_in);
  obs::prom_counter(out, "elect_net_frames_out_total", "Frames sent.",
                    r.frames_out);
  obs::prom_counter(out, "elect_net_bytes_in_total", "Bytes received.",
                    r.bytes_in);
  obs::prom_counter(out, "elect_net_bytes_out_total", "Bytes sent.",
                    r.bytes_out);
  obs::prom_counter(out, "elect_net_busy_rejections_total",
                    "Requests answered busy at the blocking-op cap.",
                    r.busy_rejections);
  obs::prom_counter(out, "elect_net_protocol_errors_total",
                    "Connections killed for protocol violations.",
                    r.protocol_errors);
  obs::prom_counter(out, "elect_net_disconnect_reclaims_total",
                    "Leases reclaimed because their connection died.",
                    r.disconnect_reclaims);
  obs::prom_counter(out, "elect_net_events_pushed_total",
                    "Watch event frames delivered.", r.events_pushed);
  obs::prom_counter(out, "elect_net_events_dropped_total",
                    "Watch event frames dropped (dead or wedged consumer).",
                    r.events_dropped);
  obs::prom_gauge(out, "elect_net_reactors", "Configured reactor count.",
                  r.reactors);
  obs::prom_counter(out, "elect_net_writev_total",
                    "writev flush calls across all reactors.",
                    r.writev_calls);
  obs::prom_counter(out, "elect_net_frames_flushed_total",
                    "Frames flushed via writev across all reactors.",
                    r.frames_flushed);
  obs::prom_counter(out, "elect_net_wakeups_total",
                    "Cross-thread eventfd wakeups across all reactors.",
                    r.reactor_wakeups);

  // Per-reactor slices. The labels are the operational interface for
  // spotting a hot or idle reactor; frames_flushed / writev is the
  // coalesce ratio, per reactor.
  obs::prom_type_line(out, "elect_net_reactor_connections",
                      "Open connections pinned to each reactor.", "gauge");
  for (const auto& s : r.per_reactor) {
    obs::prom_labeled(out, "elect_net_reactor_connections", "reactor",
                      std::to_string(s.index), s.connections);
  }
  obs::prom_type_line(out, "elect_net_reactor_accepted_total",
                      "Connections accepted (or adopted) per reactor.",
                      "counter");
  for (const auto& s : r.per_reactor) {
    obs::prom_labeled(out, "elect_net_reactor_accepted_total", "reactor",
                      std::to_string(s.index), s.accepted);
  }
  obs::prom_type_line(out, "elect_net_reactor_wakeups_total",
                      "Eventfd wakeups per reactor.", "counter");
  for (const auto& s : r.per_reactor) {
    obs::prom_labeled(out, "elect_net_reactor_wakeups_total", "reactor",
                      std::to_string(s.index), s.wakeups);
  }
  obs::prom_type_line(out, "elect_net_reactor_writev_total",
                      "writev flush calls per reactor.", "counter");
  for (const auto& s : r.per_reactor) {
    obs::prom_labeled(out, "elect_net_reactor_writev_total", "reactor",
                      std::to_string(s.index), s.writev_calls);
  }
  obs::prom_type_line(out, "elect_net_reactor_frames_flushed_total",
                      "Frames flushed per reactor.", "counter");
  for (const auto& s : r.per_reactor) {
    obs::prom_labeled(out, "elect_net_reactor_frames_flushed_total",
                      "reactor", std::to_string(s.index), s.frames_flushed);
  }
  obs::prom_type_line(out, "elect_net_reactor_drain_batches_total",
                      "Flush passes that wrote at least one frame, per "
                      "reactor.",
                      "counter");
  for (const auto& s : r.per_reactor) {
    obs::prom_labeled(out, "elect_net_reactor_drain_batches_total",
                      "reactor", std::to_string(s.index), s.drain_batches);
  }
  obs::prom_type_line(out, "elect_net_reactor_requests_total",
                      "Requests decoded per reactor.", "counter");
  for (const auto& s : r.per_reactor) {
    obs::prom_labeled(out, "elect_net_reactor_requests_total", "reactor",
                      std::to_string(s.index), s.requests);
  }
}

/// Resolve the reactor count: explicit config wins, then the
/// ELECT_REACTORS environment variable (what CI uses to force 4 under
/// the sanitizers), then hardware concurrency clamped to a sane fleet.
int resolve_reactor_count(int configured) {
  if (configured > 0) return std::clamp(configured, 1, 64);
  if (const char* env = std::getenv("ELECT_REACTORS")) {
    const int n = std::atoi(env);
    if (n > 0) return std::clamp(n, 1, 64);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp(static_cast<int>(hw == 0 ? 1 : hw), 1, 16);
}

/// One bound, listening, non-blocking socket. With `reuseport`, failure
/// to set SO_REUSEPORT is a failure (the caller falls back to the
/// single-listener path rather than binding a non-sharded socket into a
/// sharded group).
int make_listener(const std::string& address, std::uint16_t port,
                  bool reuseport, std::uint16_t* bound_port) {
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (reuseport &&
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof one) != 0) {
    ::close(fd);
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1 ||
      ::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 256) != 0) {
    ::close(fd);
    return -1;
  }
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t bound_len = sizeof bound;
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) ==
        0) {
      *bound_port = ntohs(bound.sin_port);
    }
  }
  return fd;
}

}  // namespace

std::string net_report::to_json() const {
  std::ostringstream out;
  out << "{\"connections_accepted\":" << connections_accepted
      << ",\"connections_active\":" << connections_active
      << ",\"connections_refused\":" << connections_refused
      << ",\"frames_in\":" << frames_in << ",\"frames_out\":" << frames_out
      << ",\"bytes_in\":" << bytes_in << ",\"bytes_out\":" << bytes_out
      << ",\"requests\":" << requests
      << ",\"dispatch_batches\":" << dispatch_batches
      << ",\"backpressure_pauses\":" << backpressure_pauses
      << ",\"busy_rejections\":" << busy_rejections
      << ",\"protocol_errors\":" << protocol_errors
      << ",\"disconnect_reclaims\":" << disconnect_reclaims
      << ",\"watch_subscriptions\":" << watch_subscriptions
      << ",\"events_pushed\":" << events_pushed
      << ",\"events_dropped\":" << events_dropped
      << ",\"reactors\":" << reactors
      << ",\"reuseport\":" << (reuseport ? "true" : "false")
      << ",\"writev_calls\":" << writev_calls
      << ",\"frames_flushed\":" << frames_flushed
      << ",\"reactor_wakeups\":" << reactor_wakeups << ",\"per_reactor\":[";
  for (std::size_t i = 0; i < per_reactor.size(); ++i) {
    const reactor_stat& s = per_reactor[i];
    if (i != 0) out << ',';
    out << "{\"index\":" << s.index << ",\"connections\":" << s.connections
        << ",\"accepted\":" << s.accepted << ",\"wakeups\":" << s.wakeups
        << ",\"writev_calls\":" << s.writev_calls
        << ",\"frames_flushed\":" << s.frames_flushed
        << ",\"drain_batches\":" << s.drain_batches
        << ",\"requests\":" << s.requests << "}";
  }
  out << "]}";
  return out.str();
}

server::connection::~connection() {
  if (fd >= 0) ::close(fd);
}

server::server(svc::service& service, server_config config)
    : service_(service), config_(std::move(config)) {
  ELECT_CHECK(config_.executors >= 1);
  ELECT_CHECK(config_.max_waiters >= 1);
  ELECT_CHECK(config_.max_inflight_per_connection >= 1);

  const int n = resolve_reactor_count(config_.reactors);
  reactors_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto r = std::make_unique<reactor>();
    r->owner = this;
    r->index = i;
    reactors_.push_back(std::move(r));
  }

  const auto fail = [this] {
    for (auto& re : reactors_) {
      if (re->epoll_fd >= 0) ::close(re->epoll_fd);
      if (re->wake_fd >= 0) ::close(re->wake_fd);
      if (re->listen_fd >= 0) ::close(re->listen_fd);
      re->epoll_fd = re->wake_fd = re->listen_fd = -1;
    }
    if (http_listen_fd_ >= 0) {
      ::close(http_listen_fd_);
      http_listen_fd_ = -1;
    }
  };

  // The accept path: one SO_REUSEPORT listener per reactor when we can
  // (the kernel spreads incoming connections across the group), a
  // single listener on reactor 0 dealing round-robin when we can't.
  bool sharded = config_.reuseport && n > 1;
  if (sharded) {
    std::uint16_t bound = 0;
    const int first =
        make_listener(config_.bind_address, config_.port, true, &bound);
    if (first < 0) {
      sharded = false;
    } else {
      reactors_[0]->listen_fd = first;
      port_ = bound;
      for (int i = 1; i < n && sharded; ++i) {
        const int fd = make_listener(config_.bind_address, port_, true,
                                     nullptr);
        if (fd < 0) {
          sharded = false;
        } else {
          reactors_[i]->listen_fd = fd;
        }
      }
      if (!sharded) {
        // A partial group is worse than no group: close everything and
        // fall back to the single-listener path below.
        for (auto& re : reactors_) {
          if (re->listen_fd >= 0) ::close(re->listen_fd);
          re->listen_fd = -1;
        }
        port_ = 0;
      }
    }
  }
  if (!sharded) {
    const int fd =
        make_listener(config_.bind_address, config_.port, false, &port_);
    if (fd < 0) return;  // listening_ stays false: bind failed
    reactors_[0]->listen_fd = fd;
  }
  reuseport_active_ = sharded;

  for (auto& re : reactors_) {
    re->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    re->wake_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (re->epoll_fd < 0 || re->wake_fd < 0) {
      fail();
      return;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = re->wake_fd;
    if (::epoll_ctl(re->epoll_fd, EPOLL_CTL_ADD, re->wake_fd, &ev) != 0) {
      fail();
      return;
    }
    if (re->listen_fd >= 0) {
      ev.data.fd = re->listen_fd;
      if (::epoll_ctl(re->epoll_fd, EPOLL_CTL_ADD, re->listen_fd, &ev) != 0) {
        fail();
        return;
      }
    }
  }

  if (config_.http_enabled) {
    // The HTTP side-channel rides reactor 0 — a scrape is a few hundred
    // bytes each way, not worth a listener per reactor. Failure to bind
    // degrades to "no HTTP" (http_listening() false) rather than taking
    // the wire listeners down with it.
    const int one = 1;
    http_listen_fd_ =
        ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (http_listen_fd_ >= 0) {
      (void)::setsockopt(http_listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                         sizeof one);
      sockaddr_in haddr{};
      haddr.sin_family = AF_INET;
      haddr.sin_port = htons(config_.http_port);
      if (::inet_pton(AF_INET, config_.bind_address.c_str(),
                      &haddr.sin_addr) != 1 ||
          ::bind(http_listen_fd_, reinterpret_cast<const sockaddr*>(&haddr),
                 sizeof haddr) != 0 ||
          ::listen(http_listen_fd_, 64) != 0) {
        ::close(http_listen_fd_);
        http_listen_fd_ = -1;
      } else {
        sockaddr_in hbound{};
        socklen_t hbound_len = sizeof hbound;
        if (::getsockname(http_listen_fd_,
                          reinterpret_cast<sockaddr*>(&hbound),
                          &hbound_len) == 0) {
          http_port_ = ntohs(hbound.sin_port);
        }
        epoll_event hev{};
        hev.events = EPOLLIN;
        hev.data.fd = http_listen_fd_;
        if (::epoll_ctl(reactors_[0]->epoll_fd, EPOLL_CTL_ADD,
                        http_listen_fd_, &hev) != 0) {
          ::close(http_listen_fd_);
          http_listen_fd_ = -1;
          http_port_ = 0;
        }
      }
    }
  }

  listening_ = true;
  for (auto& re : reactors_) {
    reactor* rp = re.get();
    re->thread = std::thread([this, rp] { reactor_main(*rp); });
  }
  executors_.reserve(static_cast<std::size_t>(config_.executors));
  for (int i = 0; i < config_.executors; ++i) {
    executors_.emplace_back([this] { executor_main(); });
  }
}

server::~server() { stop(); }

void server::stop() {
  if (stopping_.exchange(true)) return;
  for (auto& re : reactors_) {
    if (re->thread.joinable()) {
      wake(*re);
      re->thread.join();
    }
  }
  // Reactor teardown finished every connection, so queued work and
  // parked waiters now see closed connections and drain fast.
  queue_cv_.notify_all();
  for (auto& t : executors_) {
    if (t.joinable()) t.join();
  }
  {
    std::unique_lock<std::mutex> lock(waiter_mutex_);
    waiter_cv_.wait(lock, [this] { return active_waiters_ == 0; });
  }
  for (auto& re : reactors_) {
    {
      const std::lock_guard<std::mutex> lock(re->inbox_mutex);
      for (const int fd : re->adopt_inbox) ::close(fd);
      re->adopt_inbox.clear();
      re->flush_inbox.clear();
      re->resume_inbox.clear();
    }
    if (re->epoll_fd >= 0) ::close(re->epoll_fd);
    if (re->wake_fd >= 0) ::close(re->wake_fd);
    if (re->listen_fd >= 0) ::close(re->listen_fd);
    re->epoll_fd = re->wake_fd = re->listen_fd = -1;
  }
  if (http_listen_fd_ >= 0) {
    ::close(http_listen_fd_);
    http_listen_fd_ = -1;
  }
}

// ---------------------------------------------------------------------
// The reactor loop: accept, drain-and-dispatch, flush, teardown.

void server::reactor_main(reactor& r) {
  current_reactor_tls = &r;
  epoll_event events[64];
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int ready =
        ::epoll_wait(r.epoll_fd, events, 64, next_stall_timeout_ms(r));
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < ready; ++i) {
      const int fd = events[i].data.fd;
      const std::uint32_t mask = events[i].events;
      if (fd == r.wake_fd) {
        std::uint64_t drained = 0;
        (void)!::read(r.wake_fd, &drained, sizeof drained);
        r.wakeups.fetch_add(1, std::memory_order_relaxed);
        process_inbox(r);
        continue;
      }
      if (fd == r.listen_fd) {
        accept_ready(r);
        continue;
      }
      if (r.index == 0 && fd == http_listen_fd_) {
        http_accept_ready(r);
        continue;
      }
      const auto it = r.connections.find(fd);
      if (it != r.connections.end()) {
        // Copy: the handlers may finish the connection and erase it.
        const connection_ptr conn = it->second;
        if ((mask & EPOLLOUT) != 0) flush_connection(r, conn);
        if ((mask & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR)) != 0 &&
            r.connections.count(fd) != 0) {
          read_ready(r, conn);
        }
        continue;
      }
      if (r.index == 0 && http_conns_.count(fd) != 0) http_read_ready(r, fd);
    }
    fire_stalls(r);
  }
  // Teardown: finish every connection (disconnect-on-close included)
  // while the map still owns them, and close sockets dealt to us that
  // we never adopted.
  {
    const std::lock_guard<std::mutex> lock(r.inbox_mutex);
    for (const int fd : r.adopt_inbox) ::close(fd);
    r.adopt_inbox.clear();
    r.flush_inbox.clear();
    r.resume_inbox.clear();
  }
  std::vector<connection_ptr> remaining;
  remaining.reserve(r.connections.size());
  for (const auto& [fd, conn] : r.connections) remaining.push_back(conn);
  for (const auto& conn : remaining) finish_connection(r, conn);
  if (r.index == 0) {
    for (const auto& [fd, buffered] : http_conns_) ::close(fd);
    http_conns_.clear();
  }
}

void server::process_inbox(reactor& r) {
  std::vector<int> adopts;
  std::vector<connection_ptr> resumes;
  std::vector<connection_ptr> flushes;
  {
    const std::lock_guard<std::mutex> lock(r.inbox_mutex);
    adopts.swap(r.adopt_inbox);
    resumes.swap(r.resume_inbox);
    flushes.swap(r.flush_inbox);
    r.wake_pending = false;
  }
  for (const int fd : adopts) adopt_connection(r, fd);
  for (const auto& conn : resumes) handle_resume(r, conn);
  for (const auto& conn : flushes) flush_connection(r, conn);
}

void server::wake(reactor& r) {
  const std::uint64_t one = 1;
  (void)!::write(r.wake_fd, &one, sizeof one);
}

void server::accept_ready(reactor& r) {
  for (;;) {
    const int fd =
        ::accept4(r.listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN or a transient accept error: wait for the next event
    }
    if (stopping_.load(std::memory_order_relaxed) ||
        connections_active_.load(std::memory_order_relaxed) >=
            static_cast<std::uint64_t>(config_.max_connections)) {
      counters_.connections_refused.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    if (reuseport_active_ || reactors_.size() == 1) {
      adopt_connection(r, fd);
      continue;
    }
    // Single-listener fallback: reactor 0 owns the only listener and
    // deals accepted sockets round-robin across the fleet. next_adopter_
    // starts at 1, so spreading begins with the very first connection.
    reactor& target = *reactors_[next_adopter_++ % reactors_.size()];
    if (&target == &r) {
      adopt_connection(r, fd);
      continue;
    }
    bool kick = false;
    {
      const std::lock_guard<std::mutex> lock(target.inbox_mutex);
      target.adopt_inbox.push_back(fd);
      if (!target.wake_pending) {
        target.wake_pending = true;
        kick = true;
      }
    }
    if (kick) wake(target);
  }
}

void server::adopt_connection(reactor& r, int fd) {
  if (stopping_.load(std::memory_order_relaxed)) {
    ::close(fd);
    return;
  }
  auto conn = std::make_shared<connection>(
      fd, next_connection_id_.fetch_add(1, std::memory_order_relaxed), r);
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLRDHUP;
  ev.data.fd = fd;
  if (::epoll_ctl(r.epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return;  // conn destructor closes the fd
  }
  r.connections.emplace(fd, std::move(conn));
  r.accepted.fetch_add(1, std::memory_order_relaxed);
  r.active.fetch_add(1, std::memory_order_relaxed);
  counters_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
  connections_active_.fetch_add(1, std::memory_order_relaxed);
}

void server::read_ready(reactor& r, const connection_ptr& conn) {
  // Drain the socket in bounded bites, decoding and dispatching after
  // each recv. Draining straight to EAGAIN before ever consulting the
  // in-flight cap would let a client that pre-filled the kernel buffer
  // blow arbitrarily far past max_inflight_per_connection; this way the
  // overshoot is bounded by the frames of one 64 KiB read, and the rest
  // stays in the kernel buffer (level-triggered EPOLLIN re-fires once
  // the pause lifts).
  std::uint8_t buffer[64 * 1024];
  bool dead = conn->closed.load(std::memory_order_relaxed);
  bool drained = dead;
  std::vector<pending> batch;
  while (!dead) {
    const ssize_t got = ::recv(conn->fd, buffer, sizeof buffer, 0);
    if (got > 0) {
      counters_.bytes_in.fetch_add(static_cast<std::uint64_t>(got),
                                   std::memory_order_relaxed);
      if (!conn->reader.feed(buffer, static_cast<std::size_t>(got))) {
        protocol_error(conn, 0);
        dead = true;
      }
    } else if (got == 0) {
      dead = true;  // orderly EOF — the disconnect-on-close trigger
      drained = true;
    } else if (errno == EINTR) {
      continue;
    } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
      drained = true;
    } else {
      dead = true;  // reset / error — same as a crash
      drained = true;
    }

    // Decode everything this bite completed. Dead connections still
    // parse: requests already received alongside an EOF are served (the
    // client pipelined then closed; its last responses are moot, but a
    // won lease must be reclaimed — see serve/serve_blocking).
    while (auto frame = conn->reader.next()) {
      counters_.frames_in.fetch_add(1, std::memory_order_relaxed);
      auto req = wire::decode_request(*frame);
      if (!req) {
        protocol_error(conn, 0);
        dead = true;
        drained = true;
        break;
      }
      if (!conn->session) {
        handle_handshake(conn, *req);
        if (!conn->session) {
          dead = true;
          drained = true;
          break;
        }
        continue;
      }
      if (req->kind == wire::op::hello) {
        protocol_error(conn, req->id);
        dead = true;
        drained = true;
        break;
      }
      counters_.requests.fetch_add(1, std::memory_order_relaxed);
      r.requests.fetch_add(1, std::memory_order_relaxed);
      conn->in_flight.fetch_add(1, std::memory_order_acq_rel);
      if (req->kind == wire::op::acquire ||
          req->kind == wire::op::try_acquire_for) {
        dispatch(conn, std::move(*req));  // waiter spawn / busy
      } else {
        batch.push_back(pending{conn, std::move(*req)});
      }
    }
    if (drained) break;
    // At the cap: stop reading; maybe_pause below parks the socket.
    if (conn->in_flight.load(std::memory_order_acquire) >=
        config_.max_inflight_per_connection) {
      break;
    }
  }

  if (!batch.empty()) {
    counters_.dispatch_batches.fetch_add(1, std::memory_order_relaxed);
    {
      const std::lock_guard<std::mutex> lock(queue_mutex_);
      for (auto& p : batch) queue_.push_back(std::move(p));
    }
    if (batch.size() > 1) {
      queue_cv_.notify_all();
    } else {
      queue_cv_.notify_one();
    }
  }

  if (dead) {
    finish_connection(r, conn);
  } else {
    maybe_pause(r, conn);
  }
}

// Blocking ops only: spawn a bounded waiter thread, or answer busy.
void server::dispatch(const connection_ptr& conn, wire::request req) {
  {
    const std::lock_guard<std::mutex> lock(waiter_mutex_);
    if (active_waiters_ < config_.max_waiters &&
        !stopping_.load(std::memory_order_relaxed)) {
      ++active_waiters_;
      pending p{conn, std::move(req)};
      // Detached, but stop() blocks on active_waiters_ reaching zero,
      // so no waiter outlives the server.
      std::thread([this, p = std::move(p)] {
        serve_blocking(p);
        // Notify under the mutex: stop() waits on this cv with the
        // same mutex and destroys it right after the count hits zero,
        // so a notify outside the lock could land on a dead cv.
        const std::lock_guard<std::mutex> inner(waiter_mutex_);
        --active_waiters_;
        waiter_cv_.notify_all();
      }).detach();
      return;
    }
  }
  counters_.busy_rejections.fetch_add(1, std::memory_order_relaxed);
  wire::response busy;
  busy.id = req.id;
  busy.kind = req.kind;
  busy.result = wire::status::busy;
  send_response(conn, busy);
  complete(conn);
}

void server::handle_handshake(const connection_ptr& conn,
                              const wire::request& req) {
  if (!wire::hello_version_ok(req)) {
    protocol_error(conn, req.id);
    return;  // session stays unset; the caller closes the connection
  }
  auto session = service_.try_connect();
  if (!session.has_value()) {
    // The service stopped under us: answer once so the client fails
    // with "rejected" instead of a bare connection reset.
    wire::response refused = wire::make_hello_response(0);
    refused.id = req.id;
    refused.result = wire::status::rejected;
    send_response(conn, refused);
    return;
  }
  conn->session.emplace(*session);
  wire::response hello =
      wire::make_hello_response(static_cast<std::uint64_t>(session->id()));
  hello.id = req.id;
  send_response(conn, hello);
}

void server::protocol_error(const connection_ptr& conn,
                            std::uint64_t request_id) {
  counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
  wire::response r;
  r.id = request_id;
  r.result = wire::status::bad_request;
  // Best effort: the frame lands in the output ring and the final flush
  // in finish_connection pushes it at the raw socket before close.
  send_response(conn, r);
}

// ---------------------------------------------------------------------
// Request execution.

void server::executor_main() {
  for (;;) {
    pending p;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_relaxed) || !queue_.empty();
      });
      if (queue_.empty()) return;  // stopping and drained
      p = std::move(queue_.front());
      queue_.pop_front();
    }
    serve(p);
  }
}

wire::response server::acquire_response(const wire::request& req,
                                        const svc::acquire_result& result) {
  wire::response r;
  r.id = req.id;
  r.kind = req.kind;
  r.epoch = result.epoch;
  if (result.rejected) {
    // A cluster primary that lost its quorum fails the commit gate:
    // the grant was applied locally but never confirmed — the client
    // must treat it as a dead connection, not a clean loss.
    r.result = result.connection_lost ? wire::status::connection_lost
                                      : wire::status::rejected;
  } else if (result.won) {
    r.result = wire::status::ok;
    r.flags |= wire::flag_won;
    if (result.fast_path) r.flags |= wire::flag_fast_path;
    r.lease_remaining_ms = lease_remaining_ms(result.lease_deadline);
  } else if (result.timed_out) {
    r.result = wire::status::timed_out;
  } else {
    r.result = wire::status::lost;
  }
  return r;
}

void server::serve(const pending& p) {
  svc::service::session& session = *p.conn->session;
  const wire::request& req = p.req;
  // The v3 frame carried the client's trace id: serve under it so the
  // service-layer spans (fast path, queue wait, election, lease ops)
  // land in the same trace the client minted.
  const obs::trace_scope trace(req.trace_id);
  const serve_trace timing(req.trace_id, req.kind);
  wire::response r;
  r.id = req.id;
  r.kind = req.kind;
  if (config_.cluster.enabled()) {
    switch (req.kind) {
      case wire::op::peer_vote:
      case wire::op::peer_append:
      case wire::op::peer_snapshot:
        // Replication traffic: straight to the repl node, no session
        // semantics involved.
        send_response(p.conn, config_.cluster.peer(req));
        complete(p.conn);
        return;
      case wire::op::try_acquire:
      case wire::op::release:
      case wire::op::release_fenced:
      case wire::op::renew:
      case wire::op::admin_force_release:
        // Mutations only run where the replicated log is written.
        // (disconnect is deliberately absent: a follower session holds
        // nothing, so serving it locally is correct — and the implicit
        // disconnect on socket close has no one to redirect anyway.)
        if (!config_.cluster.is_primary()) {
          r.result = wire::status::not_primary;
          r.body = config_.cluster.primary_hint();
          send_response(p.conn, r);
          complete(p.conn);
          return;
        }
        break;
      default:
        break;
    }
  }
  switch (req.kind) {
    case wire::op::try_acquire: {
      const svc::acquire_result result = session.try_acquire(req.key);
      if (result.won &&
          p.conn->closed.load(std::memory_order_relaxed)) {
        // The request rode in alongside the connection's EOF (or the
        // close raced us): disconnect-on-close already ran, so this
        // fresh win has nobody behind it — hand it straight back
        // instead of orphaning the key. The shard mutex orders the
        // win against finish_connection's reclaim scan, so a win
        // the scan could not see always observes closed here.
        (void)session.reclaim(req.key, result.epoch);
        counters_.disconnect_reclaims.fetch_add(1,
                                                std::memory_order_relaxed);
        complete(p.conn);
        return;
      }
      r = acquire_response(req, result);
      break;
    }
    case wire::op::release:
      r.result = wire::from_lease_status(session.release(req.key));
      break;
    case wire::op::release_fenced:
      r.result =
          wire::from_lease_status(session.release(req.key, req.epoch));
      break;
    case wire::op::renew:
      r.result = wire::from_lease_status(session.renew(req.key, req.epoch));
      if (r.result == wire::status::ok) {
        // A successful renew re-arms the full TTL; telling the client
        // the refreshed budget is what lets a remote auto-renewing
        // lease (api::lease) schedule its next heartbeat without a
        // second round-trip.
        const std::uint64_t ttl_ms = service_.config().lease_ttl_ms;
        r.lease_remaining_ms = ttl_ms == 0 ? wire::lease_forever : ttl_ms;
      }
      break;
    case wire::op::watch:
      serve_watch(p, r);
      break;
    case wire::op::unwatch:
      serve_unwatch(p, r);
      break;
    case wire::op::disconnect:
      r.epoch = session.disconnect();
      r.result = wire::status::ok;
      break;
    case wire::op::metrics:
      r.body = report_json();
      r.result = wire::status::ok;
      // A body the frame cap cannot carry would poison the client's
      // deframer and kill the whole connection; fail just this call.
      if (r.body.size() > wire::max_frame_bytes - 64) {
        r.body.clear();
        r.result = wire::status::bad_request;
      }
      break;
    case wire::op::admin_cluster_status:
      // Answered by every member, primary or not, and NOT gated by
      // enable_admin: a client or operator locating the primary must
      // not need force-release rights to ask who leads.
      r.body = config_.cluster.status_json
                   ? config_.cluster.status_json()
                   : std::string("{\"role\":\"standalone\"}");
      r.result = wire::status::ok;
      break;
    case wire::op::admin_list:
    case wire::op::admin_inspect:
    case wire::op::admin_force_release:
    case wire::op::admin_snapshot:
    case wire::op::admin_commands:
      serve_admin(p, r);
      break;
    default:
      r.result = wire::status::bad_request;
      break;
  }
  send_response(p.conn, r);
  complete(p.conn);
}

// ---------------------------------------------------------------------
// The watch router. One hub subscription per watched key; fanout_event
// fans the hub's callback to every wire subscriber of that key.
//
// Lock order: router_mutex_ → out_mutex → pause_mutex, never reversed.
// service_.watch (hub add) is brief and safe anywhere; service_.unwatch
// (hub remove) can block until in-flight deliveries finish, and a
// delivery takes router_mutex_ — so unwatch is NEVER called with
// router_mutex_ held.

void server::serve_watch(const pending& p, wire::response& r) {
  const connection_ptr& conn = p.conn;
  const std::string& key = p.req.key;
  std::uint64_t id = 0;
  bool need_subscribe = false;
  {
    const std::lock_guard<std::mutex> lock(router_mutex_);
    // closed is set before finish_connection takes this lock to collect
    // watch ids, so either finish sees the id we add here, or we see
    // closed and refuse — never a leaked registration.
    if (conn->closed.load(std::memory_order_relaxed)) {
      r.result = wire::status::rejected;
      return;
    }
    if (conn->watch_ids.size() >=
        static_cast<std::size_t>(config_.max_watches_per_connection)) {
      counters_.busy_rejections.fetch_add(1, std::memory_order_relaxed);
      r.result = wire::status::busy;
      return;
    }
    id = next_router_id_++;
    watch_key_state& ks = router_by_key_[key];
    ks.ids.push_back(id);
    router_by_id_.emplace(id, watch_target{key, conn});
    conn->watch_ids.push_back(id);
    if (ks.hub_id == 0 && !ks.subscribing) {
      ks.subscribing = true;
      need_subscribe = true;
    }
  }
  if (need_subscribe) {
    // First watcher on this key: register the single hub subscription
    // whose callback serves every wire subscriber of the key.
    const std::uint64_t hub_id = service_.watch(
        key, [this](const svc::watch_event& e) { fanout_event(e); });
    std::uint64_t drop_hub = 0;
    bool failed = false;
    {
      const std::lock_guard<std::mutex> lock(router_mutex_);
      // The entry cannot vanish while `subscribing` is set (unwatch and
      // finish_connection leave it for us), so the lookup holds.
      const auto kit = router_by_key_.find(key);
      kit->second.subscribing = false;
      if (hub_id != 0 && !kit->second.ids.empty()) {
        kit->second.hub_id = hub_id;
      } else {
        if (hub_id == 0) {
          // Service stopped under us: roll back this registration.
          failed = true;
          router_by_id_.erase(id);
          auto& ids = kit->second.ids;
          ids.erase(std::remove(ids.begin(), ids.end(), id), ids.end());
          auto& wids = conn->watch_ids;
          wids.erase(std::remove(wids.begin(), wids.end(), id), wids.end());
        } else {
          drop_hub = hub_id;  // everyone left while we registered
        }
        if (kit->second.ids.empty() && kit->second.hub_id == 0) {
          router_by_key_.erase(kit);
        }
      }
    }
    if (drop_hub != 0) service_.unwatch(drop_hub);
    if (failed) {
      r.result = wire::status::rejected;
      return;
    }
  }
  counters_.watch_subscriptions.fetch_add(1, std::memory_order_relaxed);
  r.result = wire::status::ok;
  r.epoch = id;  // the handle the client passes back to unwatch
}

void server::serve_unwatch(const pending& p, wire::response& r) {
  const std::uint64_t id = p.req.epoch;
  std::uint64_t drop_hub = 0;
  {
    const std::lock_guard<std::mutex> lock(router_mutex_);
    const auto idit = router_by_id_.find(id);
    // Only ids this connection registered are cancelled — an unknown or
    // foreign id is a harmless no-op, not a protocol violation.
    if (idit != router_by_id_.end() && idit->second.conn == p.conn) {
      const std::string key = idit->second.key;
      router_by_id_.erase(idit);
      auto& wids = p.conn->watch_ids;
      wids.erase(std::remove(wids.begin(), wids.end(), id), wids.end());
      const auto kit = router_by_key_.find(key);
      if (kit != router_by_key_.end()) {
        auto& ids = kit->second.ids;
        ids.erase(std::remove(ids.begin(), ids.end(), id), ids.end());
        if (ids.empty() && !kit->second.subscribing) {
          drop_hub = kit->second.hub_id;
          router_by_key_.erase(kit);
        }
      }
    }
  }
  if (drop_hub != 0) service_.unwatch(drop_hub);
  r.result = wire::status::ok;
}

void server::fanout_event(const svc::watch_event& e) {
  if (stopping_.load(std::memory_order_relaxed)) return;
  // The fast lane: encode the event ONCE into a shared immutable
  // buffer; every subscriber's ring gets the same bytes by reference.
  auto buf = std::make_shared<const std::vector<std::uint8_t>>(
      wire::encode_response(wire::make_event(e)));
  std::vector<connection_ptr> targets;
  {
    const std::lock_guard<std::mutex> lock(router_mutex_);
    const auto kit = router_by_key_.find(e.key);
    if (kit == router_by_key_.end()) return;
    targets.reserve(kit->second.ids.size());
    for (const std::uint64_t id : kit->second.ids) {
      const auto idit = router_by_id_.find(id);
      if (idit != router_by_id_.end()) targets.push_back(idit->second.conn);
    }
  }
  // Group the flush posts by owning reactor: one inbox lock + one
  // eventfd kick per reactor, however many subscribers it hosts.
  std::vector<std::vector<connection_ptr>> by_reactor(reactors_.size());
  for (const connection_ptr& conn : targets) {
    bool need_post = false;
    if (!enqueue_frame(conn, buf, /*is_event=*/true, need_post)) {
      counters_.events_dropped.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (need_post) {
      by_reactor[static_cast<std::size_t>(conn->owner.index)].push_back(conn);
    }
  }
  for (std::size_t i = 0; i < by_reactor.size(); ++i) {
    if (!by_reactor[i].empty()) {
      post_flush_batch(*reactors_[i], std::move(by_reactor[i]));
    }
  }
}

void server::serve_admin(const pending& p, wire::response& r) {
  if (!config_.enable_admin) {
    r.result = wire::status::denied;
    return;
  }
  svc::instance_registry& registry = service_.registry();
  switch (p.req.kind) {
    case wire::op::admin_list: {
      std::string body = "[";
      for (const svc::key_inspection& k : registry.list_keys()) {
        if (body.size() > 1) body += ',';
        body += inspection_json(k);
        // A pathological key population could outgrow a frame; truncate
        // to whole objects rather than poisoning the client's deframer.
        if (body.size() > wire::max_frame_bytes / 2) break;
      }
      body += ']';
      r.body = std::move(body);
      r.result = wire::status::ok;
      break;
    }
    case wire::op::admin_inspect: {
      const auto k = registry.inspect(p.req.key);
      if (!k.has_value()) {
        r.result = wire::status::not_leader;  // never acquired
        break;
      }
      r.body = inspection_json(*k);
      r.epoch = k->entry.epoch;
      r.result = wire::status::ok;
      break;
    }
    case wire::op::admin_force_release:
      // Through the service, not the registry: the forced-release
      // counter and the journal's "admin" cause live there.
      r.result = wire::from_lease_status(service_.force_release(p.req.key));
      break;
    case wire::op::admin_snapshot: {
      const std::vector<std::uint8_t> snap =
          service_.registry().snapshot(/*trim_log=*/false);
      bool written = false;
      bool write_failed = false;
      if (!config_.snapshot_path.empty()) {
        written = write_snapshot_file(config_.snapshot_path, snap);
        write_failed = !written;
      }
      const cmd::log_stats stats = service_.registry().log_stats();
      std::string body = "{\"recording\":";
      body += stats.recording ? "true" : "false";
      body += ",\"recorded\":";
      body += std::to_string(stats.recorded);
      body += ",\"retained\":";
      body += std::to_string(stats.retained);
      body += ",\"bytes\":";
      body += std::to_string(snap.size());
      body += ",\"path\":\"";
      json_escape_into(body, config_.snapshot_path);
      body += "\",\"written\":";
      body += written ? "true" : "false";
      body += "}";
      r.body = std::move(body);
      // A snapshot the operator asked to persist but could not be
      // written is a failure, not a success with a footnote.
      r.result =
          write_failed ? wire::status::rejected : wire::status::ok;
      break;
    }
    case wire::op::admin_commands: {
      // Page through the retained command stream: the request's epoch
      // field is the offset into collect_commands() order, the
      // response's epoch is the next offset. The collection is
      // re-taken per page — stable as long as nothing trims between
      // pages (callers fetch at quiesce; a concurrent trim shows up as
      // a shrunk total, not corruption).
      if (!registry.command_log_enabled()) {
        r.result = wire::status::rejected;
        break;
      }
      const std::vector<cmd::command> all = registry.collect_commands();
      const std::uint64_t offset =
          std::min<std::uint64_t>(p.req.epoch, all.size());
      std::string body = "{\"total\":";
      body += std::to_string(all.size());
      body += ",\"offset\":";
      body += std::to_string(offset);
      body += ",\"commands\":[";
      std::uint64_t next = offset;
      bool first = true;
      for (; next < all.size(); ++next) {
        const std::string one = cmd::to_json(all[next]);
        if (body.size() + one.size() > wire::max_frame_bytes / 2) break;
        if (!first) body += ',';
        body += one;
        first = false;
      }
      body += "]}";
      r.body = std::move(body);
      r.epoch = next;
      r.result = wire::status::ok;
      break;
    }
    default:
      r.result = wire::status::bad_request;
      break;
  }
}

void server::serve_blocking(const pending& p) {
  svc::service::session& session = *p.conn->session;
  const obs::trace_scope trace(p.req.trace_id);
  const serve_trace timing(p.req.trace_id, p.req.kind);
  const auto not_primary = [&] {
    return config_.cluster.enabled() && !config_.cluster.is_primary();
  };
  if (not_primary()) {
    wire::response redirect;
    redirect.id = p.req.id;
    redirect.kind = p.req.kind;
    redirect.result = wire::status::not_primary;
    redirect.body = config_.cluster.primary_hint();
    send_response(p.conn, redirect);
    complete(p.conn);
    return;
  }
  const bool bounded = p.req.kind == wire::op::try_acquire_for;
  const auto slice = std::chrono::milliseconds(
      std::max<std::uint64_t>(1, config_.blocking_slice_ms));
  // The wire value is untrusted: clamp before it meets the clock, or a
  // huge timeout overflows the nanosecond rep (UB) / wraps the deadline
  // into the past. A day is indistinguishable from forever here.
  const auto timeout = std::chrono::milliseconds(
      std::min<std::uint64_t>(p.req.timeout_ms, 86'400'000ull));
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  svc::acquire_result result;
  bool abandoned = false;
  for (;;) {
    // Sleep in bounded slices: each wakeup re-checks for server stop and
    // connection death, so no waiter thread outlives either by more than
    // one slice. A won slice attempt is a real win; a timed-out slice
    // just loops.
    auto wait = slice;
    if (bounded) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      wait = std::clamp(left, std::chrono::milliseconds(0), slice);
    }
    result = session.try_acquire_for(p.req.key, wait);
    if (result.won || result.rejected) break;
    if (bounded && std::chrono::steady_clock::now() >= deadline) {
      result.timed_out = true;
      break;
    }
    if (p.conn->closed.load(std::memory_order_relaxed)) {
      abandoned = true;
      break;
    }
    if (stopping_.load(std::memory_order_relaxed)) {
      result = svc::acquire_result{};
      result.rejected = true;
      break;
    }
    if (not_primary()) {
      // Deposed mid-wait: the waiter cannot win here any more (the
      // commit gate fails every new grant); tell the client where to
      // re-queue instead of letting it park against a follower.
      wire::response redirect;
      redirect.id = p.req.id;
      redirect.kind = p.req.kind;
      redirect.result = wire::status::not_primary;
      redirect.body = config_.cluster.primary_hint();
      send_response(p.conn, redirect);
      complete(p.conn);
      return;
    }
  }
  if (result.won &&
      (abandoned || p.conn->closed.load(std::memory_order_relaxed))) {
    // The client died while its acquire was in flight; nobody is behind
    // the lease, so hand it straight back instead of wedging the key
    // until the TTL.
    (void)session.reclaim(p.req.key, result.epoch);
    counters_.disconnect_reclaims.fetch_add(1, std::memory_order_relaxed);
    complete(p.conn);
    return;
  }
  if (abandoned) {
    complete(p.conn);
    return;
  }
  send_response(p.conn, acquire_response(p.req, result));
  complete(p.conn);
}

// ---------------------------------------------------------------------
// Response path: output rings, writev flushes, backpressure, teardown.

bool server::enqueue_frame(
    const connection_ptr& conn,
    std::shared_ptr<const std::vector<std::uint8_t>> bytes, bool is_event,
    bool& need_post) {
  need_post = false;
  const std::size_t size = bytes->size();
  bool overflow = false;
  {
    const std::lock_guard<std::mutex> lock(conn->out_mutex);
    if (conn->closed.load(std::memory_order_relaxed)) return false;
    if (conn->outbox_bytes + size > config_.max_outbox_bytes) {
      overflow = true;
    } else {
      conn->outbox.push_back(out_frame{std::move(bytes), is_event});
      conn->outbox_bytes += size;
      if (!conn->flush_queued) {
        conn->flush_queued = true;
        need_post = true;
      }
    }
  }
  if (overflow) {
    // A ring at the cap means the consumer stopped draining long ago;
    // cut the connection rather than buffer without bound.
    start_close(conn);
    return false;
  }
  return true;
}

void server::send_response(const connection_ptr& conn,
                           const wire::response& r) {
  if (conn->closed.load(std::memory_order_relaxed)) return;
  auto frame = std::make_shared<const std::vector<std::uint8_t>>(
      wire::encode_response(r));
  bool need_post = false;
  if (enqueue_frame(conn, std::move(frame), /*is_event=*/false, need_post) &&
      need_post) {
    post_flush(conn->owner, conn);
  }
}

void server::post_flush(reactor& r, const connection_ptr& conn) {
  if (current_reactor_tls == &r) {
    flush_connection(r, conn);
    return;
  }
  bool kick = false;
  {
    const std::lock_guard<std::mutex> lock(r.inbox_mutex);
    r.flush_inbox.push_back(conn);
    if (!r.wake_pending) {
      r.wake_pending = true;
      kick = true;
    }
  }
  if (kick) wake(r);
}

void server::post_flush_batch(reactor& r, std::vector<connection_ptr> conns) {
  if (current_reactor_tls == &r) {
    for (const auto& conn : conns) flush_connection(r, conn);
    return;
  }
  bool kick = false;
  {
    const std::lock_guard<std::mutex> lock(r.inbox_mutex);
    for (auto& conn : conns) r.flush_inbox.push_back(std::move(conn));
    if (!r.wake_pending) {
      r.wake_pending = true;
      kick = true;
    }
  }
  if (kick) wake(r);
}

void server::post_resume(reactor& r, const connection_ptr& conn) {
  if (current_reactor_tls == &r) {
    handle_resume(r, conn);
    return;
  }
  bool kick = false;
  {
    const std::lock_guard<std::mutex> lock(r.inbox_mutex);
    r.resume_inbox.push_back(conn);
    if (!r.wake_pending) {
      r.wake_pending = true;
      kick = true;
    }
  }
  if (kick) wake(r);
}

std::pair<std::uint64_t, std::uint64_t> server::pop_written(
    connection& conn, std::size_t wrote) {
  conn.outbox_bytes -= wrote;
  std::uint64_t frames = 0;
  std::uint64_t events = 0;
  while (wrote > 0 && !conn.outbox.empty()) {
    out_frame& front = conn.outbox.front();
    const std::size_t left = front.bytes->size() - conn.out_offset;
    if (wrote >= left) {
      wrote -= left;
      conn.out_offset = 0;
      ++frames;
      if (front.is_event) ++events;
      conn.outbox.pop_front();
    } else {
      conn.out_offset += wrote;
      wrote = 0;
    }
  }
  return {frames, events};
}

void server::flush_connection(reactor& r, const connection_ptr& conn) {
  if (conn->closed.load(std::memory_order_relaxed)) return;
  const auto budget = std::chrono::milliseconds(
      std::max<std::uint64_t>(1, config_.event_write_budget_ms));
  std::uint64_t flushed = 0;
  for (;;) {
    iovec iov[64];
    int iov_count = 0;
    {
      const std::lock_guard<std::mutex> lock(conn->out_mutex);
      std::size_t offset = conn->out_offset;
      for (const out_frame& f : conn->outbox) {
        if (iov_count == 64) break;
        iov[iov_count].iov_base =
            const_cast<std::uint8_t*>(f.bytes->data() + offset);
        iov[iov_count].iov_len = f.bytes->size() - offset;
        offset = 0;
        ++iov_count;
      }
      // Drained under the same hold that observed empty: an appender
      // racing in after this will see flush_queued false and post.
      if (iov_count == 0) conn->flush_queued = false;
    }
    if (iov_count == 0) {
      if (conn->want_writable) {
        conn->want_writable = false;
        rearm(r, conn);
      }
      conn->stall_armed = false;
      break;
    }
    const ssize_t wrote = ::writev(conn->fd, iov, iov_count);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!conn->want_writable) {
          conn->want_writable = true;
          rearm(r, conn);
        }
        if (!conn->stall_armed) {
          // Start the no-progress clock; fire_stalls kills the
          // connection if a full budget passes without a byte moving.
          conn->stall_armed = true;
          conn->stall_since = std::chrono::steady_clock::now();
          r.stall_wheel.emplace(conn->stall_since + budget, conn->fd);
        }
        // flush_queued stays set: EPOLLOUT resumes this drain, and
        // appenders need not post meanwhile.
        if (flushed > 0) r.drain_batches.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      finish_connection(r, conn);
      return;
    }
    r.writev_calls.fetch_add(1, std::memory_order_relaxed);
    counters_.bytes_out.fetch_add(static_cast<std::uint64_t>(wrote),
                                  std::memory_order_relaxed);
    conn->stall_armed = false;  // progress resets the stall budget
    std::uint64_t frames = 0;
    std::uint64_t events = 0;
    {
      const std::lock_guard<std::mutex> lock(conn->out_mutex);
      std::tie(frames, events) =
          pop_written(*conn, static_cast<std::size_t>(wrote));
    }
    if (frames > 0) {
      counters_.frames_out.fetch_add(frames, std::memory_order_relaxed);
      r.frames_flushed.fetch_add(frames, std::memory_order_relaxed);
      flushed += frames;
    }
    if (events > 0) {
      counters_.events_pushed.fetch_add(events, std::memory_order_relaxed);
    }
  }
  if (flushed > 0) r.drain_batches.fetch_add(1, std::memory_order_relaxed);
}

void server::fire_stalls(reactor& r) {
  if (r.stall_wheel.empty()) return;
  const auto now = std::chrono::steady_clock::now();
  const auto budget = std::chrono::milliseconds(
      std::max<std::uint64_t>(1, config_.event_write_budget_ms));
  while (!r.stall_wheel.empty() && r.stall_wheel.begin()->first <= now) {
    const int fd = r.stall_wheel.begin()->second;
    r.stall_wheel.erase(r.stall_wheel.begin());
    const auto it = r.connections.find(fd);
    if (it == r.connections.end()) continue;  // already finished
    const connection_ptr conn = it->second;
    // An entry is current only if its deadline matches the live arm
    // time; progress disarms, a re-arm inserts a fresh entry. Stale
    // entries are skipped, not rescheduled.
    if (!conn->stall_armed) continue;
    if (conn->stall_since + budget > now) continue;
    // No progress for a full budget: a dead consumer. Its queued
    // frames count as dropped in finish_connection.
    finish_connection(r, conn);
  }
}

int server::next_stall_timeout_ms(reactor& r) const {
  if (r.stall_wheel.empty()) return -1;
  const auto now = std::chrono::steady_clock::now();
  const auto first = r.stall_wheel.begin()->first;
  if (first <= now) return 0;
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(first - now)
          .count() +
      1;
  return static_cast<int>(std::min<long long>(ms, 60'000));
}

void server::rearm(reactor& r, const connection_ptr& conn) {
  if (conn->closed.load(std::memory_order_relaxed)) return;
  std::uint32_t mask = EPOLLRDHUP;
  {
    const std::lock_guard<std::mutex> lock(conn->pause_mutex);
    if (!conn->paused) mask |= EPOLLIN;
  }
  if (conn->want_writable) mask |= EPOLLOUT;
  epoll_event ev{};
  ev.events = mask;
  ev.data.fd = conn->fd;
  (void)::epoll_ctl(r.epoll_fd, EPOLL_CTL_MOD, conn->fd, &ev);
}

void server::complete(const connection_ptr& conn) {
  conn->in_flight.fetch_sub(1, std::memory_order_acq_rel);
  bool post = false;
  {
    const std::lock_guard<std::mutex> lock(conn->pause_mutex);
    if (conn->paused && !conn->resume_queued &&
        !conn->closed.load(std::memory_order_relaxed) &&
        conn->in_flight.load(std::memory_order_acquire) <=
            config_.max_inflight_per_connection / 2) {
      conn->resume_queued = true;
      post = true;
    }
  }
  if (post) post_resume(conn->owner, conn);
}

void server::maybe_pause(reactor& r, const connection_ptr& conn) {
  bool paused_now = false;
  {
    const std::lock_guard<std::mutex> lock(conn->pause_mutex);
    if (conn->paused || conn->closed.load(std::memory_order_relaxed)) return;
    if (conn->in_flight.load(std::memory_order_acquire) <
        config_.max_inflight_per_connection) {
      return;
    }
    conn->paused = true;
    paused_now = true;
  }
  if (paused_now) {
    counters_.backpressure_pauses.fetch_add(1, std::memory_order_relaxed);
    rearm(r, conn);
  }
}

void server::handle_resume(reactor& r, const connection_ptr& conn) {
  bool resumed = false;
  {
    const std::lock_guard<std::mutex> lock(conn->pause_mutex);
    conn->resume_queued = false;
    if (!conn->paused || conn->closed.load(std::memory_order_relaxed)) return;
    if (conn->in_flight.load(std::memory_order_acquire) >
        config_.max_inflight_per_connection / 2) {
      // Filled back up since the post; a later complete() re-posts.
      return;
    }
    conn->paused = false;
    resumed = true;
  }
  if (resumed) rearm(r, conn);
}

void server::start_close(const connection_ptr& conn) {
  if (conn->closed.exchange(true)) return;
  // The local shutdown makes epoll report the fd (EPOLLHUP fires even
  // for a paused connection), so the owning reactor runs
  // finish_connection.
  ::shutdown(conn->fd, SHUT_RDWR);
}

void server::finish_connection(reactor& r, const connection_ptr& conn) {
  if (r.connections.erase(conn->fd) == 0) return;  // already finished
  const bool was_closed = conn->closed.exchange(true);
  if (!was_closed) {
    // Final opportunistic flush: a one-shot refusal (bad hello, oversize
    // frame) must still reach the peer, and responses a clean
    // disconnect raced past deserve a best effort. writev while bytes
    // move; EAGAIN or error abandons the rest.
    const std::lock_guard<std::mutex> lock(conn->out_mutex);
    while (!conn->outbox.empty()) {
      iovec iov[64];
      int iov_count = 0;
      std::size_t offset = conn->out_offset;
      for (const out_frame& f : conn->outbox) {
        if (iov_count == 64) break;
        iov[iov_count].iov_base =
            const_cast<std::uint8_t*>(f.bytes->data() + offset);
        iov[iov_count].iov_len = f.bytes->size() - offset;
        offset = 0;
        ++iov_count;
      }
      const ssize_t wrote = ::writev(conn->fd, iov, iov_count);
      if (wrote <= 0) {
        if (wrote < 0 && errno == EINTR) continue;
        break;
      }
      r.writev_calls.fetch_add(1, std::memory_order_relaxed);
      counters_.bytes_out.fetch_add(static_cast<std::uint64_t>(wrote),
                                    std::memory_order_relaxed);
      const auto popped = pop_written(*conn, static_cast<std::size_t>(wrote));
      if (popped.first > 0) {
        counters_.frames_out.fetch_add(popped.first,
                                       std::memory_order_relaxed);
        r.frames_flushed.fetch_add(popped.first, std::memory_order_relaxed);
      }
      if (popped.second > 0) {
        counters_.events_pushed.fetch_add(popped.second,
                                          std::memory_order_relaxed);
      }
    }
  }
  ::shutdown(conn->fd, SHUT_RDWR);
  (void)::epoll_ctl(r.epoll_fd, EPOLL_CTL_DEL, conn->fd, nullptr);
  conn->stall_armed = false;
  {
    // Whatever could not be flushed is gone; count the lost events.
    const std::lock_guard<std::mutex> lock(conn->out_mutex);
    std::uint64_t dropped = 0;
    for (const out_frame& f : conn->outbox) {
      if (f.is_event) ++dropped;
    }
    conn->outbox.clear();
    conn->outbox_bytes = 0;
    conn->out_offset = 0;
    if (dropped > 0) {
      counters_.events_dropped.fetch_add(dropped, std::memory_order_relaxed);
    }
  }
  // Cancel the connection's watch registrations. Hub subscriptions
  // whose last subscriber this was are removed OUTSIDE the router lock:
  // hub remove waits for in-flight deliveries, and a delivery takes the
  // router lock (fanout_event) — holding it here would deadlock.
  std::vector<std::uint64_t> hub_drops;
  {
    const std::lock_guard<std::mutex> lock(router_mutex_);
    for (const std::uint64_t id : conn->watch_ids) {
      const auto idit = router_by_id_.find(id);
      if (idit == router_by_id_.end()) continue;
      const std::string key = idit->second.key;
      router_by_id_.erase(idit);
      const auto kit = router_by_key_.find(key);
      if (kit == router_by_key_.end()) continue;
      auto& ids = kit->second.ids;
      ids.erase(std::remove(ids.begin(), ids.end(), id), ids.end());
      if (ids.empty() && !kit->second.subscribing) {
        if (kit->second.hub_id != 0) hub_drops.push_back(kit->second.hub_id);
        router_by_key_.erase(kit);
      }
    }
    conn->watch_ids.clear();
  }
  for (const std::uint64_t hub : hub_drops) service_.unwatch(hub);
  if (conn->session.has_value()) {
    // The disconnect-on-close hook: whatever the remote client held is
    // reclaimed NOW — its rivals re-elect immediately instead of
    // waiting out the lease TTL. In-flight wins for this connection are
    // reclaimed by their waiters (see serve_blocking). Each reclaimed
    // key's disconnect_reclaimed command carries its real epoch, so the
    // event journal names every key with no pre-scan of held keys.
    const std::size_t reclaimed = conn->session->reclaim_all();
    counters_.disconnect_reclaims.fetch_add(reclaimed,
                                            std::memory_order_relaxed);
  }
  r.active.fetch_sub(1, std::memory_order_relaxed);
  connections_active_.fetch_sub(1, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------
// The HTTP side-channel (reactor 0 only). Deliberately minimal:
// GET-only, one request per connection, answer and close. A scrape is
// small and rare; anything fancier (keep-alive, chunking, pipelining)
// buys nothing here and costs reactor-0 attention.

void server::http_accept_ready(reactor& r) {
  for (;;) {
    const int fd = ::accept4(http_listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (stopping_.load(std::memory_order_relaxed) ||
        http_conns_.size() >= 64) {
      ::close(fd);
      continue;
    }
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLRDHUP;
    ev.data.fd = fd;
    if (::epoll_ctl(r.epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    http_conns_.emplace(fd, std::string());
  }
}

void server::http_read_ready(reactor& r, int fd) {
  const auto it = http_conns_.find(fd);
  if (it == http_conns_.end()) return;
  std::string& buffered = it->second;
  char buf[4096];
  for (;;) {
    const ssize_t got = ::recv(fd, buf, sizeof buf, 0);
    if (got > 0) {
      buffered.append(buf, static_cast<std::size_t>(got));
      if (buffered.size() > 8192) {  // no sane GET is this big
        http_close(r, fd);
        return;
      }
      continue;
    }
    if (got == 0) {
      http_close(r, fd);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    http_close(r, fd);
    return;
  }
  // Headers complete? (We ignore them — the request line is the API.)
  if (buffered.find("\r\n\r\n") == std::string::npos &&
      buffered.find("\n\n") == std::string::npos) {
    return;  // wait for the rest
  }
  http_respond(fd, buffered);
  http_close(r, fd);
}

void server::http_respond(int fd, const std::string& buffered) {
  // Parse "METHOD SP path ..." off the request line.
  const std::size_t line_end = buffered.find_first_of("\r\n");
  const std::string line = buffered.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
  std::string method =
      sp1 == std::string::npos ? std::string() : line.substr(0, sp1);
  std::string path = sp2 == std::string::npos
                         ? std::string()
                         : line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);

  const char* status = "200 OK";
  const char* content_type = "text/plain; version=0.0.4; charset=utf-8";
  std::string body;
  if (method != "GET") {
    status = "405 Method Not Allowed";
    content_type = "text/plain; charset=utf-8";
    body = "method not allowed\n";
  } else if (path == "/metrics") {
    body = obs::render_prometheus(service_.report());
    render_net_prometheus(body, report());
    if (config_.cluster.prom_text) body += config_.cluster.prom_text();
  } else if (path == "/report") {
    content_type = "application/json";
    body = report_json();
  } else if (path == "/healthz") {
    content_type = "text/plain; charset=utf-8";
    body = "ok\n";
  } else {
    status = "404 Not Found";
    content_type = "text/plain; charset=utf-8";
    body = "not found\n";
  }

  std::string response = "HTTP/1.0 ";
  response += status;
  response += "\r\nContent-Type: ";
  response += content_type;
  response += "\r\nContent-Length: ";
  response += std::to_string(body.size());
  response += "\r\nConnection: close\r\n\r\n";
  response += body;
  // Bounded write on the reactor thread: a scrape response is a few
  // KiB, but a wedged scraper must not park the reactor indefinitely.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  (void)write_all(fd, reinterpret_cast<const std::uint8_t*>(response.data()),
                  response.size(), stopping_, &deadline);
}

void server::http_close(reactor& r, int fd) {
  (void)::epoll_ctl(r.epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  http_conns_.erase(fd);
}

// ---------------------------------------------------------------------
// Reporting.

net_report server::report() const {
  net_report r;
  r.connections_accepted =
      counters_.connections_accepted.load(std::memory_order_relaxed);
  r.connections_active =
      connections_active_.load(std::memory_order_relaxed);
  r.connections_refused =
      counters_.connections_refused.load(std::memory_order_relaxed);
  r.frames_in = counters_.frames_in.load(std::memory_order_relaxed);
  r.frames_out = counters_.frames_out.load(std::memory_order_relaxed);
  r.bytes_in = counters_.bytes_in.load(std::memory_order_relaxed);
  r.bytes_out = counters_.bytes_out.load(std::memory_order_relaxed);
  r.requests = counters_.requests.load(std::memory_order_relaxed);
  r.dispatch_batches =
      counters_.dispatch_batches.load(std::memory_order_relaxed);
  r.backpressure_pauses =
      counters_.backpressure_pauses.load(std::memory_order_relaxed);
  r.busy_rejections =
      counters_.busy_rejections.load(std::memory_order_relaxed);
  r.protocol_errors =
      counters_.protocol_errors.load(std::memory_order_relaxed);
  r.disconnect_reclaims =
      counters_.disconnect_reclaims.load(std::memory_order_relaxed);
  r.watch_subscriptions =
      counters_.watch_subscriptions.load(std::memory_order_relaxed);
  r.events_pushed = counters_.events_pushed.load(std::memory_order_relaxed);
  r.events_dropped =
      counters_.events_dropped.load(std::memory_order_relaxed);
  r.reactors = reactors_.size();
  r.reuseport = reuseport_active_;
  r.per_reactor.reserve(reactors_.size());
  for (const auto& re : reactors_) {
    net_report::reactor_stat s;
    s.index = re->index;
    s.connections = re->active.load(std::memory_order_relaxed);
    s.accepted = re->accepted.load(std::memory_order_relaxed);
    s.wakeups = re->wakeups.load(std::memory_order_relaxed);
    s.writev_calls = re->writev_calls.load(std::memory_order_relaxed);
    s.frames_flushed = re->frames_flushed.load(std::memory_order_relaxed);
    s.drain_batches = re->drain_batches.load(std::memory_order_relaxed);
    s.requests = re->requests.load(std::memory_order_relaxed);
    r.writev_calls += s.writev_calls;
    r.frames_flushed += s.frames_flushed;
    r.reactor_wakeups += s.wakeups;
    r.per_reactor.push_back(s);
  }
  return r;
}

std::string server::report_json() const {
  svc::service_report combined = service_.report();
  combined.net_json = report().to_json();
  if (config_.cluster.status_json) {
    combined.repl_json = config_.cluster.status_json();
  }
  return combined.to_json();
}

}  // namespace elect::net
