#include "net/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <utility>

#include "common/check.hpp"
#include "obs/prom.hpp"
#include "obs/trace.hpp"

namespace elect::net {

namespace {

using namespace std::chrono_literals;

/// Milliseconds of lease left, for the wire (clamped at zero; the
/// sentinel for "never expires" is wire::lease_forever).
std::uint64_t lease_remaining_ms(
    std::chrono::steady_clock::time_point deadline) {
  if (deadline == std::chrono::steady_clock::time_point::max()) {
    return wire::lease_forever;
  }
  const auto left = deadline - std::chrono::steady_clock::now();
  if (left <= std::chrono::steady_clock::duration::zero()) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(left).count());
}

/// Write the whole buffer to a non-blocking socket, parking on POLLOUT
/// when the send buffer is full. A slow consumer stalls only the thread
/// serving it; `stopping` bounds that stall across server shutdown, and
/// `deadline` (when non-null) bounds it absolutely — the event-push
/// path uses it so the watch hub's notifier can never be held hostage.
bool write_all(int fd, const std::uint8_t* data, std::size_t n,
               const std::atomic<bool>& stopping,
               const std::chrono::steady_clock::time_point* deadline =
                   nullptr) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t wrote = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (wrote > 0) {
      sent += static_cast<std::size_t>(wrote);
      continue;
    }
    if (wrote < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{fd, POLLOUT, 0};
      (void)::poll(&pfd, 1, 100);
      if (stopping.load(std::memory_order_relaxed)) return false;
      if (deadline != nullptr &&
          std::chrono::steady_clock::now() >= *deadline) {
        return false;
      }
      continue;
    }
    if (wrote < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

/// Records the server-side `serve` span for a traced request and runs
/// the slow-request check when it ends. Destructor-driven so every
/// early return in serve()/serve_blocking() is covered, and the span
/// exists in the ring *before* the capture formats the trace.
class serve_trace {
 public:
  serve_trace(std::uint64_t trace, wire::op kind) noexcept
      : trace_(trace), kind_(kind),
        start_(trace != 0 ? obs::now_ns() : 0) {}

  serve_trace(const serve_trace&) = delete;
  serve_trace& operator=(const serve_trace&) = delete;

  ~serve_trace() {
    if (trace_ == 0) return;
    const std::uint64_t end = obs::now_ns();
    obs::record_for(trace_, obs::phase::serve, start_, end);
    std::string label = "serve ";
    label += wire::to_string(kind_);
    (void)obs::maybe_capture_slow(
        trace_, std::chrono::nanoseconds(end - start_), label);
  }

 private:
  std::uint64_t trace_;
  wire::op kind_;
  std::uint64_t start_;
};

void json_escape_into(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// One key_inspection as the JSON object the admin ops return.
/// lease_remaining_ms is null for a non-expiring (or absent) lease.
std::string inspection_json(const svc::key_inspection& k) {
  std::string out;
  out += "{\"key\":\"";
  json_escape_into(out, k.key);
  out += "\",\"epoch\":";
  out += std::to_string(k.entry.epoch);
  out += ",\"leader\":";
  out += std::to_string(k.leader);
  out += ",\"mode\":\"";
  out.append(k.mode.data(), k.mode.size());
  out += "\",\"lease_remaining_ms\":";
  const std::uint64_t left = lease_remaining_ms(k.lease_deadline);
  if (k.leader < 0 || left == wire::lease_forever) {
    out += "null";
  } else {
    out += std::to_string(left);
  }
  out += ",\"attempts_this_epoch\":";
  out += std::to_string(k.attempts_this_epoch);
  out += ",\"last_epoch_attempts\":";
  out += std::to_string(k.last_epoch_attempts);
  out += '}';
  return out;
}

/// Persist a snapshot via write-to-temp + rename, so a crash mid-write
/// never leaves a torn file where a restore expects a whole one.
bool write_snapshot_file(const std::string& path,
                         const std::vector<std::uint8_t>& bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) return false;
  const bool wrote =
      bytes.empty() ||
      std::fwrite(bytes.data(), 1, bytes.size(), file) == bytes.size();
  const bool flushed = std::fflush(file) == 0;
  const bool closed = std::fclose(file) == 0;
  if (!(wrote && flushed && closed)) {
    (void)std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    (void)std::remove(tmp.c_str());
    return false;
  }
  return true;
}

/// The network front-end's own Prometheus series, appended after the
/// service-level series obs::render_prometheus produces.
void render_net_prometheus(std::string& out, const net_report& r) {
  const auto counter = [&out](const char* name, const char* help,
                              std::uint64_t value) {
    out += "# HELP ";
    out += name;
    out += ' ';
    out += help;
    out += "\n# TYPE ";
    out += name;
    out += " counter\n";
    out += name;
    out += ' ';
    out += std::to_string(value);
    out += '\n';
  };
  out += "# HELP elect_net_connections_active Open client connections.\n";
  out += "# TYPE elect_net_connections_active gauge\n";
  out += "elect_net_connections_active ";
  out += std::to_string(r.connections_active);
  out += '\n';
  counter("elect_net_connections_accepted_total", "Connections accepted.",
          r.connections_accepted);
  counter("elect_net_connections_refused_total",
          "Connections refused at the cap.", r.connections_refused);
  counter("elect_net_requests_total", "Wire requests decoded.", r.requests);
  counter("elect_net_frames_in_total", "Frames received.", r.frames_in);
  counter("elect_net_frames_out_total", "Frames sent.", r.frames_out);
  counter("elect_net_bytes_in_total", "Bytes received.", r.bytes_in);
  counter("elect_net_bytes_out_total", "Bytes sent.", r.bytes_out);
  counter("elect_net_busy_rejections_total",
          "Requests answered busy at the blocking-op cap.",
          r.busy_rejections);
  counter("elect_net_protocol_errors_total",
          "Connections killed for protocol violations.", r.protocol_errors);
  counter("elect_net_disconnect_reclaims_total",
          "Leases reclaimed because their connection died.",
          r.disconnect_reclaims);
  counter("elect_net_events_pushed_total", "Watch event frames delivered.",
          r.events_pushed);
  counter("elect_net_events_dropped_total",
          "Watch event frames dropped (dead or wedged consumer).",
          r.events_dropped);
}

}  // namespace

std::string net_report::to_json() const {
  std::ostringstream out;
  out << "{\"connections_accepted\":" << connections_accepted
      << ",\"connections_active\":" << connections_active
      << ",\"connections_refused\":" << connections_refused
      << ",\"frames_in\":" << frames_in << ",\"frames_out\":" << frames_out
      << ",\"bytes_in\":" << bytes_in << ",\"bytes_out\":" << bytes_out
      << ",\"requests\":" << requests
      << ",\"dispatch_batches\":" << dispatch_batches
      << ",\"backpressure_pauses\":" << backpressure_pauses
      << ",\"busy_rejections\":" << busy_rejections
      << ",\"protocol_errors\":" << protocol_errors
      << ",\"disconnect_reclaims\":" << disconnect_reclaims
      << ",\"watch_subscriptions\":" << watch_subscriptions
      << ",\"events_pushed\":" << events_pushed
      << ",\"events_dropped\":" << events_dropped << "}";
  return out.str();
}

server::connection::~connection() {
  if (fd >= 0) ::close(fd);
}

server::server(svc::service& service, server_config config)
    : service_(service), config_(std::move(config)) {
  ELECT_CHECK(config_.executors >= 1);
  ELECT_CHECK(config_.max_waiters >= 1);
  ELECT_CHECK(config_.max_inflight_per_connection >= 1);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) return;
  const int one = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1 ||
      ::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, 256) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    ::close(listen_fd_);
    listen_fd_ = epoll_fd_ = wake_fd_ = -1;
    return;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ELECT_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) == 0);
  ev.data.fd = wake_fd_;
  ELECT_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) == 0);

  if (config_.http_enabled) {
    // The HTTP side-channel rides the same epoll loop — a scrape is a
    // few hundred bytes each way, not worth a second thread stack.
    // Failure to bind degrades to "no HTTP" (http_listening() false)
    // rather than taking the wire listener down with it.
    http_listen_fd_ =
        ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (http_listen_fd_ >= 0) {
      (void)::setsockopt(http_listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                         sizeof one);
      sockaddr_in haddr{};
      haddr.sin_family = AF_INET;
      haddr.sin_port = htons(config_.http_port);
      if (::inet_pton(AF_INET, config_.bind_address.c_str(),
                      &haddr.sin_addr) != 1 ||
          ::bind(http_listen_fd_, reinterpret_cast<const sockaddr*>(&haddr),
                 sizeof haddr) != 0 ||
          ::listen(http_listen_fd_, 64) != 0) {
        ::close(http_listen_fd_);
        http_listen_fd_ = -1;
      } else {
        sockaddr_in hbound{};
        socklen_t hbound_len = sizeof hbound;
        if (::getsockname(http_listen_fd_,
                          reinterpret_cast<sockaddr*>(&hbound),
                          &hbound_len) == 0) {
          http_port_ = ntohs(hbound.sin_port);
        }
        ev.data.fd = http_listen_fd_;
        if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, http_listen_fd_, &ev) !=
            0) {
          ::close(http_listen_fd_);
          http_listen_fd_ = -1;
          http_port_ = 0;
        }
      }
    }
  }

  loop_ = std::thread([this] { loop_main(); });
  executors_.reserve(static_cast<std::size_t>(config_.executors));
  for (int i = 0; i < config_.executors; ++i) {
    executors_.emplace_back([this] { executor_main(); });
  }
}

server::~server() { stop(); }

void server::stop() {
  if (stopping_.exchange(true)) return;
  if (loop_.joinable()) {
    const std::uint64_t one = 1;
    (void)!::write(wake_fd_, &one, sizeof one);
    loop_.join();
  }
  // The loop's teardown finished every connection, so queued work and
  // parked waiters now see closed connections and drain fast.
  queue_cv_.notify_all();
  for (auto& t : executors_) {
    if (t.joinable()) t.join();
  }
  {
    std::unique_lock<std::mutex> lock(waiter_mutex_);
    waiter_cv_.wait(lock, [this] { return active_waiters_ == 0; });
  }
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (http_listen_fd_ >= 0) ::close(http_listen_fd_);
  epoll_fd_ = wake_fd_ = listen_fd_ = http_listen_fd_ = -1;
}

// ---------------------------------------------------------------------
// The epoll loop: accept, drain-and-dispatch, teardown.

void server::loop_main() {
  epoll_event events[64];
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int ready = ::epoll_wait(epoll_fd_, events, 64, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < ready; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t drained = 0;
        (void)!::read(wake_fd_, &drained, sizeof drained);
        continue;
      }
      if (fd == listen_fd_) {
        accept_ready();
        continue;
      }
      if (fd == http_listen_fd_) {
        http_accept_ready();
        continue;
      }
      const auto it = connections_.find(fd);
      if (it != connections_.end()) {
        read_ready(it->second);
        continue;
      }
      // Not a wire connection: an HTTP connection, or a connection
      // finished earlier in this batch whose queued event survived it.
      if (http_conns_.count(fd) != 0) http_read_ready(fd);
    }
  }
  // Teardown: finish every connection (disconnect-on-close included)
  // while the map still owns them.
  std::vector<connection_ptr> remaining;
  remaining.reserve(connections_.size());
  for (const auto& [fd, conn] : connections_) remaining.push_back(conn);
  for (const auto& conn : remaining) finish_connection(conn);
  for (const auto& [fd, buffered] : http_conns_) ::close(fd);
  http_conns_.clear();
}

void server::accept_ready() {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN or a transient accept error: wait for the next event
    }
    if (stopping_.load(std::memory_order_relaxed) ||
        connections_.size() >=
            static_cast<std::size_t>(config_.max_connections)) {
      counters_.connections_refused.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    auto conn = std::make_shared<connection>(fd, next_connection_id_++);
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLRDHUP;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      continue;  // conn destructor closes the fd
    }
    connections_.emplace(fd, std::move(conn));
    counters_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    connections_active_.fetch_add(1, std::memory_order_relaxed);
  }
}

void server::read_ready(connection_ptr conn) {
  // Drain the socket in bounded bites, decoding and dispatching after
  // each recv. Draining straight to EAGAIN before ever consulting the
  // in-flight cap would let a client that pre-filled the kernel buffer
  // blow arbitrarily far past max_inflight_per_connection; this way the
  // overshoot is bounded by the frames of one 64 KiB read, and the rest
  // stays in the kernel buffer (level-triggered EPOLLIN re-fires once
  // the pause lifts).
  std::uint8_t buffer[64 * 1024];
  bool dead = conn->closed.load(std::memory_order_relaxed);
  bool drained = dead;
  std::vector<pending> batch;
  while (!dead) {
    const ssize_t got = ::recv(conn->fd, buffer, sizeof buffer, 0);
    if (got > 0) {
      counters_.bytes_in.fetch_add(static_cast<std::uint64_t>(got),
                                   std::memory_order_relaxed);
      if (!conn->reader.feed(buffer, static_cast<std::size_t>(got))) {
        protocol_error(conn, 0);
        dead = true;
      }
    } else if (got == 0) {
      dead = true;  // orderly EOF — the disconnect-on-close trigger
      drained = true;
    } else if (errno == EINTR) {
      continue;
    } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
      drained = true;
    } else {
      dead = true;  // reset / error — same as a crash
      drained = true;
    }

    // Decode everything this bite completed. Dead connections still
    // parse: requests already received alongside an EOF are served (the
    // client pipelined then closed; its last responses are moot, but a
    // won lease must be reclaimed — see serve/serve_blocking).
    while (auto frame = conn->reader.next()) {
      counters_.frames_in.fetch_add(1, std::memory_order_relaxed);
      auto req = wire::decode_request(*frame);
      if (!req) {
        protocol_error(conn, 0);
        dead = true;
        drained = true;
        break;
      }
      if (!conn->session) {
        handle_handshake(conn, *req);
        if (!conn->session) {
          dead = true;
          drained = true;
          break;
        }
        continue;
      }
      if (req->kind == wire::op::hello) {
        protocol_error(conn, req->id);
        dead = true;
        drained = true;
        break;
      }
      counters_.requests.fetch_add(1, std::memory_order_relaxed);
      conn->in_flight.fetch_add(1, std::memory_order_acq_rel);
      if (req->kind == wire::op::acquire ||
          req->kind == wire::op::try_acquire_for) {
        dispatch(conn, std::move(*req));  // waiter spawn / busy
      } else {
        batch.push_back(pending{conn, std::move(*req)});
      }
    }
    if (drained) break;
    // At the cap: stop reading; maybe_pause below parks the socket.
    if (conn->in_flight.load(std::memory_order_acquire) >=
        config_.max_inflight_per_connection) {
      break;
    }
  }

  if (!batch.empty()) {
    counters_.dispatch_batches.fetch_add(1, std::memory_order_relaxed);
    {
      const std::lock_guard<std::mutex> lock(queue_mutex_);
      for (auto& p : batch) queue_.push_back(std::move(p));
    }
    if (batch.size() > 1) {
      queue_cv_.notify_all();
    } else {
      queue_cv_.notify_one();
    }
  }

  if (dead) {
    finish_connection(conn);
  } else {
    maybe_pause(conn);
  }
}

// Blocking ops only: spawn a bounded waiter thread, or answer busy.
void server::dispatch(const connection_ptr& conn, wire::request req) {
  {
    const std::lock_guard<std::mutex> lock(waiter_mutex_);
    if (active_waiters_ < config_.max_waiters &&
        !stopping_.load(std::memory_order_relaxed)) {
      ++active_waiters_;
      pending p{conn, std::move(req)};
      // Detached, but stop() blocks on active_waiters_ reaching zero,
      // so no waiter outlives the server.
      std::thread([this, p = std::move(p)] {
        serve_blocking(p);
        {
          const std::lock_guard<std::mutex> inner(waiter_mutex_);
          --active_waiters_;
        }
        waiter_cv_.notify_all();
      }).detach();
      return;
    }
  }
  counters_.busy_rejections.fetch_add(1, std::memory_order_relaxed);
  wire::response busy;
  busy.id = req.id;
  busy.kind = req.kind;
  busy.result = wire::status::busy;
  send_response(conn, busy);
  complete(conn);
}

void server::handle_handshake(const connection_ptr& conn,
                              const wire::request& req) {
  if (!wire::hello_version_ok(req)) {
    protocol_error(conn, req.id);
    return;  // session stays unset; the caller closes the connection
  }
  auto session = service_.try_connect();
  if (!session.has_value()) {
    // The service stopped under us: answer once so the client fails
    // with "rejected" instead of a bare connection reset.
    wire::response refused = wire::make_hello_response(0);
    refused.id = req.id;
    refused.result = wire::status::rejected;
    send_response(conn, refused);
    return;
  }
  conn->session.emplace(*session);
  wire::response hello =
      wire::make_hello_response(static_cast<std::uint64_t>(session->id()));
  hello.id = req.id;
  send_response(conn, hello);
}

void server::protocol_error(const connection_ptr& conn,
                            std::uint64_t request_id) {
  counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
  wire::response r;
  r.id = request_id;
  r.result = wire::status::bad_request;
  send_response(conn, r);  // best effort; the connection dies right after
}

// ---------------------------------------------------------------------
// Request execution.

void server::executor_main() {
  for (;;) {
    pending p;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_relaxed) || !queue_.empty();
      });
      if (queue_.empty()) return;  // stopping and drained
      p = std::move(queue_.front());
      queue_.pop_front();
    }
    serve(p);
  }
}

wire::response server::acquire_response(const wire::request& req,
                                        const svc::acquire_result& result) {
  wire::response r;
  r.id = req.id;
  r.kind = req.kind;
  r.epoch = result.epoch;
  if (result.rejected) {
    r.result = wire::status::rejected;
  } else if (result.won) {
    r.result = wire::status::ok;
    r.flags |= wire::flag_won;
    if (result.fast_path) r.flags |= wire::flag_fast_path;
    r.lease_remaining_ms = lease_remaining_ms(result.lease_deadline);
  } else if (result.timed_out) {
    r.result = wire::status::timed_out;
  } else {
    r.result = wire::status::lost;
  }
  return r;
}

void server::serve(const pending& p) {
  svc::service::session& session = *p.conn->session;
  const wire::request& req = p.req;
  // The v3 frame carried the client's trace id: serve under it so the
  // service-layer spans (fast path, queue wait, election, lease ops)
  // land in the same trace the client minted.
  const obs::trace_scope trace(req.trace_id);
  const serve_trace timing(req.trace_id, req.kind);
  wire::response r;
  r.id = req.id;
  r.kind = req.kind;
  switch (req.kind) {
    case wire::op::try_acquire: {
      const svc::acquire_result result = session.try_acquire(req.key);
      if (result.won &&
          p.conn->closed.load(std::memory_order_relaxed)) {
        // The request rode in alongside the connection's EOF (or the
        // close raced us): disconnect-on-close already ran, so this
        // fresh win has nobody behind it — hand it straight back
        // instead of orphaning the key. The shard mutex orders the
        // win against finish_connection's reclaim scan, so a win
        // the scan could not see always observes closed here.
        (void)session.reclaim(req.key, result.epoch);
        counters_.disconnect_reclaims.fetch_add(1,
                                                std::memory_order_relaxed);
        complete(p.conn);
        return;
      }
      r = acquire_response(req, result);
      break;
    }
    case wire::op::release:
      r.result = wire::from_lease_status(session.release(req.key));
      break;
    case wire::op::release_fenced:
      r.result =
          wire::from_lease_status(session.release(req.key, req.epoch));
      break;
    case wire::op::renew:
      r.result = wire::from_lease_status(session.renew(req.key, req.epoch));
      if (r.result == wire::status::ok) {
        // A successful renew re-arms the full TTL; telling the client
        // the refreshed budget is what lets a remote auto-renewing
        // lease (api::lease) schedule its next heartbeat without a
        // second round-trip.
        const std::uint64_t ttl_ms = service_.config().lease_ttl_ms;
        r.lease_remaining_ms = ttl_ms == 0 ? wire::lease_forever : ttl_ms;
      }
      break;
    case wire::op::watch:
      serve_watch(p, r);
      break;
    case wire::op::unwatch:
      serve_unwatch(p, r);
      break;
    case wire::op::disconnect:
      r.epoch = session.disconnect();
      r.result = wire::status::ok;
      break;
    case wire::op::metrics:
      r.body = report_json();
      r.result = wire::status::ok;
      // A body the frame cap cannot carry would poison the client's
      // deframer and kill the whole connection; fail just this call.
      if (r.body.size() > wire::max_frame_bytes - 64) {
        r.body.clear();
        r.result = wire::status::bad_request;
      }
      break;
    case wire::op::admin_list:
    case wire::op::admin_inspect:
    case wire::op::admin_force_release:
    case wire::op::admin_snapshot:
      serve_admin(p, r);
      break;
    default:
      r.result = wire::status::bad_request;
      break;
  }
  send_response(p.conn, r);
  complete(p.conn);
}

void server::serve_watch(const pending& p, wire::response& r) {
  const connection_ptr& conn = p.conn;
  {
    const std::lock_guard<std::mutex> lock(conn->watch_mutex);
    if (conn->watch_ids.size() >=
        static_cast<std::size_t>(config_.max_watches_per_connection)) {
      counters_.busy_rejections.fetch_add(1, std::memory_order_relaxed);
      r.result = wire::status::busy;
      return;
    }
  }
  // The callback owns a shared_ptr to the connection, so a pushed event
  // can never dangle; finish_connection cancels the subscription, which
  // is what lets the connection die.
  const std::uint64_t id = service_.watch(
      p.req.key,
      [this, conn](const svc::watch_event& e) { push_event(conn, e); });
  if (id == 0) {
    r.result = wire::status::rejected;  // service stopped under us
    return;
  }
  bool lost_race = false;
  {
    // closed is stored before finish_connection collects watch_ids
    // (both under this mutex's ordering), so exactly one of the two
    // sides cancels the subscription: either finish sees our id in the
    // list, or we see closed and cancel it ourselves.
    const std::lock_guard<std::mutex> lock(conn->watch_mutex);
    if (conn->closed.load(std::memory_order_relaxed)) {
      lost_race = true;
    } else {
      conn->watch_ids.push_back(id);
    }
  }
  if (lost_race) {
    service_.unwatch(id);
    r.result = wire::status::rejected;
    return;
  }
  counters_.watch_subscriptions.fetch_add(1, std::memory_order_relaxed);
  r.result = wire::status::ok;
  r.epoch = id;  // the handle the client passes back to unwatch
}

void server::serve_unwatch(const pending& p, wire::response& r) {
  const std::uint64_t id = p.req.epoch;
  bool owned = false;
  {
    const std::lock_guard<std::mutex> lock(p.conn->watch_mutex);
    auto& ids = p.conn->watch_ids;
    const auto it = std::find(ids.begin(), ids.end(), id);
    if (it != ids.end()) {
      ids.erase(it);
      owned = true;
    }
  }
  // Only ids this connection registered are cancelled — an unknown or
  // foreign id is a harmless no-op, not a protocol violation.
  if (owned) service_.unwatch(id);
  r.result = wire::status::ok;
}

void server::serve_admin(const pending& p, wire::response& r) {
  if (!config_.enable_admin) {
    r.result = wire::status::denied;
    return;
  }
  svc::instance_registry& registry = service_.registry();
  switch (p.req.kind) {
    case wire::op::admin_list: {
      std::string body = "[";
      for (const svc::key_inspection& k : registry.list_keys()) {
        if (body.size() > 1) body += ',';
        body += inspection_json(k);
        // A pathological key population could outgrow a frame; truncate
        // to whole objects rather than poisoning the client's deframer.
        if (body.size() > wire::max_frame_bytes / 2) break;
      }
      body += ']';
      r.body = std::move(body);
      r.result = wire::status::ok;
      break;
    }
    case wire::op::admin_inspect: {
      const auto k = registry.inspect(p.req.key);
      if (!k.has_value()) {
        r.result = wire::status::not_leader;  // never acquired
        break;
      }
      r.body = inspection_json(*k);
      r.epoch = k->entry.epoch;
      r.result = wire::status::ok;
      break;
    }
    case wire::op::admin_force_release:
      // Through the service, not the registry: the forced-release
      // counter and the journal's "admin" cause live there.
      r.result = wire::from_lease_status(service_.force_release(p.req.key));
      break;
    case wire::op::admin_snapshot: {
      const std::vector<std::uint8_t> snap =
          service_.registry().snapshot(/*trim_log=*/false);
      bool written = false;
      bool write_failed = false;
      if (!config_.snapshot_path.empty()) {
        written = write_snapshot_file(config_.snapshot_path, snap);
        write_failed = !written;
      }
      const cmd::log_stats stats = service_.registry().log_stats();
      std::string body = "{\"recording\":";
      body += stats.recording ? "true" : "false";
      body += ",\"recorded\":";
      body += std::to_string(stats.recorded);
      body += ",\"retained\":";
      body += std::to_string(stats.retained);
      body += ",\"bytes\":";
      body += std::to_string(snap.size());
      body += ",\"path\":\"";
      json_escape_into(body, config_.snapshot_path);
      body += "\",\"written\":";
      body += written ? "true" : "false";
      body += "}";
      r.body = std::move(body);
      // A snapshot the operator asked to persist but could not be
      // written is a failure, not a success with a footnote.
      r.result =
          write_failed ? wire::status::rejected : wire::status::ok;
      break;
    }
    default:
      r.result = wire::status::bad_request;
      break;
  }
}

void server::push_event(const connection_ptr& conn,
                        const svc::watch_event& e) {
  if (conn->closed.load(std::memory_order_relaxed)) {
    counters_.events_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::vector<std::uint8_t> frame =
      wire::encode_response(wire::make_event(e));
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(std::max<std::uint64_t>(
          1, config_.event_write_budget_ms));
  const std::lock_guard<std::mutex> lock(conn->write_mutex);
  if (conn->closed.load(std::memory_order_relaxed)) {
    counters_.events_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (!write_all(conn->fd, frame.data(), frame.size(), stopping_,
                 &deadline)) {
    // The consumer is not draining (or died): drop it. Losing the
    // connection also tears down its watches, so one wedged watcher
    // cannot absorb the notifier's time budget event after event.
    counters_.events_dropped.fetch_add(1, std::memory_order_relaxed);
    start_close(conn);
    return;
  }
  counters_.events_pushed.fetch_add(1, std::memory_order_relaxed);
  counters_.frames_out.fetch_add(1, std::memory_order_relaxed);
  counters_.bytes_out.fetch_add(frame.size(), std::memory_order_relaxed);
}

void server::serve_blocking(const pending& p) {
  svc::service::session& session = *p.conn->session;
  const obs::trace_scope trace(p.req.trace_id);
  const serve_trace timing(p.req.trace_id, p.req.kind);
  const bool bounded = p.req.kind == wire::op::try_acquire_for;
  const auto slice = std::chrono::milliseconds(
      std::max<std::uint64_t>(1, config_.blocking_slice_ms));
  // The wire value is untrusted: clamp before it meets the clock, or a
  // huge timeout overflows the nanosecond rep (UB) / wraps the deadline
  // into the past. A day is indistinguishable from forever here.
  const auto timeout = std::chrono::milliseconds(
      std::min<std::uint64_t>(p.req.timeout_ms, 86'400'000ull));
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  svc::acquire_result result;
  bool abandoned = false;
  for (;;) {
    // Sleep in bounded slices: each wakeup re-checks for server stop and
    // connection death, so no waiter thread outlives either by more than
    // one slice. A won slice attempt is a real win; a timed-out slice
    // just loops.
    auto wait = slice;
    if (bounded) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      wait = std::clamp(left, std::chrono::milliseconds(0), slice);
    }
    result = session.try_acquire_for(p.req.key, wait);
    if (result.won || result.rejected) break;
    if (bounded && std::chrono::steady_clock::now() >= deadline) {
      result.timed_out = true;
      break;
    }
    if (p.conn->closed.load(std::memory_order_relaxed)) {
      abandoned = true;
      break;
    }
    if (stopping_.load(std::memory_order_relaxed)) {
      result = svc::acquire_result{};
      result.rejected = true;
      break;
    }
  }
  if (result.won &&
      (abandoned || p.conn->closed.load(std::memory_order_relaxed))) {
    // The client died while its acquire was in flight; nobody is behind
    // the lease, so hand it straight back instead of wedging the key
    // until the TTL.
    (void)session.reclaim(p.req.key, result.epoch);
    counters_.disconnect_reclaims.fetch_add(1, std::memory_order_relaxed);
    complete(p.conn);
    return;
  }
  if (abandoned) {
    complete(p.conn);
    return;
  }
  send_response(p.conn, acquire_response(p.req, result));
  complete(p.conn);
}

// ---------------------------------------------------------------------
// Response path, backpressure, connection teardown.

void server::send_response(const connection_ptr& conn,
                           const wire::response& r) {
  if (conn->closed.load(std::memory_order_relaxed)) return;
  const std::vector<std::uint8_t> frame = wire::encode_response(r);
  const std::lock_guard<std::mutex> lock(conn->write_mutex);
  if (conn->closed.load(std::memory_order_relaxed)) return;
  if (!write_all(conn->fd, frame.data(), frame.size(), stopping_)) {
    start_close(conn);
    return;
  }
  counters_.frames_out.fetch_add(1, std::memory_order_relaxed);
  counters_.bytes_out.fetch_add(frame.size(), std::memory_order_relaxed);
}

void server::complete(const connection_ptr& conn) {
  conn->in_flight.fetch_sub(1, std::memory_order_acq_rel);
  maybe_resume(conn);
}

void server::maybe_pause(const connection_ptr& conn) {
  const std::lock_guard<std::mutex> lock(conn->pause_mutex);
  if (conn->paused || conn->closed.load(std::memory_order_relaxed)) return;
  if (conn->in_flight.load(std::memory_order_acquire) <
      config_.max_inflight_per_connection) {
    return;
  }
  epoll_event ev{};
  ev.events = EPOLLRDHUP;  // keep death visible, stop reading requests
  ev.data.fd = conn->fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev) == 0) {
    conn->paused = true;
    counters_.backpressure_pauses.fetch_add(1, std::memory_order_relaxed);
  }
}

void server::maybe_resume(const connection_ptr& conn) {
  const std::lock_guard<std::mutex> lock(conn->pause_mutex);
  if (!conn->paused || conn->closed.load(std::memory_order_relaxed)) return;
  if (conn->in_flight.load(std::memory_order_acquire) >
      config_.max_inflight_per_connection / 2) {
    return;
  }
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLRDHUP;
  ev.data.fd = conn->fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev) == 0) {
    conn->paused = false;
  }
}

void server::start_close(const connection_ptr& conn) {
  if (conn->closed.exchange(true)) return;
  // The local shutdown makes epoll report the fd (EPOLLHUP fires even
  // for a paused connection), so the loop runs finish_connection.
  ::shutdown(conn->fd, SHUT_RDWR);
}

void server::finish_connection(connection_ptr conn) {
  if (connections_.erase(conn->fd) == 0) return;  // already finished
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  conn->closed.store(true, std::memory_order_relaxed);
  ::shutdown(conn->fd, SHUT_RDWR);
  // Cancel the connection's watch subscriptions first: after unwatch
  // returns, the hub will never invoke this connection's push callback
  // again, so the shared_ptr cycle-breaker is exactly this loop. A
  // watch racing in concurrently sees `closed` and cancels itself (see
  // serve_watch).
  std::vector<std::uint64_t> watches;
  {
    const std::lock_guard<std::mutex> lock(conn->watch_mutex);
    watches.swap(conn->watch_ids);
  }
  for (const std::uint64_t id : watches) service_.unwatch(id);
  if (conn->session.has_value()) {
    // The disconnect-on-close hook: whatever the remote client held is
    // reclaimed NOW — its rivals re-elect immediately instead of
    // waiting out the lease TTL. In-flight wins for this connection are
    // reclaimed by their waiters (see serve_blocking). Each reclaimed
    // key's disconnect_reclaimed command carries its real epoch, so the
    // event journal names every key with no pre-scan of held keys.
    const std::size_t reclaimed = conn->session->reclaim_all();
    counters_.disconnect_reclaims.fetch_add(reclaimed,
                                            std::memory_order_relaxed);
  }
  connections_active_.fetch_sub(1, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------
// The HTTP side-channel (loop thread only). Deliberately minimal:
// GET-only, one request per connection, answer and close. A scrape is
// small and rare; anything fancier (keep-alive, chunking, pipelining)
// buys nothing here and costs loop-thread attention.

void server::http_accept_ready() {
  for (;;) {
    const int fd = ::accept4(http_listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (stopping_.load(std::memory_order_relaxed) ||
        http_conns_.size() >= 64) {
      ::close(fd);
      continue;
    }
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLRDHUP;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    http_conns_.emplace(fd, std::string());
  }
}

void server::http_read_ready(int fd) {
  const auto it = http_conns_.find(fd);
  if (it == http_conns_.end()) return;
  std::string& buffered = it->second;
  char buf[4096];
  for (;;) {
    const ssize_t got = ::recv(fd, buf, sizeof buf, 0);
    if (got > 0) {
      buffered.append(buf, static_cast<std::size_t>(got));
      if (buffered.size() > 8192) {  // no sane GET is this big
        http_close(fd);
        return;
      }
      continue;
    }
    if (got == 0) {
      http_close(fd);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    http_close(fd);
    return;
  }
  // Headers complete? (We ignore them — the request line is the API.)
  if (buffered.find("\r\n\r\n") == std::string::npos &&
      buffered.find("\n\n") == std::string::npos) {
    return;  // wait for the rest
  }
  http_respond(fd, buffered);
  http_close(fd);
}

void server::http_respond(int fd, const std::string& buffered) {
  // Parse "METHOD SP path ..." off the request line.
  const std::size_t line_end = buffered.find_first_of("\r\n");
  const std::string line = buffered.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
  std::string method =
      sp1 == std::string::npos ? std::string() : line.substr(0, sp1);
  std::string path = sp2 == std::string::npos
                         ? std::string()
                         : line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);

  const char* status = "200 OK";
  const char* content_type = "text/plain; version=0.0.4; charset=utf-8";
  std::string body;
  if (method != "GET") {
    status = "405 Method Not Allowed";
    content_type = "text/plain; charset=utf-8";
    body = "method not allowed\n";
  } else if (path == "/metrics") {
    body = obs::render_prometheus(service_.report());
    render_net_prometheus(body, report());
  } else if (path == "/report") {
    content_type = "application/json";
    body = report_json();
  } else if (path == "/healthz") {
    content_type = "text/plain; charset=utf-8";
    body = "ok\n";
  } else {
    status = "404 Not Found";
    content_type = "text/plain; charset=utf-8";
    body = "not found\n";
  }

  std::string response = "HTTP/1.0 ";
  response += status;
  response += "\r\nContent-Type: ";
  response += content_type;
  response += "\r\nContent-Length: ";
  response += std::to_string(body.size());
  response += "\r\nConnection: close\r\n\r\n";
  response += body;
  // Bounded write on the loop thread: a scrape response is a few KiB,
  // but a wedged scraper must not park the loop indefinitely.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  (void)write_all(fd, reinterpret_cast<const std::uint8_t*>(response.data()),
                  response.size(), stopping_, &deadline);
}

void server::http_close(int fd) {
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  http_conns_.erase(fd);
}

// ---------------------------------------------------------------------
// Reporting.

net_report server::report() const {
  net_report r;
  r.connections_accepted =
      counters_.connections_accepted.load(std::memory_order_relaxed);
  r.connections_active =
      connections_active_.load(std::memory_order_relaxed);
  r.connections_refused =
      counters_.connections_refused.load(std::memory_order_relaxed);
  r.frames_in = counters_.frames_in.load(std::memory_order_relaxed);
  r.frames_out = counters_.frames_out.load(std::memory_order_relaxed);
  r.bytes_in = counters_.bytes_in.load(std::memory_order_relaxed);
  r.bytes_out = counters_.bytes_out.load(std::memory_order_relaxed);
  r.requests = counters_.requests.load(std::memory_order_relaxed);
  r.dispatch_batches =
      counters_.dispatch_batches.load(std::memory_order_relaxed);
  r.backpressure_pauses =
      counters_.backpressure_pauses.load(std::memory_order_relaxed);
  r.busy_rejections =
      counters_.busy_rejections.load(std::memory_order_relaxed);
  r.protocol_errors =
      counters_.protocol_errors.load(std::memory_order_relaxed);
  r.disconnect_reclaims =
      counters_.disconnect_reclaims.load(std::memory_order_relaxed);
  r.watch_subscriptions =
      counters_.watch_subscriptions.load(std::memory_order_relaxed);
  r.events_pushed = counters_.events_pushed.load(std::memory_order_relaxed);
  r.events_dropped =
      counters_.events_dropped.load(std::memory_order_relaxed);
  return r;
}

std::string server::report_json() const {
  svc::service_report combined = service_.report();
  combined.net_json = report().to_json();
  return combined.to_json();
}

}  // namespace elect::net
