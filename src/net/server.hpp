// elect::net::server — the TCP front-end of the election service.
//
// The edge is N per-core reactors, not one epoll loop. Each reactor
// owns an epoll fd, an eventfd wakeup, a timer wheel for slow-consumer
// deadlines, its own accept socket (SO_REUSEPORT sharded accept — the
// kernel spreads incoming connections across the listeners), and a
// private connection table. A connection is pinned to the reactor that
// accepted it for its whole lifetime, so per-connection read state
// needs no cross-reactor locking. Where SO_REUSEPORT is unavailable
// (or disabled via server_config::reuseport), reactor 0 keeps a single
// listener and deals accepted sockets round-robin to its peers through
// their adopt queues.
//
// Reads: a readable socket is drained to EAGAIN in bounded bites and
// *all* complete frames are decoded before anything is dispatched
// (request batching: one syscall burst, one queue lock, many
// requests), then:
//
//   * non-blocking ops (try_acquire, release, renew, disconnect,
//     metrics) go to a small executor pool — they only ever take shard
//     locks and pool round-trips, never park;
//   * blocking ops (acquire, try_acquire_for) each get a waiter thread,
//     bounded by `max_waiters`; past the cap the server answers `busy`
//     instead of queueing a request behind threads that may sleep for
//     minutes.
//
// Writes: responses are never written by the thread that produced
// them. Every encoded frame lands in the connection's output ring (a
// deque of shared immutable buffers) and the owning reactor flushes
// the ring with writev — one syscall coalesces every frame that is
// ready, EAGAIN arms EPOLLOUT, and a consumer that makes no progress
// for event_write_budget_ms is declared dead by the reactor's timer
// wheel. Cross-thread completions reach the reactor through its inbox
// plus an eventfd kick, so all epoll_ctl and all socket writes happen
// on the owning reactor thread.
//
// Watch fanout rides a fast lane: the server keeps ONE hub
// subscription per watched key; its callback encodes the event frame
// once into a shared immutable buffer and appends that same buffer to
// every subscribed connection's output ring, grouped per reactor with
// one wakeup each — encode once, writev many.
//
// Every connection is backed by ONE svc::service session, so the
// service-side crash story carries over the wire unchanged: when the
// socket dies (EOF, reset, or server stop) the server applies
// session::disconnect(), force-releasing everything the remote client
// held. A half-open peer (no FIN ever arrives) falls back to the lease
// TTL + sweeper, same as a wedged local client.
//
// Backpressure is per connection: at `max_inflight_per_connection`
// outstanding requests the reactor stops *reading* that socket (drops
// EPOLLIN) until completions drain below half the cap. The output ring
// is bounded too (`max_outbox_bytes`): a consumer that never drains
// loses the connection rather than growing the ring without bound.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/wire.hpp"
#include "svc/service.hpp"

namespace elect::net {

/// Hooks a replicated-cluster node (elect::repl) installs on its
/// server. All five are set together or not at all; `peer` present is
/// what puts the server in cluster mode. The server stays ignorant of
/// replication — it only (a) redirects mutating client ops away from
/// non-primaries with `not_primary` (body = `primary_hint()`), (b)
/// forwards the peer ops (peer_vote / peer_append / peer_snapshot) to
/// `peer`, (c) answers admin_cluster_status from `status_json` on
/// every member (deliberately NOT gated by enable_admin: finding the
/// primary must not require operator rights), and (d) splices
/// `status_json` / `prom_text` into /report and /metrics.
struct cluster_hooks {
  std::function<bool()> is_primary;
  std::function<std::string()> primary_hint;
  std::function<wire::response(const wire::request&)> peer;
  std::function<std::string()> status_json;
  std::function<std::string()> prom_text;

  [[nodiscard]] bool enabled() const noexcept {
    return static_cast<bool>(peer);
  }
};

struct server_config {
  /// Address to bind. Loopback by default: this PR's scope is the wire
  /// protocol and the loopback workload; multi-host comes later.
  std::string bind_address = "127.0.0.1";
  /// 0 binds an ephemeral port; read it back with server::port().
  std::uint16_t port = 0;
  /// Threads serving non-blocking ops.
  int executors = 4;
  /// Concurrent blocking ops (acquire / try_acquire_for) server-wide;
  /// past this the server answers wire::status::busy.
  int max_waiters = 256;
  /// Outstanding requests per connection before the server stops
  /// reading that socket.
  int max_inflight_per_connection = 64;
  /// Accepted connections beyond this are closed immediately.
  int max_connections = 1024;
  /// Granularity at which parked blocking ops re-check for server stop
  /// and connection death.
  std::uint64_t blocking_slice_ms = 50;
  /// Watch subscriptions one connection may hold; past the cap a watch
  /// op answers `busy` (resource exhaustion, same family as the waiter
  /// cap — not a protocol violation).
  int max_watches_per_connection = 1024;
  /// How long a connection's output ring may sit unflushable (socket
  /// full, no progress) before the reactor declares the consumer dead.
  /// Bounds how long undelivered responses and events can pin memory.
  std::uint64_t event_write_budget_ms = 1000;
  /// Serve HTTP (/metrics Prometheus text, /report JSON, /healthz) on a
  /// second listen socket, multiplexed onto reactor 0.
  bool http_enabled = false;
  /// HTTP port; 0 binds ephemeral (read back with server::http_port()).
  std::uint16_t http_port = 0;
  /// Allow the wire admin ops (admin_list / admin_inspect /
  /// admin_force_release / admin_snapshot). Off by default:
  /// force-release is an operator lever, not a client right — `denied`
  /// when off.
  bool enable_admin = false;
  /// Where admin_snapshot persists the registry snapshot. Empty keeps
  /// the op in-memory only (it still answers with command-log stats).
  std::string snapshot_path;
  /// Reactor (event loop) count. 0 = auto: the ELECT_REACTORS
  /// environment variable if set, else std::thread::hardware_concurrency
  /// clamped to [1, 16]. Explicit values are clamped to [1, 64].
  int reactors = 0;
  /// Shard the accept path with one SO_REUSEPORT listener per reactor.
  /// false forces the single-listener fallback (reactor 0 accepts and
  /// deals connections round-robin) — deterministic spread, what the
  /// multi-reactor tests use.
  bool reuseport = true;
  /// Bound on one connection's queued-but-unflushed output bytes.
  /// Past it the connection is closed as a dead consumer.
  std::size_t max_outbox_bytes = 8u << 20;
  /// Replicated-cluster hooks; default-empty = standalone server.
  cluster_hooks cluster;
};

/// Point-in-time counters for the network edge.
struct net_report {
  /// Per-reactor slice of the edge: connection placement, wakeups, and
  /// the writev coalescing that reactor achieved. frames_flushed /
  /// writev_calls is the realized coalesce ratio; requests /
  /// drain_batches the realized read-batching factor.
  struct reactor_stat {
    int index = 0;
    std::uint64_t connections = 0;
    std::uint64_t accepted = 0;
    std::uint64_t wakeups = 0;
    std::uint64_t writev_calls = 0;
    std::uint64_t frames_flushed = 0;
    std::uint64_t drain_batches = 0;
    std::uint64_t requests = 0;
  };

  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_active = 0;
  std::uint64_t connections_refused = 0;
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t requests = 0;
  /// Read-drain passes that dispatched at least one request; requests /
  /// batches is the realized batching factor.
  std::uint64_t dispatch_batches = 0;
  std::uint64_t backpressure_pauses = 0;
  std::uint64_t busy_rejections = 0;
  std::uint64_t protocol_errors = 0;
  /// Leases force-released because their connection closed (the
  /// disconnect-on-close hook), plus wins reclaimed after their
  /// connection died mid-election.
  std::uint64_t disconnect_reclaims = 0;
  /// Watch subscriptions accepted over the wire (lifetime total).
  std::uint64_t watch_subscriptions = 0;
  /// Event frames pushed to clients (counted when flushed to the
  /// socket, not when queued).
  std::uint64_t events_pushed = 0;
  /// Event frames not pushed: connection already closed, output ring
  /// overflowed, or the consumer died with events still queued.
  std::uint64_t events_dropped = 0;
  /// Reactor configuration and aggregates across the per-reactor rows.
  std::uint64_t reactors = 0;
  /// True when every reactor accepts on its own SO_REUSEPORT listener;
  /// false in the single-listener round-robin fallback.
  bool reuseport = false;
  std::uint64_t writev_calls = 0;
  std::uint64_t frames_flushed = 0;
  std::uint64_t reactor_wakeups = 0;
  std::vector<reactor_stat> per_reactor;

  [[nodiscard]] std::string to_json() const;
};

class server {
 public:
  /// Binds, listens, and starts the reactors + executors. The service
  /// must outlive the server. Check listening() — construction does not
  /// abort on bind failure (the port may be taken).
  server(svc::service& service, server_config config);
  ~server();

  server(const server&) = delete;
  server& operator=(const server&) = delete;

  [[nodiscard]] bool listening() const noexcept { return listening_; }
  /// The bound port (resolves config.port == 0 to the ephemeral pick).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  /// Resolved reactor count (config.reactors == 0 auto-detects).
  [[nodiscard]] int reactor_count() const noexcept {
    return static_cast<int>(reactors_.size());
  }
  /// True when the accept path is SO_REUSEPORT-sharded (one listener
  /// per reactor); false on the single-listener round-robin fallback.
  [[nodiscard]] bool reuseport_sharded() const noexcept {
    return reuseport_active_;
  }
  /// Is the HTTP listener up? (Requires config.http_enabled and a
  /// successful bind.)
  [[nodiscard]] bool http_listening() const noexcept {
    return http_listen_fd_ >= 0;
  }
  /// The bound HTTP port (resolves config.http_port == 0).
  [[nodiscard]] std::uint16_t http_port() const noexcept {
    return http_port_;
  }

  /// Close the listeners and every connection (their sessions are
  /// disconnected, releasing held leases), drain the executors, and
  /// join every thread. Idempotent. Does NOT stop the service.
  void stop();

  [[nodiscard]] net_report report() const;
  /// The combined report served to the metrics wire op:
  /// service_report::to_json() with the "net" section filled in.
  [[nodiscard]] std::string report_json() const;

 private:
  struct reactor;

  /// One encoded frame queued for a connection. The buffer is shared
  /// and immutable so the watch fast lane can hand the SAME encoded
  /// event to thousands of rings without copying it once per watcher.
  struct out_frame {
    std::shared_ptr<const std::vector<std::uint8_t>> bytes;
    bool is_event = false;
  };

  struct connection {
    connection(int fd_in, std::uint64_t id_in, reactor& owner_in)
        : fd(fd_in), id(id_in), owner(owner_in) {}
    ~connection();

    const int fd;
    const std::uint64_t id;
    /// The reactor this connection is pinned to — fixed at accept.
    reactor& owner;
    /// Set once the hello handshake passed; requests before it (or an
    /// invalid hello) are protocol errors.
    std::optional<svc::service::session> session;
    wire::frame_reader reader;

    /// Output ring: any thread appends encoded frames under out_mutex;
    /// only the owning reactor pops (writev flush). flush_queued
    /// dedupes wakeups — the appender that turns it on posts the
    /// connection to the reactor, everyone after piggybacks.
    std::mutex out_mutex;
    std::deque<out_frame> outbox;
    std::size_t outbox_bytes = 0;
    /// Bytes of outbox.front() already written (partial writev).
    std::size_t out_offset = 0;
    bool flush_queued = false;

    // Reactor-thread-only flush state.
    bool want_writable = false;   // EPOLLOUT armed
    bool stall_armed = false;     // timer-wheel entry live
    std::chrono::steady_clock::time_point stall_since{};

    /// Outstanding dispatched requests; drives backpressure.
    std::atomic<int> in_flight{0};
    /// Guards paused/resume_queued and orders pause/resume against
    /// in_flight so a completion draining to zero can never race the
    /// reactor into a permanently paused socket.
    std::mutex pause_mutex;
    bool paused = false;
    /// A resume is already sitting in the owner's inbox.
    bool resume_queued = false;

    /// Watch-router ids owned by this connection (guarded by the
    /// server's router_mutex_, not a connection-local lock — watch
    /// registration is cold next to the data path).
    std::vector<std::uint64_t> watch_ids;

    std::atomic<bool> closed{false};
  };
  using connection_ptr = std::shared_ptr<connection>;

  /// One per-core event loop: epoll + eventfd + (maybe) its own
  /// listener + timer wheel + private connection table + inbox for
  /// cross-thread work. Everything epoll_ctl happens on this thread.
  struct reactor {
    server* owner = nullptr;
    int index = 0;
    int epoll_fd = -1;
    int wake_fd = -1;
    /// This reactor's SO_REUSEPORT listener; -1 on every reactor but 0
    /// in the single-listener fallback.
    int listen_fd = -1;
    std::thread thread;

    /// Reactor-thread-only.
    std::unordered_map<int, connection_ptr> connections;
    /// Timer wheel (coarse): deadline -> fd for output-stall budgets.
    std::multimap<std::chrono::steady_clock::time_point, int> stall_wheel;

    /// Cross-thread inbox, drained on eventfd wakeup. wake_pending
    /// coalesces eventfd writes: one kick per drain, however many posts.
    std::mutex inbox_mutex;
    std::vector<connection_ptr> flush_inbox;
    std::vector<connection_ptr> resume_inbox;
    std::vector<int> adopt_inbox;
    bool wake_pending = false;

    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> active{0};
    std::atomic<std::uint64_t> wakeups{0};
    std::atomic<std::uint64_t> writev_calls{0};
    std::atomic<std::uint64_t> frames_flushed{0};
    std::atomic<std::uint64_t> drain_batches{0};
    std::atomic<std::uint64_t> requests{0};
  };

  struct pending {
    connection_ptr conn;
    wire::request req;
  };

  /// The watch router: one hub subscription per watched key, fanned to
  /// the wire subscribers by fanout_event. by_id is keyed by the wire
  /// watch handle (what unwatch presents); by_key groups handles under
  /// their shared hub subscription.
  struct watch_target {
    std::string key;
    connection_ptr conn;
  };
  struct watch_key_state {
    std::uint64_t hub_id = 0;
    /// A hub subscription for this key is being registered (outside the
    /// router lock). While set, the entry must not be erased — the
    /// subscriber comes back to publish hub_id or drop it.
    bool subscribing = false;
    std::vector<std::uint64_t> ids;
  };

  void reactor_main(reactor& r);
  void executor_main();
  /// Accept everything ready on r's listener. In fallback mode only
  /// reactor 0 has one; it adopts locally or deals to a peer's inbox.
  void accept_ready(reactor& r);
  /// Register a freshly accepted socket with reactor r (its thread).
  void adopt_connection(reactor& r, int fd);
  /// Drain one readable socket and dispatch everything parsed.
  void read_ready(reactor& r, const connection_ptr& conn);
  /// Drain r's inbox: adopts, resumes, flushes.
  void process_inbox(reactor& r);
  /// writev the connection's output ring until drained or EAGAIN
  /// (reactor thread only).
  void flush_connection(reactor& r, const connection_ptr& conn);
  /// Close every connection whose output stall outlived its budget.
  void fire_stalls(reactor& r);
  /// epoll timeout until the next stall deadline (-1 = forever).
  [[nodiscard]] int next_stall_timeout_ms(reactor& r) const;
  /// Recompute and apply the connection's epoll interest mask from
  /// (paused, want_writable). Reactor thread only.
  void rearm(reactor& r, const connection_ptr& conn);
  /// Pop the frames a writev of `wrote` bytes completed off the ring
  /// (out_mutex held). Returns {frames, events} fully written.
  static std::pair<std::uint64_t, std::uint64_t> pop_written(
      connection& conn, std::size_t wrote);
  /// Append one encoded frame to the connection's output ring. Returns
  /// false if the frame was dropped (closed / ring overflow — overflow
  /// also starts the close). Sets need_post when the caller must
  /// schedule a flush with the owning reactor.
  bool enqueue_frame(const connection_ptr& conn,
                     std::shared_ptr<const std::vector<std::uint8_t>> bytes,
                     bool is_event, bool& need_post);
  /// Hand the connection to its owner for a flush (inline when already
  /// on that reactor's thread).
  void post_flush(reactor& r, const connection_ptr& conn);
  void post_flush_batch(reactor& r, std::vector<connection_ptr> conns);
  void post_resume(reactor& r, const connection_ptr& conn);
  void handle_resume(reactor& r, const connection_ptr& conn);
  /// Kick r's eventfd (coalesced by wake_pending).
  void wake(reactor& r);
  void dispatch(const connection_ptr& conn, wire::request req);
  /// Serve one non-blocking request (executor thread).
  void serve(const pending& p);
  /// Serve one blocking acquire-family request (waiter thread).
  void serve_blocking(const pending& p);
  /// Build the response for a decided acquire attempt.
  [[nodiscard]] static wire::response acquire_response(
      const wire::request& req, const svc::acquire_result& result);
  /// Encode one response frame into the connection's output ring.
  void send_response(const connection_ptr& conn, const wire::response& r);
  /// The watch fast lane (hub notifier thread): encode the event once,
  /// append the shared buffer to every subscribed connection's ring,
  /// one inbox post + wakeup per reactor that has subscribers.
  void fanout_event(const svc::watch_event& e);
  /// Register / cancel wire watches (executor thread).
  void serve_watch(const pending& p, wire::response& r);
  void serve_unwatch(const pending& p, wire::response& r);
  /// The admin ops (executor thread); gated by config.enable_admin.
  void serve_admin(const pending& p, wire::response& r);
  // HTTP side-channel (reactor 0 only): accept, buffer one request,
  // answer, close.
  void http_accept_ready(reactor& r);
  void http_read_ready(reactor& r, int fd);
  void http_close(reactor& r, int fd);
  void http_respond(int fd, const std::string& buffered);
  void complete(const connection_ptr& conn);
  void maybe_pause(reactor& r, const connection_ptr& conn);
  /// Initiate teardown from any thread: shutdown() the socket so the
  /// owning reactor sees it and runs finish_connection exactly once.
  void start_close(const connection_ptr& conn);
  /// Reactor-thread-only: final opportunistic flush (a bad_request
  /// refusal must still reach the peer), unregister, cancel watches,
  /// disconnect the session (the lease-reclaim hook), drop from the
  /// map.
  void finish_connection(reactor& r, const connection_ptr& conn);
  void handle_handshake(const connection_ptr& conn,
                        const wire::request& req);
  void protocol_error(const connection_ptr& conn, std::uint64_t request_id);

  svc::service& service_;
  const server_config config_;

  bool listening_ = false;
  bool reuseport_active_ = false;
  std::uint16_t port_ = 0;
  int http_listen_fd_ = -1;
  std::uint16_t http_port_ = 0;
  /// Reactor-0-thread-only: accepted HTTP connections and their
  /// buffered request bytes (serve-one-request-then-close).
  std::unordered_map<int, std::string> http_conns_;

  std::vector<std::unique_ptr<reactor>> reactors_;
  /// Round-robin cursor for the single-listener fallback. Starts at 1
  /// so the first accepted connection lands off reactor 0 — spreading
  /// begins immediately.
  std::size_t next_adopter_ = 1;

  std::vector<std::thread> executors_;
  std::atomic<bool> stopping_{false};

  std::atomic<std::uint64_t> next_connection_id_{1};

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<pending> queue_;

  /// Waiter-thread accounting: spawn-if-below-cap, and stop() blocks
  /// until the last waiter (they run detached) has finished.
  std::mutex waiter_mutex_;
  std::condition_variable waiter_cv_;
  int active_waiters_ = 0;

  /// Watch router state. Lock order: router_mutex_ before any
  /// connection's out_mutex (fanout path); hub calls (service_.watch /
  /// unwatch) that can block on delivery NEVER run under router_mutex_
  /// except add — remove is always deferred past the unlock, because
  /// the notifier may be parked on router_mutex_ inside fanout_event.
  std::mutex router_mutex_;
  std::unordered_map<std::uint64_t, watch_target> router_by_id_;
  std::unordered_map<std::string, watch_key_state> router_by_key_;
  std::uint64_t next_router_id_ = 1;

  struct counters {
    std::atomic<std::uint64_t> connections_accepted{0};
    std::atomic<std::uint64_t> connections_refused{0};
    std::atomic<std::uint64_t> frames_in{0};
    std::atomic<std::uint64_t> frames_out{0};
    std::atomic<std::uint64_t> bytes_in{0};
    std::atomic<std::uint64_t> bytes_out{0};
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> dispatch_batches{0};
    std::atomic<std::uint64_t> backpressure_pauses{0};
    std::atomic<std::uint64_t> busy_rejections{0};
    std::atomic<std::uint64_t> protocol_errors{0};
    std::atomic<std::uint64_t> disconnect_reclaims{0};
    std::atomic<std::uint64_t> watch_subscriptions{0};
    std::atomic<std::uint64_t> events_pushed{0};
    std::atomic<std::uint64_t> events_dropped{0};
  };
  counters counters_;
  std::atomic<std::uint64_t> connections_active_{0};
};

}  // namespace elect::net
