// elect::net::server — the TCP front-end of the election service.
//
// One epoll loop owns the listen socket and every connection's read
// side. Readable sockets are drained to EAGAIN and *all* complete
// frames are decoded before anything is dispatched (request batching:
// one syscall burst, one queue lock, many requests), then:
//
//   * non-blocking ops (try_acquire, release, renew, disconnect,
//     metrics) go to a small executor pool — they only ever take shard
//     locks and pool round-trips, never park;
//   * blocking ops (acquire, try_acquire_for) each get a waiter thread,
//     bounded by `max_waiters`; past the cap the server answers `busy`
//     instead of queueing a request behind threads that may sleep for
//     minutes. Waiters sleep in bounded slices so server stop and
//     connection death interrupt them promptly. Keeping the two classes
//     apart means a release can always be served while every waiter is
//     parked — the release is what wakes them, so mixing the classes in
//     one queue could deadlock until a lease TTL broke the cycle.
//
// Every connection is backed by ONE svc::service session, so the
// service-side crash story carries over the wire unchanged: when the
// socket dies (EOF, reset, or server stop) the server applies
// session::disconnect(), force-releasing everything the remote client
// held — a crashed remote client fences exactly like PR 2's local
// crash path, and faster than waiting out the TTL when the kernel
// reports the close. A half-open peer (no FIN ever arrives) falls back
// to the lease TTL + sweeper, same as a wedged local client.
//
// Backpressure is per connection: at `max_inflight_per_connection`
// outstanding requests the loop stops *reading* that socket (drops
// EPOLLIN) until completions drain below half the cap — the client's
// sends then fill the kernel buffers and block/EAGAIN at the client,
// which is the entire point. Responses complete out of order; the wire
// request id is what keys them back (see net/wire.hpp).
//
// Responses are written by whichever thread finished the request,
// under a per-connection write mutex, blocking on POLLOUT if the
// socket's send buffer is full — a slow consumer stalls its own
// responses, never the epoll loop.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/wire.hpp"
#include "svc/service.hpp"

namespace elect::net {

struct server_config {
  /// Address to bind. Loopback by default: this PR's scope is the wire
  /// protocol and the loopback workload; multi-host comes later.
  std::string bind_address = "127.0.0.1";
  /// 0 binds an ephemeral port; read it back with server::port().
  std::uint16_t port = 0;
  /// Threads serving non-blocking ops.
  int executors = 4;
  /// Concurrent blocking ops (acquire / try_acquire_for) server-wide;
  /// past this the server answers wire::status::busy.
  int max_waiters = 256;
  /// Outstanding requests per connection before the server stops
  /// reading that socket.
  int max_inflight_per_connection = 64;
  /// Accepted connections beyond this are closed immediately.
  int max_connections = 1024;
  /// Granularity at which parked blocking ops re-check for server stop
  /// and connection death.
  std::uint64_t blocking_slice_ms = 50;
  /// Watch subscriptions one connection may hold; past the cap a watch
  /// op answers `busy` (resource exhaustion, same family as the waiter
  /// cap — not a protocol violation).
  int max_watches_per_connection = 1024;
  /// Budget for pushing one event frame into a slow consumer's socket
  /// before the connection is declared dead. Bounds how long the watch
  /// hub's notifier (and a teardown waiting on it) can stall.
  std::uint64_t event_write_budget_ms = 1000;
  /// Serve HTTP (/metrics Prometheus text, /report JSON, /healthz) on a
  /// second listen socket, multiplexed onto the same epoll loop.
  bool http_enabled = false;
  /// HTTP port; 0 binds ephemeral (read back with server::http_port()).
  std::uint16_t http_port = 0;
  /// Allow the wire admin ops (admin_list / admin_inspect /
  /// admin_force_release / admin_snapshot). Off by default:
  /// force-release is an operator lever, not a client right — `denied`
  /// when off.
  bool enable_admin = false;
  /// Where admin_snapshot persists the registry snapshot. Empty keeps
  /// the op in-memory only (it still answers with command-log stats).
  std::string snapshot_path;
};

/// Point-in-time counters for the network edge.
struct net_report {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_active = 0;
  std::uint64_t connections_refused = 0;
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t requests = 0;
  /// Read-drain passes that dispatched at least one request; requests /
  /// batches is the realized batching factor.
  std::uint64_t dispatch_batches = 0;
  std::uint64_t backpressure_pauses = 0;
  std::uint64_t busy_rejections = 0;
  std::uint64_t protocol_errors = 0;
  /// Leases force-released because their connection closed (the
  /// disconnect-on-close hook), plus wins reclaimed after their
  /// connection died mid-election.
  std::uint64_t disconnect_reclaims = 0;
  /// Watch subscriptions accepted over the wire (lifetime total).
  std::uint64_t watch_subscriptions = 0;
  /// Event frames pushed to clients.
  std::uint64_t events_pushed = 0;
  /// Event frames not pushed: connection already closed, or the write
  /// budget ran out on a non-draining consumer (which also kills the
  /// connection).
  std::uint64_t events_dropped = 0;

  [[nodiscard]] std::string to_json() const;
};

class server {
 public:
  /// Binds, listens, and starts the loop + executors. The service must
  /// outlive the server. Check listening() — construction does not
  /// abort on bind failure (the port may be taken).
  server(svc::service& service, server_config config);
  ~server();

  server(const server&) = delete;
  server& operator=(const server&) = delete;

  [[nodiscard]] bool listening() const noexcept { return listen_fd_ >= 0; }
  /// The bound port (resolves config.port == 0 to the ephemeral pick).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  /// Is the HTTP listener up? (Requires config.http_enabled and a
  /// successful bind.)
  [[nodiscard]] bool http_listening() const noexcept {
    return http_listen_fd_ >= 0;
  }
  /// The bound HTTP port (resolves config.http_port == 0).
  [[nodiscard]] std::uint16_t http_port() const noexcept {
    return http_port_;
  }

  /// Close the listener and every connection (their sessions are
  /// disconnected, releasing held leases), drain the executors, and
  /// join every thread. Idempotent. Does NOT stop the service.
  void stop();

  [[nodiscard]] net_report report() const;
  /// The combined report served to the metrics wire op:
  /// service_report::to_json() with the "net" section filled in.
  [[nodiscard]] std::string report_json() const;

 private:
  struct connection {
    connection(int fd_in, std::uint64_t id_in) : fd(fd_in), id(id_in) {}
    ~connection();

    const int fd;
    const std::uint64_t id;
    /// Set once the hello handshake passed; requests before it (or an
    /// invalid hello) are protocol errors.
    std::optional<svc::service::session> session;
    wire::frame_reader reader;

    /// Guards the socket write side (responses interleave from many
    /// threads) — never held while reading.
    std::mutex write_mutex;

    /// Outstanding dispatched requests; drives backpressure.
    std::atomic<int> in_flight{0};
    /// Guards `paused` and orders pause/resume against in_flight so a
    /// completion draining to zero can never race the loop into a
    /// permanently paused socket.
    std::mutex pause_mutex;
    bool paused = false;

    /// Watch-hub subscription ids owned by this connection: unwatch ops
    /// may only cancel ids in here (a client cannot cancel another
    /// connection's watches), and finish_connection cancels the rest.
    std::mutex watch_mutex;
    std::vector<std::uint64_t> watch_ids;

    std::atomic<bool> closed{false};
  };
  using connection_ptr = std::shared_ptr<connection>;

  struct pending {
    connection_ptr conn;
    wire::request req;
  };

  void loop_main();
  void executor_main();
  void accept_ready();
  /// Drain one readable socket and dispatch everything parsed. Takes
  /// its own reference: the loop's copy in connections_ dies inside
  /// finish_connection, so a reference to the map's slot would dangle.
  void read_ready(connection_ptr conn);
  void dispatch(const connection_ptr& conn, wire::request req);
  /// Serve one non-blocking request (executor thread).
  void serve(const pending& p);
  /// Serve one blocking acquire-family request (waiter thread).
  void serve_blocking(const pending& p);
  /// Build the response for a decided acquire attempt.
  [[nodiscard]] static wire::response acquire_response(
      const wire::request& req, const svc::acquire_result& result);
  /// Write one response frame; on transport failure starts the close.
  void send_response(const connection_ptr& conn, const wire::response& r);
  /// Push one watch event frame (hub notifier thread). Unlike
  /// send_response the write is budgeted: a consumer that stops
  /// draining for event_write_budget_ms loses the connection instead of
  /// wedging watch delivery for everyone else.
  void push_event(const connection_ptr& conn, const svc::watch_event& e);
  /// Register / cancel wire watches (executor thread).
  void serve_watch(const pending& p, wire::response& r);
  void serve_unwatch(const pending& p, wire::response& r);
  /// The admin ops (executor thread); gated by config.enable_admin.
  void serve_admin(const pending& p, wire::response& r);
  // HTTP side-channel (loop thread only): accept, buffer one request,
  // answer, close.
  void http_accept_ready();
  void http_read_ready(int fd);
  void http_close(int fd);
  void http_respond(int fd, const std::string& buffered);
  void complete(const connection_ptr& conn);
  void maybe_pause(const connection_ptr& conn);
  void maybe_resume(const connection_ptr& conn);
  /// Initiate teardown from any thread: shutdown() the socket so the
  /// loop sees it and runs finish_connection exactly once.
  void start_close(const connection_ptr& conn);
  /// Loop-thread-only: unregister, disconnect the session (the
  /// lease-reclaim hook), drop from the map. By value — it erases the
  /// map's own shared_ptr and keeps using the connection after.
  void finish_connection(connection_ptr conn);
  void handle_handshake(const connection_ptr& conn,
                        const wire::request& req);
  void protocol_error(const connection_ptr& conn, std::uint64_t request_id);

  svc::service& service_;
  const server_config config_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: kicks the loop for stop()
  std::uint16_t port_ = 0;
  int http_listen_fd_ = -1;
  std::uint16_t http_port_ = 0;
  /// Loop-thread-only: accepted HTTP connections and their buffered
  /// request bytes (serve-one-request-then-close, no keep-alive).
  std::unordered_map<int, std::string> http_conns_;

  std::thread loop_;
  std::vector<std::thread> executors_;
  std::atomic<bool> stopping_{false};

  /// Loop-thread-only registry of live connections.
  std::unordered_map<int, connection_ptr> connections_;
  std::uint64_t next_connection_id_ = 1;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<pending> queue_;

  /// Waiter-thread accounting: spawn-if-below-cap, and stop() blocks
  /// until the last waiter (they run detached) has finished.
  std::mutex waiter_mutex_;
  std::condition_variable waiter_cv_;
  int active_waiters_ = 0;

  struct counters {
    std::atomic<std::uint64_t> connections_accepted{0};
    std::atomic<std::uint64_t> connections_refused{0};
    std::atomic<std::uint64_t> frames_in{0};
    std::atomic<std::uint64_t> frames_out{0};
    std::atomic<std::uint64_t> bytes_in{0};
    std::atomic<std::uint64_t> bytes_out{0};
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> dispatch_batches{0};
    std::atomic<std::uint64_t> backpressure_pauses{0};
    std::atomic<std::uint64_t> busy_rejections{0};
    std::atomic<std::uint64_t> protocol_errors{0};
    std::atomic<std::uint64_t> disconnect_reclaims{0};
    std::atomic<std::uint64_t> watch_subscriptions{0};
    std::atomic<std::uint64_t> events_pushed{0};
    std::atomic<std::uint64_t> events_dropped{0};
  };
  counters counters_;
  std::atomic<std::uint64_t> connections_active_{0};
};

}  // namespace elect::net
