#include "net/wire.hpp"

#include <cstring>

namespace elect::net::wire {

namespace {

// Little-endian scalar append/read. Byte-by-byte on purpose: exact wire
// layout on every host, no alignment or endianness assumptions.

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

/// Bounds-checked little-endian reads over one frame body.
class cursor {
 public:
  explicit cursor(const std::vector<std::uint8_t>& data) : data_(data) {}

  [[nodiscard]] bool u8(std::uint8_t& out) {
    if (at_ + 1 > data_.size()) return fail();
    out = data_[at_++];
    return true;
  }

  [[nodiscard]] bool u32(std::uint32_t& out) {
    if (at_ + 4 > data_.size()) return fail();
    out = 0;
    for (int i = 0; i < 4; ++i) {
      out |= static_cast<std::uint32_t>(data_[at_++]) << (8 * i);
    }
    return true;
  }

  [[nodiscard]] bool u64(std::uint64_t& out) {
    if (at_ + 8 > data_.size()) return fail();
    out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= static_cast<std::uint64_t>(data_[at_++]) << (8 * i);
    }
    return true;
  }

  [[nodiscard]] bool string(std::string& out, std::uint32_t max_bytes) {
    std::uint32_t length = 0;
    if (!u32(length)) return false;
    if (length > max_bytes || at_ + length > data_.size()) return fail();
    out.assign(reinterpret_cast<const char*>(data_.data()) + at_, length);
    at_ += length;
    return true;
  }

  /// Everything consumed, nothing trailing? Trailing bytes mean the
  /// peer speaks a different dialect — reject rather than guess.
  [[nodiscard]] bool exhausted() const { return ok_ && at_ == data_.size(); }

 private:
  bool fail() {
    ok_ = false;
    return false;
  }

  const std::vector<std::uint8_t>& data_;
  std::size_t at_ = 0;
  bool ok_ = true;
};

/// Reserve the 4-byte length slot, append the body, then backfill the
/// length — one buffer, one pass.
void finish_frame(std::vector<std::uint8_t>& frame) {
  const auto body = static_cast<std::uint32_t>(frame.size() - 4);
  for (int i = 0; i < 4; ++i) {
    frame[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(body >> (8 * i));
  }
}

}  // namespace

std::string_view to_string(op kind) {
  switch (kind) {
    case op::hello: return "hello";
    case op::try_acquire: return "try_acquire";
    case op::acquire: return "acquire";
    case op::try_acquire_for: return "try_acquire_for";
    case op::release: return "release";
    case op::release_fenced: return "release_fenced";
    case op::renew: return "renew";
    case op::disconnect: return "disconnect";
    case op::metrics: return "metrics";
    case op::watch: return "watch";
    case op::unwatch: return "unwatch";
    case op::event: return "event";
    case op::admin_list: return "admin_list";
    case op::admin_inspect: return "admin_inspect";
    case op::admin_force_release: return "admin_force_release";
    case op::admin_snapshot: return "admin_snapshot";
    case op::admin_commands: return "admin_commands";
    case op::admin_cluster_status: return "admin_cluster_status";
    case op::peer_vote: return "peer_vote";
    case op::peer_append: return "peer_append";
    case op::peer_snapshot: return "peer_snapshot";
  }
  return "unknown";
}

std::string_view to_string(status s) {
  switch (s) {
    case status::ok: return "ok";
    case status::lost: return "lost";
    case status::timed_out: return "timed_out";
    case status::rejected: return "rejected";
    case status::stale_epoch: return "stale_epoch";
    case status::not_leader: return "not_leader";
    case status::busy: return "busy";
    case status::bad_request: return "bad_request";
    case status::denied: return "denied";
    case status::not_primary: return "not_primary";
    case status::connection_lost: return "connection_lost";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode_request(const request& r) {
  std::vector<std::uint8_t> frame(4, 0);  // length backfilled below
  put_u64(frame, r.id);
  put_u8(frame, static_cast<std::uint8_t>(r.kind));
  put_string(frame, r.key);
  put_u64(frame, r.epoch);
  put_u64(frame, r.timeout_ms);
  put_u64(frame, r.trace_id);
  put_string(frame, r.body);
  finish_frame(frame);
  return frame;
}

std::vector<std::uint8_t> encode_response(const response& r) {
  std::vector<std::uint8_t> frame(4, 0);
  put_u64(frame, r.id);
  put_u8(frame, static_cast<std::uint8_t>(r.kind));
  put_u8(frame, static_cast<std::uint8_t>(r.result));
  put_u8(frame, r.flags);
  put_u64(frame, r.epoch);
  put_u64(frame, r.lease_remaining_ms);
  put_string(frame, r.body);
  finish_frame(frame);
  return frame;
}

request make_hello_request() {
  request r;
  r.kind = op::hello;
  r.epoch = (static_cast<std::uint64_t>(protocol_magic) << 16) |
            protocol_version;
  return r;
}

response make_hello_response(std::uint64_t session_id) {
  response r;
  r.kind = op::hello;
  r.result = status::ok;
  r.epoch = session_id;
  return r;
}

bool hello_version_ok(const request& r) {
  return r.kind == op::hello &&
         r.epoch == ((static_cast<std::uint64_t>(protocol_magic) << 16) |
                     protocol_version);
}

response make_event(const svc::watch_event& e) {
  response r;
  r.id = 0;  // push frame: no request id, routed to watch callbacks
  r.kind = op::event;
  r.result = status::ok;
  r.flags = static_cast<std::uint8_t>(e.kind);
  r.epoch = e.epoch;
  r.lease_remaining_ms =
      static_cast<std::uint64_t>(static_cast<std::int64_t>(e.session));
  r.body = e.key;
  return r;
}

std::optional<svc::watch_event> parse_event(const response& r) {
  if (r.kind != op::event || r.id != 0 ||
      r.flags > static_cast<std::uint8_t>(svc::transition::force_released) ||
      r.body.size() > max_key_bytes) {
    return std::nullopt;
  }
  svc::watch_event e;
  e.key = r.body;
  e.epoch = r.epoch;
  e.kind = static_cast<svc::transition>(r.flags);
  e.session = static_cast<int>(
      static_cast<std::int64_t>(r.lease_remaining_ms));
  return e;
}

std::optional<request> decode_request(const std::vector<std::uint8_t>& body) {
  cursor in(body);
  request r;
  std::uint8_t kind = 0;
  if (!in.u64(r.id) || !in.u8(kind) || !in.string(r.key, max_key_bytes) ||
      !in.u64(r.epoch) || !in.u64(r.timeout_ms) || !in.u64(r.trace_id) ||
      !in.string(r.body, max_frame_bytes) || !in.exhausted()) {
    return std::nullopt;
  }
  if (kind >= op_count) return std::nullopt;
  r.kind = static_cast<op>(kind);
  return r;
}

std::optional<response> decode_response(
    const std::vector<std::uint8_t>& body) {
  cursor in(body);
  response r;
  std::uint8_t kind = 0;
  std::uint8_t result = 0;
  if (!in.u64(r.id) || !in.u8(kind) || !in.u8(result) || !in.u8(r.flags) ||
      !in.u64(r.epoch) || !in.u64(r.lease_remaining_ms) ||
      !in.string(r.body, max_frame_bytes) || !in.exhausted()) {
    return std::nullopt;
  }
  if (kind >= op_count || result > status_max) return std::nullopt;
  r.kind = static_cast<op>(kind);
  r.result = static_cast<status>(result);
  return r;
}

status from_lease_status(svc::lease_status s) {
  switch (s) {
    case svc::lease_status::ok: return status::ok;
    case svc::lease_status::stale_epoch: return status::stale_epoch;
    case svc::lease_status::not_leader: return status::not_leader;
    case svc::lease_status::connection_lost:
      // Since v4 the sever verdict has its own code: a cluster primary
      // that lost its quorum mid-op reports it, and the client-side
      // verdict round-trips instead of masquerading as a fence.
      return status::connection_lost;
  }
  return status::bad_request;
}

svc::lease_status to_lease_status(status s) {
  switch (s) {
    case status::ok: return svc::lease_status::ok;
    case status::not_leader: return svc::lease_status::not_leader;
    case status::connection_lost: return svc::lease_status::connection_lost;
    // not_primary is intercepted by the client's redirect layer before
    // this mapping; a caller that sees it anyway must treat the lease
    // op as not applied on this node.
    case status::not_primary: return svc::lease_status::not_leader;
    default: return svc::lease_status::stale_epoch;
  }
}

bool frame_reader::feed(const std::uint8_t* data, std::size_t n) {
  if (poisoned_) return false;
  buffer_.insert(buffer_.end(), data, data + n);
  for (;;) {
    const std::size_t available = buffer_.size() - consumed_;
    if (available < 4) break;
    std::uint32_t length = 0;
    for (int i = 0; i < 4; ++i) {
      length |= static_cast<std::uint32_t>(buffer_[consumed_ +
                                                   static_cast<std::size_t>(i)])
                << (8 * i);
    }
    if (length > max_frame_bytes) {
      poisoned_ = true;
      return false;
    }
    if (available < 4 + static_cast<std::size_t>(length)) break;
    const auto* begin = buffer_.data() + consumed_ + 4;
    frames_.emplace_back(begin, begin + length);
    consumed_ += 4 + static_cast<std::size_t>(length);
  }
  // Reclaim the parsed prefix once it dominates the buffer, so a long
  // pipelined burst doesn't memmove per frame.
  if (consumed_ > 0 && consumed_ * 2 >= buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  return true;
}

std::optional<std::vector<std::uint8_t>> frame_reader::next() {
  if (frames_.empty()) return std::nullopt;
  std::vector<std::uint8_t> frame = std::move(frames_.front());
  frames_.pop_front();
  return frame;
}

}  // namespace elect::net::wire
