// elect::net::client — a remote handle on the election service,
// mirroring svc::service::session over TCP.
//
// The API is synchronous — every call blocks its calling thread until
// the server answers — but the transport is pipelined underneath: a
// background reader thread routes response frames to waiters by
// request id, so N threads sharing one client keep N requests in
// flight on one socket, and the server is free to answer them out of
// order (a release overtakes a parked acquire; that reordering is what
// makes the remote lock usable at all).
//
// The raw submit()/take() layer exposes the pipelining directly for
// load generators and tests: submit() returns immediately with the
// request id, take() blocks for that id's response. The synchronous
// calls are submit+take.
//
// Crash semantics match the service's lease story. destroying the
// client or calling close() just closes the socket — the server's
// disconnect-on-close hook then force-releases everything this client
// held, exactly like a local client crashing (PR 2). disconnect() is
// the polite form: an explicit wire op that releases server-side state
// while the connection stays usable.
//
// Transport failure is reported through the same types the local
// session uses, but a *sever* is distinguishable from a *shutdown*:
// if the connection died underneath the client (peer crash, network
// fault, refused connect), acquire-family calls come back `rejected`
// with `connection_lost` set and lease calls come back
// `lease_status::connection_lost`; if this process itself called
// close() (crash semantics, PR 4), calls keep the original mapping —
// `rejected` without connection_lost, lease calls `stale_epoch`.
// Either way the caller must stop acting as a leader; reason() reports
// which way the transport went down. Chaos histories (and real users)
// need the distinction: a sever means the server may still count you
// as holder until the TTL or disconnect reclaim fences you.
//
// Striping: against a multi-reactor server one socket lands on one
// reactor, so one client caps out at a single reactor's throughput
// however many threads share it. The striped constructor opens N
// connections and routes each request by key hash, so one client
// object spreads load across reactors while every op on a given key
// stays on one connection (ordering per key is preserved, and the
// server's per-connection lease accounting sees a stable owner). The
// stripes are one client: any stripe failing fails them all, and
// close()/destruction reclaims leases on every stripe.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/wire.hpp"
#include "svc/service.hpp"
#include "svc/watch.hpp"

namespace elect::net {

/// Why a client's transport is down. `severed` covers every loss the
/// user did not ask for: a failed connect, the peer closing or
/// crashing, a protocol violation killing the stream. `local_close`
/// means this process called close() (or destroyed the client).
enum class close_reason : std::uint8_t { none, local_close, severed };

[[nodiscard]] std::string_view to_string(close_reason r);

class client {
 public:
  /// Connect and handshake. Check connected() — failure (refused,
  /// version mismatch, service stopped) does not abort.
  client(const std::string& host, std::uint16_t port);
  /// Cluster-aware connect: `endpoints` is a comma-separated
  /// "host1:p1,host2:p2,..." list (a single "host:port" also works).
  /// The client connects to the first reachable member and, from then
  /// on, transparently follows `not_primary` redirects and fails over
  /// on severed connections: the acquire/release/renew family retries
  /// against the hinted (or next) endpoint with backoff until a
  /// primary answers or the retry budget runs out. Lease state does
  /// NOT move with the client — a lease granted by the old primary is
  /// either preserved (committed before the crash) or fenced; the
  /// first renew after failover reports which. Watch subscriptions are
  /// re-issued best-effort after a failover. Single-endpoint
  /// (host, port) clients keep the exact legacy behavior.
  explicit client(const std::string& endpoints);
  /// Striped connect: `stripes` connections (clamped to [1, 64]), each
  /// with its own server session; requests route by key hash. See the
  /// header comment. api::client and other single-connection users keep
  /// the two-argument form (one stripe behaves exactly as before).
  client(const std::string& host, std::uint16_t port, int stripes);
  ~client();

  client(const client&) = delete;
  client& operator=(const client&) = delete;

  [[nodiscard]] bool connected() const noexcept {
    return open_.load(std::memory_order_relaxed);
  }
  /// Why the transport is down (close_reason::none while connected).
  /// Once severed, a later close() does not rewrite history: the first
  /// cause wins.
  [[nodiscard]] close_reason reason() const noexcept {
    return reason_.load(std::memory_order_acquire);
  }
  /// The svc session id backing stripe 0 (from its handshake).
  [[nodiscard]] std::uint64_t session_id() const noexcept;
  /// How many connections this client stripes over.
  [[nodiscard]] std::size_t stripe_count() const noexcept {
    return channels_.size();
  }

  // Session API mirror. Semantics per svc::service::session, plus the
  // transport-failure mapping described in the header comment.
  [[nodiscard]] svc::acquire_result try_acquire(const std::string& key);
  [[nodiscard]] svc::acquire_result acquire(const std::string& key);
  [[nodiscard]] svc::acquire_result try_acquire_for(
      const std::string& key, std::chrono::milliseconds timeout);
  svc::lease_status release(const std::string& key);
  svc::lease_status release(const std::string& key, std::uint64_t epoch);
  svc::lease_status renew(const std::string& key, std::uint64_t epoch);
  /// Like renew(), additionally reporting the refreshed lease deadline
  /// (on this client's clock) through `refreshed_deadline` when the
  /// renewal succeeded — what an auto-renewing lease schedules its next
  /// heartbeat from. Pass nullptr to ignore.
  svc::lease_status renew(const std::string& key, std::uint64_t epoch,
                          std::chrono::steady_clock::time_point*
                              refreshed_deadline);

  /// Subscribe to leader transitions on `key` (wire::op::watch): the
  /// server pushes one event frame per elected/released/expired
  /// transition. `fn` runs on a dedicated per-client event thread (NOT
  /// the reader), so a callback may freely make synchronous calls on
  /// this same client — exactly like a local watcher; a callback that
  /// blocks forever stalls only this client's watch delivery. Watches
  /// on the same key share one server-side subscription (one push frame
  /// per transition, delivered once to each callback). Returns a
  /// client-side watch id, 0 on a dead connection or server refusal.
  /// Events published between subscription and this call returning are
  /// delivered.
  [[nodiscard]] std::uint64_t watch(
      const std::string& key,
      std::function<void(const svc::watch_event&)> fn);

  /// Cancel a watch. After return the callback will not run again
  /// (calling it from inside its own callback is safe and exempt from
  /// that wait). Unknown ids are a no-op.
  void unwatch(std::uint64_t id);
  /// Politely drop everything this client holds (wire op, issued on
  /// every stripe). Returns the number of keys released across all
  /// stripes; 0 on a dead connection.
  std::size_t disconnect();
  /// The combined net + service metrics JSON; empty on failure.
  [[nodiscard]] std::string metrics_json();
  /// Issue one admin op (admin_list / admin_inspect /
  /// admin_force_release / admin_snapshot / admin_commands; `key`
  /// ignored for list and snapshot) and return the raw response —
  /// `denied` when the server's admin surface is off, empty on
  /// transport failure. `epoch` carries the op's integer argument
  /// (admin_commands: the page offset into the command stream). The
  /// elect_admin CLI and the chaos checker are built on this.
  [[nodiscard]] std::optional<wire::response> admin(
      wire::op kind, const std::string& key = "", std::uint64_t epoch = 0);

  /// Hard-close every stripe without a disconnect op — from the
  /// server's point of view this client crashed; leases are reclaimed
  /// by the disconnect-on-close hook. Safe to call concurrently with
  /// in-flight requests (their take()/call() fails cleanly, no blocked
  /// waiter and no leaked routing slot) and with itself (idempotent,
  /// mutex-serialized). Also run by the destructor.
  void close();

  // Raw pipelining layer. submit() frames and sends one request on the
  // key's stripe and returns its id without waiting (0 on a dead
  // connection); take() blocks until that id's response arrives (empty
  // on connection loss). One thread can keep a deep window in flight
  // this way.
  std::uint64_t submit(wire::op kind, const std::string& key = "",
                       std::uint64_t epoch = 0, std::uint64_t timeout_ms = 0);
  [[nodiscard]] std::optional<wire::response> take(std::uint64_t id);

 private:
  struct slot {
    bool done = false;
    wire::response response;
  };

  /// One striped connection: socket, its handshake session, a write
  /// lock serializing frame sends, and the reader thread routing its
  /// responses into the shared pending map.
  struct channel {
    int fd = -1;
    std::uint64_t session_id = 0;
    std::mutex write_mutex;
    std::thread reader;
  };

  struct watch_entry {
    std::string key;
    std::function<void(const svc::watch_event&)> fn;
  };

  /// One server-side subscription shared by every local watch on a key
  /// (the wire carries one event frame per transition per key, however
  /// many callbacks fan out locally).
  struct key_subscription {
    /// The server's handle (watch response's epoch); 0 until the
    /// subscribe ack lands.
    std::uint64_t server_id = 0;
    /// Local watch entries on this key.
    int refs = 0;
    /// A subscribe round trip is in flight; later watch() calls on the
    /// key piggyback instead of issuing a second wire op.
    bool subscribing = false;
  };

  /// Events buffered between the reader and the event thread while
  /// callbacks run; past the cap new events are dropped (the peer of
  /// the hub-side bound — a wedged callback must not buffer forever).
  static constexpr std::size_t max_queued_watch_events = 1u << 16;

  /// submit + take; empty on transport failure (also after `busy`
  /// retries are exhausted by the caller — busy is passed through).
  [[nodiscard]] std::optional<wire::response> call(wire::op kind,
                                                   const std::string& key,
                                                   std::uint64_t epoch,
                                                   std::uint64_t timeout_ms);
  /// call(), plus redirect-following for multi-endpoint clients: on
  /// `not_primary` or a severed transport, fail over (hinted endpoint
  /// first, then round-robin) with backoff and reissue the op.
  /// Single-endpoint clients pass straight through to call().
  [[nodiscard]] std::optional<wire::response> call_routed(
      wire::op kind, const std::string& key, std::uint64_t epoch,
      std::uint64_t timeout_ms);
  /// Open `stripes` connections to one target (constructor body).
  /// False leaves the client dead with reason `severed`.
  bool open_channels(const std::string& host, std::uint16_t port,
                     int stripes);
  /// Tear down the current channels and reconnect everything to a new
  /// target. Requires close_mutex_; returns false (client stays dead,
  /// channels closed) when the target refuses.
  bool reopen_locked(const std::string& host, std::uint16_t port);
  /// One failover round: try the hint, then the other endpoints. The
  /// generation check makes concurrent callers piggyback on a
  /// finished failover instead of tearing it down again.
  bool failover(std::uint64_t seen_generation, const std::string& hint);
  /// Re-issue the wire watch op for every locally subscribed key after
  /// a failover (best-effort: a key the new primary refuses just stops
  /// delivering).
  void resubscribe_watches();
  /// submit() body; `expect_reply` false skips the pending slot (the
  /// response, always answered by the server, is dropped as an unknown
  /// id) — what lets unwatch be issued from inside a watch callback on
  /// the reader thread, which can never wait for its own reply.
  std::uint64_t submit_impl(channel& ch, wire::op kind,
                            const std::string& key, std::uint64_t epoch,
                            std::uint64_t timeout_ms, bool expect_reply);
  /// The stripe a key's requests ride: key hash mod stripes (the empty
  /// key — metrics, admin, disconnect — rides stripe 0).
  [[nodiscard]] channel& route(const std::string& key);
  [[nodiscard]] svc::acquire_result to_acquire_result(
      const std::optional<wire::response>& r) const;
  void reader_main(channel& ch);
  /// Queue one op::event push frame for the event thread (reader
  /// thread; never runs callbacks itself — a callback making a
  /// synchronous call on this client would otherwise deadlock waiting
  /// for its own reply).
  void dispatch_event(const wire::response& r);
  /// Deliver queued events to the matching watch callbacks.
  void event_main();
  /// Mark the whole client dead (one stripe down = all down) and wake
  /// every waiter.
  void fail();

  std::vector<std::unique_ptr<channel>> channels_;
  /// Failover targets (multi-endpoint constructor only; empty keeps
  /// the legacy fixed-target behavior). The channel structs are
  /// *reused* across a failover — only fds and reader threads are
  /// replaced — so route() stays safe without a lock.
  std::vector<std::pair<std::string, std::uint16_t>> endpoints_;
  /// Index into endpoints_ currently connected; close_mutex_ guards it.
  std::size_t endpoint_index_ = 0;
  /// Bumped after every successful reopen; lets a caller that observed
  /// a redirect detect that another thread already failed over.
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<bool> open_{false};
  /// First cause of transport death; CAS'd from none exactly once
  /// (close() claims local_close before shutting sockets down, so the
  /// reader threads' fail() can't misreport a user close as a sever).
  std::atomic<close_reason> reason_{close_reason::none};

  /// Serializes close() against itself; close_done_ makes it one-shot.
  std::mutex close_mutex_;
  bool close_done_ = false;

  std::atomic<std::uint64_t> next_id_{1};

  std::mutex pending_mutex_;
  std::condition_variable pending_cv_;
  std::unordered_map<std::uint64_t, slot> pending_;

  std::mutex watch_mutex_;
  std::condition_variable watch_cv_;
  std::unordered_map<std::uint64_t, watch_entry> watches_;
  std::unordered_map<std::string, key_subscription> key_subs_;
  std::deque<svc::watch_event> event_queue_;
  std::uint64_t next_watch_id_ = 1;
  /// Watch id currently being invoked by the event thread (0 = none);
  /// unwatch waits for it so the after-return guarantee holds.
  std::uint64_t delivering_watch_ = 0;
  bool watch_stop_ = false;
  /// Started lazily by the first watch(): most clients never subscribe
  /// and should not pay a parked thread for the ability to.
  std::thread event_thread_;
};

}  // namespace elect::net
