// elect::net::client — a remote handle on the election service,
// mirroring svc::service::session over TCP.
//
// The API is synchronous — every call blocks its calling thread until
// the server answers — but the transport is pipelined underneath: a
// background reader thread routes response frames to waiters by
// request id, so N threads sharing one client keep N requests in
// flight on one socket, and the server is free to answer them out of
// order (a release overtakes a parked acquire; that reordering is what
// makes the remote lock usable at all).
//
// The raw submit()/take() layer exposes the pipelining directly for
// load generators and tests: submit() returns immediately with the
// request id, take() blocks for that id's response. The synchronous
// calls are submit+take.
//
// Crash semantics match the service's lease story. destroying the
// client or calling close() just closes the socket — the server's
// disconnect-on-close hook then force-releases everything this client
// held, exactly like a local client crashing (PR 2). disconnect() is
// the polite form: an explicit wire op that releases server-side state
// while the connection stays usable.
//
// Transport failure is reported through the same types the local
// session uses: acquire-family calls come back `rejected`, lease calls
// come back `stale_epoch` — on a dead connection you must stop acting
// as a leader, which is exactly what stale_epoch already means.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>

#include "net/wire.hpp"
#include "svc/service.hpp"

namespace elect::net {

class client {
 public:
  /// Connect and handshake. Check connected() — failure (refused,
  /// version mismatch, service stopped) does not abort.
  client(const std::string& host, std::uint16_t port);
  ~client();

  client(const client&) = delete;
  client& operator=(const client&) = delete;

  [[nodiscard]] bool connected() const noexcept {
    return open_.load(std::memory_order_relaxed);
  }
  /// The svc session id backing this connection (from the handshake).
  [[nodiscard]] std::uint64_t session_id() const noexcept {
    return session_id_;
  }

  // Session API mirror. Semantics per svc::service::session, plus the
  // transport-failure mapping described in the header comment.
  [[nodiscard]] svc::acquire_result try_acquire(const std::string& key);
  [[nodiscard]] svc::acquire_result acquire(const std::string& key);
  [[nodiscard]] svc::acquire_result try_acquire_for(
      const std::string& key, std::chrono::milliseconds timeout);
  svc::lease_status release(const std::string& key);
  svc::lease_status release(const std::string& key, std::uint64_t epoch);
  svc::lease_status renew(const std::string& key, std::uint64_t epoch);
  /// Politely drop everything this connection holds (wire op). Returns
  /// the number of keys released; 0 on a dead connection.
  std::size_t disconnect();
  /// The combined net + service metrics JSON; empty on failure.
  [[nodiscard]] std::string metrics_json();

  /// Hard-close the socket without a disconnect op — from the server's
  /// point of view this client crashed; leases are reclaimed by the
  /// disconnect-on-close hook. Idempotent; also run by the destructor.
  void close();

  // Raw pipelining layer. submit() frames and sends one request and
  // returns its id without waiting (0 on a dead connection); take()
  // blocks until that id's response arrives (empty on connection
  // loss). One thread can keep a deep window in flight this way.
  std::uint64_t submit(wire::op kind, const std::string& key = "",
                       std::uint64_t epoch = 0, std::uint64_t timeout_ms = 0);
  [[nodiscard]] std::optional<wire::response> take(std::uint64_t id);

 private:
  struct slot {
    bool done = false;
    wire::response response;
  };

  /// submit + take; empty on transport failure (also after `busy`
  /// retries are exhausted by the caller — busy is passed through).
  [[nodiscard]] std::optional<wire::response> call(wire::op kind,
                                                   const std::string& key,
                                                   std::uint64_t epoch,
                                                   std::uint64_t timeout_ms);
  [[nodiscard]] static svc::acquire_result to_acquire_result(
      const std::optional<wire::response>& r);
  void reader_main();
  /// Mark the connection dead and wake every waiter.
  void fail();

  int fd_ = -1;
  std::atomic<bool> open_{false};
  std::uint64_t session_id_ = 0;
  std::thread reader_;

  std::mutex write_mutex_;
  std::atomic<std::uint64_t> next_id_{1};

  std::mutex pending_mutex_;
  std::condition_variable pending_cv_;
  std::unordered_map<std::uint64_t, slot> pending_;
};

}  // namespace elect::net
