#include "api/client.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "obs/trace.hpp"

namespace elect::api {

namespace {

/// Request tracing starts here: every client call mints a trace id,
/// makes it current for the call's duration (so the backend, wire, and
/// service spans all land in the same trace), records the whole call as
/// one api_call span, and runs the slow-request check on the way out.
/// Costs one atomic increment and a few relaxed stores per call while
/// no slow threshold is armed.
class traced_call {
 public:
  traced_call(const char* op, const std::string& key)
      : id_(obs::mint()), scope_(id_), start_(obs::now_ns()), label_(op) {
    label_ += ' ';
    label_ += key;
  }

  traced_call(const traced_call&) = delete;
  traced_call& operator=(const traced_call&) = delete;

  ~traced_call() {
    const std::uint64_t end = obs::now_ns();
    obs::record_for(id_, obs::phase::api_call, start_, end);
    (void)obs::maybe_capture_slow(
        id_, std::chrono::nanoseconds(end - start_), label_);
  }

 private:
  std::uint64_t id_;
  obs::trace_scope scope_;
  std::uint64_t start_;
  std::string label_;
};

}  // namespace

namespace detail {

using clock = std::chrono::steady_clock;

/// State one lease shares with its client's heartbeat. `key` and
/// `epoch` are immutable after construction; everything else is
/// guarded by core::mutex.
struct lease_state {
  enum class phase : std::uint8_t {
    held,
    released,
    /// abandon(): walked away without releasing — the TTL fences it.
    abandoned,
    /// A renew was fenced (stale_epoch/not_leader), the transport died,
    /// or the client shut down: stop acting as leader.
    lost,
  };

  std::string key;
  std::uint64_t epoch = 0;

  phase state = phase::held;
  clock::time_point deadline = clock::time_point::max();
  /// TTL observed at grant; zero() = the lease never expires and the
  /// heartbeat skips it.
  clock::duration ttl = clock::duration::zero();

  [[nodiscard]] bool expiring() const {
    return ttl != clock::duration::zero();
  }
  /// Renew at TTL/3 cadence: one third of the TTL after the last grant
  /// or renewal, i.e. with two thirds of the budget still in hand —
  /// room for two more heartbeats before the lease would actually fall.
  [[nodiscard]] clock::time_point renew_at() const {
    return deadline - 2 * ttl / 3;
  }
};

/// Everything a client's handles (leases, subscriptions) share. Kept
/// alive by shared_ptr so a lease that outlives its client degrades
/// gracefully instead of dangling; `closed` is the inert switch the
/// client's destructor flips.
struct core {
  explicit core(std::unique_ptr<backend> be_in) : be(std::move(be_in)) {
    heartbeat = std::thread([this] { heartbeat_main(); });
  }

  ~core() { shutdown(); }

  std::unique_ptr<backend> be;

  std::mutex mutex;
  std::condition_variable cv;
  /// Every lease currently believed held (expiring or not); the
  /// heartbeat renews the expiring ones and prunes what fell out.
  std::vector<std::shared_ptr<lease_state>> live;
  /// Backend watch handles of still-active subscriptions.
  std::vector<std::uint64_t> watches;
  bool closed = false;

  std::thread heartbeat;

  void drop_live(const std::shared_ptr<lease_state>& state) {
    live.erase(std::remove(live.begin(), live.end(), state), live.end());
  }

  /// The client destructor's teardown; idempotent.
  void shutdown() {
    std::vector<std::uint64_t> watch_ids;
    {
      const std::lock_guard<std::mutex> lock(mutex);
      if (closed) return;
      closed = true;
      watch_ids.swap(watches);
    }
    cv.notify_all();
    if (heartbeat.joinable()) heartbeat.join();
    // After these return, no watch callback will run again.
    for (const std::uint64_t id : watch_ids) be->remove_watch(id);
    {
      const std::lock_guard<std::mutex> lock(mutex);
      // disconnect() below hands every held key back; the lease objects
      // the user may still hold flip to lost — "stop acting as leader".
      for (const auto& l : live) {
        if (l->state == lease_state::phase::held) {
          l->state = lease_state::phase::lost;
        }
      }
      live.clear();
    }
    (void)be->disconnect();
    be->close();
  }

  void heartbeat_main() {
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
      if (closed) return;
      auto next = clock::time_point::max();
      for (const auto& l : live) {
        if (l->state == lease_state::phase::held && l->expiring()) {
          next = std::min(next, l->renew_at());
        }
      }
      if (next == clock::time_point::max()) {
        cv.wait(lock);  // nothing to renew; woken by grants and shutdown
      } else {
        cv.wait_until(lock, next);
      }
      if (closed) return;

      const auto now = clock::now();
      std::vector<std::shared_ptr<lease_state>> due;
      for (const auto& l : live) {
        if (l->state == lease_state::phase::held && l->expiring() &&
            l->renew_at() <= now) {
          due.push_back(l);
        }
      }
      for (const auto& l : due) {
        // Renew with the mutex dropped: a remote renew is a network
        // round trip, and release()/acquire paths must not stall behind
        // it. The backend outlives this thread (shutdown joins us
        // before touching `be`), and a concurrent release just makes
        // this renew a fenced no-op.
        lock.unlock();
        clock::time_point refreshed{};
        lease_status status;
        {
          const traced_call traced("renew", l->key);
          status = be->renew(l->key, l->epoch, refreshed);
        }
        lock.lock();
        if (l->state != lease_state::phase::held) continue;
        if (status == lease_status::ok) {
          l->deadline = refreshed;
        } else {
          // Fenced: the TTL beat us (stall, transport loss, or a sweep
          // already handed the key on). The epoch fence upheld safety;
          // all we do is tell the holder.
          l->state = lease_state::phase::lost;
        }
      }
      live.erase(std::remove_if(live.begin(), live.end(),
                                [](const auto& l) {
                                  return l->state !=
                                         lease_state::phase::held;
                                }),
                 live.end());
    }
  }
};

}  // namespace detail

std::string_view to_string(acquire_status s) {
  switch (s) {
    case acquire_status::won: return "won";
    case acquire_status::lost: return "lost";
    case acquire_status::timed_out: return "timed_out";
    case acquire_status::rejected: return "rejected";
  }
  return "unknown";
}

// ---------------------------------------------------------------------
// lease

lease::lease(std::shared_ptr<detail::core> core,
             std::shared_ptr<detail::lease_state> state)
    : core_(std::move(core)), state_(std::move(state)) {}

// The destructor only releases what is still *managed* — an abandoned
// lease stays on the floor (that is abandon()'s contract); an explicit
// release() on it is the zombie-comes-back path and does go to the
// backend, where the epoch fence answers.
lease::~lease() { (void)release_impl(/*include_abandoned=*/false); }

lease& lease::operator=(lease&& other) noexcept {
  if (this != &other) {
    (void)release_impl(/*include_abandoned=*/false);
    core_ = std::move(other.core_);
    state_ = std::move(other.state_);
  }
  return *this;
}

bool lease::held() const {
  if (!state_) return false;
  const std::lock_guard<std::mutex> lock(core_->mutex);
  return state_->state == detail::lease_state::phase::held;
}

bool lease::lost() const {
  if (!state_) return false;
  const std::lock_guard<std::mutex> lock(core_->mutex);
  return state_->state == detail::lease_state::phase::lost;
}

const std::string& lease::key() const {
  static const std::string empty;
  return state_ ? state_->key : empty;
}

std::uint64_t lease::epoch() const { return state_ ? state_->epoch : 0; }

std::chrono::steady_clock::time_point lease::deadline() const {
  if (!state_) return {};
  const std::lock_guard<std::mutex> lock(core_->mutex);
  return state_->deadline;
}

lease_status lease::release() {
  return release_impl(/*include_abandoned=*/true);
}

lease_status lease::release_impl(bool include_abandoned) {
  if (!state_) return lease_status::not_leader;
  bool call_backend = false;
  {
    const std::lock_guard<std::mutex> lock(core_->mutex);
    switch (state_->state) {
      case detail::lease_state::phase::held:
        break;
      case detail::lease_state::phase::abandoned:
        // Zombie resurrection: only an *explicit* release goes to the
        // backend — before the TTL fenced the key it still succeeds,
        // after it the fence answers stale_epoch. The destructor leaves
        // abandoned leases alone.
        if (!include_abandoned) return lease_status::not_leader;
        break;
      case detail::lease_state::phase::lost:
        return lease_status::stale_epoch;
      default:
        return lease_status::not_leader;
    }
    state_->state = detail::lease_state::phase::released;
    core_->drop_live(state_);
    call_backend = !core_->closed;  // closed: disconnect released it
  }
  if (!call_backend) return lease_status::ok;
  // The wire round trip runs outside the core mutex — a stalled remote
  // release must not starve the heartbeat out of its TTL/3 renew points
  // (or block every other lease operation). The backend object itself
  // outlives the core (it is never reset, only close()d), so this is
  // safe even racing the client's teardown; a concurrent disconnect
  // just turns this release into a fenced no-op.
  const traced_call traced("release", state_->key);
  return core_->be->release(state_->key, state_->epoch);
}

void lease::abandon() {
  if (!state_) return;
  const std::lock_guard<std::mutex> lock(core_->mutex);
  if (state_->state != detail::lease_state::phase::held) return;
  state_->state = detail::lease_state::phase::abandoned;
  core_->drop_live(state_);
}

// ---------------------------------------------------------------------
// subscription

subscription::subscription(std::shared_ptr<detail::core> core,
                           std::uint64_t id)
    : core_(std::move(core)), id_(id) {}

subscription::~subscription() { cancel(); }

subscription& subscription::operator=(subscription&& other) noexcept {
  if (this != &other) {
    cancel();
    core_ = std::move(other.core_);
    id_ = other.id_;
    other.id_ = 0;
    other.core_.reset();
  }
  return *this;
}

bool subscription::active() const {
  if (!core_ || id_ == 0) return false;
  const std::lock_guard<std::mutex> lock(core_->mutex);
  return std::find(core_->watches.begin(), core_->watches.end(), id_) !=
         core_->watches.end();
}

void subscription::cancel() {
  if (!core_ || id_ == 0) return;
  bool ours = false;
  {
    const std::lock_guard<std::mutex> lock(core_->mutex);
    const auto it =
        std::find(core_->watches.begin(), core_->watches.end(), id_);
    if (it != core_->watches.end()) {
      core_->watches.erase(it);
      ours = true;
    }
  }
  // remove_watch blocks until an in-flight delivery finishes, and that
  // delivery is user code which may take the core mutex (release a
  // lease, start an acquire) — so it must run unlocked. Erasing the id
  // first makes us its sole owner: a concurrent client shutdown no
  // longer sees it, so the backend stays alive via core_ either way.
  if (ours) core_->be->remove_watch(id_);
  id_ = 0;
  core_.reset();
}

// ---------------------------------------------------------------------
// client

namespace {

std::string endpoint_host(const std::string& endpoint) {
  const std::size_t colon = endpoint.rfind(':');
  return colon == std::string::npos ? std::string()
                                    : endpoint.substr(0, colon);
}

std::uint16_t endpoint_port(const std::string& endpoint) {
  const std::size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon + 1 >= endpoint.size()) return 0;
  return static_cast<std::uint16_t>(
      std::atoi(endpoint.c_str() + colon + 1));
}

}  // namespace

client::client(svc::service& service)
    : core_(std::make_shared<detail::core>(make_local_backend(service))) {}

client::client(const std::string& host, std::uint16_t port)
    : core_(std::make_shared<detail::core>(make_remote_backend(host, port))) {
}

client::client(const std::string& endpoint)
    : core_(endpoint.find(',') != std::string::npos
                // Cluster form "host1:p1,host2:p2,...": the backend
                // follows not_primary redirects across the members.
                ? std::make_shared<detail::core>(make_remote_backend(endpoint))
                : std::make_shared<detail::core>(make_remote_backend(
                      endpoint_host(endpoint), endpoint_port(endpoint)))) {}

client::~client() { core_->shutdown(); }

bool client::connected() const {
  const std::lock_guard<std::mutex> lock(core_->mutex);
  return !core_->closed && core_->be->connected();
}

acquired client::wrap(const std::string& key,
                      const svc::acquire_result& result) {
  acquired out;
  out.epoch = result.epoch;
  out.fast_path = result.fast_path;
  if (result.rejected) {
    out.status = acquire_status::rejected;
    return out;
  }
  if (result.timed_out) {
    out.status = acquire_status::timed_out;
    return out;
  }
  if (!result.won) {
    out.status = acquire_status::lost;
    return out;
  }
  auto state = std::make_shared<detail::lease_state>();
  state->key = key;
  state->epoch = result.epoch;
  state->deadline = result.lease_deadline;
  state->ttl =
      result.lease_deadline == detail::clock::time_point::max()
          ? detail::clock::duration::zero()
          : result.lease_deadline - detail::clock::now();
  {
    const std::lock_guard<std::mutex> lock(core_->mutex);
    if (core_->closed) {
      // Shutdown raced the win; nobody can use it, so treat the call as
      // rejected (the disconnect in shutdown, or the TTL, reclaims the
      // key).
      out.status = acquire_status::rejected;
      return out;
    }
    core_->live.push_back(state);
  }
  core_->cv.notify_all();  // the heartbeat re-plans around the new lease
  out.lease = lease(core_, std::move(state));
  out.status = acquire_status::won;
  return out;
}

acquired client::try_acquire(const std::string& key) {
  const traced_call traced("try_acquire", key);
  return wrap(key, core_->be->try_acquire(key));
}

acquired client::acquire(const std::string& key) {
  const traced_call traced("acquire", key);
  return wrap(key, core_->be->acquire(key));
}

acquired client::try_acquire_for(const std::string& key,
                                 std::chrono::milliseconds timeout) {
  const traced_call traced("try_acquire_for", key);
  return wrap(key, core_->be->try_acquire_for(key, timeout));
}

subscription client::watch(const std::string& key,
                           std::function<void(const watch_event&)> fn) {
  const traced_call traced("watch", key);
  const std::uint64_t id = core_->be->add_watch(key, std::move(fn));
  if (id == 0) return {};
  {
    const std::lock_guard<std::mutex> lock(core_->mutex);
    if (!core_->closed) {
      core_->watches.push_back(id);
      return subscription(core_, id);
    }
  }
  core_->be->remove_watch(id);  // shutdown raced the subscribe
  return {};
}

std::string client::metrics_json() { return core_->be->metrics_json(); }

}  // namespace elect::api
