// elect::api — one client API for the election service, local or
// remote.
//
// The service grew two near-identical client surfaces: the in-process
// svc::service::session and the TCP net::client. Every embedder was
// written twice and every caller repeated the same raw-epoch
// bookkeeping (keep the winning epoch, pass it back to renew/release,
// remember to renew before the TTL, remember to release on every exit
// path). api::client folds both transports behind one facade and turns
// leadership into an RAII value:
//
//   api::client c(service);                 // or api::client c(host, port)
//   if (auto got = c.acquire("locks/demo")) {
//     // got.lease holds the key: the fencing epoch is carried
//     // internally, a shared heartbeat thread renews it at TTL/3, and
//     // leaving scope releases it on every exit path.
//     do_leader_work();
//   }                                       // lease released here
//
//   auto sub = c.watch("locks/demo", [](const api::watch_event& e) {
//     // elected / released / expired, same over both transports
//   });
//
// Semantics are identical over both backends — that is the contract,
// and tests/test_api.cpp enforces it by running one scenario matrix
// (unique winner, handoff, auto-renew, watch delivery, crash reclaim,
// stale-epoch fencing) against each.
//
// Threading: a client is thread-safe, but it is ONE identity (one svc
// session / one connection) — open one client per logical participant,
// exactly as you would sessions. Watch callbacks run on the transport's
// notifier thread (never on a caller's); keep them brief and never
// block them on this client's own blocking acquire.
//
// Failure mapping: transport loss and service stop surface as
// acquire_status::rejected on acquires; an auto-renew that is fenced
// (the lease expired before the heartbeat could save it — e.g. a long
// GC-like stall, or transport loss) marks the lease lost(), after
// which the holder must stop acting as leader. This is exactly the
// epoch-fencing story of the underlying service, with the bookkeeping
// done for you.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "api/backend.hpp"

namespace elect::api {

using svc::lease_status;
using svc::transition;
using svc::watch_event;

namespace detail {
struct core;
struct lease_state;
}  // namespace detail

/// Outcome of one acquire call.
enum class acquire_status : std::uint8_t {
  /// The caller is the leader; `acquired::lease` holds the key.
  won,
  /// try_acquire only: somebody else holds the current epoch.
  lost,
  /// try_acquire_for only: the timeout elapsed first.
  timed_out,
  /// The service stopped, the transport died, or (remote) the server
  /// stayed saturated past the bounded busy-retry budget.
  rejected,
};

[[nodiscard]] std::string_view to_string(acquire_status s);

/// Leadership of one key, as a value. Move-only. While held() the
/// client's heartbeat thread renews the lease at TTL/3 cadence;
/// destruction releases the key (waking its next contender). A lease
/// may outlive its client object without dangling — it just degrades
/// to lost().
class lease {
 public:
  /// An empty lease (held() == false, release() == not_leader).
  lease() = default;
  ~lease();

  lease(lease&& other) noexcept = default;
  lease& operator=(lease&& other) noexcept;
  lease(const lease&) = delete;
  lease& operator=(const lease&) = delete;

  /// Still the leader, as far as this process knows. False after
  /// release(), abandon(), a fenced auto-renew (lost()), or client
  /// shutdown.
  [[nodiscard]] bool held() const;
  explicit operator bool() const { return held(); }

  /// The lease was fenced away: an auto-renew came back stale (the TTL
  /// elapsed despite the heartbeat — stall or transport loss) or the
  /// client shut down. Stop acting as leader.
  [[nodiscard]] bool lost() const;

  [[nodiscard]] const std::string& key() const;
  /// The fencing epoch this lease won (0 for an empty lease). Exposed
  /// for logging/fencing of external side effects; release/renew calls
  /// carry it for you.
  [[nodiscard]] std::uint64_t epoch() const;
  /// Current renewal deadline (time_point::max() for non-expiring
  /// leases; meaningless once !held()).
  [[nodiscard]] std::chrono::steady_clock::time_point deadline() const;

  /// Step down now. Returns the fencing verdict: ok when this call
  /// released the key; stale_epoch when the lease was fenced away
  /// (lost(), or an abandoned lease whose TTL already handed the key
  /// on — the zombie-comes-back path, answered by the registry's epoch
  /// fence); not_leader when there was nothing to release (empty or
  /// already released). Idempotent.
  lease_status release();

  /// Walk away WITHOUT releasing: stop the heartbeat and drop the
  /// claim on the floor, exactly like the holder crashing. The key
  /// stays wedged until the lease TTL fences it (or this client
  /// disconnects politely, which releases everything its identity
  /// holds). This is how tests and chaos drills simulate a dead leader
  /// through the public API.
  void abandon();

 private:
  friend class client;
  lease(std::shared_ptr<detail::core> core,
        std::shared_ptr<detail::lease_state> state);
  lease_status release_impl(bool include_abandoned);

  std::shared_ptr<detail::core> core_;
  std::shared_ptr<detail::lease_state> state_;
};

/// What an acquire call returns: a status and, on `won`, the lease.
struct acquired {
  acquire_status status = acquire_status::rejected;
  /// Engaged iff status == won.
  class lease lease;
  /// The epoch the attempt contended (the lease's epoch when won).
  std::uint64_t epoch = 0;
  /// The epoch was granted by the adaptive CAS fast path.
  bool fast_path = false;

  [[nodiscard]] bool won() const { return status == acquire_status::won; }
  explicit operator bool() const { return won(); }
};

/// RAII watch subscription: destruction (or cancel()) unsubscribes,
/// after which the callback never runs again. Move-only.
class subscription {
 public:
  subscription() = default;
  ~subscription();

  subscription(subscription&& other) noexcept = default;
  subscription& operator=(subscription&& other) noexcept;
  subscription(const subscription&) = delete;
  subscription& operator=(const subscription&) = delete;

  /// Live and delivering?
  [[nodiscard]] bool active() const;
  explicit operator bool() const { return active(); }

  /// Unsubscribe now. Idempotent. Must not be called from inside the
  /// subscription's own callback (destroying the subscription there
  /// deadlocks on the delivery-in-flight wait — cancel from another
  /// thread instead).
  void cancel();

 private:
  friend class client;
  subscription(std::shared_ptr<detail::core> core, std::uint64_t id);

  std::shared_ptr<detail::core> core_;
  std::uint64_t id_ = 0;
};

class client {
 public:
  /// In-process client: one session on `service` (which must outlive
  /// every call — though not necessarily the client object itself:
  /// calls after the service stops are safely rejected).
  explicit client(svc::service& service);

  /// Remote client: a wire-protocol connection to an elect_server.
  client(const std::string& host, std::uint16_t port);

  /// Remote client from an endpoint string (what command lines pass
  /// around). A single "host:port" connects to that server; a
  /// comma-separated "host1:p1,host2:p2,..." list is cluster mode —
  /// the client connects to the first reachable member and follows
  /// `not_primary` redirects transparently, so acquire/renew/release
  /// keep working across a failover. A malformed endpoint yields a
  /// client that is simply not connected().
  explicit client(const std::string& endpoint);

  /// Releases every lease this client still holds (politely, via
  /// disconnect), cancels its subscriptions, stops the heartbeat, and
  /// closes the transport. Outstanding lease/subscription objects
  /// degrade to lost()/inactive rather than dangling.
  ~client();

  client(const client&) = delete;
  client& operator=(const client&) = delete;

  /// Is the transport usable? (Always check after the remote
  /// constructors.)
  [[nodiscard]] bool connected() const;

  /// One-shot election attempt: won or lost, never blocks on a holder.
  [[nodiscard]] acquired try_acquire(const std::string& key);

  /// Blocking acquire: contend, sleep out the current holder, win the
  /// fresh epoch — or rejected on service stop / transport loss.
  [[nodiscard]] acquired acquire(const std::string& key);

  /// Bounded blocking acquire; timed_out when `timeout` elapses first.
  [[nodiscard]] acquired try_acquire_for(const std::string& key,
                                         std::chrono::milliseconds timeout);

  /// Subscribe to `key`'s leader transitions (elected / released /
  /// expired). Guarantees, identical over both transports: every
  /// transition after this call returns is delivered once, in the
  /// order the service observed it — which is wall-clock order per key,
  /// except that an epoch's end (released/expired) and its successor's
  /// `elected` may arrive in either order, since the successor races in
  /// the moment the epoch bumps. There is NO ordering across keys.
  /// Delivery lag is bounded by the lease TTL + sweep interval: a
  /// silently crashed holder is observed as `expired` within that
  /// bound. Returns an inactive subscription on a dead transport.
  [[nodiscard]] subscription watch(
      const std::string& key, std::function<void(const watch_event&)> fn);

  /// Combined metrics report JSON (service + net section when remote);
  /// empty on failure.
  [[nodiscard]] std::string metrics_json();

 private:
  [[nodiscard]] acquired wrap(const std::string& key,
                              const svc::acquire_result& result);

  std::shared_ptr<detail::core> core_;
};

}  // namespace elect::api
