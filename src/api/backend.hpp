// elect::api::backend — the transport seam under api::client.
//
// One abstract surface, two implementations:
//
//   * the local backend wraps a svc::service::session opened on an
//     in-process service (plus the service's watch hub);
//   * the remote backend wraps a net::client TCP connection (watches
//     ride the wire::op::watch subscription + event push frames).
//
// The signatures reuse the service's own result types on purpose —
// acquire_result and lease_status already encode every outcome either
// transport can produce (the net layer maps transport loss onto
// `rejected`/`stale_epoch`, which mean the right thing: stop acting as
// a leader). api::client is written entirely against this interface,
// which is what makes the facade's semantics provably identical over
// both transports (tests/test_api.cpp runs one scenario matrix over
// the two).
//
// All methods are thread-safe; blocking methods block the calling
// thread only. Watch callbacks run on the transport's notifier thread
// (the service watch hub's, or the net client's reader) — keep them
// brief, and never block them on a call into the same backend's
// blocking acquire path.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "svc/service.hpp"
#include "svc/watch.hpp"

namespace elect::api {

class backend {
 public:
  virtual ~backend() = default;

  /// Is the transport usable? False after a connect failure, transport
  /// loss, or the service stopping. Advisory, like svc::service::stopped.
  [[nodiscard]] virtual bool connected() const = 0;

  // Acquire family — semantics per svc::service::session.
  [[nodiscard]] virtual svc::acquire_result try_acquire(
      const std::string& key) = 0;
  [[nodiscard]] virtual svc::acquire_result acquire(
      const std::string& key) = 0;
  [[nodiscard]] virtual svc::acquire_result try_acquire_for(
      const std::string& key, std::chrono::milliseconds timeout) = 0;

  /// Epoch-fenced release.
  virtual svc::lease_status release(const std::string& key,
                                    std::uint64_t epoch) = 0;

  /// Epoch-fenced renewal; on `ok`, `refreshed_deadline` is set to the
  /// new lease deadline on this process's steady clock.
  virtual svc::lease_status renew(
      const std::string& key, std::uint64_t epoch,
      std::chrono::steady_clock::time_point& refreshed_deadline) = 0;

  /// Gracefully drop everything this backend's identity holds. Returns
  /// the number of keys released.
  virtual std::size_t disconnect() = 0;

  /// Subscribe `fn` to `key`'s leader transitions. Returns an opaque
  /// subscription handle, 0 on failure (stopped service / dead
  /// transport).
  [[nodiscard]] virtual std::uint64_t add_watch(
      const std::string& key,
      std::function<void(const svc::watch_event&)> fn) = 0;

  /// Cancel a subscription; after return the callback never runs again.
  virtual void remove_watch(std::uint64_t id) = 0;

  /// The combined service (+ net, when remote) metrics report as JSON;
  /// empty on failure.
  [[nodiscard]] virtual std::string metrics_json() = 0;

  /// Shut the transport down (remote: close the socket; local: no-op —
  /// the service is not ours to stop). Called once at the end of the
  /// owning client's teardown; later calls on the backend must fail
  /// softly, never dangle.
  virtual void close() = 0;
};

/// A backend bound to an in-process service: opens one session (one
/// client identity) on `service`, which must outlive the backend.
[[nodiscard]] std::unique_ptr<backend> make_local_backend(
    svc::service& service);

/// A backend speaking the wire protocol to an elect_server. Check
/// connected() — construction does not abort on a refused connection.
[[nodiscard]] std::unique_ptr<backend> make_remote_backend(
    const std::string& host, std::uint16_t port);

/// A backend over a comma-separated "host1:p1,host2:p2,..." endpoint
/// list: connects to the first reachable member and follows cluster
/// `not_primary` redirects transparently (net::client's multi-endpoint
/// mode). A single "host:port" behaves exactly like the two-argument
/// factory.
[[nodiscard]] std::unique_ptr<backend> make_remote_backend(
    const std::string& endpoints);

}  // namespace elect::api
