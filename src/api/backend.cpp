#include "api/backend.hpp"

#include <optional>
#include <utility>

#include "net/client.hpp"

namespace elect::api {

namespace {

/// In-process transport: one svc session + the service's watch hub.
class local_backend final : public backend {
 public:
  explicit local_backend(svc::service& service)
      : service_(service), session_(service.try_connect()) {}

  [[nodiscard]] bool connected() const override {
    return session_.has_value() && !service_.stopped();
  }

  [[nodiscard]] svc::acquire_result try_acquire(
      const std::string& key) override {
    if (!session_) return rejected();
    return session_->try_acquire(key);
  }

  [[nodiscard]] svc::acquire_result acquire(const std::string& key) override {
    if (!session_) return rejected();
    return session_->acquire(key);
  }

  [[nodiscard]] svc::acquire_result try_acquire_for(
      const std::string& key, std::chrono::milliseconds timeout) override {
    if (!session_) return rejected();
    return session_->try_acquire_for(key, timeout);
  }

  svc::lease_status release(const std::string& key,
                            std::uint64_t epoch) override {
    if (!session_) return svc::lease_status::stale_epoch;
    return session_->release(key, epoch);
  }

  svc::lease_status renew(
      const std::string& key, std::uint64_t epoch,
      std::chrono::steady_clock::time_point& refreshed_deadline) override {
    if (!session_) return svc::lease_status::stale_epoch;
    const svc::lease_status status = session_->renew(key, epoch);
    if (status == svc::lease_status::ok) {
      // The registry re-arms the full TTL on renew; reconstruct the
      // deadline it stamped from the config (0 = never expires).
      const auto ttl = service_.lease_ttl();
      refreshed_deadline = ttl == std::chrono::milliseconds(0)
                               ? std::chrono::steady_clock::time_point::max()
                               : std::chrono::steady_clock::now() + ttl;
    }
    return status;
  }

  std::size_t disconnect() override {
    if (!session_) return 0;
    return session_->disconnect();
  }

  [[nodiscard]] std::uint64_t add_watch(
      const std::string& key,
      std::function<void(const svc::watch_event&)> fn) override {
    return service_.watch(key, std::move(fn));
  }

  void remove_watch(std::uint64_t id) override { service_.unwatch(id); }

  [[nodiscard]] std::string metrics_json() override {
    return service_.report().to_json();
  }

  void close() override {}  // the service is shared, not ours to stop

 private:
  [[nodiscard]] static svc::acquire_result rejected() {
    svc::acquire_result r;
    r.rejected = true;
    return r;
  }

  svc::service& service_;
  /// Empty when the service had already stopped at construction.
  std::optional<svc::service::session> session_;
};

/// TCP transport: everything delegates to net::client, whose
/// transport-failure mapping (rejected / stale_epoch) already matches
/// what the facade needs.
class remote_backend final : public backend {
 public:
  remote_backend(const std::string& host, std::uint16_t port)
      : client_(host, port) {}

  explicit remote_backend(const std::string& endpoints)
      : client_(endpoints) {}

  [[nodiscard]] bool connected() const override { return client_.connected(); }

  [[nodiscard]] svc::acquire_result try_acquire(
      const std::string& key) override {
    return client_.try_acquire(key);
  }

  [[nodiscard]] svc::acquire_result acquire(const std::string& key) override {
    return client_.acquire(key);
  }

  [[nodiscard]] svc::acquire_result try_acquire_for(
      const std::string& key, std::chrono::milliseconds timeout) override {
    return client_.try_acquire_for(key, timeout);
  }

  svc::lease_status release(const std::string& key,
                            std::uint64_t epoch) override {
    return client_.release(key, epoch);
  }

  svc::lease_status renew(
      const std::string& key, std::uint64_t epoch,
      std::chrono::steady_clock::time_point& refreshed_deadline) override {
    return client_.renew(key, epoch, &refreshed_deadline);
  }

  std::size_t disconnect() override { return client_.disconnect(); }

  [[nodiscard]] std::uint64_t add_watch(
      const std::string& key,
      std::function<void(const svc::watch_event&)> fn) override {
    return client_.watch(key, std::move(fn));
  }

  void remove_watch(std::uint64_t id) override { client_.unwatch(id); }

  [[nodiscard]] std::string metrics_json() override {
    return client_.metrics_json();
  }

  void close() override { client_.close(); }

 private:
  net::client client_;
};

}  // namespace

std::unique_ptr<backend> make_local_backend(svc::service& service) {
  return std::make_unique<local_backend>(service);
}

std::unique_ptr<backend> make_remote_backend(const std::string& host,
                                             std::uint16_t port) {
  return std::make_unique<remote_backend>(host, port);
}

std::unique_ptr<backend> make_remote_backend(const std::string& endpoints) {
  return std::make_unique<remote_backend>(endpoints);
}

}  // namespace elect::api
