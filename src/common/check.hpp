// Internal invariant checking.
//
// ELECT_CHECK is active in every build type (unlike <cassert>): a failed
// check in a distributed protocol is a safety violation we always want to
// hear about, including in benchmarks built with NDEBUG.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

namespace elect::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::fprintf(stderr, "ELECT_CHECK failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace elect::detail

#define ELECT_CHECK(expr)                                                  \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::elect::detail::check_failed(#expr, __FILE__, __LINE__, "");        \
    }                                                                      \
  } while (false)

#define ELECT_CHECK_MSG(expr, msg)                                         \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::elect::detail::check_failed(#expr, __FILE__, __LINE__, (msg));     \
    }                                                                      \
  } while (false)
