// Fundamental identifiers and model constants shared by every module.
//
// The model (paper §2): n processors connected by point-to-point channels;
// algorithms tolerate up to t <= ceil(n/2)-1 crash failures; every
// `communicate` call waits for acknowledgements from a *quorum* of
// floor(n/2)+1 processors, so that any two quorums intersect.
#pragma once

#include <cstdint>

namespace elect {

/// Identity of a processor. Processors are numbered 0..n-1.
using process_id = std::int32_t;

/// Sentinel for "no processor".
inline constexpr process_id no_process = -1;

/// Size of a quorum among `n` processors: floor(n/2) + 1.
/// Any two quorums intersect in at least one processor.
[[nodiscard]] constexpr int quorum_size(int n) noexcept { return n / 2 + 1; }

/// Maximum number of crash faults tolerated: t <= ceil(n/2) - 1.
/// With at most this many crashes, at least quorum_size(n) processors
/// stay alive, so every communicate call completes.
[[nodiscard]] constexpr int max_crash_faults(int n) noexcept {
  return (n + 1) / 2 - 1;
}

}  // namespace elect
