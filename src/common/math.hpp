// Small mathematical helpers used by protocols and by the experiment
// harness: iterated logarithm, integer log2, and the coin-flip biases the
// paper prescribes.
#pragma once

#include <cmath>
#include <cstdint>

#include "common/check.hpp"

namespace elect {

/// Iterated logarithm base 2: the number of times log2 must be applied to
/// `x` before the result drops to <= 1. log_star(1) = 0, log_star(2) = 1,
/// log_star(4) = 2, log_star(16) = 3, log_star(65536) = 4.
[[nodiscard]] inline int log_star(double x) noexcept {
  int iterations = 0;
  while (x > 1.0) {
    x = std::log2(x);
    ++iterations;
  }
  return iterations;
}

/// floor(log2(x)) for x >= 1.
[[nodiscard]] constexpr int floor_log2(std::uint64_t x) noexcept {
  int log = 0;
  while (x > 1) {
    x >>= 1;
    ++log;
  }
  return log;
}

/// ceil(log2(x)) for x >= 1.
[[nodiscard]] constexpr int ceil_log2(std::uint64_t x) noexcept {
  int log = floor_log2(x);
  return (std::uint64_t{1} << log) == x ? log : log + 1;
}

/// Smallest power of two >= x (x >= 1).
[[nodiscard]] constexpr std::uint64_t next_pow2(std::uint64_t x) noexcept {
  return std::uint64_t{1} << ceil_log2(x);
}

/// The plain PoisonPill coin bias (Figure 1, line 4): probability of
/// flipping 1 (high priority) with n processors is 1/sqrt(n).
[[nodiscard]] inline double poison_pill_bias(int n) noexcept {
  ELECT_CHECK(n >= 1);
  return 1.0 / std::sqrt(static_cast<double>(n));
}

/// The heterogeneous PoisonPill bias (Figure 2, lines 18-19):
/// probability 1 when |l| == 1, otherwise ln(|l|)/|l|.
/// The natural logarithm is what the analysis of Claim 3.5 uses:
/// (1 - ln u / u)^u = O(1/u).
[[nodiscard]] inline double het_poison_pill_bias(std::size_t list_size) noexcept {
  ELECT_CHECK(list_size >= 1);
  if (list_size == 1) return 1.0;
  const double l = static_cast<double>(list_size);
  return std::log(l) / l;
}

}  // namespace elect
