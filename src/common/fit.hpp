// Scaling-shape fitting.
//
// The paper's claims are asymptotic (O(log* n) time, O(kn) messages,
// O(sqrt n) survivors, ...). The benchmark harness measures a series
// y(n) and asks: which candidate growth law f(n) explains it best?
// We fit y ≈ a*f(n) + b by least squares for each candidate and report
// the coefficient of determination R²; the harness prints the ranking so
// EXPERIMENTS.md can record "measured shape matches the claimed bound".
#pragma once

#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/math.hpp"

namespace elect {

/// A candidate growth law with a printable name.
struct growth_law {
  std::string name;
  std::function<double(double)> f;
};

/// The standard portfolio of candidate laws used across experiments.
[[nodiscard]] inline std::vector<growth_law> standard_growth_laws() {
  return {
      {"const", [](double) { return 1.0; }},
      {"log* n", [](double n) { return static_cast<double>(log_star(n)); }},
      {"log log n",
       [](double n) { return n > 2.0 ? std::log2(std::log2(n)) : 0.0; }},
      {"log n", [](double n) { return std::log2(n); }},
      {"log^2 n",
       [](double n) {
         const double l = std::log2(n);
         return l * l;
       }},
      {"sqrt n", [](double n) { return std::sqrt(n); }},
      {"n", [](double n) { return n; }},
      {"n log n", [](double n) { return n * std::log2(n); }},
      {"n^2", [](double n) { return n * n; }},
  };
}

/// Result of fitting y ≈ a*f(x) + b.
struct fit_result {
  std::string law;
  double a = 0.0;
  double b = 0.0;
  double r_squared = 0.0;
};

/// Least-squares fit of y ≈ a*f(x) + b. Returns R² (1 = perfect).
[[nodiscard]] inline fit_result fit_law(const growth_law& law,
                                        const std::vector<double>& xs,
                                        const std::vector<double>& ys) {
  ELECT_CHECK(xs.size() == ys.size());
  ELECT_CHECK(xs.size() >= 2);
  const auto n = static_cast<double>(xs.size());
  double sf = 0, sy = 0, sff = 0, sfy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double f = law.f(xs[i]);
    sf += f;
    sy += ys[i];
    sff += f * f;
    sfy += f * ys[i];
  }
  const double denom = n * sff - sf * sf;
  fit_result result;
  result.law = law.name;
  if (std::abs(denom) < 1e-12) {
    // Law is (numerically) constant over the sampled range; fit intercept.
    result.a = 0.0;
    result.b = sy / n;
  } else {
    result.a = (n * sfy - sf * sy) / denom;
    result.b = (sy - result.a * sf) / n;
  }
  double ss_res = 0, ss_tot = 0;
  const double ymean = sy / n;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double pred = result.a * law.f(xs[i]) + result.b;
    ss_res += (ys[i] - pred) * (ys[i] - pred);
    ss_tot += (ys[i] - ymean) * (ys[i] - ymean);
  }
  result.r_squared = ss_tot < 1e-12 ? 1.0 : 1.0 - ss_res / ss_tot;
  return result;
}

/// Fit every candidate law and return results sorted by descending R².
[[nodiscard]] inline std::vector<fit_result> rank_growth_laws(
    const std::vector<double>& xs, const std::vector<double>& ys,
    std::vector<growth_law> laws = standard_growth_laws()) {
  std::vector<fit_result> results;
  results.reserve(laws.size());
  for (const auto& law : laws) results.push_back(fit_law(law, xs, ys));
  std::sort(results.begin(), results.end(),
            [](const fit_result& a, const fit_result& b) {
              return a.r_squared > b.r_squared;
            });
  return results;
}

}  // namespace elect
