// Statistical accumulators used by the experiment harness and by
// statistical tests: running moments, sample quantiles, and simple
// confidence summaries.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace elect {

/// Accumulates samples and reports mean / stddev / min / max / quantiles.
/// Stores all samples (experiments here are small enough that exact
/// quantiles are affordable and preferable to sketches).
class sample_stats {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

  [[nodiscard]] double mean() const {
    if (samples_.empty()) return 0.0;
    double sum = 0.0;
    for (double x : samples_) sum += x;
    return sum / static_cast<double>(samples_.size());
  }

  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
  [[nodiscard]] double stddev() const {
    if (samples_.size() < 2) return 0.0;
    const double m = mean();
    double ss = 0.0;
    for (double x : samples_) ss += (x - m) * (x - m);
    return std::sqrt(ss / static_cast<double>(samples_.size() - 1));
  }

  [[nodiscard]] double min() const {
    ELECT_CHECK(!samples_.empty());
    return *std::min_element(samples_.begin(), samples_.end());
  }

  [[nodiscard]] double max() const {
    ELECT_CHECK(!samples_.empty());
    return *std::max_element(samples_.begin(), samples_.end());
  }

  /// Exact sample quantile, q in [0, 1], by nearest-rank.
  [[nodiscard]] double quantile(double q) const {
    ELECT_CHECK(!samples_.empty());
    ELECT_CHECK(q >= 0.0 && q <= 1.0);
    sort_if_needed();
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(samples_.size() - 1) + 0.5);
    return samples_[std::min(rank, samples_.size() - 1)];
  }

  /// Half-width of a ~95% normal-approximation confidence interval for the
  /// mean. Zero when fewer than 2 samples.
  [[nodiscard]] double ci95_halfwidth() const {
    if (samples_.size() < 2) return 0.0;
    return 1.96 * stddev() / std::sqrt(static_cast<double>(samples_.size()));
  }

  [[nodiscard]] const std::vector<double>& samples() const noexcept {
    return samples_;
  }

 private:
  void sort_if_needed() const {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

}  // namespace elect
