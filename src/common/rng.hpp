// Deterministic, splittable random number generation.
//
// All randomness in the library flows through `rng_stream`, a xoshiro256**
// generator whose state is derived from a root seed plus an arbitrary list
// of integer labels (e.g. {node_id, protocol_instance}). Deriving streams
// by label — instead of sharing one generator — makes every simulated
// execution a pure function of (seed, adversary), which is what lets tests
// replay executions bit-for-bit.
//
// xoshiro256** is Blackman & Vigna's public-domain generator; we implement
// it from scratch here (no external dependency) together with splitmix64,
// the recommended seeding mixer.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <limits>

#include "common/check.hpp"

namespace elect {

/// splitmix64 step: advances `state` and returns the next mixed value.
/// Used for seeding and for hashing label sequences into stream seeds.
[[nodiscard]] constexpr std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// A deterministic xoshiro256** stream.
///
/// Satisfies std::uniform_random_bit_generator, so it can be plugged into
/// <random> distributions, though the convenience members below are
/// preferred (they are reproducible across standard library versions,
/// which std:: distributions are not).
class rng_stream {
 public:
  using result_type = std::uint64_t;

  /// Stream seeded from a single root value.
  explicit rng_stream(std::uint64_t seed) noexcept { reseed(seed); }

  /// Stream seeded from a root value and a sequence of labels.
  /// Distinct label sequences yield statistically independent streams.
  rng_stream(std::uint64_t seed, std::initializer_list<std::uint64_t> labels) noexcept {
    std::uint64_t s = seed;
    std::uint64_t acc = splitmix64_next(s);
    for (std::uint64_t label : labels) {
      s ^= label + 0x9e3779b97f4a7c15ULL + (acc << 6) + (acc >> 2);
      acc = splitmix64_next(s);
    }
    reseed(acc);
  }

  /// Derive a child stream labelled by `label`, without disturbing this
  /// stream's state.
  [[nodiscard]] rng_stream derive(std::uint64_t label) const noexcept {
    std::uint64_t s = state_[0] ^ (state_[2] + label);
    return rng_stream(splitmix64_next(s));
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit value.
  result_type operator()() noexcept { return next_u64(); }

  result_type next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1). 53 bits of entropy.
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial: true with probability `p` (clamped to [0,1]).
  bool bernoulli(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return next_double() < p;
  }

  /// Uniform integer in [0, bound). Requires bound > 0.
  /// Uses Lemire-style rejection to avoid modulo bias.
  std::uint64_t below(std::uint64_t bound) noexcept {
    ELECT_CHECK(bound > 0);
    // Rejection sampling on the top bits.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept {
    ELECT_CHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

 private:
  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t s = seed;
    for (auto& word : state_) word = splitmix64_next(s);
  }

  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x,
                                                    int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace elect
