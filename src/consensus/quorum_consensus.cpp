#include "consensus/quorum_consensus.hpp"

#include <algorithm>
#include <vector>

#include "engine/views.hpp"

namespace elect::consensus {

using engine::owned_array;

namespace {

engine::var_id stage_var(std::uint32_t space, std::uint32_t round,
                         std::uint32_t stage) {
  // Stage A and B of each consensus round use disjoint variables.
  return {engine::var_family::duel_stage, space, (round << 1) | stage};
}

/// Distinct non-bottom int64 cell values across all views, ascending.
std::vector<std::int64_t> distinct_values(
    const std::vector<engine::view_entry>& views) {
  std::vector<std::int64_t> values;
  engine::for_each_view<owned_array<std::int64_t>>(
      views, [&](const owned_array<std::int64_t>& array) {
        for (process_id j = 0; j < array.size(); ++j) {
          if (const std::int64_t* v = array.get(j)) values.push_back(*v);
        }
      });
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

constexpr std::int64_t encode_record(std::int64_t candidate, bool strong) {
  return candidate * 2 + (strong ? 1 : 0);
}
constexpr std::int64_t record_candidate(std::int64_t record) {
  return record / 2;
}
constexpr bool record_strong(std::int64_t record) { return (record & 1) != 0; }

}  // namespace

engine::task<std::int64_t> decide(engine::node& self, std::uint32_t space,
                                  std::int64_t proposal) {
  ELECT_CHECK_MSG(proposal >= 0, "consensus proposals must be non-negative");
  std::int64_t value = proposal;

  for (std::uint32_t round = 1;; ++round) {
    ELECT_CHECK_MSG(round < (1u << 30), "consensus round overflow");

    // --- Stage A: propose, then look at the round's proposal set. ------
    const engine::var_id a = stage_var(space, round, 0);
    {
      auto delta = self.stage_own_cell<std::int64_t>(a, value);
      co_await self.propagate(a, delta);
    }
    const std::vector<std::int64_t> proposals =
        distinct_values(co_await self.collect(a));
    ELECT_CHECK(!proposals.empty());  // we always see our own proposal
    const bool strong = proposals.size() == 1;
    const std::int64_t candidate = proposals.front();  // min = deterministic

    // --- Stage B: adopt-commit. ----------------------------------------
    const engine::var_id b = stage_var(space, round, 1);
    {
      auto delta = self.stage_own_cell<std::int64_t>(
          b, encode_record(candidate, strong));
      co_await self.propagate(b, delta);
    }
    const std::vector<std::int64_t> records =
        distinct_values(co_await self.collect(b));
    ELECT_CHECK(!records.empty());

    bool all_committed_same = true;
    std::int64_t committed = -1;
    for (const std::int64_t record : records) {
      if (record_strong(record)) {
        committed = record_candidate(record);
      } else {
        all_committed_same = false;
      }
    }
    if (all_committed_same) {
      // Every record is strong; two strong candidates cannot differ.
      for (const std::int64_t record : records) {
        ELECT_CHECK_MSG(record_candidate(record) ==
                            record_candidate(records.front()),
                        "two distinct strong candidates in one round");
      }
      co_return record_candidate(records.front());
    }
    if (committed >= 0) {
      // Someone committed: adopt their candidate.
      value = committed;
      continue;
    }
    // No commit anywhere: choose the next value by a local fair coin
    // among the candidates observed this round.
    std::vector<std::int64_t> candidates;
    candidates.reserve(records.size());
    for (const std::int64_t record : records) {
      candidates.push_back(record_candidate(record));
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    const std::uint64_t pick = self.rng().below(candidates.size());
    value = candidates[pick];
    self.probe().coin = static_cast<std::int64_t>(pick);
  }
}

}  // namespace elect::consensus
