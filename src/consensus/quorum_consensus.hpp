// Randomized wait-free consensus over quorums (adopt-commit + local coin).
//
// The tournament baseline [AGTV92] decides each match by two-processor
// randomized consensus. We implement the classic round-based structure
// directly on the communicate primitive:
//
//   round r, stage A (proposal): write your value; collect the round's
//     proposals. Seeing exactly one distinct value makes your candidate
//     *strong* (two distinct strong candidates are impossible: whichever
//     A-write completes last is seen by the other's collect — quorum
//     intersection);
//   round r, stage B (adopt-commit): write (candidate, strong); collect.
//     If every observed record is (c, strong) — decide c. Else if any is
//     (c, strong) — adopt c. Else pick your next value by a local fair
//     coin among the candidates you observed.
//
// Safety is deterministic (adopt-commit); only termination is
// probabilistic. Against a strong adaptive adversary the per-round
// agreement probability is at least a constant, so the expected number of
// rounds is O(1) — which is what keeps each tournament match O(1)
// communicate calls.
//
// Also of standalone interest: consensus trivially solves leader election
// ("return the winner's identifier"), but is strictly harder (§1 Related
// Work) — randomized consensus has Ω(n) time complexity [AC08], which is
// why the paper's test-and-set result does not follow from it.
#pragma once

#include <cstdint>

#include "engine/node.hpp"
#include "engine/task.hpp"

namespace elect::consensus {

/// Decide a common value among the proposals concurrently submitted to
/// `space`. Any number of proposers; wait-free; safety deterministic.
/// Proposals must be non-negative (the sign bit is used internally).
[[nodiscard]] engine::task<std::int64_t> decide(engine::node& self,
                                                std::uint32_t space,
                                                std::int64_t proposal);

}  // namespace elect::consensus
