#include "cmd/command.hpp"

namespace elect::cmd {

std::string_view to_string(command_kind k) {
  switch (k) {
    case command_kind::acquire_granted: return "acquire_granted";
    case command_kind::released: return "released";
    case command_kind::renewed: return "renewed";
    case command_kind::expired: return "expired";
    case command_kind::force_released: return "force_released";
    case command_kind::disconnect_reclaimed: return "disconnect_reclaimed";
    case command_kind::epoch_bumped: return "epoch_bumped";
  }
  return "unknown";
}

std::string to_json(const command& c) {
  std::string out;
  out.reserve(128 + c.key.size());
  out += "{\"seq\":";
  out += std::to_string(c.seq);
  out += ",\"shard\":";
  out += std::to_string(c.shard);
  out += ",\"kind\":\"";
  out += to_string(c.kind);
  out += "\",\"key\":\"";
  // Keys are caller-chosen; escape the two characters that would break
  // the JSON string (the registry imposes no charset on keys).
  for (const char ch : c.key) {
    if (ch == '"' || ch == '\\') out += '\\';
    out += ch;
  }
  out += "\",\"session\":";
  out += std::to_string(c.session);
  out += ",\"epoch\":";
  out += std::to_string(c.epoch);
  out += ",\"mode\":";
  out += std::to_string(static_cast<int>(c.mode));
  out += ",\"at_ms\":";
  out += std::to_string(c.at_ms);
  if (c.lease_ms == lease_forever) {
    out += ",\"lease_ms\":null}";
  } else {
    out += ",\"lease_ms\":";
    out += std::to_string(c.lease_ms);
    out += "}";
  }
  return out;
}

}  // namespace elect::cmd
