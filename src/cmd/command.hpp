// Command layer: every registry state mutation as a replayable record.
//
// The sharded registry (svc/registry.*) has five mutation call paths —
// client acquire/release/renew, the TTL sweeper, net-disconnect
// reclaim, admin force-release, and the adaptive CAS fast path. Each of
// them *decides* (who wins, what expires, who is fenced) and then emits
// one `command` describing the decision; a single deterministic
// executor applies it. That split is what makes the state machine
// replayable: fold the per-shard command stream into a fresh registry
// and you reconstruct the same epochs, holders, and grant modes — the
// prerequisite for replication and for deterministic re-checking of
// the epoch-fencing discipline (a replica that replays the stream can
// bump epochs on failover and zombies still get `stale_epoch`).
//
// Commands are ordered per shard, not globally: keys never migrate
// between shards, so cross-shard interleaving is unobservable and each
// shard's strictly-increasing `seq` is a complete order for the keys it
// owns.
//
// Time in a command is *logical*: `at_ms` is milliseconds since the
// emitting registry's construction (steady-clock based, so wall-clock
// jumps cannot reorder or stretch the stream), and a lease is recorded
// as the TTL granted at `at_ms`, not as an absolute deadline. Replay on
// another machine — or after a restart — reconstructs deadlines as
// `at_ms + lease_ms` in the replaying registry's own timeline.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace elect::cmd {

/// Lease TTL sentinel: the grant never expires (registry TTL zero).
inline constexpr std::uint64_t lease_forever = ~0ull;

/// What happened. Every kind except `acquire_granted` / `renewed` ends
/// the key's current epoch (the executor bumps it); the distinctions
/// exist so downstream renderings — journal, watch, metrics — can tell
/// an operator kick from a TTL expiry from a dead connection.
enum class command_kind : std::uint8_t {
  /// An epoch was granted — by the adaptive CAS fast path or a protocol
  /// win; `mode` records which. `session` is the new leader, `epoch`
  /// the granted epoch, `lease_ms` the TTL handed out.
  acquire_granted = 0,
  /// The holder gave the key up voluntarily (fenced, unfenced, or
  /// release_all). `epoch` is the epoch that ended.
  released = 1,
  /// The holder extended its lease: new deadline `at_ms + lease_ms`.
  /// The only non-epoch-moving mutation.
  renewed = 2,
  /// The sweeper force-released an expired lease.
  expired = 3,
  /// An operator ended the epoch via admin force-release.
  force_released = 4,
  /// The network edge reclaimed the lease of a dead connection.
  disconnect_reclaimed = 5,
  /// The epoch was bumped with no holder involved — restore-time
  /// fencing (`session` is -1). Pre-restart leaseholders of `epoch`
  /// answer `stale_epoch` from then on.
  epoch_bumped = 6,
};

[[nodiscard]] std::string_view to_string(command_kind k);

/// How an `acquire_granted` epoch was granted (mirrors the registry's
/// private grant_mode): 1 = fast_claimed, 2 = protocol_armed. Zero on
/// every other kind.
inline constexpr std::uint8_t grant_mode_open = 0;
inline constexpr std::uint8_t grant_mode_fast_claimed = 1;
inline constexpr std::uint8_t grant_mode_protocol = 2;

struct command {
  /// Per-shard strictly-increasing sequence number, assigned when the
  /// emitting registry appends to its log (0 = never logged).
  std::uint64_t seq = 0;
  /// Owning shard (hash(key) % shard_count in the emitting registry).
  std::int32_t shard = -1;
  command_kind kind = command_kind::acquire_granted;
  std::string key;
  /// Session the command is about: new leader (acquire_granted), the
  /// holder (released/renewed/expired/force_released/
  /// disconnect_reclaimed), or -1 (epoch_bumped).
  int session = -1;
  /// The epoch granted (acquire_granted/renewed) or ended (the rest).
  std::uint64_t epoch = 0;
  /// Grant mode for acquire_granted (grant_mode_* above); 0 otherwise.
  std::uint8_t mode = grant_mode_open;
  /// Logical timestamp: ms since the emitting registry's construction.
  std::uint64_t at_ms = 0;
  /// TTL granted at `at_ms` (acquire_granted/renewed); lease_forever
  /// when the lease never expires, and on every non-lease kind.
  std::uint64_t lease_ms = lease_forever;
};

/// One line of debug/admin rendering (not the replay format — replay
/// consumes the struct directly).
[[nodiscard]] std::string to_json(const command& c);

/// Command-log accounting, surfaced through the wire admin_snapshot op.
struct log_stats {
  /// Is the registry appending commands at all?
  bool recording = false;
  /// Commands ever assigned a seq (lifetime, includes trimmed).
  std::uint64_t recorded = 0;
  /// Commands currently retained in memory (recorded minus trimmed).
  std::uint64_t retained = 0;
};

}  // namespace elect::cmd
