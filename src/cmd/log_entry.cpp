#include "cmd/log_entry.hpp"

namespace elect::cmd {

namespace {

/// Highest valid command_kind raw value (the enum is dense from 0).
constexpr std::uint8_t kind_max =
    static_cast<std::uint8_t>(command_kind::epoch_bumped);

/// A batch count beyond this is a malformed frame, not a real log
/// slice: even the largest append fits the 1 MiB wire frame with room
/// to spare, and a hostile length prefix must not drive an allocation.
constexpr std::uint32_t max_batch_entries = 1u << 16;

}  // namespace

void encode_command(byte_writer& out, const command& c) {
  out.u64(c.seq);
  out.i32(c.shard);
  out.u8(static_cast<std::uint8_t>(c.kind));
  out.str(c.key);
  out.i32(c.session);
  out.u64(c.epoch);
  out.u8(c.mode);
  out.u64(c.at_ms);
  out.u64(c.lease_ms);
}

bool decode_command(byte_reader& in, command& out,
                    std::uint32_t max_key_bytes) {
  std::uint8_t kind = 0;
  std::uint8_t mode = 0;
  if (!in.u64(out.seq) || !in.i32(out.shard) || !in.u8(kind) ||
      !in.str(out.key, max_key_bytes) || !in.i32(out.session) ||
      !in.u64(out.epoch) || !in.u8(mode) || !in.u64(out.at_ms) ||
      !in.u64(out.lease_ms)) {
    return false;
  }
  if (kind > kind_max || mode > grant_mode_protocol) return false;
  out.kind = static_cast<command_kind>(kind);
  out.mode = mode;
  return true;
}

std::string encode_entries(const std::vector<log_entry>& batch) {
  byte_writer out;
  out.u32(static_cast<std::uint32_t>(batch.size()));
  for (const log_entry& e : batch) {
    out.u64(e.term);
    encode_command(out, e.change);
  }
  return out.take();
}

std::optional<std::vector<log_entry>> decode_entries(
    std::string_view body, std::uint32_t max_key_bytes) {
  byte_reader in(body);
  std::uint32_t count = 0;
  if (!in.u32(count) || count > max_batch_entries) return std::nullopt;
  std::vector<log_entry> batch;
  batch.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    log_entry e;
    if (!in.u64(e.term) || !decode_command(in, e.change, max_key_bytes)) {
      return std::nullopt;
    }
    batch.push_back(std::move(e));
  }
  if (!in.exhausted()) return std::nullopt;
  return batch;
}

}  // namespace elect::cmd
