// Versioned binary snapshot of a registry's replayable state: per shard
// a log watermark (last applied seq + its logical timestamp) and, for
// every key that differs from the implicit default, the epoch, holder,
// grant mode, and remaining lease.
//
// The format is designed so that two registries that processed the same
// command stream encode byte-identical snapshots — the golden check for
// replay determinism. That forces three normalizations on the encoder
// (the registry performs them when it builds `snapshot_data`):
//
//   * keys sorted per shard (hash-map iteration order is not part of
//     the state);
//   * nothing that commands don't carry — no instance ids (allocation
//     order across shards is scheduling-dependent) and no attempt
//     counters (attempts are observations, not mutations);
//   * keys still at the implicit default (epoch 0, unheld) are skipped,
//     and an unheld key's grant mode is recorded as open — per the
//     implicit-epoch-0 rule those states are indistinguishable from the
//     outside, and replay may lack the non-mutating touches (peeks,
//     arms that never granted) that created them.
//
// Leases are stored wall-clock-independently: the remaining TTL
// relative to the shard's watermark timestamp, as a signed delta (a
// lease can be past due but not yet swept). Restore re-anchors the
// remainder to the restoring registry's own clock, so a lease with 3 s
// left expires ~3 s after the restore — not instantly, not never.
//
// Layout (all integers little-endian):
//
//   u32 magic "ELSN"   u16 version   u32 shard_count
//   per shard:
//     u64 last_seq   u64 last_at_ms   u32 key_count
//     per key (sorted ascending):
//       u32 key_len  bytes key
//       u64 epoch    u32 leader (two's complement, -1 = unheld)
//       u8  mode     u64 lease_rel_ms (two's complement; i64 max =
//                                      no deadline)
//
// Decoding is bounds-checked end to end and returns an error string —
// never UB — on truncation, bad magic, or an unknown version.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace elect::cmd {

inline constexpr std::uint32_t snapshot_magic = 0x454C534Eu;  // "ELSN"
inline constexpr std::uint16_t snapshot_version = 1;

/// Sentinel for `lease_rel_ms`: the lease never expires (or the key is
/// unheld).
inline constexpr std::int64_t lease_rel_none = INT64_MAX;

struct snapshot_key {
  std::string key;
  std::uint64_t epoch = 0;
  std::int32_t leader = -1;
  /// grant_mode_* from command.hpp; grant_mode_open whenever unheld.
  std::uint8_t mode = 0;
  /// Lease deadline minus the shard watermark's `last_at_ms` (signed:
  /// an expired-but-unswept lease is negative); lease_rel_none when
  /// there is no deadline.
  std::int64_t lease_rel_ms = lease_rel_none;
};

struct snapshot_shard {
  /// Watermark: seq of the last command applied in this shard (0 =
  /// none) and its logical timestamp. Replay of a post-snapshot log
  /// continues at last_seq + 1.
  std::uint64_t last_seq = 0;
  std::uint64_t last_at_ms = 0;
  /// Sorted ascending by key.
  std::vector<snapshot_key> keys;
};

struct snapshot_data {
  std::vector<snapshot_shard> shards;
};

[[nodiscard]] std::vector<std::uint8_t> encode_snapshot(
    const snapshot_data& data);

/// Empty `data` and a non-empty `error` on any malformed input.
struct snapshot_decode_result {
  std::optional<snapshot_data> data;
  std::string error;
};

[[nodiscard]] snapshot_decode_result decode_snapshot(
    const std::vector<std::uint8_t>& bytes);

}  // namespace elect::cmd
