// Term-stamped replicated-log entries and their binary codec.
//
// The replication layer (src/repl/) sequences registry commands into a
// log it ships between cluster nodes over the v4 peer ops. Each entry
// pairs one cmd::command with the primary *term* that appended it —
// the term is what lets a follower detect a deposed primary's
// uncommitted tail and truncate it (same index, different term =>
// conflicting history).
//
// Entries travel in the opaque `body` string of a wire request, so the
// codec here is the wire-grade kind: little-endian, bounds-checked end
// to end, and rejecting trailing bytes. The byte_writer / byte_reader
// pair is exported because the repl envelopes (vote, append, snapshot
// headers) are built from the same primitives.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cmd/command.hpp"

namespace elect::cmd {

/// One replicated-log entry: a registry command plus the primary term
/// under which it was appended. A `change.shard` of -1 marks a
/// barrier no-op — the entry a fresh primary appends at promotion to
/// assert its term in the log; it carries no registry mutation and is
/// skipped at apply time.
struct log_entry {
  std::uint64_t term = 0;
  command change;
};

/// Append-only little-endian byte builder over a std::string (the wire
/// `body` type).
class byte_writer {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_.push_back(static_cast<char>(v >> (8 * i)));
    }
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<char>(v >> (8 * i)));
    }
  }
  /// Two's-complement i32 (sessions, shards: -1 is meaningful).
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.append(s.data(), s.size());
  }

  [[nodiscard]] std::string take() { return std::move(out_); }
  [[nodiscard]] std::size_t size() const noexcept { return out_.size(); }

 private:
  std::string out_;
};

/// Bounds-checked little-endian reads over one body string. Mirrors
/// net::wire's internal cursor; a failed read latches the failure so
/// callers can chain reads and check once.
class byte_reader {
 public:
  explicit byte_reader(std::string_view in) : in_(in) {}

  [[nodiscard]] bool u8(std::uint8_t& out) {
    if (at_ + 1 > in_.size()) return fail();
    out = static_cast<std::uint8_t>(in_[at_++]);
    return true;
  }

  [[nodiscard]] bool u32(std::uint32_t& out) {
    if (at_ + 4 > in_.size()) return fail();
    out = 0;
    for (int i = 0; i < 4; ++i) {
      out |= static_cast<std::uint32_t>(
                 static_cast<std::uint8_t>(in_[at_++]))
             << (8 * i);
    }
    return true;
  }

  [[nodiscard]] bool u64(std::uint64_t& out) {
    if (at_ + 8 > in_.size()) return fail();
    out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= static_cast<std::uint64_t>(
                 static_cast<std::uint8_t>(in_[at_++]))
             << (8 * i);
    }
    return true;
  }

  [[nodiscard]] bool i32(std::int32_t& out) {
    std::uint32_t raw = 0;
    if (!u32(raw)) return false;
    out = static_cast<std::int32_t>(raw);
    return true;
  }

  [[nodiscard]] bool str(std::string& out, std::uint32_t max_bytes) {
    std::uint32_t length = 0;
    if (!u32(length)) return false;
    if (length > max_bytes || at_ + length > in_.size()) return fail();
    out.assign(in_.data() + at_, length);
    at_ += length;
    return true;
  }

  /// Everything consumed, nothing trailing.
  [[nodiscard]] bool exhausted() const { return ok_ && at_ == in_.size(); }

 private:
  bool fail() {
    ok_ = false;
    return false;
  }

  std::string_view in_;
  std::size_t at_ = 0;
  bool ok_ = true;
};

/// Append one command's wire form to `out`. Every replayable field is
/// carried (seq included — replicas must apply the recorder's seqs).
void encode_command(byte_writer& out, const command& c);

/// Decode one command; false (reader latched failed or fields out of
/// range) on malformed input.
[[nodiscard]] bool decode_command(byte_reader& in, command& out,
                                  std::uint32_t max_key_bytes);

/// Encode a batch of term-stamped entries: u32 count, then each entry
/// as u64 term + command.
[[nodiscard]] std::string encode_entries(const std::vector<log_entry>& batch);

/// Decode a batch; empty on any malformed byte (including trailing
/// garbage — peers must agree on the dialect exactly).
[[nodiscard]] std::optional<std::vector<log_entry>> decode_entries(
    std::string_view body, std::uint32_t max_key_bytes);

}  // namespace elect::cmd
