#include "cmd/snapshot.hpp"

#include <cstring>

namespace elect::cmd {

namespace {

// Little-endian primitives, same discipline as net/wire.cpp: writes
// append, reads go through a bounds-checked cursor that latches failure.

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

struct cursor {
  const std::uint8_t* at;
  std::size_t left;
  bool ok = true;

  std::uint8_t u8() {
    if (left < 1) return fail();
    const std::uint8_t v = at[0];
    at += 1;
    left -= 1;
    return v;
  }

  std::uint16_t u16() {
    if (left < 2) return fail();
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i) v |= static_cast<std::uint16_t>(at[i]) << (8 * i);
    at += 2;
    left -= 2;
    return v;
  }

  std::uint32_t u32() {
    if (left < 4) return fail();
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(at[i]) << (8 * i);
    at += 4;
    left -= 4;
    return v;
  }

  std::uint64_t u64() {
    if (left < 8) return fail();
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(at[i]) << (8 * i);
    at += 8;
    left -= 8;
    return v;
  }

  std::string str() {
    const std::uint32_t n = u32();
    if (!ok || left < n) {
      (void)fail();
      return {};
    }
    std::string s(reinterpret_cast<const char*>(at), n);
    at += n;
    left -= n;
    return s;
  }

  std::uint8_t fail() {
    ok = false;
    left = 0;
    return 0;
  }
};

}  // namespace

std::vector<std::uint8_t> encode_snapshot(const snapshot_data& data) {
  std::vector<std::uint8_t> out;
  out.reserve(16 + data.shards.size() * 24);
  put_u32(out, snapshot_magic);
  put_u16(out, snapshot_version);
  put_u32(out, static_cast<std::uint32_t>(data.shards.size()));
  for (const snapshot_shard& s : data.shards) {
    put_u64(out, s.last_seq);
    put_u64(out, s.last_at_ms);
    put_u32(out, static_cast<std::uint32_t>(s.keys.size()));
    for (const snapshot_key& k : s.keys) {
      put_string(out, k.key);
      put_u64(out, k.epoch);
      put_u32(out, static_cast<std::uint32_t>(k.leader));
      put_u8(out, k.mode);
      put_u64(out, static_cast<std::uint64_t>(k.lease_rel_ms));
    }
  }
  return out;
}

snapshot_decode_result decode_snapshot(const std::vector<std::uint8_t>& bytes) {
  snapshot_decode_result result;
  cursor c{bytes.data(), bytes.size()};
  const std::uint32_t magic = c.u32();
  if (!c.ok) {
    result.error = "truncated snapshot: shorter than the header";
    return result;
  }
  if (magic != snapshot_magic) {
    result.error = "bad snapshot magic (not an elect snapshot file)";
    return result;
  }
  const std::uint16_t version = c.u16();
  if (!c.ok) {
    result.error = "truncated snapshot: shorter than the header";
    return result;
  }
  if (version != snapshot_version) {
    result.error = "unsupported snapshot version " + std::to_string(version);
    return result;
  }
  const std::uint32_t shard_count = c.u32();
  // A shard header alone is 24 bytes; reject counts the remaining bytes
  // cannot possibly satisfy before reserving anything.
  if (!c.ok || shard_count > c.left / 24 + 1) {
    result.error = "truncated snapshot: implausible shard count";
    return result;
  }
  snapshot_data data;
  data.shards.resize(shard_count);
  for (snapshot_shard& s : data.shards) {
    s.last_seq = c.u64();
    s.last_at_ms = c.u64();
    const std::uint32_t key_count = c.u32();
    // Each key record is at least 25 bytes (4 len + 8 epoch + 4 leader
    // + 1 mode + 8 lease), so a count beyond left/25 is a lie.
    if (!c.ok || key_count > c.left / 25 + 1) {
      result.error = "truncated snapshot: implausible key count";
      return result;
    }
    s.keys.resize(key_count);
    for (snapshot_key& k : s.keys) {
      k.key = c.str();
      k.epoch = c.u64();
      k.leader = static_cast<std::int32_t>(c.u32());
      k.mode = c.u8();
      k.lease_rel_ms = static_cast<std::int64_t>(c.u64());
      if (!c.ok) {
        result.error = "truncated snapshot: key record cut short";
        return result;
      }
      if (k.mode > 2) {
        result.error = "corrupt snapshot: unknown grant mode";
        return result;
      }
    }
  }
  if (c.left != 0) {
    result.error = "corrupt snapshot: trailing bytes after the last shard";
    return result;
  }
  result.data = std::move(data);
  return result;
}

}  // namespace elect::cmd
