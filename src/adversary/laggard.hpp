// Laggard ("bubble") adversary.
//
// Keeps a chosen subset of participants from invoking their protocols
// until every other participant has finished, then releases them. This is
// the schedule behind:
//   * linearizability tests — a late arrival must observe the closed door
//     and lose (Figure 5);
//   * the adaptivity experiment (E5) — with k active participants the
//     remaining n-k processors act only as servers;
//   * the lower-bound intuition (§5) — processors kept in a "bubble"
//     cannot decide without communicating.
#pragma once

#include <memory>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/kernel.hpp"

namespace elect::adversary {

class laggard final : public sim::adversary {
 public:
  laggard(std::unique_ptr<sim::adversary> base,
          std::vector<process_id> laggards)
      : base_(std::move(base)),
        laggards_(std::move(laggards)) {
    ELECT_CHECK(base_ != nullptr);
  }

  [[nodiscard]] std::string name() const override {
    return "laggard(" + base_->name() + ")";
  }

  [[nodiscard]] sim::action pick(sim::kernel& k) override {
    if (!initialized_) {
      for (const process_id pid : laggards_) k.hold_protocol(pid, true);
      initialized_ = true;
    }
    if (!released_ && front_runners_done(k)) {
      for (const process_id pid : laggards_) k.hold_protocol(pid, false);
      released_ = true;
    }
    return base_->pick(k);
  }

  [[nodiscard]] bool on_stalled(sim::kernel& k) override {
    if (!released_ && front_runners_done(k)) {
      for (const process_id pid : laggards_) k.hold_protocol(pid, false);
      released_ = true;
      if (k.anything_enabled()) return true;
    }
    return base_->on_stalled(k);
  }

  [[nodiscard]] bool released() const noexcept { return released_; }

 private:
  [[nodiscard]] bool front_runners_done(const sim::kernel& k) const {
    const std::unordered_set<process_id> lag(laggards_.begin(),
                                             laggards_.end());
    for (const process_id pid : k.participants()) {
      if (lag.contains(pid) || k.crashed(pid)) continue;
      if (!k.node_at(pid).protocol_done()) return false;
    }
    return true;
  }

  std::unique_ptr<sim::adversary> base_;
  std::vector<process_id> laggards_;
  bool initialized_ = false;
  bool released_ = false;
};

}  // namespace elect::adversary
