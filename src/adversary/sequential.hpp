// The sequential adversary (paper §3.2).
//
// "Let the adversary schedule processors to execute PoisonPill
// sequentially": participants are invoked one at a time, each running its
// entire protocol to completion — with the rest of the system serving its
// quorum operations — before the next participant is even invoked.
//
// Against plain PoisonPill this is the worst case that makes the O(√n)
// survivor bound tight: the prefix of participants that flip 0 before the
// first 1 all survive, and so do all participants that flip 1.
// Against the heterogeneous variant (Claim 3.5) it is exactly the
// schedule the closure-property argument defuses.
#pragma once

#include <string>
#include <vector>

#include "sim/kernel.hpp"

namespace elect::adversary {

class sequential final : public sim::adversary {
 public:
  sequential() = default;

  /// Invoke participants in the given order (default: attach order).
  explicit sequential(std::vector<process_id> order)
      : explicit_order_(std::move(order)) {}

  [[nodiscard]] std::string name() const override { return "sequential"; }

  [[nodiscard]] sim::action pick(sim::kernel& k) override {
    if (!initialized_) initialize(k);
    advance_cursor(k);

    if (cursor_ < order_.size()) {
      const process_id current = order_[cursor_];
      // 1. Let the current participant compute.
      if (!k.crashed(current) && k.node_at(current).can_step()) {
        return sim::action::step(current);
      }
      // 2. Flush its outbound requests so the system can serve them.
      if (!k.in_flight_from(current).empty()) {
        return sim::action::deliver(k.in_flight_from(current).ids().front());
      }
      // 3. Deliver replies addressed to it.
      if (!k.in_flight_to(current).empty()) {
        return sim::action::deliver(k.in_flight_to(current).ids().front());
      }
      // 4. Let some other processor serve pending requests (their own
      //    protocols are held, so these steps only serve).
      for (const process_id pid : k.steppable()) {
        if (pid != current && k.node_at(pid).mailbox_size() > 0) {
          return sim::action::step(pid);
        }
      }
    }
    // Fallback: stay fair.
    if (!k.in_flight().empty()) {
      return sim::action::deliver(k.in_flight().ids().front());
    }
    ELECT_CHECK(!k.steppable().empty());
    return sim::action::step(k.steppable().front());
  }

  [[nodiscard]] bool on_stalled(sim::kernel& k) override {
    // Quiescence between participants: the current one has finished and
    // the next is still held. Advance the cursor (which releases it).
    if (!initialized_) initialize(k);
    advance_cursor(k);
    return k.anything_enabled();
  }

 private:
  void initialize(sim::kernel& k) {
    order_ = explicit_order_.empty() ? k.participants() : explicit_order_;
    // Hold everyone, then release only the head of the order.
    for (const process_id pid : order_) k.hold_protocol(pid, true);
    if (!order_.empty()) k.hold_protocol(order_.front(), false);
    initialized_ = true;
  }

  void advance_cursor(sim::kernel& k) {
    while (cursor_ < order_.size()) {
      const process_id pid = order_[cursor_];
      if (!k.crashed(pid) && !k.node_at(pid).protocol_done()) return;
      ++cursor_;
      if (cursor_ < order_.size()) k.hold_protocol(order_[cursor_], false);
    }
  }

  std::vector<process_id> explicit_order_;
  std::vector<process_id> order_;
  std::size_t cursor_ = 0;
  bool initialized_ = false;
};

}  // namespace elect::adversary
