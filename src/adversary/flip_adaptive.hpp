// The flip-inspecting adaptive adversary (paper §1, "Techniques").
//
// This is the strategy that breaks naive sifting: the adversary examines
// each processor's coin flip the moment it happens (the debug probe
// publishes it, as the strong-adversary model allows) and then freezes
// every processor that flipped 1 — neither stepping it nor delivering any
// message it sent after the flip — while processors that flipped 0 run to
// completion. Under a naive sifter the 0-flippers then observe no 1 and
// all survive.
//
// Against PoisonPill the same strategy is defanged by the commit ("poison
// pill") stage: a processor's Commit status must reach a quorum *before*
// it flips, so by the time the adversary learns the flip, the evidence
// that kills low-priority observers is already replicated. The survivor
// benchmarks (E3) measure exactly this contrast.
#pragma once

#include <string>
#include <unordered_set>

#include "sim/kernel.hpp"

namespace elect::adversary {

class flip_adaptive final : public sim::adversary {
 public:
  [[nodiscard]] std::string name() const override { return "flip-adaptive"; }

  [[nodiscard]] sim::action pick(sim::kernel& k) override {
    // A processor is frozen while its most recent coin flip is 1 and some
    // other participant is still running. (Frozen processors are released
    // when only they remain, to preserve fairness/termination.)
    const bool any_zero_running = [&] {
      for (const process_id pid : k.participants()) {
        if (k.crashed(pid) || k.node_at(pid).protocol_done()) continue;
        if (k.node_at(pid).probe().coin != 1) return true;
      }
      return false;
    }();

    const auto frozen = [&](process_id pid) {
      return any_zero_running && k.node_at(pid).probe().coin == 1;
    };

    // Prefer steps of unfrozen processors.
    for (const process_id pid : k.steppable()) {
      if (!frozen(pid)) return sim::action::step(pid);
    }
    // Then deliveries of messages sent by unfrozen processors.
    for (const std::uint64_t id : k.in_flight().ids()) {
      if (!frozen(k.message_for(id).from)) return sim::action::deliver(id);
    }
    // Only frozen work remains: release it (fairness).
    if (!k.steppable().empty()) return sim::action::step(k.steppable().front());
    ELECT_CHECK(!k.in_flight().empty());
    return sim::action::deliver(k.in_flight().ids().front());
  }
};

}  // namespace elect::adversary
