// Contention-information delayer (anti-renaming adversary, paper §4).
//
// The renaming analysis must survive an adversary that keeps processors'
// Contended[] views stale and correlated "to increase the probability of
// a collision". This strategy starves exactly the propagate(Contended)
// traffic: such requests are delivered only when no other action is
// enabled, so bin-occupancy information spreads as late as the model
// allows while leader-election traffic flows normally.
#pragma once

#include <string>

#include "engine/ids.hpp"
#include "sim/kernel.hpp"

namespace elect::adversary {

class contention_delayer final : public sim::adversary {
 public:
  [[nodiscard]] std::string name() const override {
    return "contention-delayer";
  }

  [[nodiscard]] sim::action pick(sim::kernel& k) override {
    const auto delayed = [&](std::uint64_t id) {
      const engine::message& m = k.message_for(id);
      const engine::var_id* var = m.request_var();
      return var != nullptr &&
             var->family == engine::var_family::contended &&
             std::holds_alternative<engine::propagate_request>(m.body);
    };

    // Prefer any step.
    if (!k.steppable().empty()) {
      const std::size_t index =
          k.adversary_rng().below(k.steppable().size());
      return sim::action::step(k.steppable()[index]);
    }
    // Then any non-delayed delivery (random start, early exit).
    const auto& ids = k.in_flight().ids();
    ELECT_CHECK(!ids.empty());
    const std::size_t start = k.adversary_rng().below(ids.size());
    for (std::size_t offset = 0; offset < ids.size(); ++offset) {
      const std::uint64_t id = ids[(start + offset) % ids.size()];
      if (!delayed(id)) return sim::action::deliver(id);
    }
    // Only delayed contention traffic remains; release one message.
    return sim::action::deliver(ids[start]);
  }
};

}  // namespace elect::adversary
