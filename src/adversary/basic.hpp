// Baseline scheduling strategies: uniform-random and round-robin.
//
// These are the "benign" ends of the adversary portfolio — every
// experiment also runs them so the adversarial strategies have a
// reference point.
#pragma once

#include <string>

#include "sim/kernel.hpp"

namespace elect::adversary {

/// Picks uniformly at random among all enabled atoms (each in-flight
/// message delivery and each steppable processor counts as one atom).
/// Fair with probability 1.
class uniform_random final : public sim::adversary {
 public:
  [[nodiscard]] std::string name() const override { return "uniform-random"; }

  [[nodiscard]] sim::action pick(sim::kernel& k) override {
    const std::size_t deliveries = k.in_flight().size();
    const std::size_t steps = k.steppable().size();
    ELECT_CHECK(deliveries + steps > 0);
    const std::uint64_t choice = k.adversary_rng().below(deliveries + steps);
    if (choice < deliveries) {
      return sim::action::deliver(k.in_flight().ids()[choice]);
    }
    return sim::action::step(k.steppable()[choice - deliveries]);
  }
};

/// Cycles through processors; for the processor under the cursor it first
/// steps it if possible, otherwise delivers one message addressed to it.
/// Produces nearly synchronous, lock-step executions — the schedule most
/// favourable to round-based protocols.
class round_robin final : public sim::adversary {
 public:
  [[nodiscard]] std::string name() const override { return "round-robin"; }

  [[nodiscard]] sim::action pick(sim::kernel& k) override {
    const int n = k.n();
    for (int attempt = 0; attempt < n; ++attempt) {
      const process_id pid = cursor_;
      cursor_ = (cursor_ + 1) % n;
      if (!k.crashed(pid) && k.node_at(pid).can_step()) {
        return sim::action::step(pid);
      }
      if (!k.in_flight_to(pid).empty()) {
        return sim::action::deliver(k.in_flight_to(pid).ids().front());
      }
    }
    // Nothing found at any cursor position; fall back to any enabled atom.
    if (!k.in_flight().empty()) {
      return sim::action::deliver(k.in_flight().ids().front());
    }
    ELECT_CHECK(!k.steppable().empty());
    return sim::action::step(k.steppable().front());
  }

 private:
  process_id cursor_ = 0;
};

}  // namespace elect::adversary
