// Name-keyed adversary factory used by the experiment harness and tests
// to sweep a portfolio of strategies.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "adversary/basic.hpp"
#include "adversary/crash.hpp"
#include "adversary/delayer.hpp"
#include "adversary/flip_adaptive.hpp"
#include "adversary/laggard.hpp"
#include "adversary/sequential.hpp"
#include "common/check.hpp"

namespace elect::adversary {

/// Construct an adversary by name. Recognized names:
///   "uniform", "round-robin", "sequential", "flip-adaptive",
///   "contention-delayer", "crash-uniform" (wraps uniform; crashes up to
///   the model budget).
[[nodiscard]] inline std::unique_ptr<sim::adversary> make(
    const std::string& name, int n = 0) {
  if (name == "uniform") return std::make_unique<uniform_random>();
  if (name == "round-robin") return std::make_unique<round_robin>();
  if (name == "sequential") return std::make_unique<sequential>();
  if (name == "flip-adaptive") return std::make_unique<flip_adaptive>();
  if (name == "contention-delayer") {
    return std::make_unique<contention_delayer>();
  }
  if (name == "crash-uniform") {
    crash_config config;
    config.crashes = n > 0 ? max_crash_faults(n) : 1;
    return std::make_unique<crash_injector>(
        std::make_unique<uniform_random>(), config);
  }
  ELECT_CHECK_MSG(false, "unknown adversary name: " + name);
  return nullptr;  // unreachable
}

/// The non-crashing strategies every experiment sweeps by default.
[[nodiscard]] inline std::vector<std::string> standard_portfolio() {
  return {"uniform", "round-robin", "sequential", "flip-adaptive"};
}

}  // namespace elect::adversary
