// Crash-injecting adversary wrapper.
//
// Wraps any base strategy and injects crash faults: victims are chosen at
// random (optionally restricted to participants), crash times are spread
// over the early part of the execution where they do the most damage
// (participants mid-communicate), and the in-flight messages of crashed
// senders can optionally be dropped — the model permits dropping messages
// of faulty processors only.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/kernel.hpp"

namespace elect::adversary {

struct crash_config {
  /// How many processors to crash; clamped to the kernel's budget.
  int crashes = 0;
  /// Probability per pick of firing the next pending crash.
  double crash_rate = 0.02;
  /// Restrict victims to participants (true) or any processor (false).
  bool participants_only = true;
  /// After a crash, also drop that sender's in-flight messages.
  bool drop_in_flight = true;
};

class crash_injector final : public sim::adversary {
 public:
  crash_injector(std::unique_ptr<sim::adversary> base, crash_config config)
      : base_(std::move(base)), config_(config) {
    ELECT_CHECK(base_ != nullptr);
  }

  [[nodiscard]] std::string name() const override {
    return "crash(" + base_->name() + ")";
  }

  [[nodiscard]] sim::action pick(sim::kernel& k) override {
    // Drop in-flight messages of already-crashed senders first.
    if (config_.drop_in_flight) {
      for (const process_id victim : victims_) {
        if (!k.in_flight_from(victim).empty()) {
          return sim::action::drop(k.in_flight_from(victim).ids().front());
        }
      }
    }
    if (remaining_ < 0) remaining_ = config_.crashes;  // lazy init
    if (remaining_ > 0 && k.can_crash() &&
        k.adversary_rng().bernoulli(config_.crash_rate)) {
      if (const process_id victim = choose_victim(k); victim != no_process) {
        --remaining_;
        victims_.push_back(victim);
        return sim::action::crash(victim);
      }
    }
    return base_->pick(k);
  }

  [[nodiscard]] bool on_stalled(sim::kernel& k) override {
    return base_->on_stalled(k);
  }

 private:
  [[nodiscard]] process_id choose_victim(sim::kernel& k) {
    std::vector<process_id> candidates;
    if (config_.participants_only) {
      for (const process_id pid : k.participants()) {
        if (!k.crashed(pid) && !k.node_at(pid).protocol_done()) {
          candidates.push_back(pid);
        }
      }
    } else {
      for (process_id pid = 0; pid < k.n(); ++pid) {
        if (!k.crashed(pid)) candidates.push_back(pid);
      }
    }
    if (candidates.empty()) return no_process;
    return candidates[k.adversary_rng().below(candidates.size())];
  }

  std::unique_ptr<sim::adversary> base_;
  crash_config config_;
  int remaining_ = -1;
  std::vector<process_id> victims_;
};

}  // namespace elect::adversary
