// Coroutine task type for protocol code.
//
// Protocols are written as straight-line coroutines that mirror the
// paper's pseudocode; the only suspension points are `co_await
// node.communicate_*()` (and awaiting sub-protocol tasks). Tasks are lazy:
// they run only when resumed by the runtime that owns the node, so a
// single-threaded simulator can interleave thousands of them
// deterministically.
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "common/check.hpp"

namespace elect::engine {

template <typename T>
class task;

namespace detail {

template <typename T>
struct task_promise {
  std::optional<T> result;
  std::exception_ptr error;
  std::coroutine_handle<> continuation;

  task<T> get_return_object();

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct final_awaiter {
    [[nodiscard]] bool await_ready() const noexcept { return false; }
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<task_promise> h) noexcept {
      // Resume whoever co_awaited us (symmetric transfer); if nobody did —
      // we are a root protocol — return to the runtime.
      auto continuation = h.promise().continuation;
      return continuation ? continuation : std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };

  final_awaiter final_suspend() noexcept { return {}; }

  void return_value(T value) { result = std::move(value); }

  void unhandled_exception() { error = std::current_exception(); }
};

}  // namespace detail

/// A lazily-started coroutine computing a T. Move-only; owns the frame.
template <typename T>
class [[nodiscard]] task {
 public:
  using promise_type = detail::task_promise<T>;
  using handle_type = std::coroutine_handle<promise_type>;

  task() = default;
  explicit task(handle_type handle) : handle_(handle) {}

  task(task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  task& operator=(task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  task(const task&) = delete;
  task& operator=(const task&) = delete;

  ~task() { destroy(); }

  [[nodiscard]] bool valid() const noexcept { return handle_ != nullptr; }

  /// Start or continue executing from the runtime (root tasks only).
  void resume() {
    ELECT_CHECK(handle_ && !handle_.done());
    handle_.resume();
  }

  [[nodiscard]] bool done() const noexcept {
    return handle_ && handle_.done();
  }

  /// Result of a completed task. Rethrows if the coroutine threw.
  [[nodiscard]] T result() const {
    ELECT_CHECK(done());
    if (handle_.promise().error) {
      std::rethrow_exception(handle_.promise().error);
    }
    ELECT_CHECK(handle_.promise().result.has_value());
    return *handle_.promise().result;
  }

  // --- Awaitable interface: `co_await subtask` from another coroutine. ---

  [[nodiscard]] bool await_ready() const noexcept {
    return handle_ == nullptr || handle_.done();
  }

  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiting) {
    handle_.promise().continuation = awaiting;
    return handle_;  // start the child immediately (symmetric transfer)
  }

  T await_resume() { return result(); }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  handle_type handle_;
};

namespace detail {

template <typename T>
task<T> task_promise<T>::get_return_object() {
  return task<T>(std::coroutine_handle<task_promise>::from_promise(*this));
}

}  // namespace detail

}  // namespace elect::engine
