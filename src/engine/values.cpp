#include "engine/values.hpp"

#include <type_traits>

#include "engine/ids.hpp"

namespace elect::engine {

std::string to_string(pp_status s) {
  switch (s) {
    case pp_status::bottom:
      return "bottom";
    case pp_status::commit:
      return "commit";
    case pp_status::low_pri:
      return "low-pri";
    case pp_status::high_pri:
      return "high-pri";
  }
  return "invalid";
}

std::string to_string(var_family family) {
  switch (family) {
    case var_family::pp_status_array:
      return "pp_status";
    case var_family::het_status_array:
      return "het_status";
    case var_family::round_array:
      return "round";
    case var_family::door:
      return "door";
    case var_family::contended:
      return "contended";
    case var_family::sifter_flips:
      return "sifter_flips";
    case var_family::duel_stage:
      return "duel_stage";
    case var_family::abd_register:
      return "abd_register";
    case var_family::test_i64_array:
      return "test_i64";
    case var_family::test_flags:
      return "test_flags";
  }
  return "invalid";
}

std::string to_string(const var_id& id) {
  return to_string(id.family) + "/" + std::to_string(id.instance) + "/" +
         std::to_string(id.round);
}

namespace {

// Default-construct the var_value matching a delta alternative.
struct default_for_delta {
  int n;

  var_value operator()(const std::monostate&) const { return {}; }
  var_value operator()(const cell_delta<pp_status>&) const {
    return owned_array<pp_status>(n);
  }
  var_value operator()(const cell_delta<het_status>&) const {
    return owned_array<het_status>(n);
  }
  var_value operator()(const cell_delta<std::int64_t>&) const {
    return owned_array<std::int64_t>(n);
  }
  var_value operator()(const flag_delta&) const { return or_flag{}; }
  var_value operator()(const flags_delta&) const { return or_flags(n); }
  var_value operator()(const tagged_register<std::int64_t>&) const {
    return tagged_register<std::int64_t>{};
  }
};

}  // namespace

void merge_delta(var_value& value, const var_delta& delta, int n) {
  if (std::holds_alternative<std::monostate>(delta)) return;
  if (std::holds_alternative<std::monostate>(value)) {
    value = std::visit(default_for_delta{n}, delta);
  }
  std::visit(
      [&value](const auto& d) {
        using delta_type = std::decay_t<decltype(d)>;
        if constexpr (std::is_same_v<delta_type, std::monostate>) {
          // handled above
        } else if constexpr (std::is_same_v<delta_type,
                                            cell_delta<pp_status>>) {
          auto* array = std::get_if<owned_array<pp_status>>(&value);
          ELECT_CHECK_MSG(array != nullptr, "delta/value family mismatch");
          array->merge_cell(d.owner, d.cell);
        } else if constexpr (std::is_same_v<delta_type,
                                            cell_delta<het_status>>) {
          auto* array = std::get_if<owned_array<het_status>>(&value);
          ELECT_CHECK_MSG(array != nullptr, "delta/value family mismatch");
          array->merge_cell(d.owner, d.cell);
        } else if constexpr (std::is_same_v<delta_type,
                                            cell_delta<std::int64_t>>) {
          auto* array = std::get_if<owned_array<std::int64_t>>(&value);
          ELECT_CHECK_MSG(array != nullptr, "delta/value family mismatch");
          array->merge_cell(d.owner, d.cell);
        } else if constexpr (std::is_same_v<delta_type, flag_delta>) {
          auto* flag = std::get_if<or_flag>(&value);
          ELECT_CHECK_MSG(flag != nullptr, "delta/value family mismatch");
          flag->merge(or_flag{true});
        } else if constexpr (std::is_same_v<delta_type, flags_delta>) {
          auto* flags = std::get_if<or_flags>(&value);
          ELECT_CHECK_MSG(flags != nullptr, "delta/value family mismatch");
          for (std::uint32_t index : d.indices) {
            flags->set(static_cast<int>(index));
          }
        } else if constexpr (std::is_same_v<delta_type,
                                            tagged_register<std::int64_t>>) {
          auto* reg = std::get_if<tagged_register<std::int64_t>>(&value);
          ELECT_CHECK_MSG(reg != nullptr, "delta/value family mismatch");
          reg->merge(d);
        }
      },
      delta);
}

void merge_value(var_value& value, const var_value& incoming, int n) {
  (void)n;
  if (std::holds_alternative<std::monostate>(incoming)) return;
  if (std::holds_alternative<std::monostate>(value)) {
    value = incoming;
    return;
  }
  std::visit(
      [&value](const auto& in) {
        using in_type = std::decay_t<decltype(in)>;
        if constexpr (!std::is_same_v<in_type, std::monostate>) {
          auto* local = std::get_if<in_type>(&value);
          ELECT_CHECK_MSG(local != nullptr, "snapshot family mismatch");
          local->merge(in);
        }
      },
      incoming);
}

namespace {

template <typename T>
std::size_t payload_bytes(const T&) {
  return sizeof(T);
}

inline std::size_t payload_bytes(const het_status& s) {
  return 1 + s.list.size() * sizeof(process_id);
}

template <typename T>
std::size_t array_bytes(const owned_array<T>& array) {
  // Bottom cells cost one presence bit each (rounded up into the per-cell
  // accounting as one byte per 8 cells, simplified to size()/8 + ...).
  std::size_t bytes = static_cast<std::size_t>(array.size()) / 8 + 1;
  for (process_id j = 0; j < array.size(); ++j) {
    if (const T* v = array.get(j)) bytes += sizeof(std::uint32_t) + payload_bytes(*v);
  }
  return bytes;
}

}  // namespace

std::size_t wire_size(const var_value& value) {
  return std::visit(
      [](const auto& v) -> std::size_t {
        using value_type = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<value_type, std::monostate>) {
          return 1;
        } else if constexpr (std::is_same_v<value_type,
                                            owned_array<pp_status>> ||
                             std::is_same_v<value_type,
                                            owned_array<het_status>> ||
                             std::is_same_v<value_type,
                                            owned_array<std::int64_t>>) {
          return array_bytes(v);
        } else if constexpr (std::is_same_v<value_type, or_flag>) {
          return 1;
        } else if constexpr (std::is_same_v<value_type, or_flags>) {
          return static_cast<std::size_t>(v.size()) / 8 + 1;
        } else {
          return sizeof(value_type);
        }
      },
      value);
}

std::size_t wire_size(const var_delta& delta) {
  return std::visit(
      [](const auto& d) -> std::size_t {
        using delta_type = std::decay_t<decltype(d)>;
        if constexpr (std::is_same_v<delta_type, std::monostate>) {
          return 1;
        } else if constexpr (std::is_same_v<delta_type, flag_delta>) {
          return 1;
        } else if constexpr (std::is_same_v<delta_type, flags_delta>) {
          return 2 + d.indices.size() * sizeof(std::uint32_t);
        } else if constexpr (std::is_same_v<delta_type,
                                            cell_delta<het_status>>) {
          return sizeof(process_id) + sizeof(std::uint32_t) +
                 payload_bytes(d.cell.value);
        } else if constexpr (std::is_same_v<delta_type,
                                            cell_delta<pp_status>> ||
                             std::is_same_v<delta_type,
                                            cell_delta<std::int64_t>>) {
          return sizeof(d);
        } else {
          return sizeof(delta_type);
        }
      },
      delta);
}

}  // namespace elect::engine
