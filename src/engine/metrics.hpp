// Complexity accounting.
//
// Per the paper's complexity definitions (§2): message complexity is the
// total number of point-to-point messages (we count requests, ACKs and
// collect replies separately, plus approximate wire bytes for
// bit-complexity studies); time complexity is measured through Claim 2.1
// as the maximum number of `communicate` calls any processor performs.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace elect::engine {

/// Relaxed atomic access to a per-processor counter slot. Each slot has a
/// single writer (its processor's execution context), but observers (the
/// election service's report()) may read concurrently from other threads,
/// so both sides go through atomic_ref to keep that race-free.
inline void bump_counter(std::uint64_t& slot) noexcept {
  std::atomic_ref<std::uint64_t>(slot).fetch_add(1,
                                                 std::memory_order_relaxed);
}

[[nodiscard]] inline std::uint64_t read_counter(
    const std::uint64_t& slot) noexcept {
  return std::atomic_ref<const std::uint64_t>(slot).load(
      std::memory_order_relaxed);
}

struct metrics {
  explicit metrics(int n)
      : communicate_calls(static_cast<std::size_t>(n), 0),
        computation_steps(static_cast<std::size_t>(n), 0),
        stale_replies(static_cast<std::size_t>(n), 0) {}

  // Global message counters (maintained by the transport; in the
  // multithreaded runtime the transport keeps its own atomic counters and
  // leaves these zero).
  std::uint64_t requests_sent = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t collect_replies_sent = 0;
  std::uint64_t wire_bytes = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t dropped_messages = 0;

  // Per-processor counters (each maintained only by that processor's
  // execution context — single writer, so they are safe in both runtimes).
  std::vector<std::uint64_t> communicate_calls;
  std::vector<std::uint64_t> computation_steps;
  std::vector<std::uint64_t> stale_replies;

  [[nodiscard]] std::uint64_t total_stale_replies() const {
    std::uint64_t total = 0;
    for (const std::uint64_t& s : stale_replies) total += read_counter(s);
    return total;
  }

  [[nodiscard]] std::uint64_t total_messages() const noexcept {
    return requests_sent + acks_sent + collect_replies_sent;
  }

  [[nodiscard]] double mean_communicate_calls() const {
    if (communicate_calls.empty()) return 0.0;
    std::uint64_t total = 0;
    for (const std::uint64_t& c : communicate_calls) total += read_counter(c);
    return static_cast<double>(total) /
           static_cast<double>(communicate_calls.size());
  }

  [[nodiscard]] std::uint64_t max_communicate_calls() const {
    std::uint64_t best = 0;
    for (const std::uint64_t& c : communicate_calls) {
      best = std::max(best, read_counter(c));
    }
    return best;
  }

  /// Max communicate calls among a subset of processors (participants).
  [[nodiscard]] std::uint64_t max_communicate_calls_among(
      const std::vector<process_id>& ids) const {
    std::uint64_t best = 0;
    for (process_id id : ids) {
      best = std::max(
          best, read_counter(communicate_calls[static_cast<std::size_t>(id)]));
    }
    return best;
  }
};

}  // namespace elect::engine
