#include "engine/message.hpp"

namespace elect::engine {

std::string describe(const message& m) {
  std::string kind = std::visit(
      [](const auto& body) -> std::string {
        using body_type = std::decay_t<decltype(body)>;
        if constexpr (std::is_same_v<body_type, propagate_request>) {
          return "propagate(" + to_string(body.var) + ")";
        } else if constexpr (std::is_same_v<body_type, collect_request>) {
          return "collect(" + to_string(body.var) + ")";
        } else if constexpr (std::is_same_v<body_type, ack_reply>) {
          return "ack";
        } else {
          return "collect-reply";
        }
      },
      m.body);
  return std::to_string(m.from) + "->" + std::to_string(m.to) + " " + kind +
         " tok=" + std::to_string(m.token);
}

}  // namespace elect::engine
