// Identifiers for replicated variables.
//
// Every protocol variable in the paper (Status[], Round[], door,
// Contended[], ...) is a named replicated variable. A var_id names one:
// its family (which protocol array it is), the protocol instance it
// belongs to (e.g. which name's leader election, which tournament match),
// and the phase/round within that instance.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

namespace elect::engine {

/// Which protocol array a variable is. The family fixes the value type
/// stored in the variable (see values.hpp).
enum class var_family : std::uint32_t {
  /// owned_array<pp_status> — plain PoisonPill Status[] (Figure 1).
  pp_status_array = 0,
  /// owned_array<het_status> — Heterogeneous PoisonPill Status[] (Figure 2).
  het_status_array = 1,
  /// owned_array<int64> — PreRound Round[] (Figure 4).
  round_array = 2,
  /// or_flag — the Doorway door bit (Figure 5).
  door = 3,
  /// or_flags — the renaming Contended[] bitmap (Figure 3).
  contended = 4,
  /// owned_array<int64> — naive/weak-adversary sifter coin flips.
  sifter_flips = 5,
  /// owned_array<int64> — two-party duel consensus stage records
  /// (tournament baseline; see consensus/duel.hpp).
  duel_stage = 6,
  /// tagged_register<int64> — ABD multi-writer register (abd/register.hpp).
  abd_register = 7,
  /// owned_array<int64> — scratch family for tests.
  test_i64_array = 8,
  /// or_flags — scratch family for tests.
  test_flags = 9,
};

[[nodiscard]] std::string to_string(var_family family);

/// Fully-qualified name of a replicated variable.
struct var_id {
  var_family family{};
  /// Protocol instance (e.g. renaming name index, or an election id).
  std::uint32_t instance = 0;
  /// Round / phase within the instance (e.g. PoisonPill round number, or
  /// an encoded (tree-node, duel-round, stage) for tournament matches).
  std::uint32_t round = 0;

  friend auto operator<=>(const var_id&, const var_id&) = default;
};

[[nodiscard]] std::string to_string(const var_id& id);

struct var_id_hash {
  [[nodiscard]] std::size_t operator()(const var_id& id) const noexcept {
    std::uint64_t h = static_cast<std::uint64_t>(id.family);
    h = h * 0x9e3779b97f4a7c15ULL + id.instance;
    h = h * 0x9e3779b97f4a7c15ULL + id.round;
    h ^= h >> 29;
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 32;
    return static_cast<std::size_t>(h);
  }
};

}  // namespace elect::engine
