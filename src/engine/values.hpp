// Replicated variable values and their merge (join) operations.
//
// Every variable the paper's protocols share is a *monotone* value: its
// per-processor views only ever grow under merge, and merging is
// commutative, associative and idempotent (a join-semilattice, in CRDT
// terms). That is exactly the property the protocols rely on — channels
// may reorder and duplicate delivery order arbitrarily, yet every
// processor's view converges to the join of what it has received.
//
// Three shapes cover every variable in the paper:
//   * owned_array<T>  — one cell per processor, written only by its owner,
//                       versioned by a per-owner sequence number
//                       (Status[], Round[], duel stage records, flips);
//   * or_flag/or_flags — monotone booleans (door, Contended[]);
//   * tagged_register<T> — max-(timestamp, writer) register (ABD).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace elect::engine {

// ---------------------------------------------------------------------------
// Status enums / records used by the election protocols.

/// Plain PoisonPill status (Figure 1). `bottom` is the paper's ⊥.
enum class pp_status : std::uint8_t {
  bottom = 0,
  commit = 1,
  low_pri = 2,
  high_pri = 3,
};

[[nodiscard]] std::string to_string(pp_status s);

/// Heterogeneous PoisonPill status record (Figure 2): a priority plus the
/// list ℓ of participants the processor had observed when it flipped.
struct het_status {
  pp_status stat = pp_status::bottom;
  std::vector<process_id> list;

  friend bool operator==(const het_status&, const het_status&) = default;
};

// ---------------------------------------------------------------------------
// owned_array<T>: per-owner cells with sequence-numbered overwrite.

/// One versioned cell of an owned_array. Only the owning processor writes
/// its cell; `seq` increases with every local write so that merges keep
/// the newest value even when channels reorder messages.
template <typename T>
struct owned_cell {
  std::uint32_t seq = 0;
  T value{};

  friend bool operator==(const owned_cell&, const owned_cell&) = default;
};

/// An n-slot array where slot j may be written only by processor j.
/// Unwritten slots read as "bottom" (disengaged optional) — the paper's ⊥.
template <typename T>
class owned_array {
 public:
  owned_array() = default;
  explicit owned_array(int n) : cells_(static_cast<std::size_t>(n)) {}

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(cells_.size());
  }

  /// Value of slot `owner`, or nullptr if the slot is still ⊥.
  [[nodiscard]] const T* get(process_id owner) const {
    const auto& cell = cell_at(owner);
    return cell.has_value() ? &cell->value : nullptr;
  }

  [[nodiscard]] bool is_bottom(process_id owner) const {
    return !cell_at(owner).has_value();
  }

  [[nodiscard]] std::uint32_t seq_of(process_id owner) const {
    const auto& cell = cell_at(owner);
    return cell.has_value() ? cell->seq : 0;
  }

  /// Merge a single remote cell: keep whichever of (local, remote) has the
  /// larger sequence number. Idempotent and order-insensitive.
  void merge_cell(process_id owner, const owned_cell<T>& incoming) {
    auto& cell = cell_at(owner);
    if (!cell.has_value() || cell->seq < incoming.seq) cell = incoming;
  }

  /// Merge an entire remote array slot-by-slot.
  void merge(const owned_array& other) {
    ELECT_CHECK(size() == other.size());
    for (int j = 0; j < size(); ++j) {
      const auto& cell = other.cells_[static_cast<std::size_t>(j)];
      if (cell.has_value()) merge_cell(j, *cell);
    }
  }

  friend bool operator==(const owned_array&, const owned_array&) = default;

 private:
  [[nodiscard]] const std::optional<owned_cell<T>>& cell_at(
      process_id owner) const {
    ELECT_CHECK(owner >= 0 && owner < size());
    return cells_[static_cast<std::size_t>(owner)];
  }
  [[nodiscard]] std::optional<owned_cell<T>>& cell_at(process_id owner) {
    ELECT_CHECK(owner >= 0 && owner < size());
    return cells_[static_cast<std::size_t>(owner)];
  }

  std::vector<std::optional<owned_cell<T>>> cells_;
};

// ---------------------------------------------------------------------------
// Monotone booleans.

/// A single monotone bit (the Doorway `door`): once true, always true.
struct or_flag {
  bool value = false;

  void merge(const or_flag& other) noexcept { value = value || other.value; }

  friend bool operator==(const or_flag&, const or_flag&) = default;
};

/// A monotone bitmap (the renaming Contended[] array): per-index OR.
class or_flags {
 public:
  or_flags() = default;
  explicit or_flags(int n) : bits_(static_cast<std::size_t>(n), false) {}

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(bits_.size());
  }

  [[nodiscard]] bool test(int index) const {
    ELECT_CHECK(index >= 0 && index < size());
    return bits_[static_cast<std::size_t>(index)];
  }

  void set(int index) {
    ELECT_CHECK(index >= 0 && index < size());
    bits_[static_cast<std::size_t>(index)] = true;
  }

  [[nodiscard]] int count_set() const {
    int count = 0;
    for (bool bit : bits_) count += bit ? 1 : 0;
    return count;
  }

  /// Indices currently set (ascending).
  [[nodiscard]] std::vector<std::uint32_t> set_indices() const {
    std::vector<std::uint32_t> out;
    for (int i = 0; i < size(); ++i) {
      if (bits_[static_cast<std::size_t>(i)]) {
        out.push_back(static_cast<std::uint32_t>(i));
      }
    }
    return out;
  }

  void merge(const or_flags& other) {
    ELECT_CHECK(size() == other.size());
    for (int i = 0; i < size(); ++i) {
      if (other.bits_[static_cast<std::size_t>(i)]) {
        bits_[static_cast<std::size_t>(i)] = true;
      }
    }
  }

  friend bool operator==(const or_flags&, const or_flags&) = default;

 private:
  std::vector<bool> bits_;
};

// ---------------------------------------------------------------------------
// ABD-style register.

/// Multi-writer register ordered by (timestamp, writer) lexicographically.
/// merge keeps the larger tag; used by the ABD shared-memory emulation.
template <typename T>
struct tagged_register {
  std::uint64_t timestamp = 0;
  process_id writer = no_process;
  T value{};

  [[nodiscard]] bool tag_less(const tagged_register& other) const noexcept {
    if (timestamp != other.timestamp) return timestamp < other.timestamp;
    return writer < other.writer;
  }

  void merge(const tagged_register& other) {
    if (tag_less(other)) *this = other;
  }

  friend bool operator==(const tagged_register&, const tagged_register&) =
      default;
};

// ---------------------------------------------------------------------------
// The variant types carried by messages and stored by nodes.

/// Snapshot of one replicated variable. monostate = never touched (all ⊥).
using var_value =
    std::variant<std::monostate, owned_array<pp_status>,
                 owned_array<het_status>, owned_array<std::int64_t>, or_flag,
                 or_flags, tagged_register<std::int64_t>>;

/// A delta for one owned cell, tagged with its owner.
template <typename T>
struct cell_delta {
  process_id owner = no_process;
  owned_cell<T> cell;

  friend bool operator==(const cell_delta&, const cell_delta&) = default;
};

/// "Set the flag" delta for or_flag.
struct flag_delta {
  friend bool operator==(const flag_delta&, const flag_delta&) = default;
};

/// "Set these indices" delta for or_flags.
struct flags_delta {
  std::vector<std::uint32_t> indices;

  friend bool operator==(const flags_delta&, const flags_delta&) = default;
};

/// Increment carried by a propagate message. Applying a delta to a local
/// view is a semilattice join restricted to the changed part.
using var_delta =
    std::variant<std::monostate, cell_delta<pp_status>, cell_delta<het_status>,
                 cell_delta<std::int64_t>, flag_delta, flags_delta,
                 tagged_register<std::int64_t>>;

/// Merge `delta` into `value`, default-constructing the value for `n`
/// processors if it is still monostate. Aborts on a family/type mismatch
/// (that would be a protocol bug, not a runtime condition).
void merge_delta(var_value& value, const var_delta& delta, int n);

/// Merge a full snapshot into `value` (used by ABD read write-back and by
/// anti-entropy in tests).
void merge_value(var_value& value, const var_value& incoming, int n);

/// Approximate serialized size in bytes, for message/bit-complexity
/// accounting. Counts payload bytes, not framing.
[[nodiscard]] std::size_t wire_size(const var_value& value);
[[nodiscard]] std::size_t wire_size(const var_delta& delta);

}  // namespace elect::engine
