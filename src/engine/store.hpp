// Per-processor replicated-variable store.
//
// Each processor keeps a local view of every replicated variable it has
// heard about. Views are joined monotonically (values.hpp); variables are
// created lazily with an all-⊥ default the first time they are touched.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/check.hpp"
#include "common/types.hpp"
#include "engine/ids.hpp"
#include "engine/values.hpp"

namespace elect::engine {

class store {
 public:
  explicit store(int n) : n_(n) { ELECT_CHECK(n >= 1); }

  [[nodiscard]] int n() const noexcept { return n_; }

  /// Merge a delta (from a propagate request, or a local write).
  void merge(const var_id& id, const var_delta& delta) {
    merge_delta(vars_[id], delta, n_);
  }

  /// Merge a full snapshot (used by ABD write-back).
  void merge_snapshot(const var_id& id, const var_value& snapshot) {
    merge_value(vars_[id], snapshot, n_);
  }

  /// Current view of a variable; monostate (all ⊥) if never touched.
  [[nodiscard]] var_value snapshot(const var_id& id) const {
    const auto it = vars_.find(id);
    return it == vars_.end() ? var_value{} : it->second;
  }

  /// Pointer to the current view, or nullptr if never touched.
  [[nodiscard]] const var_value* find(const var_id& id) const {
    const auto it = vars_.find(id);
    return it == vars_.end() ? nullptr : &it->second;
  }

  /// Typed view accessor: nullptr if never touched; aborts on a family
  /// mismatch (protocol bug).
  template <typename T>
  [[nodiscard]] const T* view(const var_id& id) const {
    const var_value* value = find(id);
    if (value == nullptr || std::holds_alternative<std::monostate>(*value)) {
      return nullptr;
    }
    const T* typed = std::get_if<T>(value);
    ELECT_CHECK_MSG(typed != nullptr, "store view family mismatch");
    return typed;
  }

  /// Next local-write sequence number for `id` (starts at 1).
  [[nodiscard]] std::uint32_t bump_seq(const var_id& id) {
    return ++seqs_[id];
  }

  [[nodiscard]] std::size_t variable_count() const noexcept {
    return vars_.size();
  }

 private:
  int n_;
  std::unordered_map<var_id, var_value, var_id_hash> vars_;
  std::unordered_map<var_id, std::uint32_t, var_id_hash> seqs_;
};

}  // namespace elect::engine
