// Helpers for folding the view arrays returned by collect.
//
// A collect returns >= floor(n/2)+1 snapshots ("Views[k]" in the paper's
// pseudocode); protocols then quantify over them ("∃k: Views[k][j] = ..."
// / "∀k': Views[k'][j] ≠ ..."). These helpers express those folds.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "engine/node.hpp"
#include "engine/values.hpp"

namespace elect::engine {

/// Apply `fn(snapshot)` to each view that holds a value of type T
/// (monostate views — from processors that never touched the variable —
/// are skipped; for owned arrays they are equivalent to all-⊥ arrays).
template <typename T, typename Fn>
void for_each_view(const std::vector<view_entry>& views, Fn&& fn) {
  for (const view_entry& entry : views) {
    if (const T* typed = std::get_if<T>(&entry.snapshot)) fn(*typed);
  }
}

/// ∃k: pred(Views[k][j]) over non-⊥ cells of owned_array<T> views.
template <typename T, typename Pred>
[[nodiscard]] bool any_view_cell(const std::vector<view_entry>& views,
                                 process_id j, Pred&& pred) {
  bool found = false;
  for_each_view<owned_array<T>>(views, [&](const owned_array<T>& array) {
    if (found) return;
    if (const T* cell = array.get(j)) found = pred(*cell);
  });
  return found;
}

/// ∃k: Views[k][j] ≠ ⊥ for owned_array<T> views.
template <typename T>
[[nodiscard]] bool any_view_nonbottom(const std::vector<view_entry>& views,
                                      process_id j) {
  return any_view_cell<T>(views, j, [](const T&) { return true; });
}

/// The set {j | ∃k : Views[k][j] ≠ ⊥} for owned_array<T> views
/// (Figure 2 line 17: the participant list ℓ).
template <typename T>
[[nodiscard]] std::vector<process_id> participants_in_views(
    const std::vector<view_entry>& views, int n) {
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  for_each_view<owned_array<T>>(views, [&](const owned_array<T>& array) {
    for (process_id j = 0; j < n; ++j) {
      if (!array.is_bottom(j)) seen[static_cast<std::size_t>(j)] = true;
    }
  });
  std::vector<process_id> out;
  for (process_id j = 0; j < n; ++j) {
    if (seen[static_cast<std::size_t>(j)]) out.push_back(j);
  }
  return out;
}

/// max over views and over cells j (j ≠ exclude) of int64 owned arrays;
/// ⊥ cells count as `bottom_value` (Figure 4 line 48 uses 0).
[[nodiscard]] inline std::int64_t max_int_in_views(
    const std::vector<view_entry>& views, process_id exclude,
    std::int64_t bottom_value) {
  std::int64_t best = bottom_value;
  for_each_view<owned_array<std::int64_t>>(
      views, [&](const owned_array<std::int64_t>& array) {
        for (process_id j = 0; j < array.size(); ++j) {
          if (j == exclude) continue;
          if (const std::int64_t* v = array.get(j)) {
            best = best < *v ? *v : best;
          }
        }
      });
  return best;
}

/// ∃ view with the or_flag set (Figure 5 line 57).
[[nodiscard]] inline bool any_flag_set(const std::vector<view_entry>& views) {
  bool found = false;
  for_each_view<or_flag>(views,
                         [&](const or_flag& flag) { found |= flag.value; });
  return found;
}

}  // namespace elect::engine
