// A processor: replicated-variable store + communicate engine + protocol
// coroutine.
//
// Each of the n processors is a `node`. A node has two faces:
//
//  * the *runtime-facing* face, used by a runtime (deterministic simulator
//    or multithreaded cluster): deliver(message) puts a message in the
//    mailbox (the model's delivery step); computation_step() makes the
//    processor receive everything delivered since its last step, serve
//    propagate/collect requests, and advance its protocol coroutine
//    (the model's computation step);
//
//  * the *protocol-facing* face, used by protocol coroutines running on
//    the node: stage_*() local writes, `co_await propagate(...)` /
//    `co_await collect(...)` communicate calls (each blocks until ACKs
//    from a quorum of floor(n/2)+1 processors arrive), a deterministic
//    per-node RNG stream, and a debug probe that publishes protocol state
//    (e.g. coin flips) for the strong adaptive adversary to inspect.
//
// Per the model (§2), every non-faulty processor serves requests forever,
// whether or not it participates in any protocol and even after its own
// protocol returns.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "engine/ids.hpp"
#include "engine/message.hpp"
#include "engine/metrics.hpp"
#include "engine/store.hpp"
#include "engine/task.hpp"
#include "engine/values.hpp"

namespace elect::engine {

/// Outbound message sink implemented by each runtime.
class transport {
 public:
  virtual ~transport() = default;
  /// Hand a message to the network. The runtime decides when (and, for
  /// crashed senders, whether) it is delivered.
  virtual void send(message m) = 0;
};

/// Protocol state published for the strong adaptive adversary (which, per
/// the model, can inspect all local state including coin flips) and for
/// experiment instrumentation. -1 means "unset".
struct debug_probe {
  std::int64_t coin = -1;       ///< most recent coin flip (0/1)
  std::int64_t round = -1;      ///< current election round r
  std::int64_t phase = -1;      ///< protocol-specific phase marker
  std::int64_t status = -1;     ///< pp_status of the current phase, as int
  std::int64_t list_size = -1;  ///< |ℓ| in HeterogeneousPoisonPill
  std::int64_t contending_for = -1;  ///< renaming: name being contended
  std::int64_t iterations = -1;      ///< renaming: completed loop iterations
};

/// One replier's answer to a collect: who replied and their snapshot.
struct view_entry {
  process_id replier = no_process;
  var_value snapshot;
};

class node;

/// Awaitable returned by node::propagate(). Completes when a quorum of
/// ACKs has been received.
class propagate_awaitable {
 public:
  explicit propagate_awaitable(node& self) : self_(&self) {}
  [[nodiscard]] bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> handle);
  void await_resume();

 private:
  node* self_;
};

/// Awaitable returned by node::collect(). Completes when a quorum of
/// snapshot replies has been received; yields all views received by then.
class collect_awaitable {
 public:
  explicit collect_awaitable(node& self) : self_(&self) {}
  [[nodiscard]] bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> handle);
  [[nodiscard]] std::vector<view_entry> await_resume();

 private:
  node* self_;
};

class node {
 public:
  node(process_id id, int n, transport& out, rng_stream rng, metrics& m);

  node(const node&) = delete;
  node& operator=(const node&) = delete;

  // ------------------------------------------------------------------
  // Protocol-facing interface.

  [[nodiscard]] process_id id() const noexcept { return id_; }
  [[nodiscard]] int n() const noexcept { return store_.n(); }
  [[nodiscard]] int quorum() const noexcept { return quorum_size(n()); }
  [[nodiscard]] rng_stream& rng() noexcept { return rng_; }
  [[nodiscard]] debug_probe& probe() noexcept { return probe_; }
  [[nodiscard]] const debug_probe& probe() const noexcept { return probe_; }
  [[nodiscard]] const store& local_store() const noexcept { return store_; }

  /// Write this node's own cell of an owned_array variable locally and
  /// return the delta to propagate.
  template <typename T>
  var_delta stage_own_cell(const var_id& id, T value) {
    cell_delta<T> delta{id_, owned_cell<T>{store_.bump_seq(id),
                                           std::move(value)}};
    var_delta wrapped = std::move(delta);
    store_.merge(id, wrapped);
    return wrapped;
  }

  /// Set a monotone flag (e.g. the door) locally; returns the delta.
  var_delta stage_flag(const var_id& id) {
    var_delta delta = flag_delta{};
    store_.merge(id, delta);
    return delta;
  }

  /// Set monotone bitmap indices (e.g. Contended[spot]); returns the delta.
  var_delta stage_flags(const var_id& id, std::vector<std::uint32_t> indices) {
    var_delta delta = flags_delta{std::move(indices)};
    store_.merge(id, delta);
    return delta;
  }

  /// Merge an ABD register tag locally; returns the delta.
  var_delta stage_register(const var_id& id,
                           tagged_register<std::int64_t> reg) {
    var_delta delta = reg;
    store_.merge(id, delta);
    return delta;
  }

  /// communicate(propagate, ·): broadcast the delta to all n processors and
  /// await floor(n/2)+1 ACKs. (Figure 1 line 3/7 and friends.)
  [[nodiscard]] propagate_awaitable propagate(const var_id& id,
                                              var_delta delta);

  /// communicate(collect, ·): request views of the variable from all n
  /// processors and await floor(n/2)+1 snapshot replies. (Figure 1 line 8.)
  [[nodiscard]] collect_awaitable collect(const var_id& id);

  // ------------------------------------------------------------------
  // Runtime-facing interface.

  /// Delivery step: append a message to the mailbox. It takes effect at
  /// this node's next computation step.
  void deliver(message m) { mailbox_.push_back(std::move(m)); }

  /// True if a computation step would make progress: there is unprocessed
  /// mail, or an attached protocol is ready to start.
  [[nodiscard]] bool can_step() const noexcept {
    return !mailbox_.empty() || (root_.valid() && !started_ && !held_);
  }

  /// While held, the node serves requests but does not *invoke* its own
  /// protocol. Protocol invocation times are part of the adversarial
  /// schedule (a held participant is one that "has not yet called" the
  /// operation); adversaries use this to stagger or delay participants.
  void set_held(bool held) noexcept { held_ = held; }
  [[nodiscard]] bool held() const noexcept { return held_; }

  [[nodiscard]] std::size_t mailbox_size() const noexcept {
    return mailbox_.size();
  }

  /// Computation step: receive all delivered messages (serving propagate /
  /// collect requests and absorbing replies), then start or resume the
  /// protocol coroutine if it is runnable.
  void computation_step();

  /// Attach the protocol this node will execute. At most one per node.
  void attach_protocol(task<std::int64_t> protocol);

  [[nodiscard]] bool protocol_attached() const noexcept {
    return root_.valid();
  }
  [[nodiscard]] bool protocol_started() const noexcept { return started_; }
  [[nodiscard]] bool protocol_done() const noexcept { return root_.done(); }
  [[nodiscard]] std::int64_t protocol_result() const { return root_.result(); }

  /// True while the protocol is suspended inside a communicate call.
  [[nodiscard]] bool waiting_for_quorum() const noexcept {
    return op_.active;
  }

 private:
  friend class propagate_awaitable;
  friend class collect_awaitable;

  struct pending_op {
    bool active = false;
    bool is_collect = false;
    std::uint64_t token = 0;
    int needed = 0;
    int reply_count = 0;
    std::vector<bool> replied;  ///< dedupe replies per peer
    std::vector<view_entry> views;
  };

  void begin_op(bool is_collect);
  void broadcast(const var_id& id, const var_delta* delta);
  void handle(const message& m);
  void set_waiting(std::coroutine_handle<> handle) {
    ELECT_CHECK(!waiting_);
    waiting_ = handle;
  }

  process_id id_;
  transport& out_;
  rng_stream rng_;
  metrics& metrics_;
  store store_;
  debug_probe probe_;
  std::deque<message> mailbox_;
  pending_op op_;
  std::uint64_t next_token_ = 1;
  std::coroutine_handle<> waiting_;
  task<std::int64_t> root_;
  bool started_ = false;
  bool held_ = false;
};

/// Adapt a typed protocol task into the node's int64 root-task slot.
template <typename E>
task<std::int64_t> erase_result(task<E> inner) {
  E value = co_await inner;
  co_return static_cast<std::int64_t>(value);
}

}  // namespace elect::engine
