#include "engine/node.hpp"

#include <utility>

namespace elect::engine {

node::node(process_id id, int n, transport& out, rng_stream rng, metrics& m)
    : id_(id), out_(out), rng_(rng), metrics_(m), store_(n) {
  ELECT_CHECK(id >= 0 && id < n);
}

void node::attach_protocol(task<std::int64_t> protocol) {
  ELECT_CHECK_MSG(!root_.valid(), "node already has a protocol attached");
  ELECT_CHECK(protocol.valid());
  root_ = std::move(protocol);
}

void node::begin_op(bool is_collect) {
  ELECT_CHECK_MSG(!op_.active, "communicate call while another is pending");
  op_.active = true;
  op_.is_collect = is_collect;
  op_.token = next_token_++;
  op_.needed = quorum();
  op_.reply_count = 0;
  op_.replied.assign(static_cast<std::size_t>(n()), false);
  op_.views.clear();
  bump_counter(metrics_.communicate_calls[static_cast<std::size_t>(id_)]);
}

void node::broadcast(const var_id& id, const var_delta* delta) {
  // The communicate primitive sends to all n processors, including the
  // caller itself; the self-message travels through the network like any
  // other (the adversary may delay it).
  for (process_id to = 0; to < n(); ++to) {
    message m;
    m.from = id_;
    m.to = to;
    m.token = op_.token;
    if (delta != nullptr) {
      m.body = propagate_request{id, *delta};
    } else {
      m.body = collect_request{id};
    }
    out_.send(std::move(m));
  }
}

propagate_awaitable node::propagate(const var_id& id, var_delta delta) {
  begin_op(/*is_collect=*/false);
  broadcast(id, &delta);
  return propagate_awaitable(*this);
}

collect_awaitable node::collect(const var_id& id) {
  begin_op(/*is_collect=*/true);
  broadcast(id, nullptr);
  return collect_awaitable(*this);
}

void node::handle(const message& m) {
  if (const auto* propagate = std::get_if<propagate_request>(&m.body)) {
    store_.merge(propagate->var, propagate->delta);
    out_.send(message{id_, m.from, m.token, ack_reply{}});
    return;
  }
  if (const auto* collect = std::get_if<collect_request>(&m.body)) {
    out_.send(
        message{id_, m.from, m.token, collect_reply{store_.snapshot(collect->var)}});
    return;
  }
  // A reply: absorb it into the pending op if it matches; otherwise it is
  // a stale reply for an op that already reached quorum.
  if (!op_.active || m.token != op_.token) {
    bump_counter(metrics_.stale_replies[static_cast<std::size_t>(id_)]);
    return;
  }
  auto from = static_cast<std::size_t>(m.from);
  ELECT_CHECK(from < op_.replied.size());
  if (op_.replied[from]) {
    bump_counter(metrics_.stale_replies[static_cast<std::size_t>(id_)]);
    return;
  }
  op_.replied[from] = true;
  op_.reply_count++;
  if (op_.is_collect) {
    const auto* reply = std::get_if<collect_reply>(&m.body);
    ELECT_CHECK_MSG(reply != nullptr, "collect op received a bare ACK");
    op_.views.push_back(view_entry{m.from, reply->snapshot});
  } else {
    ELECT_CHECK_MSG(std::holds_alternative<ack_reply>(m.body),
                    "propagate op received a snapshot reply");
  }
}

void node::computation_step() {
  bump_counter(metrics_.computation_steps[static_cast<std::size_t>(id_)]);
  // Receive everything delivered since the last computation step.
  while (!mailbox_.empty()) {
    message m = std::move(mailbox_.front());
    mailbox_.pop_front();
    handle(m);
  }
  // Advance the protocol: initial start (unless invocation is being held
  // back by the scheduler), or resume a communicate call whose quorum is
  // now complete.
  if (root_.valid() && !started_ && !held_) {
    started_ = true;
    root_.resume();
    return;
  }
  if (waiting_ && op_.active && op_.reply_count >= op_.needed) {
    auto handle = waiting_;
    waiting_ = nullptr;
    handle.resume();
  }
}

void propagate_awaitable::await_suspend(std::coroutine_handle<> handle) {
  self_->set_waiting(handle);
}

void propagate_awaitable::await_resume() {
  ELECT_CHECK(self_->op_.active);
  ELECT_CHECK(self_->op_.reply_count >= self_->op_.needed);
  self_->op_.active = false;
}

void collect_awaitable::await_suspend(std::coroutine_handle<> handle) {
  self_->set_waiting(handle);
}

std::vector<view_entry> collect_awaitable::await_resume() {
  ELECT_CHECK(self_->op_.active);
  ELECT_CHECK(self_->op_.reply_count >= self_->op_.needed);
  self_->op_.active = false;
  return std::move(self_->op_.views);
}

}  // namespace elect::engine
