#include "repl/peer.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace elect::repl {

namespace {

bool write_all(int fd, const std::uint8_t* data, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t wrote = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (wrote > 0) {
      sent += static_cast<std::size_t>(wrote);
      continue;
    }
    if (wrote < 0 && errno == EINTR) continue;
    // A send timeout (EAGAIN on SO_SNDTIMEO) counts as a dead peer too:
    // the caller reconnects rather than risk a half-written frame.
    return false;
  }
  return true;
}

/// Read frames until one decodes to a response, the timeout fires, or
/// the peer hangs up.
std::optional<net::wire::response> read_response(int fd) {
  net::wire::frame_reader reader;
  std::uint8_t buffer[16384];
  for (;;) {
    const ssize_t got = ::recv(fd, buffer, sizeof buffer, 0);
    if (got <= 0) {
      if (got < 0 && errno == EINTR) continue;
      return std::nullopt;  // timeout, reset, or orderly close
    }
    if (!reader.feed(buffer, static_cast<std::size_t>(got))) {
      return std::nullopt;
    }
    while (auto body = reader.next()) {
      auto decoded = net::wire::decode_response(*body);
      if (!decoded.has_value()) return std::nullopt;
      // Event pushes can interleave if a watch somehow shares the
      // connection; peer channels never subscribe, so anything that is
      // not a direct response is a protocol violation.
      if (decoded->kind == net::wire::op::event) continue;
      return decoded;
    }
  }
}

}  // namespace

bool peer_channel::ensure_connected() {
  if (fd_ >= 0) return true;
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return false;
  // Bound every blocking step — a partitioned peer must cost one
  // timeout, not a wedged replication thread. Applies to connect() on
  // Linux via SO_SNDTIMEO.
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(io_timeout_ms_ / 1000);
  tv.tv_usec = static_cast<suseconds_t>((io_timeout_ms_ % 1000) * 1000);
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(target_.port);
  if (::inet_pton(AF_INET, target_.host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    ::close(fd);
    return false;
  }
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

  // Hello handshake: keeps v3 peers (and random port scanners) out
  // before any repl payload crosses the wire.
  net::wire::request hello = net::wire::make_hello_request();
  hello.id = next_id_++;
  const auto frame = net::wire::encode_request(hello);
  if (!write_all(fd, frame.data(), frame.size())) {
    ::close(fd);
    return false;
  }
  const auto answer = read_response(fd);
  if (!answer.has_value() || answer->kind != net::wire::op::hello ||
      answer->result != net::wire::status::ok) {
    ::close(fd);
    return false;
  }
  fd_ = fd;
  return true;
}

void peer_channel::sever() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::optional<net::wire::response> peer_channel::call(net::wire::op kind,
                                                      std::string body) {
  if (!ensure_connected()) return std::nullopt;
  net::wire::request r;
  r.id = next_id_++;
  r.kind = kind;
  r.body = std::move(body);
  const auto frame = net::wire::encode_request(r);
  if (!write_all(fd_, frame.data(), frame.size())) {
    sever();
    return std::nullopt;
  }
  auto answer = read_response(fd_);
  // One call in flight at a time, so the next response must be ours;
  // an id mismatch means the stream is out of sync — resync by
  // reconnecting.
  if (!answer.has_value() || answer->id != r.id || answer->kind != kind) {
    sever();
    return std::nullopt;
  }
  return answer;
}

}  // namespace elect::repl
