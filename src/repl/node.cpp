#include "repl/node.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <sstream>
#include <utility>

#include "common/check.hpp"

namespace elect::repl {

namespace {

using net::wire::op;
using net::wire::status;

// --- Peer-op envelopes --------------------------------------------------
//
// All envelopes ride the opaque `body` of a v4 wire request/response.
// Encoding mirrors the command codec: little-endian, bounds-checked,
// trailing bytes rejected.

struct vote_request_body {
  std::uint64_t term = 0;
  std::int32_t candidate = -1;
  std::uint64_t last_log_index = 0;
  std::uint64_t last_log_term = 0;
};

struct vote_response_body {
  std::uint64_t term = 0;
  bool granted = false;
};

struct append_request_body {
  std::uint64_t term = 0;
  std::int32_t leader = -1;
  std::uint64_t prev_index = 0;
  std::uint64_t prev_term = 0;
  std::uint64_t leader_commit = 0;
  std::vector<cmd::log_entry> entries;
};

struct append_response_body {
  std::uint64_t term = 0;
  bool success = false;
  /// On success: highest index now matching the primary's log. On
  /// refusal: the follower's commit index — a safe restart hint (the
  /// committed prefix always matches).
  std::uint64_t match_hint = 0;
  /// The follower cannot converge by appends (diverged registry or a
  /// seq gap); the primary must send a snapshot install.
  bool need_snapshot = false;
};

struct snapshot_request_body {
  std::uint64_t term = 0;
  std::int32_t leader = -1;
  std::uint64_t last_index = 0;
  std::uint64_t last_term = 0;
  std::string bytes;
};

struct snapshot_response_body {
  std::uint64_t term = 0;
  bool ok = false;
};

std::string encode(const vote_request_body& v) {
  cmd::byte_writer out;
  out.u64(v.term);
  out.i32(v.candidate);
  out.u64(v.last_log_index);
  out.u64(v.last_log_term);
  return out.take();
}

bool decode(std::string_view body, vote_request_body& v) {
  cmd::byte_reader in(body);
  return in.u64(v.term) && in.i32(v.candidate) && in.u64(v.last_log_index) &&
         in.u64(v.last_log_term) && in.exhausted();
}

std::string encode(const vote_response_body& v) {
  cmd::byte_writer out;
  out.u64(v.term);
  out.u8(v.granted ? 1 : 0);
  return out.take();
}

bool decode(std::string_view body, vote_response_body& v) {
  cmd::byte_reader in(body);
  std::uint8_t granted = 0;
  if (!in.u64(v.term) || !in.u8(granted) || !in.exhausted()) return false;
  v.granted = granted != 0;
  return true;
}

std::string encode(const append_request_body& a) {
  cmd::byte_writer out;
  out.u64(a.term);
  out.i32(a.leader);
  out.u64(a.prev_index);
  out.u64(a.prev_term);
  out.u64(a.leader_commit);
  out.u32(static_cast<std::uint32_t>(a.entries.size()));
  for (const cmd::log_entry& e : a.entries) {
    out.u64(e.term);
    cmd::encode_command(out, e.change);
  }
  return out.take();
}

bool decode(std::string_view body, append_request_body& a) {
  cmd::byte_reader in(body);
  std::uint32_t count = 0;
  if (!in.u64(a.term) || !in.i32(a.leader) || !in.u64(a.prev_index) ||
      !in.u64(a.prev_term) || !in.u64(a.leader_commit) || !in.u32(count) ||
      count > (1u << 16)) {
    return false;
  }
  a.entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    cmd::log_entry e;
    if (!in.u64(e.term) ||
        !cmd::decode_command(in, e.change, net::wire::max_key_bytes)) {
      return false;
    }
    a.entries.push_back(std::move(e));
  }
  return in.exhausted();
}

std::string encode(const append_response_body& a) {
  cmd::byte_writer out;
  out.u64(a.term);
  out.u8(a.success ? 1 : 0);
  out.u64(a.match_hint);
  out.u8(a.need_snapshot ? 1 : 0);
  return out.take();
}

bool decode(std::string_view body, append_response_body& a) {
  cmd::byte_reader in(body);
  std::uint8_t success = 0;
  std::uint8_t need_snapshot = 0;
  if (!in.u64(a.term) || !in.u8(success) || !in.u64(a.match_hint) ||
      !in.u8(need_snapshot) || !in.exhausted()) {
    return false;
  }
  a.success = success != 0;
  a.need_snapshot = need_snapshot != 0;
  return true;
}

std::string encode(const snapshot_request_body& s) {
  cmd::byte_writer out;
  out.u64(s.term);
  out.i32(s.leader);
  out.u64(s.last_index);
  out.u64(s.last_term);
  out.str(s.bytes);
  return out.take();
}

bool decode(std::string_view body, snapshot_request_body& s) {
  cmd::byte_reader in(body);
  return in.u64(s.term) && in.i32(s.leader) && in.u64(s.last_index) &&
         in.u64(s.last_term) && in.str(s.bytes, net::wire::max_frame_bytes) &&
         in.exhausted();
}

std::string encode(const snapshot_response_body& s) {
  cmd::byte_writer out;
  out.u64(s.term);
  out.u8(s.ok ? 1 : 0);
  return out.take();
}

bool decode(std::string_view body, snapshot_response_body& s) {
  cmd::byte_reader in(body);
  std::uint8_t ok = 0;
  if (!in.u64(s.term) || !in.u8(ok) || !in.exhausted()) return false;
  s.ok = ok != 0;
  return true;
}

/// Per-append batch bounds: cap entries and bytes well under the 1 MiB
/// frame limit so the envelope always fits.
constexpr std::size_t max_batch_entries = 256;
constexpr std::size_t max_batch_bytes = 128 * 1024;

/// Room the snapshot envelope needs inside one frame besides the bytes.
constexpr std::size_t snapshot_envelope_slack = 512;

std::uint64_t to_ns(std::chrono::steady_clock::duration d) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(d).count());
}

}  // namespace

std::string_view to_string(role r) {
  switch (r) {
    case role::follower: return "follower";
    case role::candidate: return "candidate";
    case role::primary: return "primary";
  }
  return "unknown";
}

node::node(cluster_config config, svc::service& service)
    : config_(std::move(config)),
      service_(service),
      committed_shard_seq_(
          static_cast<std::size_t>(service.registry().shard_count()), 0),
      floors_(static_cast<std::size_t>(service.registry().shard_count()), 0),
      rng_(config_.seed ^
           (0x9E3779B97F4A7C15ull *
            static_cast<std::uint64_t>(config_.self + 1))) {
  const auto config_error = config_.validate();
  ELECT_CHECK_MSG(!config_error.has_value(), config_error.value_or(""));
  ELECT_CHECK_MSG(service_.registry().command_log_enabled(),
                  "repl::node needs service_config.record_commands: the "
                  "drain path reads the registry's command log");
  load_vote_state();
  // Every member boots as a follower: no local lease expiry until this
  // node wins a term.
  service_.set_sweeper_suspended(true);
}

node::~node() { stop(); }

void node::start() {
  service_.set_commit_gate(
      [this](const std::string& key) { return wait_committed(key); });
  for (int m = 0; m < static_cast<int>(config_.members.size()); ++m) {
    if (m == config_.self) continue;
    workers_.push_back(std::make_unique<peer_worker>(
        m, config_.members[static_cast<std::size_t>(m)],
        config_.peer_io_timeout_ms));
    vote_channels_.push_back(std::make_unique<peer_channel>(
        config_.members[static_cast<std::size_t>(m)],
        config_.peer_io_timeout_ms));
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    reset_election_deadline_locked();
  }
  ticker_ = std::thread([this] { ticker_main(); });
  for (auto& w : workers_) {
    peer_worker* wp = w.get();
    w->thread = std::thread([this, wp] { worker_main(*wp); });
  }
}

void node::stop() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  tick_cv_.notify_all();
  work_cv_.notify_all();
  commit_cv_.notify_all();
  if (ticker_.joinable()) ticker_.join();
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

bool node::is_primary() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return role_ == role::primary;
}

std::string node::primary_endpoint() const {
  const std::lock_guard<std::mutex> lock(mu_);
  if (leader_ < 0 || leader_ >= static_cast<int>(config_.members.size())) {
    return {};
  }
  return config_.members[static_cast<std::size_t>(leader_)].to_string();
}

std::uint64_t node::current_term() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return term_;
}

std::uint64_t node::commit_index() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return commit_index_;
}

node_counters node::counters() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

// --- Vote persistence ---------------------------------------------------
//
// The one-shot-per-term vote must survive a restart, or a rebooted
// member could hand the same term to two candidates. Tiny text file,
// tmp + rename, fsync'd — the same durability idiom as the server's
// snapshot files.

void node::load_vote_state() {
  if (config_.state_dir.empty()) return;
  const std::string path =
      config_.state_dir + "/repl_vote_" + std::to_string(config_.self);
  FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return;
  unsigned long long term = 0;
  int voted = -1;
  if (std::fscanf(f, "v1 %llu %d", &term, &voted) == 2) {
    term_ = term;
    voted_for_ = voted;
  }
  std::fclose(f);
}

void node::persist_vote_locked() {
  if (config_.state_dir.empty()) return;
  const std::string path =
      config_.state_dir + "/repl_vote_" + std::to_string(config_.self);
  const std::string tmp = path + ".tmp";
  FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return;
  std::fprintf(f, "v1 %llu %d\n",
               static_cast<unsigned long long>(term_), voted_for_);
  std::fflush(f);
  ::fsync(fileno(f));
  std::fclose(f);
  (void)std::rename(tmp.c_str(), path.c_str());
}

// --- Role transitions ---------------------------------------------------

void node::reset_election_deadline_locked() {
  std::uniform_int_distribution<std::uint64_t> pick(
      config_.election_timeout_min_ms, config_.election_timeout_max_ms);
  election_deadline_ = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(pick(rng_));
}

void node::step_down_locked(std::uint64_t new_term) {
  const bool was_primary = role_ == role::primary;
  if (was_primary) {
    // Ship any live-applied commands the ticker had not drained yet,
    // while term_ is still the term they were executed under. This
    // keeps log == registry at last_index across the demotion, so
    // applied_index_ stays truthful: a later append that would
    // truncate below it is a real divergence (needs_install_), and a
    // later re-promotion can keep the suffix without re-applying it.
    drain_locked();
  }
  if (new_term > term_) {
    term_ = new_term;
    voted_for_ = -1;
    leader_ = -1;
    persist_vote_locked();
  }
  if (role_ != role::follower) ++counters_.step_downs;
  role_ = role::follower;
  if (was_primary) {
    // Followers never expire leases locally — expiry is a mutation and
    // only the primary may originate mutations into the log.
    service_.set_sweeper_suspended(true);
  }
  reset_election_deadline_locked();
  // Gate waiters must bail: a deposed primary cannot ack anything.
  commit_cv_.notify_all();
}

void node::become_primary_locked(std::unique_lock<std::mutex>& lock) {
  role_ = role::primary;
  leader_ = config_.self;
  ++counters_.terms_won;
  // Keep the inherited suffix. Winning the vote's up-to-date check
  // means this log already holds every entry the dead primary could
  // have acked: a committed entry lives on a majority, and we out-ran
  // a majority to win. Entries past our own commit point may or may
  // not have committed — apply them to the registry exactly as the
  // live path would have (the seq filter skips anything a deposed
  // primary already executed), and let the new-term barrier below
  // commit them by replication. An unacked grant in the suffix
  // belongs to a session that died with the old primary, so the TTL
  // plus the fence jump retire it; an acked one is preserved — never
  // silently re-granted from epoch 0.
  apply_through_locked(log_.last_index(), /*committed=*/false);
  ELECT_CHECK_MSG(!needs_install_,
                  "promotion: registry diverged from this node's own log");
  // Barrier entry: asserts the new term at the log head, so this log
  // wins up-to-date comparisons against any deposed primary's stale
  // suffix, and gives heartbeats something to commit immediately —
  // and with it the whole inherited suffix (the current-term guard in
  // advance_commit_locked is what makes committing it safe).
  cmd::log_entry barrier;
  barrier.term = term_;
  barrier.change.shard = -1;
  log_.append(std::move(barrier));
  for (auto& w : workers_) {
    w->next_index = log_.last_index();
    w->match_index = 0;
    w->force_snapshot = false;
  }
  // Drain floors start at the registry's current watermarks: the
  // whole log (through the suffix just applied) is accounted for;
  // only post-promotion commands (the fence's epoch_bumped included)
  // ship from here.
  for (int s = 0; s < static_cast<int>(floors_.size()); ++s) {
    floors_[static_cast<std::size_t>(s)] = service_.registry().shard_last_seq(s);
  }

  // Fence and resume expiry outside the lock: fence_all takes every
  // shard lock and fires the command hook, and neither needs mu_.
  lock.unlock();
  service_.set_sweeper_suspended(false);
  (void)service_.registry().fence_all(config_.fence_bump);
  lock.lock();
  if (role_ == role::primary) {
    drain_locked();
    advance_commit_locked();
  }
  work_cv_.notify_all();
}

// --- The drain: registry command log -> replicated log ------------------

void node::drain_locked() {
  const auto fresh = service_.registry().collect_commands_after(floors_);
  if (fresh.empty()) return;
  for (const cmd::command& c : fresh) {
    floors_[static_cast<std::size_t>(c.shard)] = c.seq;
    cmd::log_entry e;
    e.term = term_;
    e.change = c;
    log_.append(std::move(e));
  }
  // Drained commands were already executed by the live registry; the
  // log has just caught up to it.
  applied_index_ = log_.last_index();
  work_cv_.notify_all();
}

void node::advance_commit_locked() {
  if (role_ != role::primary) return;
  std::vector<std::uint64_t> matches;
  matches.reserve(workers_.size() + 1);
  matches.push_back(log_.last_index());
  for (const auto& w : workers_) matches.push_back(w->match_index);
  std::sort(matches.begin(), matches.end(), std::greater<>());
  const std::uint64_t candidate =
      matches[static_cast<std::size_t>(config_.quorum() - 1)];
  if (candidate <= commit_index_) return;
  // Only entries of the current term commit by counting (the classic
  // Raft guard). This is what makes keeping the inherited suffix at
  // promotion safe: old-term entries never commit on their own — they
  // commit as the prefix of the first current-term entry (the
  // promotion barrier) that reaches a quorum.
  if (log_.term_at(candidate) != term_) return;
  for (std::uint64_t i = commit_index_ + 1; i <= candidate; ++i) {
    if (i < log_.first_index()) continue;  // compacted: long committed
    const cmd::command& c = log_.at(i).change;
    if (c.shard >= 0) {
      auto& seq = committed_shard_seq_[static_cast<std::size_t>(c.shard)];
      seq = std::max(seq, c.seq);
    }
  }
  commit_index_ = candidate;
  // The primary's registry is already ahead of the log (live path);
  // committed entries are never re-applied here.
  applied_index_ = std::max(applied_index_, commit_index_);
  commit_cv_.notify_all();
}

void node::maybe_compact_locked() {
  if (log_.size() < config_.compact_threshold) return;
  if (commit_index_ != log_.last_index()) return;
  // Quiescent and over threshold: the registry state IS the log at
  // commit_index_, so its snapshot is the compacted prefix. trim_log
  // also drops the registry's own retained commands (the floors are
  // already past them).
  auto bytes = service_.registry().snapshot(/*trim_log=*/true);
  const std::uint64_t term = log_.term_at(commit_index_);
  log_.compact_to(commit_index_, term, std::move(bytes));
  ++counters_.compactions;
}

// --- Commit gate --------------------------------------------------------

bool node::wait_committed(const std::string& key) {
  const auto start = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> lock(mu_);
  if (stop_ || role_ != role::primary) return false;
  drain_locked();
  advance_commit_locked();  // single-member clusters commit right here
  std::vector<std::pair<int, std::uint64_t>> targets;
  if (key.empty()) {
    const int shards = service_.registry().shard_count();
    targets.reserve(static_cast<std::size_t>(shards));
    for (int s = 0; s < shards; ++s) {
      targets.emplace_back(s, service_.registry().shard_last_seq(s));
    }
  } else {
    const int s = service_.registry().shard_of(key);
    targets.emplace_back(s, service_.registry().shard_last_seq(s));
  }
  const auto reached = [&] {
    for (const auto& [s, seq] : targets) {
      if (committed_shard_seq_[static_cast<std::size_t>(s)] < seq) {
        return false;
      }
    }
    return true;
  };
  work_cv_.notify_all();  // ship the batch now, not at the next heartbeat
  const auto deadline =
      start + std::chrono::milliseconds(config_.commit_wait_ms);
  (void)commit_cv_.wait_until(lock, deadline, [&] {
    return stop_ || role_ != role::primary || reached();
  });
  const bool ok = !stop_ && role_ == role::primary && reached();
  if (!ok) ++counters_.commit_timeouts;
  commit_latency_.add(to_ns(std::chrono::steady_clock::now() - start));
  return ok;
}

// --- Ticker: drain, heartbeat pacing, election timeouts -----------------

void node::ticker_main() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    tick_cv_.wait_for(lock, std::chrono::milliseconds(10),
                      [this] { return stop_; });
    if (stop_) return;
    if (role_ == role::primary) {
      // Drain on a timer too, so mutations with no client waiting on
      // them (expiry sweeps, watch-visible transitions) replicate
      // promptly.
      drain_locked();
      advance_commit_locked();
      maybe_compact_locked();
    } else if (std::chrono::steady_clock::now() >= election_deadline_) {
      if (needs_install_) {
        // A diverged registry must not stand for election: if it won,
        // it would serve state the cluster discarded. Whoever deposed
        // this node had a quorum at a term >= our stale suffix, so
        // some healthy peer can always win instead and reinstall us.
        reset_election_deadline_locked();
        continue;
      }
      lock.unlock();
      run_election();
      lock.lock();
    }
  }
}

void node::run_election() {
  std::uint64_t term = 0;
  vote_request_body ask;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stop_ || role_ == role::primary || needs_install_) return;
    // The cluster-scope test-and-set attempt: burn a fresh term, vote
    // for self (one-shot, persisted), solicit the rest.
    role_ = role::candidate;
    ++term_;
    voted_for_ = config_.self;
    leader_ = -1;
    persist_vote_locked();
    reset_election_deadline_locked();
    ++counters_.elections_started;
    term = term_;
    ask.term = term;
    ask.candidate = config_.self;
    ask.last_log_index = log_.last_index();
    ask.last_log_term = log_.last_term();
  }
  int votes = 1;  // own vote
  const auto won = [&] {
    std::unique_lock<std::mutex> lock(mu_);
    if (stop_ || term_ != term || role_ != role::candidate) return;
    become_primary_locked(lock);
  };
  if (votes >= config_.quorum()) {
    won();
    return;
  }
  for (auto& channel : vote_channels_) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (stop_ || term_ != term || role_ != role::candidate) return;
    }
    const auto resp = channel->call(op::peer_vote, encode(ask));
    if (!resp.has_value() || resp->result != status::ok) continue;
    vote_response_body granted;
    if (!decode(resp->body, granted)) continue;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (granted.term > term_) {
        step_down_locked(granted.term);
        return;
      }
      if (stop_ || term_ != term || role_ != role::candidate) return;
    }
    if (granted.granted) ++votes;
    if (votes >= config_.quorum()) {
      won();
      return;
    }
  }
  // Lost or split: the (randomized) election deadline already re-armed;
  // the ticker retries after it passes.
}

// --- Peer replication workers -------------------------------------------

void node::worker_main(peer_worker& w) {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (role_ != role::primary) {
      work_cv_.wait_for(lock,
                        std::chrono::milliseconds(config_.heartbeat_ms * 4));
      continue;
    }
    const bool behind =
        w.force_snapshot || w.next_index <= log_.last_index();
    if (!behind) {
      // Caught up: idle until poked (fresh entries, a gate waiter) or
      // the heartbeat interval passes — an empty append is the
      // heartbeat.
      work_cv_.wait_for(lock, std::chrono::milliseconds(config_.heartbeat_ms));
      if (stop_) return;
      if (role_ != role::primary) continue;
    }
    const std::uint64_t sent_failures = counters_.append_failures;
    replicate_once(w, lock);
    if (counters_.append_failures != sent_failures) {
      // The peer is unreachable; pace the retries at heartbeat cadence
      // instead of spinning on instant connection refusals.
      work_cv_.wait_for(lock, std::chrono::milliseconds(config_.heartbeat_ms));
    }
  }
}

void node::replicate_once(peer_worker& w,
                          std::unique_lock<std::mutex>& lock) {
  const std::uint64_t term = term_;
  op kind = op::peer_append;
  std::string body;
  std::uint64_t sent_prev = 0;
  std::size_t sent_count = 0;
  std::uint64_t snapshot_index = 0;
  bool heartbeat = false;

  if (w.force_snapshot || w.next_index < log_.first_index()) {
    snapshot_request_body snap;
    snap.term = term;
    snap.leader = config_.self;
    if (!log_.snapshot_bytes().empty() &&
        log_.snapshot_last_index() + 1 >= w.next_index) {
      // The compacted prefix covers the gap; entries follow it.
      snap.last_index = log_.snapshot_last_index();
      snap.last_term = log_.snapshot_last_term();
      snap.bytes.assign(log_.snapshot_bytes().begin(),
                        log_.snapshot_bytes().end());
    } else {
      // Fresh snapshot at the log head: after a drain the registry
      // state IS the log at last_index (any mutation racing the
      // snapshot lands in later entries the follower's seq filter
      // makes idempotent).
      drain_locked();
      auto bytes = service_.registry().snapshot(/*trim_log=*/false);
      snap.last_index = log_.last_index();
      snap.last_term = log_.last_term();
      snap.bytes.assign(bytes.begin(), bytes.end());
    }
    if (snap.bytes.size() + snapshot_envelope_slack >
        net::wire::max_frame_bytes) {
      // Cannot ship this state in one frame; count it as a failed
      // append so the worker backs off rather than spinning.
      ++counters_.append_failures;
      return;
    }
    snapshot_index = snap.last_index;
    body = encode(snap);
    kind = op::peer_snapshot;
  } else {
    append_request_body req;
    req.term = term;
    req.leader = config_.self;
    req.prev_index = w.next_index - 1;
    req.prev_term = log_.term_at(req.prev_index);
    req.leader_commit = commit_index_;
    std::size_t batch_bytes = 0;
    for (std::uint64_t i = w.next_index;
         i <= log_.last_index() && req.entries.size() < max_batch_entries &&
         batch_bytes < max_batch_bytes;
         ++i) {
      const cmd::log_entry& e = log_.at(i);
      batch_bytes += e.change.key.size() + 64;
      req.entries.push_back(e);
    }
    sent_prev = req.prev_index;
    sent_count = req.entries.size();
    heartbeat = sent_count == 0;
    body = encode(req);
  }

  lock.unlock();
  const auto resp = w.channel.call(kind, std::move(body));
  lock.lock();

  if (kind == op::peer_snapshot) {
    ++counters_.snapshots_sent;
  } else if (heartbeat) {
    ++counters_.heartbeats_sent;
  } else {
    ++counters_.appends_sent;
  }
  if (!resp.has_value() || resp->result != status::ok) {
    ++counters_.append_failures;
    return;
  }
  if (stop_ || term_ != term || role_ != role::primary) return;

  if (kind == op::peer_snapshot) {
    snapshot_response_body r;
    if (!decode(resp->body, r)) return;
    if (r.term > term_) {
      step_down_locked(r.term);
      return;
    }
    if (r.ok) {
      w.force_snapshot = false;
      w.match_index = std::max(w.match_index, snapshot_index);
      w.next_index = snapshot_index + 1;
      advance_commit_locked();
    }
    return;
  }

  append_response_body r;
  if (!decode(resp->body, r)) return;
  if (r.term > term_) {
    step_down_locked(r.term);
    return;
  }
  if (r.need_snapshot) w.force_snapshot = true;
  if (r.success) {
    w.match_index = std::max(w.match_index, sent_prev + sent_count);
    w.next_index = w.match_index + 1;
    counters_.entries_replicated += sent_count;
    advance_commit_locked();
  } else if (!r.need_snapshot) {
    // Backtrack toward the follower's committed prefix (the hint); the
    // committed prefix always matches, so hint + 1 is a safe restart.
    const std::uint64_t fallback = w.next_index > 1 ? w.next_index - 1 : 1;
    w.next_index = std::max<std::uint64_t>(
        1, std::min(fallback, r.match_hint + 1));
  }
}

// --- Peer-op service (the follower/voter side) --------------------------

net::wire::response node::answer(const net::wire::request& r,
                                 net::wire::status s,
                                 std::string body) const {
  net::wire::response out;
  out.id = r.id;
  out.kind = r.kind;
  out.result = s;
  out.body = std::move(body);
  return out;
}

net::wire::response node::handle_peer(const net::wire::request& r) {
  switch (r.kind) {
    case op::peer_vote: return handle_vote(r);
    case op::peer_append: return handle_append(r);
    case op::peer_snapshot: return handle_snapshot(r);
    default: return answer(r, status::bad_request);
  }
}

net::wire::response node::handle_vote(const net::wire::request& r) {
  vote_request_body q;
  if (!decode(r.body, q)) return answer(r, status::bad_request);
  const std::lock_guard<std::mutex> lock(mu_);
  if (q.term > term_) step_down_locked(q.term);
  vote_response_body out;
  out.term = term_;
  if (q.term == term_ &&
      (voted_for_ == -1 || voted_for_ == q.candidate)) {
    // The log-up-to-date check: a winner must already hold every
    // committed entry, or replication could roll back acked grants.
    const bool up_to_date =
        q.last_log_term > log_.last_term() ||
        (q.last_log_term == log_.last_term() &&
         q.last_log_index >= log_.last_index());
    if (up_to_date) {
      out.granted = true;
      voted_for_ = q.candidate;
      persist_vote_locked();
      reset_election_deadline_locked();
    }
  }
  return answer(r, status::ok, encode(out));
}

net::wire::response node::handle_append(const net::wire::request& r) {
  append_request_body q;
  if (!decode(r.body, q)) return answer(r, status::bad_request);
  const std::lock_guard<std::mutex> lock(mu_);
  append_response_body out;
  if (q.term < term_) {
    out.term = term_;
    return answer(r, status::ok, encode(out));
  }
  if (q.term > term_) step_down_locked(q.term);
  if (role_ == role::primary) {
    // Two primaries in one term is impossible (one vote per member per
    // term); refuse defensively rather than corrupt state.
    out.term = term_;
    return answer(r, status::ok, encode(out));
  }
  role_ = role::follower;
  leader_ = q.leader;
  reset_election_deadline_locked();
  out.term = term_;

  if (needs_install_) {
    out.match_hint = commit_index_;
    out.need_snapshot = true;
    return answer(r, status::ok, encode(out));
  }
  if (q.prev_index > log_.last_index() ||
      log_.term_at(q.prev_index) != q.prev_term) {
    // Log mismatch: hint the committed prefix (always shared) so the
    // primary backtracks in one step instead of one index at a time.
    out.match_hint = commit_index_;
    return answer(r, status::ok, encode(out));
  }
  for (std::size_t k = 0; k < q.entries.size(); ++k) {
    const std::uint64_t idx = q.prev_index + 1 + k;
    if (idx < log_.first_index()) continue;  // compacted: committed
    if (idx <= log_.last_index()) {
      if (log_.term_at(idx) == q.entries[k].term) continue;  // already have
      if (idx <= applied_index_) {
        // Conflict below the apply watermark: this registry executed
        // entries the cluster discarded (we were installed a dead
        // primary's overreaching snapshot). Appends cannot fix it.
        needs_install_ = true;
        out.match_hint = commit_index_;
        out.need_snapshot = true;
        return answer(r, status::ok, encode(out));
      }
      log_.truncate_from(idx);  // a deposed primary's tail: discard
    }
    log_.append(q.entries[k]);
  }
  if (q.leader_commit > commit_index_) {
    commit_index_ = std::min(q.leader_commit, log_.last_index());
    apply_committed_locked();
  }
  out.success = true;
  out.match_hint = q.prev_index + q.entries.size();
  out.need_snapshot = needs_install_;  // apply may have hit a seq gap
  return answer(r, status::ok, encode(out));
}

void node::apply_committed_locked() {
  apply_through_locked(commit_index_, /*committed=*/true);
}

void node::apply_through_locked(std::uint64_t bound, bool committed) {
  while (applied_index_ < bound && !needs_install_) {
    const std::uint64_t idx = applied_index_ + 1;
    if (idx < log_.first_index()) {
      applied_index_ = log_.first_index() - 1;
      continue;
    }
    const cmd::command& c = log_.at(idx).change;
    if (c.shard >= 0) {
      // Seq filter: after a snapshot install the next appends can
      // overlap state the snapshot already contains — identical
      // commands, safe to skip. A seq *gap* is different: replay
      // validation rejects it, and only a fresh install can heal.
      if (c.seq > service_.registry().shard_last_seq(c.shard)) {
        const auto err = service_.registry().apply(c);
        if (err.has_value()) {
          needs_install_ = true;
          return;
        }
      }
      if (committed) {
        auto& seq = committed_shard_seq_[static_cast<std::size_t>(c.shard)];
        seq = std::max(seq, c.seq);
      }
    }
    applied_index_ = idx;
  }
}

net::wire::response node::handle_snapshot(const net::wire::request& r) {
  snapshot_request_body q;
  if (!decode(r.body, q)) return answer(r, status::bad_request);
  const std::lock_guard<std::mutex> lock(mu_);
  snapshot_response_body out;
  if (q.term < term_) {
    out.term = term_;
    return answer(r, status::ok, encode(out));
  }
  if (q.term > term_) step_down_locked(q.term);
  role_ = role::follower;
  leader_ = q.leader;
  reset_election_deadline_locked();
  out.term = term_;

  std::vector<std::uint8_t> bytes(q.bytes.begin(), q.bytes.end());
  const auto err = service_.registry().install_snapshot(bytes);
  if (err.has_value()) {
    // Shard-count mismatch or corruption: refusing leaves the primary
    // retrying, which is the observable we want for a misconfigured
    // member.
    return answer(r, status::ok, encode(out));
  }
  log_.reset_to(q.last_index, q.last_term, std::move(bytes));
  commit_index_ = q.last_index;
  applied_index_ = q.last_index;
  needs_install_ = false;
  for (int s = 0; s < static_cast<int>(committed_shard_seq_.size()); ++s) {
    committed_shard_seq_[static_cast<std::size_t>(s)] =
        service_.registry().shard_last_seq(s);
  }
  ++counters_.snapshots_installed;
  out.ok = true;
  return answer(r, status::ok, encode(out));
}

// --- Reporting ----------------------------------------------------------

std::string node::status_json() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{";
  out << "\"role\":\"" << to_string(role_) << "\",";
  out << "\"id\":" << config_.self << ",";
  out << "\"term\":" << term_ << ",";
  out << "\"leader_id\":" << leader_ << ",";
  out << "\"leader\":\""
      << (leader_ >= 0 && leader_ < static_cast<int>(config_.members.size())
              ? config_.members[static_cast<std::size_t>(leader_)].to_string()
              : std::string())
      << "\",";
  out << "\"self\":\""
      << config_.members[static_cast<std::size_t>(config_.self)].to_string()
      << "\",";
  out << "\"quorum\":" << config_.quorum() << ",";
  out << "\"commit_index\":" << commit_index_ << ",";
  out << "\"applied_index\":" << applied_index_ << ",";
  out << "\"last_index\":" << log_.last_index() << ",";
  out << "\"last_term\":" << log_.last_term() << ",";
  out << "\"log_entries\":" << log_.size() << ",";
  out << "\"snapshot_index\":" << log_.snapshot_last_index() << ",";
  out << "\"needs_install\":" << (needs_install_ ? "true" : "false") << ",";
  out << "\"members\":[";
  for (std::size_t m = 0; m < config_.members.size(); ++m) {
    if (m > 0) out << ",";
    out << "\"" << config_.members[m].to_string() << "\"";
  }
  out << "],";
  out << "\"peers\":[";
  for (std::size_t k = 0; k < workers_.size(); ++k) {
    if (k > 0) out << ",";
    out << "{\"member\":" << workers_[k]->member
        << ",\"match_index\":" << workers_[k]->match_index
        << ",\"next_index\":" << workers_[k]->next_index << ",\"lag\":"
        << (log_.last_index() > workers_[k]->match_index
                ? log_.last_index() - workers_[k]->match_index
                : 0)
        << "}";
  }
  out << "],";
  out << "\"commit_latency\":{\"count\":" << commit_latency_.count()
      << ",\"p50_ms\":" << commit_latency_.quantile(0.50) / 1e6
      << ",\"p99_ms\":" << commit_latency_.quantile(0.99) / 1e6 << "},";
  out << "\"counters\":{"
      << "\"elections_started\":" << counters_.elections_started
      << ",\"terms_won\":" << counters_.terms_won
      << ",\"step_downs\":" << counters_.step_downs
      << ",\"appends_sent\":" << counters_.appends_sent
      << ",\"append_failures\":" << counters_.append_failures
      << ",\"heartbeats_sent\":" << counters_.heartbeats_sent
      << ",\"entries_replicated\":" << counters_.entries_replicated
      << ",\"snapshots_sent\":" << counters_.snapshots_sent
      << ",\"snapshots_installed\":" << counters_.snapshots_installed
      << ",\"compactions\":" << counters_.compactions
      << ",\"commit_timeouts\":" << counters_.commit_timeouts << "}";
  out << "}";
  return out.str();
}

std::string node::prom_text() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "# TYPE elect_repl_is_primary gauge\n"
      << "elect_repl_is_primary " << (role_ == role::primary ? 1 : 0) << "\n";
  out << "# TYPE elect_repl_term gauge\n"
      << "elect_repl_term " << term_ << "\n";
  out << "# TYPE elect_repl_commit_index gauge\n"
      << "elect_repl_commit_index " << commit_index_ << "\n";
  out << "# TYPE elect_repl_last_index gauge\n"
      << "elect_repl_last_index " << log_.last_index() << "\n";
  out << "# TYPE elect_repl_log_entries gauge\n"
      << "elect_repl_log_entries " << log_.size() << "\n";
  out << "# TYPE elect_repl_replication_lag gauge\n";
  for (const auto& w : workers_) {
    const std::uint64_t lag = log_.last_index() > w->match_index
                                  ? log_.last_index() - w->match_index
                                  : 0;
    out << "elect_repl_replication_lag{peer=\"" << w->member << "\"} " << lag
        << "\n";
  }
  out << "# TYPE elect_repl_elections_started_total counter\n"
      << "elect_repl_elections_started_total " << counters_.elections_started
      << "\n";
  out << "# TYPE elect_repl_terms_won_total counter\n"
      << "elect_repl_terms_won_total " << counters_.terms_won << "\n";
  out << "# TYPE elect_repl_step_downs_total counter\n"
      << "elect_repl_step_downs_total " << counters_.step_downs << "\n";
  out << "# TYPE elect_repl_appends_sent_total counter\n"
      << "elect_repl_appends_sent_total " << counters_.appends_sent << "\n";
  out << "# TYPE elect_repl_append_failures_total counter\n"
      << "elect_repl_append_failures_total " << counters_.append_failures
      << "\n";
  out << "# TYPE elect_repl_heartbeats_sent_total counter\n"
      << "elect_repl_heartbeats_sent_total " << counters_.heartbeats_sent
      << "\n";
  out << "# TYPE elect_repl_entries_replicated_total counter\n"
      << "elect_repl_entries_replicated_total "
      << counters_.entries_replicated << "\n";
  out << "# TYPE elect_repl_snapshots_sent_total counter\n"
      << "elect_repl_snapshots_sent_total " << counters_.snapshots_sent
      << "\n";
  out << "# TYPE elect_repl_snapshots_installed_total counter\n"
      << "elect_repl_snapshots_installed_total "
      << counters_.snapshots_installed << "\n";
  out << "# TYPE elect_repl_commit_timeouts_total counter\n"
      << "elect_repl_commit_timeouts_total " << counters_.commit_timeouts
      << "\n";
  out << "# TYPE elect_repl_commit_latency_seconds summary\n"
      << "elect_repl_commit_latency_seconds_count " << commit_latency_.count()
      << "\n"
      << "elect_repl_commit_latency_seconds_sum "
      << static_cast<double>(commit_latency_.sum_ns()) / 1e9 << "\n";
  return out.str();
}

}  // namespace elect::repl
