// elect::repl — cluster membership and timing configuration.
//
// A cluster is a small, fixed list of "host:port" endpoints (the same
// ports the nodes' net::servers listen on — peer traffic shares the
// client listener and is told apart by op code), plus this node's index
// into that list. Membership is static for the process lifetime;
// rolling a new member means restarting with a new --cluster list.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace elect::repl {

struct endpoint {
  std::string host;
  std::uint16_t port = 0;

  /// Canonical "host:port" rendering (what not_primary redirects and
  /// cluster-status bodies carry).
  [[nodiscard]] std::string to_string() const {
    return host + ":" + std::to_string(port);
  }
};

/// Parse one "host:port". Empty on malformed input (missing colon,
/// empty host, port out of range).
[[nodiscard]] std::optional<endpoint> parse_endpoint(const std::string& s);

/// Parse a comma-separated endpoint list ("h1:p1,h2:p2,..."). Empty on
/// the first malformed element; an empty input yields an empty list.
[[nodiscard]] std::optional<std::vector<endpoint>> parse_endpoints(
    const std::string& s);

struct cluster_config {
  /// Every member, this node included, in a fixed order all members
  /// agree on (node ids are indices into this list).
  std::vector<endpoint> members;
  /// This node's index into `members`.
  int self = 0;
  /// How far epochs jump at promotion (registry fence_all): clears
  /// every epoch the deposed primary's uncommitted tail could have
  /// granted. Mirrors elect_server's restore fencing default.
  std::uint64_t fence_bump = 1ull << 20;
  /// Primary heartbeat interval (empty peer_append).
  std::uint64_t heartbeat_ms = 50;
  /// Election timeout range; each node draws uniformly per timeout so
  /// split votes decay (the randomized-retry half of the cluster-scope
  /// test-and-set).
  std::uint64_t election_timeout_min_ms = 300;
  std::uint64_t election_timeout_max_ms = 600;
  /// Per-peer-call socket bound (connect + send + receive each).
  std::uint64_t peer_io_timeout_ms = 1000;
  /// How long the commit-before-ack gate waits for quorum before the
  /// op is answered `connection_lost`.
  std::uint64_t commit_wait_ms = 3000;
  /// Compact the replicated log into a snapshot once it holds this
  /// many entries (and everything is committed).
  std::uint64_t compact_threshold = 8192;
  /// Directory for the durable vote state ({term, voted_for} — the
  /// one-shot-per-term guarantee must survive a restart). Empty keeps
  /// it in memory: fine for tests and for chaos runs that respawn
  /// members fresh.
  std::string state_dir;
  /// Seeds the election-timeout RNG (xor'ed with `self` so members
  /// sharing a seed still desynchronize).
  std::uint64_t seed = 1;

  [[nodiscard]] int quorum() const noexcept {
    return static_cast<int>(members.size()) / 2 + 1;
  }

  /// Empty on success, else a description of the first problem.
  [[nodiscard]] std::optional<std::string> validate() const;
};

}  // namespace elect::repl
