// elect::repl::node — one member of a replicated election cluster.
//
// The paper's primitive is a one-shot test-and-set; the service stack
// multiplexes it per key; this layer runs the same shape once more at
// *cluster* scope to pick which machine is allowed to answer clients.
// A term is a cluster-wide epoch; becoming primary for a term is
// winning a one-shot test-and-set among the members (each member votes
// at most once per term, persisted so a restart cannot double-vote),
// with randomized retry timeouts playing the role the paper gives
// random choices: splitting contenders until exactly one survives. The
// log-up-to-date check on votes is the extra guard replication needs —
// a winner must already hold every committed entry.
//
// Data path: the primary's svc::service applies client ops to its
// registry immediately (the live path decides), and this node *drains*
// the resulting cmd::commands into a term-stamped replicated log
// (registry::collect_commands_after — per-shard floors advance
// monotonically, so each command ships exactly once). Followers append
// the entries, and apply them to their registries only once committed
// — the uncommitted suffix lives in the repl log alone, so a conflict
// truncation never has to claw state back out of a registry. An entry
// is committed when a quorum holds it; the commit-before-ack gate
// (wait_committed, installed as the service's commit gate) holds every
// client ack — grants *and renewals* — until the mutation's shard
// watermark is committed. A primary partitioned from its quorum
// therefore cannot confirm anything: its clients see
// `connection_lost` and demote, which is the real zombie-safety
// mechanism; the promotion-time fence (registry::fence_all with the
// configured bump) additionally jumps every epoch clear of whatever
// the deposed primary's uncommitted tail may have granted.
//
// Failover: a member that wins an election *keeps* its whole log —
// the up-to-date check on votes means the winner's log already
// contains every entry any quorum may have committed, so truncating
// to the local commit index could drop a grant a client was already
// acked for (and a fence that never sees the key cannot fence it).
// It applies the inherited suffix to its registry ahead of commit,
// appends a barrier entry at the new term (whose quorum replication
// commits the whole prefix — the current-term commit guard makes
// counting replicas safe), fences the registry, resumes the lease
// sweeper (only primaries decide expiry), and starts replicating. A
// deposed primary first drains its registry's pending commands into
// the log under the old term, so log and registry stay in lockstep
// across the demotion and it can stand in later elections; only an
// actual apply divergence (seq gap after compaction) marks a member
// needs-install, which bars it from candidacy until the primary's
// snapshot install rebases it.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "net/wire.hpp"
#include "repl/config.hpp"
#include "repl/log.hpp"
#include "repl/peer.hpp"
#include "svc/metrics.hpp"
#include "svc/service.hpp"

namespace elect::repl {

enum class role : std::uint8_t { follower, candidate, primary };

[[nodiscard]] std::string_view to_string(role r);

/// Monotonic event counters, readable via status_json()/prom_text().
struct node_counters {
  std::uint64_t elections_started = 0;
  std::uint64_t terms_won = 0;
  std::uint64_t step_downs = 0;
  std::uint64_t appends_sent = 0;
  std::uint64_t append_failures = 0;
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t entries_replicated = 0;
  std::uint64_t snapshots_sent = 0;
  std::uint64_t snapshots_installed = 0;
  std::uint64_t compactions = 0;
  std::uint64_t commit_timeouts = 0;
};

class node {
 public:
  /// The service must outlive the node and have been constructed with
  /// record_commands=true (the drain path reads the registry's command
  /// log). The node immediately suspends the service's lease sweeper —
  /// every member boots as a follower; only a promotion resumes it.
  node(cluster_config config, svc::service& service);
  ~node();

  node(const node&) = delete;
  node& operator=(const node&) = delete;

  /// Install the commit gate on the service and launch the ticker and
  /// per-peer replication threads.
  void start();

  /// Stop all threads. Idempotent; called by the destructor.
  void stop();

  [[nodiscard]] int id() const noexcept { return config_.self; }
  [[nodiscard]] const cluster_config& config() const noexcept {
    return config_;
  }

  /// Is this node the primary right now? (Advisory — may be deposed a
  /// moment later; the commit gate is what makes acting on a stale
  /// answer safe.)
  [[nodiscard]] bool is_primary() const;

  /// Best-known primary "host:port" for not_primary redirects; empty
  /// while no leader is known (mid-election).
  [[nodiscard]] std::string primary_endpoint() const;

  /// Serve one peer op (peer_vote / peer_append / peer_snapshot).
  /// Called from the net::server's executors; any malformed body gets
  /// `bad_request`.
  [[nodiscard]] net::wire::response handle_peer(const net::wire::request& r);

  /// The commit-before-ack gate (service::set_commit_gate target):
  /// drain the registry's fresh commands into the log, then block
  /// until the mutated shard's watermark (every shard for an empty
  /// key) is quorum-committed. False on timeout, step-down, or stop —
  /// the service answers the client `connection_lost`.
  [[nodiscard]] bool wait_committed(const std::string& key);

  /// Cluster status as a JSON object (admin_cluster_status body, and
  /// the service report's "repl" section).
  [[nodiscard]] std::string status_json() const;

  /// Prometheus rendering of role/term/commit/lag/counters.
  [[nodiscard]] std::string prom_text() const;

  // Test/bench introspection.
  [[nodiscard]] std::uint64_t current_term() const;
  [[nodiscard]] std::uint64_t commit_index() const;
  [[nodiscard]] node_counters counters() const;

 private:
  /// Replication state for one other member, driven by its own thread
  /// (the channel blocks on socket I/O; one thread per peer keeps a
  /// slow follower from stalling the rest).
  struct peer_worker {
    int member = -1;
    peer_channel channel;
    std::uint64_t next_index = 1;
    std::uint64_t match_index = 0;
    /// The follower asked for a snapshot (divergence or seq gap).
    bool force_snapshot = false;
    std::thread thread;

    peer_worker(int m, endpoint ep, std::uint64_t timeout_ms)
        : member(m), channel(std::move(ep), timeout_ms) {}
  };

  void ticker_main();
  void worker_main(peer_worker& w);
  /// One replication round against `w`: build an append (or snapshot)
  /// under the lock, call over the wire unlocked, fold the response
  /// back in. Returns false when there is nothing to do but heartbeat.
  void replicate_once(peer_worker& w, std::unique_lock<std::mutex>& lock);
  void run_election();

  // All *_locked members require mu_.
  void drain_locked();
  void advance_commit_locked();
  void maybe_compact_locked();
  void become_primary_locked(std::unique_lock<std::mutex>& lock);
  void step_down_locked(std::uint64_t new_term);
  void apply_committed_locked();
  /// Apply log entries up to `bound` into the registry (seq-filtered).
  /// `committed` advances the committed shard watermarks too; promotion
  /// passes false for the inherited, not-yet-committed suffix.
  void apply_through_locked(std::uint64_t bound, bool committed);
  void reset_election_deadline_locked();
  void persist_vote_locked();
  void load_vote_state();
  [[nodiscard]] net::wire::response answer(const net::wire::request& r,
                                           net::wire::status s,
                                           std::string body = {}) const;
  net::wire::response handle_vote(const net::wire::request& r);
  net::wire::response handle_append(const net::wire::request& r);
  net::wire::response handle_snapshot(const net::wire::request& r);

  cluster_config config_;
  svc::service& service_;

  mutable std::mutex mu_;
  /// Signalled on commit advance, step-down, and stop — the commit
  /// gate's wait condition.
  std::condition_variable commit_cv_;
  /// Pokes the peer workers (fresh entries to ship, or stop).
  std::condition_variable work_cv_;
  /// Pokes the ticker (stop).
  std::condition_variable tick_cv_;

  role role_ = role::follower;
  std::uint64_t term_ = 0;
  int voted_for_ = -1;
  /// Best-known leader (member index), -1 while unknown.
  int leader_ = -1;
  replicated_log log_;
  std::uint64_t commit_index_ = 0;
  /// Follower apply watermark (== commit_index_ on a healthy member).
  std::uint64_t applied_index_ = 0;
  /// Highest quorum-committed registry seq per shard — what the commit
  /// gate compares against shard_last_seq.
  std::vector<std::uint64_t> committed_shard_seq_;
  /// Drain floors per shard (primary only): last registry seq already
  /// appended to the log.
  std::vector<std::uint64_t> floors_;
  /// Set on a deposed primary whose registry may exceed the committed
  /// prefix: appends are refused with need_snapshot until the new
  /// primary's snapshot install rebases the registry.
  bool needs_install_ = false;
  std::chrono::steady_clock::time_point election_deadline_{};
  std::mt19937_64 rng_;
  bool stop_ = false;
  node_counters counters_;
  svc::latency_histogram commit_latency_;

  std::vector<std::unique_ptr<peer_worker>> workers_;
  /// Vote channels, owned by the ticker thread (elections are
  /// sequential; replication channels stay dedicated to their workers).
  std::vector<std::unique_ptr<peer_channel>> vote_channels_;
  std::thread ticker_;
};

}  // namespace elect::repl
