// One synchronous peer channel: the socket a cluster node uses to talk
// to one other member.
//
// Peer traffic shares the member's normal net::server listener (same
// wire framing, same hello handshake, new op range), so a peer channel
// is just a very small blocking client: one socket, one in-flight call
// at a time, SO_RCVTIMEO/SO_SNDTIMEO-bounded waits, reconnect on the
// next call after any failure. Replication tolerates lost calls — a
// failed append is retried by the next heartbeat, a failed vote just
// isn't granted — so the channel never buffers or retries internally.
//
// Not thread-safe: each caller (a peer replication thread, or the
// ticker running an election) owns its own channel.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/wire.hpp"
#include "repl/config.hpp"

namespace elect::repl {

class peer_channel {
 public:
  peer_channel(endpoint target, std::uint64_t io_timeout_ms)
      : target_(std::move(target)), io_timeout_ms_(io_timeout_ms) {}
  ~peer_channel() { sever(); }

  peer_channel(const peer_channel&) = delete;
  peer_channel& operator=(const peer_channel&) = delete;

  /// Send one peer op and wait (bounded) for its response. Connects —
  /// including the hello version handshake — on demand. Empty on any
  /// transport failure or timeout; the socket is then severed and the
  /// next call reconnects from scratch.
  [[nodiscard]] std::optional<net::wire::response> call(net::wire::op kind,
                                                        std::string body);

  [[nodiscard]] const endpoint& target() const noexcept { return target_; }
  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

 private:
  [[nodiscard]] bool ensure_connected();
  void sever();

  endpoint target_;
  std::uint64_t io_timeout_ms_;
  int fd_ = -1;
  std::uint64_t next_id_ = 1;
};

}  // namespace elect::repl
