// The replicated log: a dense run of term-stamped entries over a
// compacted prefix.
//
// Indices are 1-based and never reused. Compaction replaces the prefix
// [1, snap_last_index] with a registry snapshot (the bytes of
// svc::instance_registry::snapshot() at exactly that point); the
// in-memory vector then holds (snap_last_index, last_index]. The
// structure is not thread-safe — repl::node guards it with its own
// mutex.
#pragma once

#include <cstdint>
#include <vector>

#include "cmd/log_entry.hpp"

namespace elect::repl {

class replicated_log {
 public:
  /// Index of the last entry (0 when empty and never compacted).
  [[nodiscard]] std::uint64_t last_index() const noexcept {
    return snap_last_index_ + entries_.size();
  }

  /// Term of the entry at `index`; the snapshot's last term at the
  /// compaction boundary, 0 below it or above last_index().
  [[nodiscard]] std::uint64_t term_at(std::uint64_t index) const noexcept {
    if (index == snap_last_index_) return snap_last_term_;
    if (index <= snap_last_index_ || index > last_index()) return 0;
    return entries_[static_cast<std::size_t>(index - snap_last_index_ - 1)]
        .term;
  }

  [[nodiscard]] std::uint64_t last_term() const noexcept {
    return term_at(last_index());
  }

  /// First index still present as an entry (compacted ones are gone).
  [[nodiscard]] std::uint64_t first_index() const noexcept {
    return snap_last_index_ + 1;
  }

  [[nodiscard]] const cmd::log_entry& at(std::uint64_t index) const {
    return entries_[static_cast<std::size_t>(index - snap_last_index_ - 1)];
  }

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  void append(cmd::log_entry entry) {
    entries_.push_back(std::move(entry));
  }

  /// Drop every entry at or above `index` (conflict resolution: a new
  /// primary's history wins). No-op when index > last_index().
  void truncate_from(std::uint64_t index) {
    if (index <= snap_last_index_) {
      entries_.clear();
      return;
    }
    const std::uint64_t keep = index - snap_last_index_ - 1;
    if (keep < entries_.size()) {
      entries_.resize(static_cast<std::size_t>(keep));
    }
  }

  /// Entries in (from, to], for building one append batch.
  [[nodiscard]] std::vector<cmd::log_entry> slice(std::uint64_t from,
                                                  std::uint64_t to) const {
    std::vector<cmd::log_entry> out;
    for (std::uint64_t i = from + 1; i <= to && i <= last_index(); ++i) {
      out.push_back(at(i));
    }
    return out;
  }

  /// Replace the prefix [1, index] with `snapshot_bytes` taken at
  /// exactly that point. `index` must be <= last_index().
  void compact_to(std::uint64_t index, std::uint64_t term,
                  std::vector<std::uint8_t> snapshot_bytes) {
    if (index <= snap_last_index_) return;
    const std::uint64_t drop = index - snap_last_index_;
    entries_.erase(entries_.begin(),
                   entries_.begin() + static_cast<std::ptrdiff_t>(drop));
    snap_last_index_ = index;
    snap_last_term_ = term;
    snapshot_ = std::move(snapshot_bytes);
  }

  /// Discard everything and restart the log from an installed snapshot
  /// (follower side of peer_snapshot).
  void reset_to(std::uint64_t index, std::uint64_t term,
                std::vector<std::uint8_t> snapshot_bytes) {
    entries_.clear();
    snap_last_index_ = index;
    snap_last_term_ = term;
    snapshot_ = std::move(snapshot_bytes);
  }

  [[nodiscard]] std::uint64_t snapshot_last_index() const noexcept {
    return snap_last_index_;
  }
  [[nodiscard]] std::uint64_t snapshot_last_term() const noexcept {
    return snap_last_term_;
  }
  [[nodiscard]] const std::vector<std::uint8_t>& snapshot_bytes()
      const noexcept {
    return snapshot_;
  }

 private:
  std::vector<cmd::log_entry> entries_;
  std::uint64_t snap_last_index_ = 0;
  std::uint64_t snap_last_term_ = 0;
  /// Registry snapshot at snap_last_index_ (empty when never compacted).
  std::vector<std::uint8_t> snapshot_;
};

}  // namespace elect::repl
