#include "repl/config.hpp"

namespace elect::repl {

std::optional<endpoint> parse_endpoint(const std::string& s) {
  const std::size_t colon = s.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= s.size()) {
    return std::nullopt;
  }
  endpoint ep;
  ep.host = s.substr(0, colon);
  unsigned long port = 0;
  for (std::size_t i = colon + 1; i < s.size(); ++i) {
    const char c = s[i];
    if (c < '0' || c > '9') return std::nullopt;
    port = port * 10 + static_cast<unsigned long>(c - '0');
    if (port > 65535) return std::nullopt;
  }
  if (port == 0) return std::nullopt;
  ep.port = static_cast<std::uint16_t>(port);
  return ep;
}

std::optional<std::vector<endpoint>> parse_endpoints(const std::string& s) {
  std::vector<endpoint> out;
  std::size_t start = 0;
  while (start < s.size()) {
    std::size_t end = s.find(',', start);
    if (end == std::string::npos) end = s.size();
    const auto ep = parse_endpoint(s.substr(start, end - start));
    if (!ep.has_value()) return std::nullopt;
    out.push_back(*ep);
    start = end + 1;
  }
  return out;
}

std::optional<std::string> cluster_config::validate() const {
  if (members.empty()) return "cluster_config.members is empty";
  if (self < 0 || self >= static_cast<int>(members.size())) {
    return "cluster_config.self=" + std::to_string(self) +
           " is not an index into the " + std::to_string(members.size()) +
           "-member list";
  }
  if (fence_bump == 0) return "cluster_config.fence_bump must be >= 1";
  if (heartbeat_ms == 0) return "cluster_config.heartbeat_ms must be >= 1";
  if (election_timeout_min_ms == 0 ||
      election_timeout_max_ms < election_timeout_min_ms) {
    return "cluster_config election timeout range is empty (min " +
           std::to_string(election_timeout_min_ms) + ", max " +
           std::to_string(election_timeout_max_ms) + ")";
  }
  if (election_timeout_min_ms <= heartbeat_ms * 2) {
    return "cluster_config.election_timeout_min_ms must exceed twice the "
           "heartbeat interval, or healthy primaries get deposed on every "
           "scheduling hiccup";
  }
  if (peer_io_timeout_ms == 0) {
    return "cluster_config.peer_io_timeout_ms must be >= 1";
  }
  if (commit_wait_ms == 0) return "cluster_config.commit_wait_ms must be >= 1";
  if (compact_threshold == 0) {
    return "cluster_config.compact_threshold must be >= 1";
  }
  return std::nullopt;
}

}  // namespace elect::repl
