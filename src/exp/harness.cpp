#include "exp/harness.hpp"

#include <algorithm>
#include <memory>

#include "adversary/crash.hpp"
#include "adversary/registry.hpp"
#include "election/het_poison_pill.hpp"
#include "election/leader_elect.hpp"
#include "election/poison_pill.hpp"
#include "election/recursive_pill.hpp"
#include "election/sifter.hpp"
#include "election/tournament.hpp"
#include "engine/node.hpp"
#include "renaming/baseline_renaming.hpp"
#include "renaming/renaming.hpp"
#include "sim/kernel.hpp"

namespace elect::exp {

std::string to_string(algo a) {
  switch (a) {
    case algo::leader_elect:
      return "leader-elect";
    case algo::recursive_pill:
      return "recursive-pill";
    case algo::tournament:
      return "tournament";
    case algo::plain_pp_phase:
      return "poisonpill-phase";
    case algo::het_pp_phase:
      return "het-poisonpill-phase";
    case algo::naive_sifter:
      return "naive-sifter";
    case algo::renaming:
      return "renaming";
    case algo::baseline_renaming:
      return "baseline-renaming";
  }
  return "invalid";
}

namespace {

engine::task<std::int64_t> protocol_for(algo kind, engine::node& node,
                                        double bias) {
  switch (kind) {
    case algo::leader_elect:
      return engine::erase_result(election::leader_elect(node));
    case algo::recursive_pill:
      return engine::erase_result(election::recursive_pill_elect(
          node, election::recursive_pill_params{}));
    case algo::tournament:
      return engine::erase_result(
          election::tournament_elect(node, election::tournament_params{}));
    case algo::plain_pp_phase: {
      election::poison_pill_params params;
      params.high_priority_bias = bias;
      return engine::erase_result(election::poison_pill(node, params));
    }
    case algo::het_pp_phase:
      return engine::erase_result(election::het_poison_pill(
          node, election::het_poison_pill_params{}));
    case algo::naive_sifter: {
      election::sifter_params params;
      params.bias = bias;
      return engine::erase_result(election::naive_sifter_round(node, params));
    }
    case algo::renaming:
      return renaming::get_name(node, renaming::renaming_params{});
    case algo::baseline_renaming:
      return renaming::get_name_baseline(
          node, renaming::baseline_renaming_params{});
  }
  ELECT_CHECK_MSG(false, "invalid algo");
  return {};
}

/// WIN for elections, SURVIVE for phases — the "success" outcome value.
std::int64_t success_value(algo kind) {
  switch (kind) {
    case algo::leader_elect:
    case algo::recursive_pill:
    case algo::tournament:
      return static_cast<std::int64_t>(election::tas_result::win);
    case algo::plain_pp_phase:
    case algo::het_pp_phase:
    case algo::naive_sifter:
      return static_cast<std::int64_t>(election::pp_result::survive);
    case algo::renaming:
    case algo::baseline_renaming:
      return -2;  // every completed rename "succeeds"; handled separately
  }
  return -2;
}

}  // namespace

trial_result run_trial(const trial_config& config) {
  const int k = config.participants > 0 ? config.participants : config.n;
  ELECT_CHECK(k >= 1 && k <= config.n);

  std::unique_ptr<sim::adversary> adv =
      adversary::make(config.adversary, config.n);
  if (config.crashes > 0) {
    adversary::crash_config crash;
    crash.crashes = std::min(config.crashes, max_crash_faults(config.n));
    adv = std::make_unique<adversary::crash_injector>(std::move(adv), crash);
  }

  sim::kernel_config kernel_config;
  kernel_config.n = config.n;
  kernel_config.seed = config.seed;
  kernel_config.max_events = config.max_events;
  sim::kernel kernel(kernel_config, *adv);

  for (process_id pid = 0; pid < k; ++pid) {
    kernel.attach(pid,
                  protocol_for(config.kind, kernel.node_at(pid), config.bias));
  }
  const auto run = kernel.run();

  trial_result result;
  result.completed = run.completed;
  result.events = run.events;
  const engine::metrics& metrics = kernel.metrics();
  result.total_messages = metrics.total_messages();
  result.request_messages = metrics.requests_sent;
  result.wire_bytes = metrics.wire_bytes;
  result.trace_hash = kernel.trace_hash();

  std::uint64_t sum_calls = 0;
  const std::int64_t success = success_value(config.kind);
  for (process_id pid = 0; pid < k; ++pid) {
    const engine::node& node = kernel.node_at(pid);
    const auto calls =
        metrics.communicate_calls[static_cast<std::size_t>(pid)];
    result.max_communicate_calls =
        std::max(result.max_communicate_calls, calls);
    sum_calls += calls;

    if (kernel.crashed(pid)) {
      result.crashed_participants++;
      result.outcomes.push_back(-1);
    } else if (node.protocol_done()) {
      const std::int64_t outcome = node.protocol_result();
      result.outcomes.push_back(outcome);
      const bool renamed = config.kind == algo::renaming ||
                           config.kind == algo::baseline_renaming;
      if (renamed || outcome == success) result.winners++;
      if (outcome == success && node.probe().coin == 0) {
        result.zero_flip_survivors++;
      }
    } else {
      result.outcomes.push_back(-1);
    }
    if (node.probe().coin == 1) result.one_flippers++;
    result.rounds.push_back(node.probe().round);
    result.iterations.push_back(node.probe().iterations);
  }
  result.mean_communicate_calls =
      static_cast<double>(sum_calls) / static_cast<double>(k);
  return result;
}

trial_aggregate run_trials(trial_config config, int trials) {
  trial_aggregate aggregate;
  aggregate.trials = trials;
  for (int t = 0; t < trials; ++t) {
    trial_config c = config;
    c.seed = config.seed + static_cast<std::uint64_t>(t);
    const trial_result r = run_trial(c);
    if (!r.completed) {
      aggregate.incomplete++;
      continue;
    }
    aggregate.max_comm_calls.add(
        static_cast<double>(r.max_communicate_calls));
    aggregate.total_messages.add(static_cast<double>(r.total_messages));
    aggregate.wire_bytes.add(static_cast<double>(r.wire_bytes));
    aggregate.winners.add(static_cast<double>(r.winners));
    aggregate.zero_flip_survivors.add(
        static_cast<double>(r.zero_flip_survivors));
    aggregate.one_flippers.add(static_cast<double>(r.one_flippers));
    const auto max_round =
        r.rounds.empty()
            ? 0.0
            : static_cast<double>(
                  *std::max_element(r.rounds.begin(), r.rounds.end()));
    aggregate.max_round.add(max_round);
    const auto max_iter =
        r.iterations.empty()
            ? 0.0
            : static_cast<double>(*std::max_element(r.iterations.begin(),
                                                    r.iterations.end()));
    aggregate.max_iterations.add(max_iter);
  }
  return aggregate;
}

}  // namespace elect::exp
