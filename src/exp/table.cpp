#include "exp/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace elect::exp {

table::table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void table::add_row(std::vector<std::string> cells) {
  ELECT_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  const auto pad = [&](const std::string& s, std::size_t w) {
    return s + std::string(w - s.size(), ' ');
  };
  out << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << " " << pad(headers_[c], widths[c]) << " |";
  }
  out << "\n|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << "|";
  }
  out << "\n";
  for (const auto& row : rows_) {
    out << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << " " << pad(row[c], widths[c]) << " |";
    }
    out << "\n";
  }
}

namespace {

/// True iff the whole cell is a number under the JSON grammar (strtod is
/// too permissive: it also accepts hex, "+1", ".5", "1.", "inf", ...).
bool is_number(const std::string& cell) {
  const char* p = cell.c_str();
  const char* const end = p + cell.size();
  const auto digit = [](char c) { return c >= '0' && c <= '9'; };
  if (p != end && *p == '-') ++p;
  if (p == end) return false;
  if (*p == '0') {
    ++p;
  } else if (digit(*p)) {
    while (p != end && digit(*p)) ++p;
  } else {
    return false;
  }
  if (p != end && *p == '.') {
    ++p;
    if (p == end || !digit(*p)) return false;
    while (p != end && digit(*p)) ++p;
  }
  if (p != end && (*p == 'e' || *p == 'E')) {
    ++p;
    if (p != end && (*p == '+' || *p == '-')) ++p;
    if (p == end || !digit(*p)) return false;
    while (p != end && digit(*p)) ++p;
  }
  return p == end;
}

void print_json_string(std::ostream& out, const std::string& s) {
  out << '"' << json_escape(s) << '"';
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned char>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void table::print_json(std::ostream& out) const {
  out << "[";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (r > 0) out << ",";
    out << "{";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c > 0) out << ",";
      print_json_string(out, headers_[c]);
      out << ":";
      if (is_number(rows_[r][c])) {
        out << rows_[r][c];
      } else {
        print_json_string(out, rows_[r][c]);
      }
    }
    out << "}";
  }
  out << "]";
}

std::string fmt(double value, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << value;
  return out.str();
}

std::string fmt_int(double value) {
  std::ostringstream out;
  out << static_cast<long long>(std::llround(value));
  return out.str();
}

std::string fmt_ci(double mean, double halfwidth, int precision) {
  return fmt(mean, precision) + " ± " + fmt(halfwidth, precision);
}

}  // namespace elect::exp
