#include "exp/table.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace elect::exp {

table::table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void table::add_row(std::vector<std::string> cells) {
  ELECT_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  const auto pad = [&](const std::string& s, std::size_t w) {
    return s + std::string(w - s.size(), ' ');
  };
  out << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << " " << pad(headers_[c], widths[c]) << " |";
  }
  out << "\n|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << "|";
  }
  out << "\n";
  for (const auto& row : rows_) {
    out << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << " " << pad(row[c], widths[c]) << " |";
    }
    out << "\n";
  }
}

std::string fmt(double value, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << value;
  return out.str();
}

std::string fmt_int(double value) {
  std::ostringstream out;
  out << static_cast<long long>(std::llround(value));
  return out.str();
}

std::string fmt_ci(double mean, double halfwidth, int precision) {
  return fmt(mean, precision) + " ± " + fmt(halfwidth, precision);
}

}  // namespace elect::exp
