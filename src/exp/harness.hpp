// Experiment harness: run one algorithm on the simulator under a chosen
// adversary and extract the complexity metrics the paper's claims are
// stated in. Every bench binary (bench/) is a thin driver over this.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace elect::exp {

/// Which algorithm a trial runs.
enum class algo {
  leader_elect,       ///< Figure 6 (the paper's algorithm)
  recursive_pill,     ///< §3.1's recursive plain-pill O(log log n) variant
  tournament,         ///< [AGTV92] baseline
  plain_pp_phase,     ///< one Figure-1 PoisonPill phase
  het_pp_phase,       ///< one Figure-2 Heterogeneous PoisonPill phase
  naive_sifter,       ///< one commit-less sifting round (intro strawman)
  renaming,           ///< Figure 3
  baseline_renaming,  ///< [AAG+10] random-order probing
};

[[nodiscard]] std::string to_string(algo a);

struct trial_config {
  algo kind = algo::leader_elect;
  int n = 8;
  /// Number of participants k (first k processors); <= 0 means n.
  int participants = -1;
  std::uint64_t seed = 1;
  /// Adversary name (adversary/registry.hpp).
  std::string adversary = "uniform";
  /// If > 0, wrap the adversary with a crash injector for this many
  /// crashes (clamped to the model budget).
  int crashes = 0;
  /// Coin bias override for phase/sifter trials; <= 0 means the default.
  double bias = -1.0;
  std::uint64_t max_events = 200'000'000;
};

struct trial_result {
  bool completed = false;
  std::uint64_t events = 0;
  std::uint64_t total_messages = 0;
  std::uint64_t request_messages = 0;
  std::uint64_t wire_bytes = 0;
  /// Time proxy per Claim 2.1: max communicate calls among participants.
  std::uint64_t max_communicate_calls = 0;
  double mean_communicate_calls = 0.0;
  /// WIN / SURVIVE count among completed participants.
  int winners = 0;
  /// Heterogeneous-phase decomposition (Lemmas 3.6 / 3.7).
  int zero_flip_survivors = 0;
  int one_flippers = 0;
  int crashed_participants = 0;
  /// Per-participant protocol outcome (-1 if crashed / incomplete).
  std::vector<std::int64_t> outcomes;
  /// Per-participant probe().round at the end (rounds reached).
  std::vector<std::int64_t> rounds;
  /// Per-participant renaming iteration counts.
  std::vector<std::int64_t> iterations;
  std::uint64_t trace_hash = 0;
};

/// Run one trial. Deterministic in `config`.
[[nodiscard]] trial_result run_trial(const trial_config& config);

/// Aggregates across trials (seeds config.seed, config.seed+1, ...).
struct trial_aggregate {
  int trials = 0;
  int incomplete = 0;
  sample_stats max_comm_calls;
  sample_stats total_messages;
  sample_stats wire_bytes;
  sample_stats winners;
  sample_stats zero_flip_survivors;
  sample_stats one_flippers;
  sample_stats max_round;
  sample_stats max_iterations;
};

[[nodiscard]] trial_aggregate run_trials(trial_config config, int trials);

}  // namespace elect::exp
