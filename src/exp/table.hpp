// Markdown table / number formatting for bench output. Every bench binary
// prints its experiment as one or more of these tables; EXPERIMENTS.md
// embeds them directly.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace elect::exp {

class table {
 public:
  explicit table(std::vector<std::string> headers);

  /// Add a row; must match the header width.
  void add_row(std::vector<std::string> cells);

  /// Render as a GitHub-flavoured markdown table.
  void print(std::ostream& out) const;

  /// Render as a JSON array of objects keyed by header. Cells that parse
  /// as numbers are emitted unquoted; everything else is a JSON string.
  void print_json(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Escape a string for embedding inside a JSON string literal (quotes,
/// backslashes, control characters). Returns the body without the
/// surrounding quotes.
[[nodiscard]] std::string json_escape(const std::string& s);

/// Fixed-precision formatting helpers.
[[nodiscard]] std::string fmt(double value, int precision = 2);
[[nodiscard]] std::string fmt_int(double value);
/// "mean ± ci95" rendering.
[[nodiscard]] std::string fmt_ci(double mean, double halfwidth,
                                 int precision = 2);

}  // namespace elect::exp
