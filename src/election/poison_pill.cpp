#include "election/poison_pill.hpp"

#include <vector>

#include "engine/views.hpp"

namespace elect::election {

using engine::owned_array;
using engine::pp_status;

engine::task<pp_result> poison_pill(engine::node& self,
                                    poison_pill_params params) {
  const double bias = params.high_priority_bias > 0.0
                          ? params.high_priority_bias
                          : poison_pill_bias(self.n());

  // Lines 2-3: commit to the coin flip and propagate the commit status.
  self.probe().phase = static_cast<std::int64_t>(phase_marker::poison_pill);
  self.probe().status = static_cast<std::int64_t>(pp_status::commit);
  {
    auto delta =
        self.stage_own_cell<pp_status>(params.status_var, pp_status::commit);
    co_await self.propagate(params.status_var, delta);
  }

  // Line 4: flip the biased coin. The flip becomes visible to the strong
  // adversary (via the probe) the moment it happens — but by now the
  // commit above has already reached a quorum.
  const int coin = self.rng().bernoulli(bias) ? 1 : 0;
  self.probe().coin = coin;

  // Lines 5-7: record the priority and propagate it.
  const pp_status my_status =
      coin == 1 ? pp_status::high_pri : pp_status::low_pri;
  self.probe().status = static_cast<std::int64_t>(my_status);
  {
    auto delta = self.stage_own_cell<pp_status>(params.status_var, my_status);
    co_await self.propagate(params.status_var, delta);
  }

  // Line 8: collect views of Status from a quorum.
  const std::vector<engine::view_entry> views =
      co_await self.collect(params.status_var);

  // Lines 9-11: a low-priority processor dies iff it observes some j that
  // is Commit or High-Pri in some view and Low-Pri in no view.
  if (my_status == pp_status::low_pri) {
    const int n = self.n();
    std::vector<bool> seen_active(static_cast<std::size_t>(n), false);
    std::vector<bool> seen_low(static_cast<std::size_t>(n), false);
    engine::for_each_view<owned_array<pp_status>>(
        views, [&](const owned_array<pp_status>& status_array) {
          for (process_id j = 0; j < n; ++j) {
            if (const pp_status* s = status_array.get(j)) {
              if (*s == pp_status::commit || *s == pp_status::high_pri) {
                seen_active[static_cast<std::size_t>(j)] = true;
              } else if (*s == pp_status::low_pri) {
                seen_low[static_cast<std::size_t>(j)] = true;
              }
            }
          }
        });
    for (process_id j = 0; j < n; ++j) {
      const auto index = static_cast<std::size_t>(j);
      if (seen_active[index] && !seen_low[index]) co_return pp_result::die;
    }
  }
  co_return pp_result::survive;
}

}  // namespace elect::election
