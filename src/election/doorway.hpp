// Doorway — Figure 5 of the paper.
//
// The standard mechanism [AGTV92] that makes test-and-set linearizable:
// a participant first collects the door bit from a quorum; if anyone has
// already closed the door it returns LOSE immediately (a WIN by someone
// who started earlier is linearizable before it). Otherwise it closes the
// door and propagates the closure before competing.
//
// Consequence (used by Lemma A.3): no processor can lose before the
// eventual winner has invoked its operation.
#pragma once

#include "election/outcomes.hpp"
#include "election/vars.hpp"
#include "engine/node.hpp"
#include "engine/task.hpp"

namespace elect::election {

/// Run the doorway for `door_var`. Returns proceed or lose.
[[nodiscard]] engine::task<gate_result> doorway(engine::node& self,
                                                engine::var_id door_var);

}  // namespace elect::election
