// Result types shared by the election protocols.
#pragma once

#include <cstdint>
#include <string>

namespace elect::election {

/// SURVIVE / DIE of a PoisonPill phase (Figures 1 and 2).
enum class pp_result : std::int64_t { die = 0, survive = 1 };

/// Result of PreRound (Figure 4) and Doorway (Figure 5).
enum class gate_result : std::int64_t { lose = 0, win = 1, proceed = 2 };

/// WIN / LOSE of leader election (test-and-set).
enum class tas_result : std::int64_t { lose = 0, win = 1 };

[[nodiscard]] inline std::string to_string(tas_result r) {
  return r == tas_result::win ? "WIN" : "LOSE";
}

/// Protocol phase markers published through the debug probe.
enum class phase_marker : std::int64_t {
  idle = -1,
  doorway = 0,
  preround = 1,
  poison_pill = 2,
};

}  // namespace elect::election
