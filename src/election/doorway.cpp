#include "election/doorway.hpp"

#include "engine/views.hpp"

namespace elect::election {

engine::task<gate_result> doorway(engine::node& self,
                                  engine::var_id door_var) {
  self.probe().phase = static_cast<std::int64_t>(phase_marker::doorway);

  // Lines 56-58: collect the door from a quorum; lose if it is closed.
  const auto views = co_await self.collect(door_var);
  if (engine::any_flag_set(views)) co_return gate_result::lose;

  // Lines 59-60: close the door and propagate the closure.
  auto delta = self.stage_flag(door_var);
  co_await self.propagate(door_var, delta);
  co_return gate_result::proceed;
}

}  // namespace elect::election
