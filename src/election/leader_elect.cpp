#include "election/leader_elect.hpp"

#include "election/doorway.hpp"
#include "election/het_poison_pill.hpp"
#include "election/preround.hpp"

namespace elect::election {

engine::task<tas_result> leader_elect(engine::node& self,
                                      leader_elect_params params) {
  // Lines 63-64: the doorway gate.
  self.probe().round = 0;
  if (co_await doorway(self, door_var(params.instance)) == gate_result::lose) {
    co_return tas_result::lose;
  }

  // Lines 65-72: rounds of PreRound + HeterogeneousPoisonPill. Every
  // processor starts in round 1; HeterogeneousPoisonPill protocols of
  // different rounds are completely disjoint.
  const engine::var_id rounds = round_var(params.instance);
  for (std::int64_t r = 1; r <= params.max_rounds; ++r) {
    self.probe().round = r;

    const gate_result gate = co_await preround(self, rounds, r);
    if (gate == gate_result::win) co_return tas_result::win;
    if (gate == gate_result::lose) co_return tas_result::lose;

    const pp_result pill = co_await het_poison_pill(
        self, het_poison_pill_params{
                  het_status_var(params.instance,
                                 static_cast<std::uint32_t>(r))});
    if (pill == pp_result::die) co_return tas_result::lose;
  }
  ELECT_CHECK_MSG(false, "leader_elect exceeded max_rounds — either the "
                         "round limit is absurdly low or survivor decay is "
                         "broken");
  co_return tas_result::lose;  // unreachable
}

}  // namespace elect::election
