// Naive sifting — the strawman from the paper's introduction, plus the
// weak-adversary sifter of [AA11] it descends from.
//
// A sifting round WITHOUT the poison-pill commit stage: each participant
// flips a biased coin, writes the outcome to its flip register, reads the
// registers, and survives iff it flipped 1 or saw no 1. Against a weak
// (oblivious) adversary this eliminates all but ~sqrt(n) participants per
// round; a strong adversary that sees the flips simply schedules all the
// 0-flippers to finish before any 1-flipper's write propagates, forcing
// everyone to survive. Experiment E10 measures exactly this contrast, and
// it is the motivation for PoisonPill's commit stage.
#pragma once

#include <cstdint>
#include <vector>

#include "election/outcomes.hpp"
#include "election/vars.hpp"
#include "engine/node.hpp"
#include "engine/task.hpp"

namespace elect::election {

struct sifter_params {
  engine::var_id flips_var = sifter_var(election_id{0}, 1);
  /// Probability of flipping 1; <= 0 means 1/sqrt(n).
  double bias = -1.0;
};

/// One naive sifting round. Returns SURVIVE or DIE.
[[nodiscard]] engine::task<pp_result> naive_sifter_round(engine::node& self,
                                                         sifter_params params);

/// Multiple chained sifting rounds (only survivors continue); biases[r]
/// is the round-r probability of flipping 1 (<= 0 entries mean 1/sqrt(n)).
/// The probe's `round` field records how many rounds this processor
/// survived. Returns SURVIVE iff the processor survived every round.
[[nodiscard]] engine::task<pp_result> naive_sifter_chain(
    engine::node& self, election_id instance, std::vector<double> biases);

}  // namespace elect::election
