#include "election/tournament.hpp"

#include "common/math.hpp"
#include "consensus/quorum_consensus.hpp"
#include "election/doorway.hpp"

namespace elect::election {

namespace {

/// Variable space of one tree-node match: election instance in the high
/// 16 bits, tree node index in the low 16.
std::uint32_t match_space(election_id instance, std::uint32_t tree_node) {
  ELECT_CHECK_MSG(instance.value < (1u << 16),
                  "tournament: election instance id exceeds 16 bits");
  ELECT_CHECK_MSG(tree_node < (1u << 16),
                  "tournament: tree too large (n > 32768)");
  return (instance.value << 16) | tree_node;
}

}  // namespace

engine::task<tas_result> tournament_elect(engine::node& self,
                                          tournament_params params) {
  if (params.with_doorway) {
    self.probe().round = 0;
    // Reuse the Figure-5 doorway: the instance's door variable is shared
    // with LeaderElect's naming scheme, so never run both algorithms on
    // the same instance id.
    if (co_await doorway(self, door_var(params.instance)) ==
        gate_result::lose) {
      co_return tas_result::lose;
    }
  }

  // Heap-numbered complete binary tree: leaves occupy
  // [leaf_count, 2*leaf_count); internal nodes [1, leaf_count);
  // node 1 is the root.
  const auto leaf_count =
      static_cast<std::uint32_t>(next_pow2(static_cast<std::uint64_t>(
          self.n() > 1 ? self.n() : 2)));
  std::uint32_t tree_node =
      leaf_count + static_cast<std::uint32_t>(self.id());

  std::int64_t level = 0;
  while (tree_node > 1) {
    tree_node /= 2;  // ascend to the parent match
    ++level;
    self.probe().round = level;  // levels played, for instrumentation
    const std::int64_t winner = co_await consensus::decide(
        self, match_space(params.instance, tree_node),
        static_cast<std::int64_t>(self.id()));
    if (winner != static_cast<std::int64_t>(self.id())) {
      co_return tas_result::lose;
    }
  }
  co_return tas_result::win;
}

}  // namespace elect::election
