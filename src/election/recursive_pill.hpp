// Recursive plain-PoisonPill election — the remark closing §3.1:
// "It is possible to apply this technique recursively with some extra
// care and construct an algorithm with an expected O(log log n) time
// complexity."
//
// Same skeleton as Figure 6 (doorway, then PreRound-gated elimination
// rounds), but each round runs the *plain* Figure-1 phase, with the coin
// bias re-derived from the expected surviving population: round 1 uses
// 1/sqrt(n); a phase with m participants leaves ~2*sqrt(m) expected
// survivors, so round r+1 biases against m_{r+1} = 2*sqrt(m_r) + 1.
// Population shrinks as n -> sqrt -> fourth root -> ..., giving
// O(log log n) expected rounds — better than a tournament, worse than
// the heterogeneous O(log* n). Benchmark E11 compares all three.
#pragma once

#include <cstdint>

#include "election/outcomes.hpp"
#include "election/vars.hpp"
#include "engine/node.hpp"
#include "engine/task.hpp"

namespace elect::election {

struct recursive_pill_params {
  election_id instance{0};
  std::int64_t max_rounds = 1'000'000;
};

/// Run the recursive plain-PoisonPill election. Returns WIN or LOSE.
[[nodiscard]] engine::task<tas_result> recursive_pill_elect(
    engine::node& self, recursive_pill_params params);

}  // namespace elect::election
