// LeaderElect — Figure 6: the paper's main algorithm.
//
// Doorway, then rounds of (PreRound filter → Heterogeneous PoisonPill).
// All participants enter round 1; only the survivors of round r enter
// round r+1. PreRound detects both outcomes: a processor two rounds ahead
// of everyone else wins; a processor behind anyone loses.
//
// Guarantees (Theorem A.5, reproduced by tests/benches):
//   * linearizable test-and-set: at most one winner, at least one winner
//     when all participants return, no loser returns before the winner
//     invokes;
//   * termination with probability 1 under up to ceil(n/2)-1 crashes;
//   * O(log* k) expected communicate calls per processor for k
//     participants, under any adaptive adversary;
//   * O(kn) expected total messages.
#pragma once

#include <cstdint>

#include "election/outcomes.hpp"
#include "election/vars.hpp"
#include "engine/node.hpp"
#include "engine/task.hpp"

namespace elect::election {

struct leader_elect_params {
  /// Which election instance this is (disjoint variables per instance).
  election_id instance{0};
  /// Safety valve for simulation: abort after this many rounds (the
  /// expected number is O(log* k); hitting this limit aborts the run).
  std::int64_t max_rounds = 1'000'000;
};

/// Run leader election on `self`. Returns WIN or LOSE.
[[nodiscard]] engine::task<tas_result> leader_elect(engine::node& self,
                                                    leader_elect_params params);

/// Convenience: leader election for instance 0 with defaults.
[[nodiscard]] inline engine::task<tas_result> leader_elect(engine::node& self) {
  return leader_elect(self, leader_elect_params{});
}

}  // namespace elect::election
