// The PoisonPill technique — Figure 1 of the paper.
//
// One elimination phase. Each participant:
//   1. takes the "poison pill": sets Status[i] = Commit and propagates it
//      to a quorum — *before* flipping its coin, so the adversary cannot
//      learn the flip without the commit evidence being replicated;
//   2. flips a biased coin (probability 1/sqrt(n) of high priority) and
//      propagates the resulting Low-Pri / High-Pri status;
//   3. collects the Status array from a quorum and, if it has low
//      priority, DIEs iff it sees some processor j that is Commit or
//      High-Pri in some view and Low-Pri in none (Figure 1, line 10).
//
// Guarantees (reproduced by tests/benches):
//   * Claim 3.1 — if all participants return, at least one survives;
//   * Claim 3.2 — expected O(sqrt(n)) survivors under any schedule, and
//     the sequential schedule makes this tight (Θ(sqrt(n))).
#pragma once

#include "common/math.hpp"
#include "election/outcomes.hpp"
#include "election/vars.hpp"
#include "engine/node.hpp"
#include "engine/task.hpp"

namespace elect::election {

struct poison_pill_params {
  /// The Status[] variable of this phase.
  engine::var_id status_var = pp_status_var(election_id{0}, 1);
  /// Probability of flipping 1 (high priority); <= 0 means the paper's
  /// default 1/sqrt(n). Exposed for the bias-ablation experiment (E9).
  double high_priority_bias = -1.0;
};

/// Run one PoisonPill phase on `self`. Returns SURVIVE or DIE.
[[nodiscard]] engine::task<pp_result> poison_pill(engine::node& self,
                                                  poison_pill_params params);

}  // namespace elect::election
