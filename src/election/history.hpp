// Linearizability checking for test-and-set histories.
//
// The spec (§2, "Problem Statements"): every correct participant returns;
// at most one returns WIN; operations are linearizable — they can be
// ordered such that (1) the first operation is WIN and every other is
// LOSE, and (2) the order of non-overlapping operations is respected.
// The real-time consequence the checker enforces: no processor may
// *return* LOSE before the eventual winner *invokes* its operation
// (otherwise the winner's operation would have to linearize before an
// operation that completed strictly before it began).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "election/outcomes.hpp"

namespace elect::election {

/// One participant's operation in a finished (or crashed) execution.
/// Times are kernel event indices; UINT64_MAX means "never happened".
struct tas_op {
  process_id pid = no_process;
  std::uint64_t invoke_time = UINT64_MAX;
  std::uint64_t return_time = UINT64_MAX;
  /// Set only if the operation returned.
  std::optional<tas_result> outcome;
  bool crashed = false;
};

/// Validate a test-and-set history. Returns std::nullopt if the history
/// is linearizable and safe, or a human-readable violation description.
[[nodiscard]] std::optional<std::string> validate_tas_history(
    const std::vector<tas_op>& ops);

}  // namespace elect::election
