#include "election/strategy.hpp"

#include "election/doorway.hpp"
#include "election/het_poison_pill.hpp"
#include "election/leader_elect.hpp"
#include "election/sifter.hpp"

namespace elect::election {

namespace {

/// Figure 6 verbatim. The protocol is self-deciding: PreRound detects
/// the unique winner, so `claim` (when the host set one) must accept it.
class full_strategy final : public strategy {
 public:
  [[nodiscard]] strategy_kind kind() const noexcept override {
    return strategy_kind::full;
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "full";
  }

  [[nodiscard]] engine::task<tas_result> elect(
      engine::node& self, strategy_context ctx) override {
    const tas_result result = co_await leader_elect(
        self, leader_elect_params{ctx.instance, ctx.max_rounds});
    if (result == tas_result::win && ctx.claim) {
      ELECT_CHECK_MSG(ctx.claim(),
                      "full strategy's protocol winner was refused by the "
                      "claim arbiter — two winners for one instance");
    }
    co_return result;
  }
};

/// Doorway gate, then straight to the claim arbiter. Every doorway
/// passer races on the claim; cheapest scheme, most claim conflicts.
class doorway_only_strategy final : public strategy {
 public:
  [[nodiscard]] strategy_kind kind() const noexcept override {
    return strategy_kind::doorway_only;
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "doorway_only";
  }

  [[nodiscard]] engine::task<tas_result> elect(
      engine::node& self, strategy_context ctx) override {
    ELECT_CHECK_MSG(ctx.claim != nullptr,
                    "doorway_only needs a claim arbiter — its elimination "
                    "stage does not decide a unique winner");
    self.probe().round = 0;
    // Named locals rather than `if (co_await ... == lose)` / a ternary
    // co_return: gcc 12 miscompiles this particular frame shape when the
    // awaited comparison feeds the branch directly (the resumed frame
    // never re-enters the coroutine and the caller hangs).
    const gate_result gate = co_await doorway(self, door_var(ctx.instance));
    if (gate == gate_result::lose) {
      co_return tas_result::lose;
    }
    const bool claimed = ctx.claim();
    co_return claimed ? tas_result::win : tas_result::lose;
  }
};

/// Doorway, two naive-sifter rounds (default 1/sqrt(n) bias), one
/// Heterogeneous PoisonPill phase, then the claim arbiter over the
/// surviving few. The sifter variables and the pill's round-1 Status[]
/// are disjoint from leader_elect's per-round families, so a key that
/// switches strategy across epochs never crosses variable streams
/// (instances are never reused).
class sifter_pill_strategy final : public strategy {
 public:
  [[nodiscard]] strategy_kind kind() const noexcept override {
    return strategy_kind::sifter_pill;
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "sifter_pill";
  }

  [[nodiscard]] engine::task<tas_result> elect(
      engine::node& self, strategy_context ctx) override {
    ELECT_CHECK_MSG(ctx.claim != nullptr,
                    "sifter_pill needs a claim arbiter — its elimination "
                    "stage does not decide a unique winner");
    self.probe().round = 0;
    if (co_await doorway(self, door_var(ctx.instance)) == gate_result::lose) {
      co_return tas_result::lose;
    }
    // Prefilter: two sifting rounds at the default 1/sqrt(n) bias. A
    // lone participant always survives (it sees no rival 1-flip). The
    // vector lives in a named local: gcc rejects an initializer_list
    // temporary inside a co_await expression ("array used as
    // initializer").
    std::vector<double> default_biases(2, -1.0);
    if (co_await naive_sifter_chain(self, ctx.instance,
                                    std::move(default_biases)) ==
        pp_result::die) {
      co_return tas_result::lose;
    }
    // One committed-elimination phase so the sifter's weak-adversary gap
    // cannot leave the claim with O(sqrt n) racers (Claim 3.1 keeps at
    // least one survivor).
    if (co_await het_poison_pill(
            self, het_poison_pill_params{het_status_var(ctx.instance, 1)}) ==
        pp_result::die) {
      co_return tas_result::lose;
    }
    co_return ctx.claim() ? tas_result::win : tas_result::lose;
  }
};

}  // namespace

std::string_view to_string(strategy_kind kind) {
  switch (kind) {
    case strategy_kind::full: return "full";
    case strategy_kind::sifter_pill: return "sifter_pill";
    case strategy_kind::doorway_only: return "doorway_only";
    case strategy_kind::adaptive: return "adaptive";
  }
  return "unknown";
}

std::optional<strategy_kind> parse_strategy(std::string_view name) {
  for (int k = 0; k < strategy_kind_count; ++k) {
    const auto kind = static_cast<strategy_kind>(k);
    if (name == to_string(kind)) return kind;
  }
  return std::nullopt;
}

std::unique_ptr<strategy> make_strategy(strategy_kind kind) {
  switch (kind) {
    case strategy_kind::full:
    case strategy_kind::adaptive:  // protocol half of the adaptive policy
      return std::make_unique<full_strategy>();
    case strategy_kind::sifter_pill:
      return std::make_unique<sifter_pill_strategy>();
    case strategy_kind::doorway_only:
      return std::make_unique<doorway_only_strategy>();
  }
  ELECT_CHECK_MSG(false, "unknown strategy_kind");
  return nullptr;
}

}  // namespace elect::election
