// PreRound — Figure 4 of the paper (round-number filter, after [SSW91]).
//
// Before participating in round r, a processor propagates r to a quorum,
// collects the Round[] array, and compares r with the maximum round R it
// observed among *other* processors:
//   * r < R      — someone is ahead: LOSE;
//   * R < r - 1  — everyone else is at least two rounds behind, so no one
//                  can ever pass us: WIN;
//   * otherwise  — PROCEED into the round.
//
// The quorum-intersection argument of Lemma A.2 makes WIN exclusive: if p
// wins at round r, no other processor ever completed propagating r-1, and
// every other processor subsequently observes r and loses.
#pragma once

#include <cstdint>

#include "election/outcomes.hpp"
#include "election/vars.hpp"
#include "engine/node.hpp"
#include "engine/task.hpp"

namespace elect::election {

/// Run the PreRound filter for round `r` (r >= 1) of instance `round_var`.
[[nodiscard]] engine::task<gate_result> preround(engine::node& self,
                                                 engine::var_id round_var,
                                                 std::int64_t r);

}  // namespace elect::election
