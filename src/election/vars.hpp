// Variable naming scheme for leader-election instances.
//
// A single system runs many leader-election instances concurrently (the
// renaming algorithm runs one per name); each instance gets a disjoint
// set of replicated variables, keyed by the instance id.
#pragma once

#include <cstdint>

#include "engine/ids.hpp"

namespace elect::election {

/// Identifies one leader-election (test-and-set) instance.
struct election_id {
  std::uint32_t value = 0;
};

/// The Doorway door bit of an instance (Figure 5).
[[nodiscard]] inline engine::var_id door_var(election_id e) {
  return {engine::var_family::door, e.value, 0};
}

/// The PreRound Round[] array of an instance (Figure 4).
[[nodiscard]] inline engine::var_id round_var(election_id e) {
  return {engine::var_family::round_array, e.value, 0};
}

/// The HeterogeneousPoisonPill Status[] array of round r of an instance.
/// Protocols for different rounds are completely disjoint (§3.3).
[[nodiscard]] inline engine::var_id het_status_var(election_id e,
                                                   std::uint32_t round) {
  return {engine::var_family::het_status_array, e.value, round};
}

/// The plain PoisonPill Status[] array (standalone phases; Figure 1).
[[nodiscard]] inline engine::var_id pp_status_var(election_id e,
                                                  std::uint32_t round) {
  return {engine::var_family::pp_status_array, e.value, round};
}

/// Flip registers of the naive / weak-adversary sifter.
[[nodiscard]] inline engine::var_id sifter_var(election_id e,
                                               std::uint32_t round) {
  return {engine::var_family::sifter_flips, e.value, round};
}

}  // namespace elect::election
