#include "election/het_poison_pill.hpp"

#include <algorithm>
#include <vector>

#include "common/math.hpp"
#include "engine/views.hpp"

namespace elect::election {

using engine::het_status;
using engine::owned_array;
using engine::pp_status;

engine::task<pp_result> het_poison_pill(engine::node& self,
                                        het_poison_pill_params params) {
  const int n = self.n();

  // Lines 14-15: commit (with an empty list) and propagate.
  self.probe().phase = static_cast<std::int64_t>(phase_marker::poison_pill);
  self.probe().status = static_cast<std::int64_t>(pp_status::commit);
  {
    auto delta = self.stage_own_cell<het_status>(
        params.status_var, het_status{pp_status::commit, {}});
    co_await self.propagate(params.status_var, delta);
  }

  // Lines 16-17: collect and record the participant list ℓ.
  std::vector<process_id> ell;
  {
    const auto views = co_await self.collect(params.status_var);
    ell = engine::participants_in_views<het_status>(views, n);
  }
  // Our own commit reached a quorum before the collect, and any two
  // quorums intersect, so we always appear in our own list.
  ELECT_CHECK_MSG(std::find(ell.begin(), ell.end(), self.id()) != ell.end(),
                  "processor missing from its own participant list");
  self.probe().list_size = static_cast<std::int64_t>(ell.size());

  // Lines 18-20: bias the coin by |ℓ| and flip.
  const double bias = het_poison_pill_bias(ell.size());
  const int coin = self.rng().bernoulli(bias) ? 1 : 0;
  self.probe().coin = coin;

  // Lines 21-23: record priority + list, propagate.
  const pp_status my_priority =
      coin == 1 ? pp_status::high_pri : pp_status::low_pri;
  self.probe().status = static_cast<std::int64_t>(my_priority);
  {
    auto delta = self.stage_own_cell<het_status>(
        params.status_var, het_status{my_priority, ell});
    co_await self.propagate(params.status_var, delta);
  }

  // Line 24: collect again.
  const auto views = co_await self.collect(params.status_var);

  // Lines 25-29: a low-priority processor builds the closure set L (all
  // observed participants plus every ℓ list carried by an observed
  // status) and dies iff some j in L has no reported low priority.
  if (my_priority == pp_status::low_pri) {
    std::vector<bool> in_closure(static_cast<std::size_t>(n), false);
    std::vector<bool> seen_low(static_cast<std::size_t>(n), false);
    engine::for_each_view<owned_array<het_status>>(
        views, [&](const owned_array<het_status>& status_array) {
          for (process_id j = 0; j < n; ++j) {
            const het_status* s = status_array.get(j);
            if (s == nullptr) continue;
            in_closure[static_cast<std::size_t>(j)] = true;  // line 27
            for (const process_id q : s->list) {             // line 26
              in_closure[static_cast<std::size_t>(q)] = true;
            }
            if (s->stat == pp_status::low_pri) {
              seen_low[static_cast<std::size_t>(j)] = true;
            }
          }
        });
    for (process_id j = 0; j < n; ++j) {  // line 28
      const auto index = static_cast<std::size_t>(j);
      if (in_closure[index] && !seen_low[index]) co_return pp_result::die;
    }
  }
  co_return pp_result::survive;  // line 30
}

}  // namespace elect::election
