#include "election/sifter.hpp"

#include "common/math.hpp"
#include "engine/views.hpp"

namespace elect::election {

using engine::owned_array;

engine::task<pp_result> naive_sifter_round(engine::node& self,
                                           sifter_params params) {
  const double bias =
      params.bias > 0.0 ? params.bias : poison_pill_bias(self.n());

  // Flip first — this is the naive part: the strong adversary sees the
  // flip before anything about it has been replicated.
  const int coin = self.rng().bernoulli(bias) ? 1 : 0;
  self.probe().coin = coin;

  // Write the flip and propagate it.
  {
    auto delta = self.stage_own_cell<std::int64_t>(params.flips_var, coin);
    co_await self.propagate(params.flips_var, delta);
  }

  // Read the flips; survive iff we flipped 1 or saw no 1.
  const auto views = co_await self.collect(params.flips_var);
  if (coin == 1) co_return pp_result::survive;
  bool saw_one = false;
  engine::for_each_view<owned_array<std::int64_t>>(
      views, [&](const owned_array<std::int64_t>& flips) {
        for (process_id j = 0; j < flips.size() && !saw_one; ++j) {
          const std::int64_t* f = flips.get(j);
          saw_one = f != nullptr && *f == 1;
        }
      });
  co_return saw_one ? pp_result::die : pp_result::survive;
}

engine::task<pp_result> naive_sifter_chain(engine::node& self,
                                           election_id instance,
                                           std::vector<double> biases) {
  self.probe().round = 0;
  for (std::size_t r = 0; r < biases.size(); ++r) {
    const pp_result result = co_await naive_sifter_round(
        self, sifter_params{
                  sifter_var(instance, static_cast<std::uint32_t>(r + 1)),
                  biases[r]});
    if (result == pp_result::die) co_return pp_result::die;
    self.probe().round = static_cast<std::int64_t>(r + 1);
  }
  co_return pp_result::survive;
}

}  // namespace elect::election
