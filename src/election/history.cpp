#include "election/history.hpp"

#include <algorithm>

namespace elect::election {

std::optional<std::string> validate_tas_history(
    const std::vector<tas_op>& ops) {
  // Basic sanity: an outcome implies invocation and return ordering.
  for (const tas_op& op : ops) {
    if (op.outcome.has_value()) {
      if (op.invoke_time == UINT64_MAX || op.return_time == UINT64_MAX) {
        return "op of processor " + std::to_string(op.pid) +
               " returned without invoke/return timestamps";
      }
      if (op.return_time < op.invoke_time) {
        return "op of processor " + std::to_string(op.pid) +
               " returned before it was invoked";
      }
    }
  }

  // Unique winner.
  std::vector<const tas_op*> winners;
  std::vector<const tas_op*> losers;
  bool any_incomplete_invoked = false;
  std::uint64_t earliest_incomplete_invoke = UINT64_MAX;
  for (const tas_op& op : ops) {
    if (op.outcome == tas_result::win) winners.push_back(&op);
    if (op.outcome == tas_result::lose) losers.push_back(&op);
    if (!op.outcome.has_value() && op.invoke_time != UINT64_MAX) {
      any_incomplete_invoked = true;
      earliest_incomplete_invoke =
          std::min(earliest_incomplete_invoke, op.invoke_time);
    }
  }
  if (winners.size() > 1) {
    return "multiple winners (" + std::to_string(winners.size()) + ")";
  }

  const std::uint64_t earliest_lose_return = [&] {
    std::uint64_t t = UINT64_MAX;
    for (const tas_op* l : losers) t = std::min(t, l->return_time);
    return t;
  }();

  if (winners.size() == 1) {
    // The winner must have invoked before any loser returned; otherwise
    // that loser's operation completed strictly before the winner's
    // began, and no valid linearization puts WIN first.
    if (winners.front()->invoke_time > earliest_lose_return) {
      return "a loser returned (event " +
             std::to_string(earliest_lose_return) +
             ") before the winner invoked (event " +
             std::to_string(winners.front()->invoke_time) + ")";
    }
    return std::nullopt;
  }

  // No winner returned. If nothing returned LOSE either, the history is
  // trivially fine. Otherwise some operation must be linearizable as the
  // (never-returning) winner: an invoked-but-incomplete operation that
  // began before every loser returned.
  if (losers.empty()) return std::nullopt;
  if (!any_incomplete_invoked) {
    return "all participants returned LOSE (no winner possible)";
  }
  if (earliest_incomplete_invoke > earliest_lose_return) {
    return "every loser returned before any potential winner invoked";
  }
  return std::nullopt;
}

}  // namespace elect::election
