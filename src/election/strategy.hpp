// Pluggable election strategies: the algorithm ladder behind one TAS
// interface.
//
// The paper's thesis is that the *elimination scheme* determines election
// cost — O(log* k) communicate calls for Figure 6 versus O(log n) for a
// tournament — and the ladder below Figure 6 (naive sifter, PoisonPill,
// Heterogeneous PoisonPill) trades adversary strength against speed. A
// strategy packages one point on that ladder as a test-and-set attempt:
// given a node and an election instance, it returns WIN or LOSE with the
// usual TAS contract (unique winner per instance, a lone participant
// wins, no loser returns before some participant has invoked).
//
// Three concrete strategies:
//
//   * `full` — the paper's leader_elect (Figure 6) verbatim: doorway,
//     then rounds of PreRound + Heterogeneous PoisonPill. The protocol
//     itself decides the unique winner; strongest guarantees (holds
//     against a strong adaptive adversary), most communicate calls.
//   * `sifter_pill` — doorway, then a naive-sifter prefilter (two
//     rounds, ~sqrt-law elimination against non-adversarial schedules),
//     then one Heterogeneous PoisonPill phase. Elimination can leave
//     several survivors, so the survivors are arbitrated by the host's
//     `claim` (below). Cheaper than `full` on the common path; the
//     prefilter's guarantees degrade under a strong adaptive scheduler
//     (that is experiment E10's point), but safety never depends on it.
//   * `doorway_only` — just the doorway gate, then `claim`. The minimal
//     scheme that preserves the linearizability argument; all doorway
//     passers race on the claim, so expect many claim conflicts under
//     contention. This is the "tournament-free" floor of the ladder.
//
// The claim arbiter: strategies whose elimination stage is not a decider
// (sifter_pill, doorway_only) pick the winner by calling
// `strategy_context::claim`, which the host must implement to return
// true for exactly one caller per instance (the election service backs
// it with an epoch-fenced compare-and-swap in its registry — legitimate
// here because every node of the mt runtime lives in one address space).
// Safety (at most one winner) therefore never rests on the elimination
// stage; elimination only buys fewer claim conflicts and fewer
// communicate calls. Liveness (at least one winner) holds because each
// stage keeps >= 1 survivor: the doorway admits at least the first
// closer, the sifter and the pill both guarantee a survivor (Claim 3.1),
// and the first survivor to claim wins. Linearizability: every loser
// lost because of another participant's already-visible activity (a
// closed door, an observed flip, a committed status, or a granted
// claim), so no loser returns before every participant has invoked —
// the doorway-first rule of [AGTV92] that Figure 5 reproduces.
//
// `adaptive` is not a protocol: it names the service-level policy that
// skips the distributed protocol entirely on uncontended keys (a fenced
// CAS fast path) and falls back to `full` when contention is observed.
// It appears in the enum so configs, metrics, and benches can name it;
// make_strategy() maps it to the `full` protocol object.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "election/outcomes.hpp"
#include "election/vars.hpp"
#include "engine/node.hpp"
#include "engine/task.hpp"

namespace elect::election {

/// Which election scheme backs a TAS attempt. Values index metrics
/// arrays; keep them dense.
enum class strategy_kind : int {
  /// leader_elect (Figure 6): self-deciding, strong-adversary safe.
  full = 0,
  /// doorway -> naive sifter prefilter -> het poison pill -> claim.
  sifter_pill = 1,
  /// doorway -> claim.
  doorway_only = 2,
  /// Service-level policy: fenced CAS fast path on uncontended keys,
  /// `full` protocol under contention.
  adaptive = 3,
};

inline constexpr int strategy_kind_count = 4;

[[nodiscard]] std::string_view to_string(strategy_kind kind);

/// Parse a strategy name ("full", "sifter_pill", "doorway_only",
/// "adaptive"); empty for unknown names.
[[nodiscard]] std::optional<strategy_kind> parse_strategy(
    std::string_view name);

/// Everything one TAS attempt needs beyond the node itself.
struct strategy_context {
  /// The election instance contended (disjoint variables per instance).
  election_id instance{0};
  /// Per-election round safety valve (see leader_elect_params).
  std::int64_t max_rounds = 1'000'000;
  /// External win arbiter: must return true for exactly one caller per
  /// instance, false for every later caller. Required by strategies
  /// whose elimination stage can leave several survivors; `full` uses it
  /// (when set) to report its unique protocol winner, and a refusal
  /// there is a safety violation.
  std::function<bool()> claim;
};

/// One rung of the algorithm ladder, usable as a repeated-TAS backend.
/// Stateless and shared across nodes; elect() runs on the calling
/// node's thread like any protocol coroutine.
class strategy {
 public:
  virtual ~strategy() = default;

  [[nodiscard]] virtual strategy_kind kind() const noexcept = 0;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Run one test-and-set attempt for `ctx.instance` on `self`.
  [[nodiscard]] virtual engine::task<tas_result> elect(
      engine::node& self, strategy_context ctx) = 0;
};

/// Instantiate the protocol backing `kind`. `adaptive` yields the `full`
/// protocol object (the fast-path half of adaptive lives in the host).
[[nodiscard]] std::unique_ptr<strategy> make_strategy(strategy_kind kind);

}  // namespace elect::election
