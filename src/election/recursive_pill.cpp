#include "election/recursive_pill.hpp"

#include <algorithm>
#include <cmath>

#include "election/doorway.hpp"
#include "election/poison_pill.hpp"
#include "election/preround.hpp"

namespace elect::election {

engine::task<tas_result> recursive_pill_elect(engine::node& self,
                                              recursive_pill_params params) {
  self.probe().round = 0;
  if (co_await doorway(self, door_var(params.instance)) == gate_result::lose) {
    co_return tas_result::lose;
  }

  const engine::var_id rounds = round_var(params.instance);
  // Expected participant population of the current round; all processors
  // compute the same deterministic schedule, so their biases agree.
  double population = static_cast<double>(self.n());

  for (std::int64_t r = 1; r <= params.max_rounds; ++r) {
    self.probe().round = r;

    const gate_result gate = co_await preround(self, rounds, r);
    if (gate == gate_result::win) co_return tas_result::win;
    if (gate == gate_result::lose) co_return tas_result::lose;

    poison_pill_params phase;
    phase.status_var =
        pp_status_var(params.instance, static_cast<std::uint32_t>(r));
    phase.high_priority_bias =
        std::min(1.0, 1.0 / std::sqrt(std::max(population, 1.0)));
    const pp_result pill = co_await poison_pill(self, phase);
    if (pill == pp_result::die) co_return tas_result::lose;

    // A phase over m participants leaves ~2*sqrt(m) expected survivors
    // (Claim 3.2 and its tight sequential schedule).
    population = std::max(1.0, 2.0 * std::sqrt(population) + 1.0);
  }
  ELECT_CHECK_MSG(false, "recursive_pill_elect exceeded max_rounds");
  co_return tas_result::lose;  // unreachable
}

}  // namespace elect::election
