#include "election/preround.hpp"

#include "engine/views.hpp"

namespace elect::election {

engine::task<gate_result> preround(engine::node& self,
                                   engine::var_id round_var, std::int64_t r) {
  self.probe().phase = static_cast<std::int64_t>(phase_marker::preround);

  // Lines 45-46: record and propagate own round.
  {
    auto delta = self.stage_own_cell<std::int64_t>(round_var, r);
    co_await self.propagate(round_var, delta);
  }

  // Lines 47-48: collect Round[] from a quorum; R is the maximum round of
  // any *other* processor in any view (unwritten cells read as round 0 —
  // "int Round[n] = {0}").
  const auto views = co_await self.collect(round_var);
  const std::int64_t max_other =
      engine::max_int_in_views(views, self.id(), /*bottom_value=*/0);

  // Lines 49-53.
  if (r < max_other) co_return gate_result::lose;
  if (max_other < r - 1) co_return gate_result::win;
  co_return gate_result::proceed;
}

}  // namespace elect::election
