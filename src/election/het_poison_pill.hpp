// Heterogeneous PoisonPill — Figure 2 of the paper.
//
// The refinement that breaks the Ω(sqrt(n)) survivor barrier of the plain
// technique. After committing, each processor records the list ℓ of all
// processors it has observed participating (including itself), derives
// its coin bias from |ℓ| (probability 1 if |ℓ| = 1, else ln|ℓ|/|ℓ|), and
// augments its priority status with ℓ. A low-priority survivor must have
// observed a *low* priority for every processor in its closure set L —
// the union of every ℓ list it saw and every participant it observed.
//
// Guarantees (reproduced by tests/benches):
//   * at least one survivor (same argument as Claim 3.1);
//   * Claim 3.3 — closure property of survivor views;
//   * Lemma 3.6 — O(log k) expected survivors that flipped 0;
//   * Lemma 3.7 — O(log² k) expected processors that flip 1.
#pragma once

#include "election/outcomes.hpp"
#include "election/vars.hpp"
#include "engine/node.hpp"
#include "engine/task.hpp"

namespace elect::election {

struct het_poison_pill_params {
  /// The Status[] variable of this phase (disjoint per round).
  engine::var_id status_var = het_status_var(election_id{0}, 1);
};

/// Run one Heterogeneous PoisonPill phase on `self`.
[[nodiscard]] engine::task<pp_result> het_poison_pill(
    engine::node& self, het_poison_pill_params params);

}  // namespace elect::election
