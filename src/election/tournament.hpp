// Tournament-tree test-and-set — the [AGTV92] baseline the paper beats.
//
// Participants are the leaves of a complete binary tree; each internal
// node is a "match" decided by two-processor randomized consensus
// (consensus/quorum_consensus.hpp — O(1) expected communicate calls per
// match). Winners ascend; the processor that wins the root match returns
// WIN, everyone else LOSE.
//
// Time complexity is Θ(log n): the winner must ascend through ceil(log2
// n) levels sequentially. This is exactly the logarithmic barrier the
// PoisonPill algorithm's O(log* n) breaks — experiment E1 plots the two
// side by side.
//
// Note: like the original, this baseline is not linearizable without an
// extra doorway; `with_doorway` adds the same Figure-5 gate used by
// LeaderElect so both algorithms meet the same spec in comparison runs.
#pragma once

#include <cstdint>

#include "election/outcomes.hpp"
#include "election/vars.hpp"
#include "engine/node.hpp"
#include "engine/task.hpp"

namespace elect::election {

struct tournament_params {
  /// Election instance; must fit in 16 bits (variable-space encoding).
  election_id instance{0};
  /// Add the Figure-5 doorway in front (for linearizable comparisons).
  bool with_doorway = false;
};

/// Run the tournament on `self`. Returns WIN or LOSE.
[[nodiscard]] engine::task<tas_result> tournament_elect(
    engine::node& self, tournament_params params);

}  // namespace elect::election
