#include "obs/prom.hpp"

#include <cinttypes>
#include <cstdio>

namespace elect::obs {

void prom_counter(std::string& out, const char* name, const char* help,
             std::uint64_t value) {
  out += "# HELP ";
  out += name;
  out += ' ';
  out += help;
  out += "\n# TYPE ";
  out += name;
  out += " counter\n";
  out += name;
  out += ' ';
  out += std::to_string(value);
  out += '\n';
}

void prom_gauge(std::string& out, const char* name, const char* help,
           std::uint64_t value) {
  out += "# HELP ";
  out += name;
  out += ' ';
  out += help;
  out += "\n# TYPE ";
  out += name;
  out += " gauge\n";
  out += name;
  out += ' ';
  out += std::to_string(value);
  out += '\n';
}

void prom_labeled(std::string& out, const char* name, const char* label,
             std::string_view value, std::uint64_t count) {
  out += name;
  out += '{';
  out += label;
  out += "=\"";
  out.append(value.data(), value.size());
  out += "\"} ";
  out += std::to_string(count);
  out += '\n';
}

void prom_type_line(std::string& out, const char* name, const char* help,
               const char* type) {
  out += "# HELP ";
  out += name;
  out += ' ';
  out += help;
  out += "\n# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

namespace {

void append_double(std::string& out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  out += buf;
}

}  // namespace

std::string render_prometheus(const svc::service_report& r) {
  std::string out;
  out.reserve(8192);

  prom_counter(out, "elect_acquires_total",
          "Acquire attempts served (one election or fast claim each).",
          r.acquires);
  prom_counter(out, "elect_wins_total", "Acquire attempts that won their epoch.",
          r.wins);
  prom_counter(out, "elect_releases_total", "Voluntary releases.", r.releases);
  prom_counter(out, "elect_expirations_total",
          "Leases force-released by the expiry sweeper.", r.expirations);
  prom_counter(out, "elect_renewals_total", "Successful lease renewals.",
          r.renewals);
  prom_counter(out, "elect_stale_fences_total",
          "Lease ops rejected by epoch/holder fencing (zombies).",
          r.stale_fences);
  prom_counter(out, "elect_forced_releases_total",
          "Epochs ended by admin force-release.", r.forced_releases);
  prom_counter(out, "elect_rejected_acquires_total",
          "Acquires turned away by service shutdown.", r.rejected_acquires);
  prom_counter(out, "elect_short_circuit_losses_total",
          "Protocol-path acquires that lost before running the protocol.",
          r.short_circuit_losses);

  prom_type_line(out, "elect_strategy_acquires_total",
            "Acquire attempts per election strategy.", "counter");
  for (int k = 0; k < election::strategy_kind_count; ++k) {
    prom_labeled(out, "elect_strategy_acquires_total", "strategy",
            election::to_string(static_cast<election::strategy_kind>(k)),
            r.strategies[static_cast<std::size_t>(k)].acquires);
  }
  prom_type_line(out, "elect_strategy_wins_total",
            "Epoch wins per election strategy.", "counter");
  for (int k = 0; k < election::strategy_kind_count; ++k) {
    prom_labeled(out, "elect_strategy_wins_total", "strategy",
            election::to_string(static_cast<election::strategy_kind>(k)),
            r.strategies[static_cast<std::size_t>(k)].wins);
  }

  prom_type_line(out, "elect_fast_path_total",
            "Adaptive CAS fast-path attempts by outcome.", "counter");
  prom_labeled(out, "elect_fast_path_total", "outcome", "hit", r.fast_path.hits);
  prom_labeled(out, "elect_fast_path_total", "outcome", "conflict",
          r.fast_path.conflicts);
  prom_labeled(out, "elect_fast_path_total", "outcome", "fallback",
          r.fast_path.fallbacks);

  // Log-bucketed acquire latency. Bucket b of the histogram covers
  // [2^b, 2^(b+1)) nanoseconds; the exposition is cumulative with `le`
  // upper bounds in seconds, closed by +Inf = _count.
  prom_type_line(out, "elect_acquire_latency_seconds",
            "Acquire latency (submit to decision).", "histogram");
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < r.acquire_latency_buckets.size(); ++b) {
    cumulative += r.acquire_latency_buckets[b];
    out += "elect_acquire_latency_seconds_bucket{le=\"";
    append_double(out, static_cast<double>(2ULL << b) / 1e9);
    out += "\"} ";
    out += std::to_string(cumulative);
    out += '\n';
  }
  out += "elect_acquire_latency_seconds_bucket{le=\"+Inf\"} ";
  out += std::to_string(r.acquire_latency_count);
  out += '\n';
  out += "elect_acquire_latency_seconds_sum ";
  append_double(out, r.acquire_latency_sum_us / 1e6);
  out += '\n';
  out += "elect_acquire_latency_seconds_count ";
  out += std::to_string(r.acquire_latency_count);
  out += '\n';

  std::uint64_t keys = 0;
  for (const auto& shard : r.shards) keys += shard.keys;
  prom_gauge(out, "elect_keys", "Registered election keys.", keys);
  prom_gauge(out, "elect_participated_entries",
        "Per-node participated-map entries across the pool.",
        r.participated_entries);
  prom_counter(out, "elect_messages_total", "Protocol messages sent in the pool.",
          r.total_messages);

  prom_gauge(out, "elect_watch_active", "Live watch subscriptions.",
        r.watch.active);
  prom_counter(out, "elect_watch_published_total",
          "Watch events enqueued for delivery.", r.watch.published);
  prom_counter(out, "elect_watch_delivered_total",
          "Watch callback invocations completed.", r.watch.delivered);
  prom_counter(out, "elect_watch_dropped_total",
          "Watch events dropped at the queue bound.", r.watch.dropped);

  prom_counter(out, "elect_trace_minted_total", "Trace ids minted.",
          r.trace.minted);
  prom_counter(out, "elect_trace_spans_total", "Trace spans recorded.",
          r.trace.spans);
  prom_counter(out, "elect_trace_slow_captured_total",
          "Slow-request trace dumps captured.", r.trace.slow_captured);

  prom_counter(out, "elect_journal_appended_total",
          "Structured events appended to the journal.", r.journal.appended);
  prom_counter(out, "elect_journal_evicted_total",
          "Journal records evicted from the in-memory ring.",
          r.journal.evicted);
  prom_counter(out, "elect_journal_flushed_total",
          "Journal records written to the JSONL sink.", r.journal.flushed);

  return out;
}

}  // namespace elect::obs
