// elect::obs::journal — a bounded MPSC journal of typed service events.
//
// Every state change an operator cares about — a leader elected, a
// lease released or expired, a fenced (stale-epoch) lease op, a
// disconnect reclaim, a dropped watch event — is appended here as one
// typed record: sequence number, wall-clock timestamp, kind, key,
// epoch, holder, and a free-form cause. Producers are the registry's
// transition hook, the service's fence counter, the watch hub's drop
// hook, and the server's disconnect path; they only take the journal
// mutex long enough to push one record.
//
// Two consumers:
//   * the in-memory ring (capacity-bounded, oldest evicted + counted)
//     backs `tail(n)` for the report/admin surfaces;
//   * an optional JSONL sink: a flusher thread drains appended records
//     to an append-only file, one JSON object per line, so a crashed
//     server leaves a replayable event history on disk. Appends never
//     wait on the disk — a wedged filesystem costs pending-queue
//     memory (also bounded), not election latency.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace elect::obs {

/// What happened. Serialized by name in JSONL/JSON; append only.
enum class event_kind : std::uint8_t {
  /// A session won `key`'s election and holds the new epoch.
  elected = 0,
  /// The holder released voluntarily (explicit release or a polite
  /// disconnect).
  released = 1,
  /// The lease TTL lapsed; the sweeper ended the epoch.
  expired = 2,
  /// A lease op carried a fenced (stale) epoch and was rejected.
  stale_fence = 3,
  /// A connection died and the server reclaimed its held keys.
  disconnect_reclaim = 4,
  /// The watch hub's queue overflowed and discarded an event.
  watch_drop = 5,
  /// An operator ended the epoch via admin force-release (distinct from
  /// an expiry: somebody pulled the lever).
  force_released = 6,
  /// The epoch was bumped with no holder involved — restore-time
  /// fencing of pre-restart leaseholders.
  epoch_bumped = 7,
};

[[nodiscard]] std::string_view to_string(event_kind k);

struct event_record {
  /// Journal-assigned, strictly increasing from 1 — gaps never occur
  /// (eviction removes old records, it does not renumber).
  std::uint64_t seq = 0;
  /// Wall clock (system_clock), milliseconds since the Unix epoch.
  std::uint64_t ts_ms = 0;
  event_kind kind = event_kind::elected;
  std::string key;
  std::uint64_t epoch = 0;
  /// Session/holder id the record concerns; -1 when not applicable.
  int holder = -1;
  /// Why ("ttl", "renew", "admin", "disconnect", ...); may be empty.
  std::string cause;

  /// One JSON object, e.g.
  /// {"seq":3,"ts_ms":1754550000123,"kind":"elected","key":"locks/a",
  ///  "epoch":2,"holder":7,"cause":""}
  [[nodiscard]] std::string to_json() const;
};

/// Lifetime journal counters (reported under "journal" in the service
/// report JSON and as elect_journal_* Prometheus series).
struct journal_report {
  std::uint64_t appended = 0;
  /// Records evicted from the in-memory ring (capacity pressure).
  std::uint64_t evicted = 0;
  /// Records written to the JSONL sink.
  std::uint64_t flushed = 0;
  /// Records abandoned because the sink could not be written.
  std::uint64_t flush_errors = 0;
};

class journal {
 public:
  /// `capacity` bounds the in-memory ring; `jsonl_path` (optional)
  /// names an append-only file for the on-disk sink.
  explicit journal(std::size_t capacity, std::string jsonl_path = "");
  ~journal();

  journal(const journal&) = delete;
  journal& operator=(const journal&) = delete;

  void append(event_kind kind, std::string key, std::uint64_t epoch,
              int holder, std::string cause);

  /// The most recent `n` records, oldest first.
  [[nodiscard]] std::vector<event_record> tail(std::size_t n) const;

  [[nodiscard]] journal_report report() const;

  /// Drain the sink and join the flusher. Appends after stop() still
  /// land in the memory ring but no longer reach disk. Idempotent.
  void stop();

 private:
  void flusher_main();

  const std::size_t capacity_;
  const std::string path_;

  mutable std::mutex mutex_;
  std::condition_variable flush_cv_;
  std::deque<event_record> recent_;
  /// Records appended but not yet written to the sink.
  std::deque<event_record> pending_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t evicted_ = 0;
  std::uint64_t flushed_ = 0;
  std::uint64_t flush_errors_ = 0;
  bool stopped_ = false;

  std::thread flusher_;
};

}  // namespace elect::obs
