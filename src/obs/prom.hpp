// Prometheus text-exposition rendering of a service report — the body
// behind the HTTP front-end's /metrics route.
//
// A pure function over svc::service_report: no registry of its own, no
// background scraping. The report already aggregates every layer's
// counters (shards, strategies, fast path, watch hub, tracer, journal);
// this file only formats. Series names are part of the operational
// interface — documented in README "Operating elect_server" — so
// renaming one is a breaking change.
#pragma once

#include <string>

#include "svc/metrics.hpp"

namespace elect::obs {

/// Render the service-level series (elect_*). The network front-end
/// appends its own elect_net_* series (net/server.cpp) — the split
/// keeps obs independent of the net layer.
[[nodiscard]] std::string render_prometheus(const svc::service_report& report);

}  // namespace elect::obs
