// Prometheus text-exposition rendering of a service report — the body
// behind the HTTP front-end's /metrics route.
//
// A pure function over svc::service_report: no registry of its own, no
// background scraping. The report already aggregates every layer's
// counters (shards, strategies, fast path, watch hub, tracer, journal);
// this file only formats. Series names are part of the operational
// interface — documented in README "Operating elect_server" — so
// renaming one is a breaking change.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "svc/metrics.hpp"

namespace elect::obs {

/// Render the service-level series (elect_*). The network front-end
/// appends its own elect_net_* series (net/server.cpp) — the split
/// keeps obs independent of the net layer.
[[nodiscard]] std::string render_prometheus(const svc::service_report& report);

// Exposition-format building blocks, shared with the net layer's
// elect_net_* rendering so both halves of /metrics emit identical
// HELP/TYPE framing. Each appends to `out`.

/// HELP + TYPE + one unlabeled counter sample.
void prom_counter(std::string& out, const char* name, const char* help,
                  std::uint64_t value);
/// HELP + TYPE + one unlabeled gauge sample.
void prom_gauge(std::string& out, const char* name, const char* help,
                std::uint64_t value);
/// HELP + TYPE header only — follow with prom_labeled samples.
void prom_type_line(std::string& out, const char* name, const char* help,
                    const char* type);
/// One `name{label="value"} count` sample (no HELP/TYPE framing).
void prom_labeled(std::string& out, const char* name, const char* label,
                  std::string_view value, std::uint64_t count);

}  // namespace elect::obs
