#include "obs/trace.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>

namespace elect::obs {
namespace {

constexpr std::size_t ring_slots = 2048;
constexpr std::size_t max_slow_dumps = 32;

/// One span slot under a sequence lock. The writer (the ring's owning
/// thread) bumps seq to odd, stores the fields, bumps to even; readers
/// retry-skip on odd or changed seq. All fields are atomics accessed
/// relaxed inside the seq window, so the protocol is data-race-free
/// (TSan-clean) without any mutex on the record path.
struct slot {
  std::atomic<std::uint64_t> seq{0};
  std::atomic<std::uint64_t> trace{0};
  std::atomic<std::uint64_t> stage{0};
  std::atomic<std::uint64_t> start{0};
  std::atomic<std::uint64_t> end{0};
};

struct ring {
  std::array<slot, ring_slots> slots;
  /// Next write position (monotonic; slot = next % ring_slots). Only
  /// the leasing thread advances it.
  std::atomic<std::uint64_t> next{0};
  /// Leased to a live thread right now. Guarded by registry mutex.
  bool in_use = false;
};

struct tracer_state {
  std::mutex mutex;
  /// All rings ever created; freed rings are reused, never destroyed,
  /// so collect() can still read spans of exited threads.
  std::vector<std::unique_ptr<ring>> rings;
  std::deque<std::string> slow;

  std::atomic<std::uint64_t> next_id{0};
  std::atomic<std::uint64_t> minted{0};
  std::atomic<std::uint64_t> spans{0};
  std::atomic<std::uint64_t> slow_captured{0};
  std::atomic<std::uint64_t> slow_evicted{0};
  std::atomic<std::int64_t> slow_threshold_ns{0};
  std::atomic<bool> slow_log{true};
};

// Intentionally leaked: detached threads (the server's blocking-op
// waiters) can record spans during process teardown, after static
// destructors would have run.
tracer_state& state() {
  static tracer_state* s = new tracer_state;
  return *s;
}

/// Thread-local lease on a ring: acquired on first record, returned to
/// the free pool when the thread exits.
struct ring_lease {
  ring* r = nullptr;

  ring* get() {
    if (r == nullptr) {
      tracer_state& s = state();
      const std::lock_guard<std::mutex> lock(s.mutex);
      for (auto& candidate : s.rings) {
        if (!candidate->in_use) {
          r = candidate.get();
          break;
        }
      }
      if (r == nullptr) {
        s.rings.push_back(std::make_unique<ring>());
        r = s.rings.back().get();
      }
      r->in_use = true;
    }
    return r;
  }

  ~ring_lease() {
    if (r != nullptr) {
      tracer_state& s = state();
      const std::lock_guard<std::mutex> lock(s.mutex);
      r->in_use = false;
    }
  }
};

thread_local ring_lease tl_ring;
thread_local std::uint64_t tl_current = 0;

void write_span(std::uint64_t trace_id, phase stage, std::uint64_t start_ns,
                std::uint64_t end_ns) {
  ring* r = tl_ring.get();
  const std::uint64_t pos =
      r->next.fetch_add(1, std::memory_order_relaxed) % ring_slots;
  slot& s = r->slots[pos];
  const std::uint64_t seq = s.seq.load(std::memory_order_relaxed);
  s.seq.store(seq + 1, std::memory_order_release);
  s.trace.store(trace_id, std::memory_order_relaxed);
  s.stage.store(static_cast<std::uint64_t>(stage), std::memory_order_relaxed);
  s.start.store(start_ns, std::memory_order_relaxed);
  s.end.store(end_ns, std::memory_order_relaxed);
  s.seq.store(seq + 2, std::memory_order_release);
  state().spans.fetch_add(1, std::memory_order_relaxed);
}

/// Append "12.345" (ns rendered as milliseconds) to out.
void append_ms(std::string& out, std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03" PRIu64, ns / 1000000,
                (ns / 1000) % 1000);
  out += buf;
}

}  // namespace

std::string_view to_string(phase p) {
  switch (p) {
    case phase::api_call: return "api_call";
    case phase::wire_rtt: return "wire_rtt";
    case phase::serve: return "serve";
    case phase::queue_wait: return "queue_wait";
    case phase::fast_path: return "fast_path";
    case phase::election: return "election";
    case phase::lease_grant: return "lease_grant";
    case phase::epoch_wait: return "epoch_wait";
    case phase::lease_op: return "lease_op";
  }
  return "unknown";
}

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t mint() {
  tracer_state& s = state();
  std::uint64_t base = s.next_id.load(std::memory_order_relaxed);
  if (base == 0) {
    // Seed from the clock once so two processes sharing a wire are
    // unlikely to mint colliding ids (ids are not globally unique, just
    // unlikely to overlap within a trace retention window).
    s.next_id.compare_exchange_strong(base, now_ns() | 1,
                                      std::memory_order_relaxed);
  }
  std::uint64_t id = s.next_id.fetch_add(1, std::memory_order_relaxed);
  if (id == 0) id = s.next_id.fetch_add(1, std::memory_order_relaxed);
  s.minted.fetch_add(1, std::memory_order_relaxed);
  return id;
}

std::uint64_t current() noexcept { return tl_current; }

trace_scope::trace_scope(std::uint64_t id) noexcept : previous_(tl_current) {
  tl_current = id;
}

trace_scope::~trace_scope() { tl_current = previous_; }

void record_for(std::uint64_t trace_id, phase stage, std::uint64_t start_ns,
                std::uint64_t end_ns) {
  if (trace_id == 0) return;
  write_span(trace_id, stage, start_ns, end_ns);
}

scoped_span::scoped_span(phase stage) noexcept
    : trace_(tl_current), stage_(stage) {
  if (trace_ != 0) start_ = now_ns();
}

scoped_span::~scoped_span() {
  if (trace_ != 0) write_span(trace_, stage_, start_, now_ns());
}

std::vector<span> collect(std::uint64_t trace_id) {
  std::vector<span> out;
  if (trace_id == 0) return out;
  tracer_state& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  for (const auto& r : s.rings) {
    for (const slot& sl : r->slots) {
      const std::uint64_t seq1 = sl.seq.load(std::memory_order_acquire);
      if (seq1 == 0 || (seq1 & 1) != 0) continue;
      span sp;
      sp.trace_id = sl.trace.load(std::memory_order_relaxed);
      sp.stage = static_cast<phase>(sl.stage.load(std::memory_order_relaxed));
      sp.start_ns = sl.start.load(std::memory_order_relaxed);
      sp.end_ns = sl.end.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (sl.seq.load(std::memory_order_relaxed) != seq1) continue;
      if (sp.trace_id == trace_id) out.push_back(sp);
    }
  }
  std::sort(out.begin(), out.end(), [](const span& a, const span& b) {
    return a.start_ns < b.start_ns;
  });
  return out;
}

std::string format_trace(std::uint64_t trace_id, std::string_view label) {
  const std::vector<span> spans = collect(trace_id);
  std::string out = "trace ";
  out += std::to_string(trace_id);
  out += " (";
  out.append(label.data(), label.size());
  out += ")";
  if (spans.empty()) {
    out += ": no spans recorded\n";
    return out;
  }
  const std::uint64_t origin = spans.front().start_ns;
  std::uint64_t total = 0;
  for (const span& sp : spans) {
    total = std::max(total, sp.end_ns > origin ? sp.end_ns - origin : 0);
  }
  // "The phase that stalled": the longest span that is not a wrapper
  // around the others (api_call and serve contain the interesting work).
  const span* slowest = nullptr;
  for (const span& sp : spans) {
    if (sp.stage == phase::api_call || sp.stage == phase::serve) continue;
    if (slowest == nullptr || sp.duration_ns() > slowest->duration_ns()) {
      slowest = &sp;
    }
  }
  if (slowest == nullptr) slowest = &spans.front();
  out += ": total ";
  append_ms(out, total);
  out += " ms, slowest phase ";
  out += to_string(slowest->stage);
  out += " (";
  append_ms(out, slowest->duration_ns());
  out += " ms)\n";
  for (const span& sp : spans) {
    out += "  [+";
    append_ms(out, sp.start_ns > origin ? sp.start_ns - origin : 0);
    out += " ms] ";
    const std::string_view name = to_string(sp.stage);
    out.append(name.data(), name.size());
    out.append(name.size() < 12 ? 12 - name.size() : 1, ' ');
    append_ms(out, sp.duration_ns());
    out += " ms\n";
  }
  return out;
}

void set_slow_threshold(std::chrono::nanoseconds threshold) {
  state().slow_threshold_ns.store(threshold.count(),
                                  std::memory_order_relaxed);
}

std::chrono::nanoseconds slow_threshold() noexcept {
  return std::chrono::nanoseconds(
      state().slow_threshold_ns.load(std::memory_order_relaxed));
}

void set_slow_log(bool enabled) {
  state().slow_log.store(enabled, std::memory_order_relaxed);
}

bool maybe_capture_slow(std::uint64_t trace_id,
                        std::chrono::nanoseconds total,
                        std::string_view label) {
  tracer_state& s = state();
  const std::int64_t threshold =
      s.slow_threshold_ns.load(std::memory_order_relaxed);
  if (trace_id == 0 || threshold <= 0 || total.count() < threshold) {
    return false;
  }
  std::string dump = "slow request: ";
  dump += format_trace(trace_id, label);
  {
    const std::lock_guard<std::mutex> lock(s.mutex);
    while (s.slow.size() >= max_slow_dumps) {
      s.slow.pop_front();
      s.slow_evicted.fetch_add(1, std::memory_order_relaxed);
    }
    s.slow.push_back(dump);
  }
  s.slow_captured.fetch_add(1, std::memory_order_relaxed);
  if (s.slow_log.load(std::memory_order_relaxed)) {
    std::fprintf(stderr, "%s", dump.c_str());
  }
  return true;
}

std::vector<std::string> slow_dumps() {
  tracer_state& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  return {s.slow.begin(), s.slow.end()};
}

trace_counters counters() {
  tracer_state& s = state();
  trace_counters c;
  c.minted = s.minted.load(std::memory_order_relaxed);
  c.spans = s.spans.load(std::memory_order_relaxed);
  c.slow_captured = s.slow_captured.load(std::memory_order_relaxed);
  c.slow_evicted = s.slow_evicted.load(std::memory_order_relaxed);
  return c;
}

}  // namespace elect::obs
