// elect::obs — request tracing: lock-free per-thread span rings with
// nanosecond timestamps, and automatic capture of slow requests.
//
// Every acquire/release/renew/watch gets a 64-bit *trace id*, minted in
// api::client (or taken off the wire by net::server, where the v3
// protocol carries it). The id travels with the request through the
// service — a thread-local "current trace" that scoped_span reads — and
// each instrumented phase (fast-path CAS, queue wait, protocol
// election, lease grant, epoch wait, wire round trip) records one span
// into the recording thread's ring.
//
// The hot path is built to cost nothing when nobody traces and almost
// nothing when they do:
//
//   * a span is four relaxed atomic stores into a fixed-size
//     thread-local ring, guarded by a per-slot sequence lock — no
//     mutex, no allocation, no cross-thread contention;
//   * scoped_span is a no-op (two thread-local reads) while the
//     current trace id is 0, which is every un-traced caller;
//   * readers (collect / slow-trace capture) walk all rings and skip
//     torn slots by re-checking the slot's sequence — a racing writer
//     costs the reader one skipped span, never a lock.
//
// Rings survive their thread: a ring is leased to a thread for its
// lifetime and returned to a free list at thread exit, so short-lived
// threads (the server's detached waiter threads) reuse rings instead of
// leaking one each, and their spans stay readable until the ring is
// overwritten by its next tenant.
//
// Slow-request capture: set_slow_threshold() arms a global threshold;
// maybe_capture_slow(id, total, label) — called by api::client and the
// server at the end of each request — formats the trace end-to-end,
// names the phase that stalled, and retains the dump in a small bounded
// store (slow_dumps()), optionally echoing it to stderr.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace elect::obs {

/// Instrumented request phases. Values index the per-phase aggregation
/// in trace dumps; append only.
enum class phase : std::uint8_t {
  /// The whole client-side call (api::client), submit to return.
  api_call = 0,
  /// One wire round trip (net::client request out -> response in).
  wire_rtt = 1,
  /// Server-side serving of one request (net::server).
  serve = 2,
  /// Job queued behind the node's driver (submit -> driver pickup).
  queue_wait = 3,
  /// The adaptive CAS fast path (begin_adaptive_attempt).
  fast_path = 4,
  /// The distributed election (driver co_await on the protocol).
  election = 5,
  /// The claim arbiter granting the epoch (claim_win).
  lease_grant = 6,
  /// A loser parked until the key's epoch moves (release/expiry).
  epoch_wait = 7,
  /// A fenced lease op (release/renew) against the registry.
  lease_op = 8,
};

inline constexpr int phase_count = 9;

[[nodiscard]] std::string_view to_string(phase p);

/// One recorded interval, as read back by collect(). Timestamps are
/// steady-clock nanoseconds (comparable within one process only).
struct span {
  std::uint64_t trace_id = 0;
  phase stage = phase::api_call;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;

  [[nodiscard]] std::uint64_t duration_ns() const noexcept {
    return end_ns >= start_ns ? end_ns - start_ns : 0;
  }
};

/// Lifetime tracer counters (reported under "trace" in the service
/// report JSON and as elect_trace_* Prometheus series).
struct trace_counters {
  /// Trace ids handed out by mint().
  std::uint64_t minted = 0;
  /// Spans recorded across all rings (including since-overwritten ones).
  std::uint64_t spans = 0;
  /// Slow-request dumps captured (threshold exceeded).
  std::uint64_t slow_captured = 0;
  /// Captured dumps evicted from the bounded retention store.
  std::uint64_t slow_evicted = 0;
};

/// Steady-clock now, in the nanosecond timebase spans use.
[[nodiscard]] std::uint64_t now_ns() noexcept;

/// Mint a fresh trace id (never 0). Ids are unique within a process;
/// the counter is seeded from the clock so ids from different processes
/// on one wire are unlikely to collide.
[[nodiscard]] std::uint64_t mint();

/// The calling thread's current trace id (0 = not tracing).
[[nodiscard]] std::uint64_t current() noexcept;

/// RAII: make `id` the calling thread's current trace for this scope,
/// restoring the previous id on exit. Scopes nest.
class trace_scope {
 public:
  explicit trace_scope(std::uint64_t id) noexcept;
  ~trace_scope();

  trace_scope(const trace_scope&) = delete;
  trace_scope& operator=(const trace_scope&) = delete;

 private:
  std::uint64_t previous_;
};

/// Record one span for an explicit trace id (no-op when id == 0). For
/// intervals whose endpoints are measured manually — e.g. a queue wait
/// that started on another thread.
void record_for(std::uint64_t trace_id, phase stage, std::uint64_t start_ns,
                std::uint64_t end_ns);

/// RAII span on the *current* trace: stamps start at construction and
/// records on destruction. A no-op (no clock read, no ring touch) while
/// current() == 0.
class scoped_span {
 public:
  explicit scoped_span(phase stage) noexcept;
  ~scoped_span();

  scoped_span(const scoped_span&) = delete;
  scoped_span& operator=(const scoped_span&) = delete;

 private:
  std::uint64_t trace_;
  std::uint64_t start_ = 0;
  phase stage_;
};

/// Every readable span recorded for `trace_id`, across all threads'
/// rings, sorted by start time. Spans overwritten by ring wrap-around
/// (or torn mid-write) are simply absent.
[[nodiscard]] std::vector<span> collect(std::uint64_t trace_id);

/// Human-readable multi-line dump of one trace: per-span timeline plus
/// the slowest non-wrapper phase ("the phase that stalled"). `label`
/// names the request ("acquire locks/demo").
[[nodiscard]] std::string format_trace(std::uint64_t trace_id,
                                       std::string_view label);

/// Arm (or, with zero, disarm) slow-request capture. Global: one
/// threshold per process, set by the service/server configuration.
void set_slow_threshold(std::chrono::nanoseconds threshold);
[[nodiscard]] std::chrono::nanoseconds slow_threshold() noexcept;

/// Echo captured dumps to stderr (default on — an operator watching the
/// server sees the dump the moment the slow request finishes).
void set_slow_log(bool enabled);

/// If capture is armed and `total` meets the threshold: format the
/// trace, retain the dump, count it, optionally log it. Returns whether
/// a dump was captured.
bool maybe_capture_slow(std::uint64_t trace_id,
                        std::chrono::nanoseconds total,
                        std::string_view label);

/// The retained slow-trace dumps, oldest first (bounded; see
/// trace_counters::slow_evicted for what aged out).
[[nodiscard]] std::vector<std::string> slow_dumps();

[[nodiscard]] trace_counters counters();

}  // namespace elect::obs
