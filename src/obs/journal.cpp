#include "obs/journal.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

namespace elect::obs {
namespace {

std::uint64_t wall_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

std::string_view to_string(event_kind k) {
  switch (k) {
    case event_kind::elected: return "elected";
    case event_kind::released: return "released";
    case event_kind::expired: return "expired";
    case event_kind::stale_fence: return "stale_fence";
    case event_kind::disconnect_reclaim: return "disconnect_reclaim";
    case event_kind::watch_drop: return "watch_drop";
    case event_kind::force_released: return "force_released";
    case event_kind::epoch_bumped: return "epoch_bumped";
  }
  return "unknown";
}

std::string event_record::to_json() const {
  std::string out = "{\"seq\":";
  out += std::to_string(seq);
  out += ",\"ts_ms\":";
  out += std::to_string(ts_ms);
  out += ",\"kind\":\"";
  const std::string_view name = to_string(kind);
  out.append(name.data(), name.size());
  out += "\",\"key\":\"";
  append_escaped(out, key);
  out += "\",\"epoch\":";
  out += std::to_string(epoch);
  out += ",\"holder\":";
  out += std::to_string(holder);
  out += ",\"cause\":\"";
  append_escaped(out, cause);
  out += "\"}";
  return out;
}

journal::journal(std::size_t capacity, std::string jsonl_path)
    : capacity_(capacity == 0 ? 1 : capacity), path_(std::move(jsonl_path)) {
  if (!path_.empty()) {
    flusher_ = std::thread([this] { flusher_main(); });
  }
}

journal::~journal() { stop(); }

void journal::append(event_kind kind, std::string key, std::uint64_t epoch,
                     int holder, std::string cause) {
  event_record rec;
  rec.ts_ms = wall_ms();
  rec.kind = kind;
  rec.key = std::move(key);
  rec.epoch = epoch;
  rec.holder = holder;
  rec.cause = std::move(cause);
  bool notify = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    rec.seq = next_seq_++;
    if (!path_.empty() && !stopped_) {
      // Bound the sink backlog the same way as the ring: a filesystem
      // that stops accepting writes must not grow memory forever.
      if (pending_.size() >= capacity_) {
        pending_.pop_front();
        ++flush_errors_;
      }
      pending_.push_back(rec);
      notify = true;
    }
    recent_.push_back(std::move(rec));
    while (recent_.size() > capacity_) {
      recent_.pop_front();
      ++evicted_;
    }
  }
  if (notify) flush_cv_.notify_one();
}

std::vector<event_record> journal::tail(std::size_t n) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t count = std::min(n, recent_.size());
  return {recent_.end() - static_cast<std::ptrdiff_t>(count), recent_.end()};
}

journal_report journal::report() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  journal_report r;
  r.appended = next_seq_ - 1;
  r.evicted = evicted_;
  r.flushed = flushed_;
  r.flush_errors = flush_errors_;
  return r;
}

void journal::stop() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  flush_cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
}

void journal::flusher_main() {
  std::FILE* file = std::fopen(path_.c_str(), "a");
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    flush_cv_.wait(lock, [this] { return stopped_ || !pending_.empty(); });
    if (pending_.empty() && stopped_) break;
    std::deque<event_record> batch;
    batch.swap(pending_);
    lock.unlock();
    std::size_t written = 0;
    if (file != nullptr) {
      for (const event_record& rec : batch) {
        const std::string line = rec.to_json() + "\n";
        if (std::fwrite(line.data(), 1, line.size(), file) == line.size()) {
          ++written;
        }
      }
      std::fflush(file);
    }
    lock.lock();
    flushed_ += written;
    flush_errors_ += batch.size() - written;
  }
  lock.unlock();
  if (file != nullptr) std::fclose(file);
}

}  // namespace elect::obs
