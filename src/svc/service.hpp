// elect::svc — a sharded multi-instance election service on the mt
// runtime.
//
// The paper's leader_elect (Figure 6) is a one-shot test-and-set. This
// service turns it into a long-running facility: many logical elections
// (one per string key) multiplexed over one fixed mt::cluster node pool.
//
//   * Every pool node runs a *driver* — a long-lived protocol coroutine
//     that pulls acquire jobs from a per-node queue and runs one
//     leader_elect instance per job. Drivers are woken through the
//     cluster's poke/idle-hook path, so job handoff rides the same event
//     loop that serves protocol messages.
//   * The instance registry (registry.hpp) shards keys across lock
//     stripes and lazily maps each key to its current (election_id,
//     epoch). release() bumps the epoch, giving repeated-TAS semantics.
//   * Which election scheme decides an epoch is a pluggable *strategy*
//     (election/strategy.hpp): the paper's full Figure-6 protocol, the
//     cheaper sifter_pill / doorway_only rungs of the algorithm ladder,
//     or `adaptive` — a contention-steered policy that grants
//     uncontended epochs through an epoch-fenced CAS in the registry
//     (no distributed protocol at all) and falls back to the full
//     protocol the moment contention is observed. The service carries a
//     default strategy plus per-key overrides in service_config; the
//     registry's grant-mode fencing guarantees the fast path and the
//     protocol path can never both grant one epoch.
//   * Ownership is a *lease*: winning an acquire grants the key until
//     `lease_ttl` elapses; the holder extends it with renew(). A sweeper
//     thread force-releases expired leases by bumping the epoch, so a
//     crashed client cannot wedge a key — blocked acquirers wake into a
//     fresh election. The epoch is the fencing token: a zombie's late
//     release()/renew() with its old epoch returns `stale_epoch` and has
//     no effect on the new holder.
//   * Client sessions are bound round-robin to pool nodes. acquire jobs
//     from different sessions on different nodes contend in the real
//     protocol; a second job on a node that already participated in an
//     instance loses locally (test-and-set is one invocation per
//     processor per instance).
//   * Quorum replication spans the whole pool: every node serves
//     propagate/collect for every instance, so elections tolerate up to
//     ceil(pool/2)-1 slow nodes exactly as the paper's model promises.
//
// Threading contract: session calls (try_acquire / acquire / release /
// renew) block the *calling* OS thread; protocol work happens on the
// pool threads. stop() is safe to call while clients are mid-call:
// in-flight acquires drain or come back with `rejected` set, and blocked
// acquirers are woken — nothing aborts and nothing hangs.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "election/strategy.hpp"
#include "engine/task.hpp"
#include "mt/cluster.hpp"
#include "obs/journal.hpp"
#include "svc/metrics.hpp"
#include "svc/registry.hpp"
#include "svc/watch.hpp"

namespace elect::svc {

struct service_config {
  /// Node pool size (one OS thread per node).
  int nodes = 8;
  /// Registry shard count (lock stripes + metrics partitions).
  int shards = 4;
  std::uint64_t seed = 1;
  /// Coalesce same-destination messages in the transport.
  bool batch_transport = true;
  /// Per-election round safety valve (see leader_elect_params).
  std::int64_t max_rounds = 1'000'000;
  /// Lease granted to a winning acquire, in milliseconds. 0 means leases
  /// never expire (PR-1 behaviour: the winner must release explicitly).
  std::uint64_t lease_ttl_ms = 0;
  /// How often the sweeper scans for expired leases. 0 derives
  /// max(1, lease_ttl_ms / 4). Ignored when lease_ttl_ms == 0 (no
  /// sweeper thread is started).
  std::uint64_t sweep_interval_ms = 0;
  /// Per-node participated-map size that triggers a stale-entry eviction
  /// pass (see service::worker::participated).
  std::size_t participated_prune_threshold = 1024;
  /// Election strategy used for keys without an override. `full` is the
  /// paper's Figure-6 protocol (strongest guarantees); see
  /// election/strategy.hpp for the ladder and `adaptive`.
  election::strategy_kind default_strategy = election::strategy_kind::full;
  /// Per-key strategy overrides (exact key match beats the default).
  std::unordered_map<std::string, election::strategy_kind> key_strategies;
  /// Traced requests slower than this auto-capture a span dump naming
  /// the stalled phase (obs::maybe_capture_slow). 0 disables. Note the
  /// tracer threshold is process-global; the last service constructed
  /// with a nonzero value wins.
  std::uint64_t slow_request_threshold_ms = 0;
  /// Journal typed events (elected / released / expired / stale_fence /
  /// watch_drop, plus the server's disconnect_reclaim) to a bounded
  /// in-memory ring readable via journal()->tail().
  bool journal_events = false;
  /// Optional JSONL sink for the journal (append-only file); requires
  /// journal_events.
  std::string journal_path;
  /// In-memory journal ring capacity (and the sink's backlog bound).
  std::size_t journal_capacity = 4096;
  /// Record every registry mutation to the per-shard command log
  /// (src/cmd/): the replayable stream behind registry().snapshot() /
  /// collect_commands(). Off by default — recording copies each
  /// command (key string included) into the log, which the adaptive
  /// fast path otherwise never pays for.
  bool record_commands = false;
  /// First session id this service hands out. Cluster members set a
  /// disjoint per-node base (repl: self << 24) so a lease replicated
  /// from another member's log can never collide with a live local
  /// session — a renew/release of a failed-over lease must fence
  /// (stale/not_leader), not accidentally match a stranger.
  int session_id_base = 0;

  /// Check the configuration without constructing a service: empty on
  /// success, otherwise a description of the first problem found. The
  /// service constructor runs this and aborts with the message — callers
  /// that would rather report than crash (the elect_server binary, test
  /// harnesses) validate first.
  [[nodiscard]] std::optional<std::string> validate() const;
};

/// Outcome of one acquire attempt (one leader_elect invocation).
struct acquire_result {
  bool won = false;
  /// The service refused the call because stop() ran first or
  /// concurrently. No election happened; won is false.
  bool rejected = false;
  /// try_acquire_for only: the timeout elapsed before the key's epoch
  /// moved; the last attempt's loss is reported alongside.
  bool timed_out = false;
  /// Set only by net::client, alongside rejected: the connection to the
  /// remote service was severed underneath the call (peer crash,
  /// network fault) rather than closed by this process. The local
  /// service never sets it. See lease_status::connection_lost.
  bool connection_lost = false;
  /// The epoch was granted through the adaptive CAS fast path — no
  /// distributed election ran for this attempt.
  bool fast_path = false;
  /// The epoch of the instance contended. Losers pass this to
  /// wait_for_epoch_above to sleep until the holder releases or expires;
  /// winners pass it back to renew()/release() as the fencing token.
  std::uint64_t epoch = 0;
  election::election_id instance{0};
  std::uint64_t latency_ns = 0;
  /// Winner only: when the lease lapses unless renewed
  /// (time_point::max() when lease_ttl_ms == 0).
  std::chrono::steady_clock::time_point lease_deadline{};
};

class service {
 public:
  explicit service(service_config config);
  ~service();

  service(const service&) = delete;
  service& operator=(const service&) = delete;

  /// A client handle bound to one pool node. Cheap to copy; all calls
  /// block the calling thread until the service answers.
  class session {
   public:
    /// One-shot test-and-set on `key`'s current instance: returns won or
    /// lost. Exactly one concurrent acquirer per (key, epoch) wins.
    acquire_result try_acquire(const std::string& key);

    /// Blocking acquire: contend, and on loss sleep until the holder
    /// releases (or its lease expires), then contend in the fresh
    /// instance. Returns the winning attempt's result — or, if the
    /// service stops while we wait, a result with `rejected` set.
    acquire_result acquire(const std::string& key);

    /// Bounded blocking acquire: like acquire(), but give up once
    /// `timeout` has elapsed — the result then has `timed_out` set (and
    /// `won` false). The timeout bounds the sleeps between attempts; an
    /// attempt already in flight when it expires still completes (and
    /// its win is returned). stop() wakes timed waiters immediately
    /// with `rejected`, same as acquire().
    acquire_result try_acquire_for(const std::string& key,
                                   std::chrono::milliseconds timeout);

    /// Give up leadership of `key` if this session currently holds it.
    /// Returns the fencing verdict; a session that lost the key to lease
    /// expiry gets `not_leader`/`stale_epoch` back instead of aborting.
    lease_status release(const std::string& key);

    /// Fenced release: only succeeds while `epoch` (from the winning
    /// acquire_result) is still current. Use this form when the same
    /// session may have re-acquired the key after an expiry.
    lease_status release(const std::string& key, std::uint64_t epoch);

    /// Extend the lease on `key` by the configured TTL. `stale_epoch`
    /// means the lease already expired and the key moved on — the caller
    /// must stop acting as leader.
    lease_status renew(const std::string& key, std::uint64_t epoch);

    /// Gracefully drop every key this session holds (client going away
    /// politely, as opposed to crashing and waiting out the TTL).
    /// Returns the number of keys released.
    std::size_t disconnect();

    /// Fenced release on behalf of this session's dead connection (the
    /// network edge reclaiming a late win on a closed socket). Same
    /// verdicts as release(key, epoch); recorded/journaled as a
    /// disconnect reclaim rather than a voluntary release.
    lease_status reclaim(const std::string& key, std::uint64_t epoch);

    /// disconnect(), but for a connection that died rather than said
    /// goodbye: every held lease ends as a disconnect reclaim. Returns
    /// the number of keys reclaimed.
    std::size_t reclaim_all();

    /// Snapshot of the keys this session currently holds. Introspection
    /// for embedders (the network front-end accounts per-connection
    /// leases with it); leases may expire between snapshot and use.
    [[nodiscard]] std::vector<std::string> held_keys() const;

    [[nodiscard]] int id() const noexcept { return id_; }
    [[nodiscard]] process_id node() const noexcept { return pid_; }

   private:
    friend class service;
    session(service& owner, int id, process_id pid)
        : owner_(&owner), id_(id), pid_(pid) {}

    service* owner_;
    int id_;
    process_id pid_;
  };

  /// Open a session, bound round-robin to a pool node. Aborts if the
  /// service already stopped — embedders racing shutdown (the network
  /// front-end accepting one last connection) use try_connect().
  [[nodiscard]] session connect();

  /// Like connect(), but returns empty instead of aborting once stop()
  /// has run or is running.
  [[nodiscard]] std::optional<session> try_connect();

  /// Has stop() run (or started)? Advisory — a false answer may be
  /// stale by the time the caller acts on it.
  [[nodiscard]] bool stopped() const noexcept {
    return stopped_.load(std::memory_order_relaxed);
  }

  /// Drain all queued jobs, stop the drivers and the lease sweeper, wake
  /// blocked acquirers (they come back `rejected`), and join the pool.
  /// Called by the destructor; idempotent and safe to race with client
  /// calls.
  void stop();

  [[nodiscard]] instance_registry& registry() noexcept { return registry_; }
  [[nodiscard]] const service_config& config() const noexcept {
    return config_;
  }
  [[nodiscard]] std::chrono::milliseconds lease_ttl() const noexcept {
    return std::chrono::milliseconds(config_.lease_ttl_ms);
  }

  /// Run one expiry sweep now (what the sweeper thread does on its
  /// interval). Exposed for tests and for embedders that drive their own
  /// clock. Returns the number of leases expired.
  std::size_t sweep_now();

  /// Admin force-release with accounting: ends `key`'s current epoch
  /// regardless of holder (registry force_release) and counts the kick
  /// in the forced_releases metric. The network front-end routes the
  /// admin_force_release wire op through here.
  lease_status force_release(const std::string& key);

  /// Subscribe to `key`'s leader transitions (elected / released /
  /// expired / force_released). Returns the subscription id, 0 once the
  /// service stopped.
  /// Delivery semantics per svc/watch.hpp: asynchronous on the hub's
  /// notifier thread, per-key ordering, no cross-key ordering; a
  /// transition is observable within the lease TTL + sweep interval of
  /// the holder misbehaving (expiry is what bounds a silent crash).
  [[nodiscard]] std::uint64_t watch(const std::string& key,
                                    watch_hub::callback fn);

  /// Cancel a subscription; after return the callback never runs again.
  void unwatch(std::uint64_t id);

  /// Snapshot of service + pool metrics (per-shard counters, latency
  /// quantiles, messages per acquire, communicate-call complexity).
  [[nodiscard]] service_report report() const;

  /// The structured event journal, or nullptr when
  /// config.journal_events is off. The journal is a rendering of the
  /// registry's command stream (one record per non-renewal command);
  /// the pointer stays valid for the service's lifetime.
  [[nodiscard]] obs::journal* journal() noexcept { return journal_.get(); }

  /// Install the replication commit gate (cluster mode). After every
  /// locally applied mutation the gate is called with the key the op
  /// touched (empty key = the op may have spanned every shard) and must
  /// return true once the mutation is quorum-committed. A false return
  /// converts the op's ack into `connection_lost`: a primary that lost
  /// its quorum must not confirm grants *or renewals* — that refusal is
  /// what demotes a zombie's clients before a fenced successor can
  /// double-grant. Install before serving traffic; swapping the gate is
  /// not synchronized against in-flight calls.
  void set_commit_gate(std::function<bool(const std::string&)> gate) {
    commit_gate_ = std::move(gate);
  }

  /// Suspend/resume the lease-expiry sweeper without tearing down its
  /// thread. Cluster followers suspend it — only the primary decides
  /// expiry (an `expired` command the followers then replicate), so a
  /// follower sweeping locally would fork the replica state — and the
  /// node resumes it on promotion. sweep_now() remains callable either
  /// way (tests and embedders drive their own clock through it).
  void set_sweeper_suspended(bool suspended) noexcept {
    sweeper_suspended_.store(suspended, std::memory_order_relaxed);
  }

 private:
  /// One queued acquire. The client thread owns the struct (on its
  /// stack) and sleeps on `done`; the node's driver fills `result`.
  struct job {
    std::string key;
    int session_id = -1;
    bool shutdown = false;
    /// Which election scheme decides this attempt (resolved at submit).
    election::strategy_kind kind = election::strategy_kind::full;
    /// The (instance, epoch) the attempt registered against on the
    /// client thread; the driver contends exactly this epoch (and loses
    /// cheaply if the key moved on by the time the job is served).
    instance_entry entry;
    /// The submitting client's trace id (0 = untraced); the driver
    /// records its phases against it.
    std::uint64_t trace = 0;
    std::chrono::steady_clock::time_point submitted;

    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    acquire_result result;
  };

  /// Per-node job queue + the parked driver coroutine handle. The queue
  /// is touched by client threads and the node thread; `current` and
  /// `participated` are node-thread-only.
  struct worker {
    std::mutex mutex;
    std::deque<job*> queue;
    /// Set (under mutex) when the shutdown job is queued. Later submits
    /// are turned away (submit() returns false and the acquire comes
    /// back `rejected`) instead of enqueueing behind a driver that will
    /// never serve them.
    bool draining = false;
    std::coroutine_handle<> parked;
    job* current = nullptr;
    /// Last instance this node invoked leader_elect on, per key (TAS is
    /// one invocation per processor per instance). Keyed by election key
    /// rather than instance id so the map is bounded by the keyspace, not
    /// by the ever-growing epoch count: once a key's epoch bumps, its old
    /// instance can never be handed out again, so only the latest matters.
    /// When it outgrows config.participated_prune_threshold the driver
    /// evicts entries whose instance no longer matches the registry
    /// (those can never be consulted again), so churn through many
    /// short-lived keys does not grow node memory forever.
    std::unordered_map<std::string, std::uint32_t> participated;
    /// Size at which the next prune pass fires. Starts at the config
    /// threshold and is re-armed after every pass to twice the surviving
    /// size, so a map full of *live* entries (which a pass cannot evict)
    /// is not re-scanned on every acquire — the scan cost stays
    /// amortized against actual growth.
    std::size_t participated_prune_at = 0;
    /// Mirror of participated.size() readable from other threads
    /// (report(), tests); the map itself is node-thread-only.
    std::atomic<std::size_t> participated_size{0};
  };

  /// Awaitable the driver parks on between jobs; resumed by pump().
  struct next_job {
    worker& w;
    bool await_ready();
    bool await_suspend(std::coroutine_handle<> handle);
    job* await_resume();
  };

  engine::task<std::int64_t> driver(engine::node& node, worker& w);
  /// Strategy deciding `key`'s epochs (per-key override or default).
  [[nodiscard]] election::strategy_kind strategy_for(
      const std::string& key) const;
  /// The protocol object behind `kind` (adaptive resolves to full).
  [[nodiscard]] election::strategy& protocol_for(
      election::strategy_kind kind) const;
  void pump(worker& w);
  /// Enqueue `j` on pid's driver. Returns false (without enqueueing) if
  /// the worker is already draining for shutdown.
  [[nodiscard]] bool submit(process_id pid, job& j);
  acquire_result run_acquire(int session_id, process_id pid,
                             const std::string& key);
  /// Record the metric (and journal a stale_fence) for a fenced
  /// release/renew outcome and pass the status through.
  lease_status count_lease_op(const std::string& key, lease_status status,
                              bool renewal, std::uint64_t epoch);
  /// Run the commit gate (when installed) over a freshly decided
  /// acquire: a won attempt whose grant never commits is reported as
  /// `connection_lost`, not a win.
  [[nodiscard]] acquire_result gate_acquire(acquire_result result,
                                            const std::string& key);
  /// Same for single-key lease ops: an `ok` that never commits becomes
  /// `connection_lost`.
  [[nodiscard]] lease_status gate_lease_op(const std::string& key,
                                           lease_status status);
  /// Multi-key variant (disconnect / reclaim_all): the gate is awaited
  /// for command ordering, but the local count is returned regardless —
  /// the leases already ended here, and if the commit fails this node is
  /// being deposed anyway.
  std::size_t gate_multi_release(std::size_t count);
  void prune_participated(worker& w);
  void sweeper_main();
  /// The registry's command hook: render one mutation into the watch
  /// hub and (when enabled) the journal — the downstream layers are
  /// views of the command stream, not parallel bookkeeping.
  void render_command(const cmd::command& c);

  service_config config_;
  /// Declared before the registry: the registry's command hook targets
  /// the hub and the journal, so both must be constructed first and
  /// destroyed last.
  watch_hub hub_;
  std::unique_ptr<obs::journal> journal_;
  instance_registry registry_;
  service_metrics metrics_;
  /// One shared protocol object per strategy kind (stateless; elect()
  /// runs on the pool threads).
  std::array<std::unique_ptr<election::strategy>,
             election::strategy_kind_count>
      strategies_;
  std::unique_ptr<mt::cluster> pool_;
  std::vector<std::unique_ptr<worker>> workers_;

  std::mutex connect_mutex_;
  int next_session_ = 0;
  std::atomic<bool> stopped_{false};

  /// Replication commit gate (cluster mode); empty in single-node use,
  /// where every mutation is trivially durable the moment it applies.
  std::function<bool(const std::string&)> commit_gate_;
  std::atomic<bool> sweeper_suspended_{false};

  std::thread sweeper_;
  std::mutex sweeper_mutex_;
  std::condition_variable sweeper_cv_;
  bool sweeper_stop_ = false;
};

}  // namespace elect::svc
