// elect::svc — a sharded multi-instance election service on the mt
// runtime.
//
// The paper's leader_elect (Figure 6) is a one-shot test-and-set. This
// service turns it into a long-running facility: many logical elections
// (one per string key) multiplexed over one fixed mt::cluster node pool.
//
//   * Every pool node runs a *driver* — a long-lived protocol coroutine
//     that pulls acquire jobs from a per-node queue and runs one
//     leader_elect instance per job. Drivers are woken through the
//     cluster's poke/idle-hook path, so job handoff rides the same event
//     loop that serves protocol messages.
//   * The instance registry (registry.hpp) shards keys across lock
//     stripes and lazily maps each key to its current (election_id,
//     epoch). release() bumps the epoch, giving repeated-TAS semantics.
//   * Client sessions are bound round-robin to pool nodes. acquire jobs
//     from different sessions on different nodes contend in the real
//     protocol; a second job on a node that already participated in an
//     instance loses locally (test-and-set is one invocation per
//     processor per instance).
//   * Quorum replication spans the whole pool: every node serves
//     propagate/collect for every instance, so elections tolerate up to
//     ceil(pool/2)-1 slow nodes exactly as the paper's model promises.
//
// Threading contract: session calls (try_acquire / acquire / release)
// block the *calling* OS thread; protocol work happens on the pool
// threads. Call stop() (or destroy the service) only after all client
// threads are done issuing calls.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "election/leader_elect.hpp"
#include "engine/task.hpp"
#include "mt/cluster.hpp"
#include "svc/metrics.hpp"
#include "svc/registry.hpp"

namespace elect::svc {

struct service_config {
  /// Node pool size (one OS thread per node).
  int nodes = 8;
  /// Registry shard count (lock stripes + metrics partitions).
  int shards = 4;
  std::uint64_t seed = 1;
  /// Coalesce same-destination messages in the transport.
  bool batch_transport = true;
  /// Per-election round safety valve (see leader_elect_params).
  std::int64_t max_rounds = 1'000'000;
};

/// Outcome of one acquire attempt (one leader_elect invocation).
struct acquire_result {
  bool won = false;
  /// The epoch of the instance contended. Losers pass this to
  /// wait_for_epoch_above to sleep until the holder releases.
  std::uint64_t epoch = 0;
  election::election_id instance{0};
  std::uint64_t latency_ns = 0;
};

class service {
 public:
  explicit service(service_config config);
  ~service();

  service(const service&) = delete;
  service& operator=(const service&) = delete;

  /// A client handle bound to one pool node. Cheap to copy; all calls
  /// block the calling thread until the service answers.
  class session {
   public:
    /// One-shot test-and-set on `key`'s current instance: returns won or
    /// lost. Exactly one concurrent acquirer per (key, epoch) wins.
    acquire_result try_acquire(const std::string& key);

    /// Blocking acquire: contend, and on loss sleep until the holder
    /// releases, then contend in the fresh instance. Returns the winning
    /// attempt's result.
    acquire_result acquire(const std::string& key);

    /// Give up leadership of `key`; aborts if this session is not the
    /// recorded holder. Triggers a fresh election instance for the key.
    void release(const std::string& key);

    [[nodiscard]] int id() const noexcept { return id_; }
    [[nodiscard]] process_id node() const noexcept { return pid_; }

   private:
    friend class service;
    session(service& owner, int id, process_id pid)
        : owner_(&owner), id_(id), pid_(pid) {}

    service* owner_;
    int id_;
    process_id pid_;
  };

  /// Open a session, bound round-robin to a pool node.
  [[nodiscard]] session connect();

  /// Drain all queued jobs, stop the drivers, and join the pool. Called
  /// by the destructor; idempotent.
  void stop();

  [[nodiscard]] instance_registry& registry() noexcept { return registry_; }
  [[nodiscard]] const service_config& config() const noexcept {
    return config_;
  }

  /// Snapshot of service + pool metrics (per-shard counters, latency
  /// quantiles, messages per acquire, communicate-call complexity).
  [[nodiscard]] service_report report() const;

 private:
  /// One queued acquire. The client thread owns the struct (on its
  /// stack) and sleeps on `done`; the node's driver fills `result`.
  struct job {
    std::string key;
    int session_id = -1;
    bool shutdown = false;
    std::chrono::steady_clock::time_point submitted;

    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    acquire_result result;
  };

  /// Per-node job queue + the parked driver coroutine handle. The queue
  /// is touched by client threads and the node thread; `current` and
  /// `participated` are node-thread-only.
  struct worker {
    std::mutex mutex;
    std::deque<job*> queue;
    /// Set (under mutex) when the shutdown job is queued. Later submits
    /// abort loudly instead of enqueueing behind a driver that will never
    /// serve them (which would hang the client forever).
    bool draining = false;
    std::coroutine_handle<> parked;
    job* current = nullptr;
    /// Last instance this node invoked leader_elect on, per key (TAS is
    /// one invocation per processor per instance). Keyed by election key
    /// rather than instance id so the map is bounded by the keyspace, not
    /// by the ever-growing epoch count: once a key's epoch bumps, its old
    /// instance can never be handed out again, so only the latest matters.
    std::unordered_map<std::string, std::uint32_t> participated;
  };

  /// Awaitable the driver parks on between jobs; resumed by pump().
  struct next_job {
    worker& w;
    bool await_ready();
    bool await_suspend(std::coroutine_handle<> handle);
    job* await_resume();
  };

  engine::task<std::int64_t> driver(engine::node& node, worker& w);
  void pump(worker& w);
  void submit(process_id pid, job& j);
  acquire_result run_acquire(int session_id, process_id pid,
                             const std::string& key);

  service_config config_;
  instance_registry registry_;
  service_metrics metrics_;
  std::unique_ptr<mt::cluster> pool_;
  std::vector<std::unique_ptr<worker>> workers_;

  std::mutex connect_mutex_;
  int next_session_ = 0;
  std::atomic<bool> stopped_{false};
};

}  // namespace elect::svc
