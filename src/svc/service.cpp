#include "svc/service.hpp"

#include <utility>

namespace elect::svc {

service::service(service_config config)
    : config_(config),
      registry_(config.shards),
      metrics_(config.shards),
      pool_(std::make_unique<mt::cluster>(
          config.nodes, config.seed,
          mt::cluster_options{.batch_transport = config.batch_transport})) {
  ELECT_CHECK(config.nodes >= 1);
  ELECT_CHECK(config.shards >= 1);
  workers_.reserve(static_cast<std::size_t>(config.nodes));
  for (process_id pid = 0; pid < config.nodes; ++pid) {
    workers_.push_back(std::make_unique<worker>());
    worker* w = workers_.back().get();
    pool_->attach(pid, [this, w](engine::node& node) {
      return driver(node, *w);
    });
    pool_->set_idle_hook(pid, [this, w] { pump(*w); });
  }
  pool_->start();
}

service::~service() { stop(); }

service::session service::connect() {
  const std::lock_guard<std::mutex> lock(connect_mutex_);
  ELECT_CHECK_MSG(!stopped_.load(), "connect() after stop()");
  const int id = next_session_++;
  return session(*this, id, static_cast<process_id>(id % config_.nodes));
}

void service::stop() {
  if (stopped_.exchange(true)) return;
  // One shutdown job per driver; queued behind any in-flight acquires, so
  // drivers drain their queues before returning.
  std::vector<std::unique_ptr<job>> shutdowns;
  shutdowns.reserve(workers_.size());
  for (process_id pid = 0; pid < config_.nodes; ++pid) {
    auto j = std::make_unique<job>();
    j->shutdown = true;
    submit(pid, *j);
    shutdowns.push_back(std::move(j));
  }
  pool_->wait();
}

// ---------------------------------------------------------------------
// Job handoff: client thread -> per-node queue -> driver coroutine.

void service::submit(process_id pid, job& j) {
  worker& w = *workers_[static_cast<std::size_t>(pid)];
  {
    const std::lock_guard<std::mutex> lock(w.mutex);
    // Checked under the queue lock so a submit racing stop() either lands
    // ahead of the shutdown job (and is served) or aborts — never hangs.
    ELECT_CHECK_MSG(!w.draining, "acquire submitted after stop()");
    if (j.shutdown) w.draining = true;
    w.queue.push_back(&j);
  }
  pool_->poke(pid);
}

void service::pump(worker& w) {
  std::coroutine_handle<> handle;
  {
    const std::lock_guard<std::mutex> lock(w.mutex);
    if (!w.parked || w.queue.empty()) return;
    w.current = w.queue.front();
    w.queue.pop_front();
    handle = std::exchange(w.parked, nullptr);
  }
  handle.resume();  // on the node's own thread, via its idle hook
}

bool service::next_job::await_ready() {
  const std::lock_guard<std::mutex> lock(w.mutex);
  if (w.queue.empty()) return false;
  w.current = w.queue.front();
  w.queue.pop_front();
  return true;
}

bool service::next_job::await_suspend(std::coroutine_handle<> handle) {
  const std::lock_guard<std::mutex> lock(w.mutex);
  if (!w.queue.empty()) {
    // A job arrived between await_ready and here; take it and keep going.
    w.current = w.queue.front();
    w.queue.pop_front();
    return false;
  }
  ELECT_CHECK(!w.parked);
  w.parked = handle;
  return true;
}

service::job* service::next_job::await_resume() {
  ELECT_CHECK(w.current != nullptr);
  return std::exchange(w.current, nullptr);
}

// ---------------------------------------------------------------------
// The driver: one long-lived protocol coroutine per pool node.

engine::task<std::int64_t> service::driver(engine::node& node, worker& w) {
  for (;;) {
    job* j = co_await next_job{w};
    if (j->shutdown) {
      // Notify under the lock: the moment a waiter can observe done the
      // job (on its owner's stack) may be destroyed, so an unlocked
      // notify would race the cv's destruction.
      {
        const std::lock_guard<std::mutex> lock(j->mutex);
        j->done = true;
        j->cv.notify_all();
      }
      co_return 0;
    }

    const instance_entry entry = registry_.current(j->key);
    acquire_result result;
    result.epoch = entry.epoch;
    result.instance = entry.instance;

    // TAS is one invocation per processor per instance: if this node
    // already contended in (key, epoch) — a second session bound to the
    // same node — the instance is decided or being decided by the earlier
    // invocation, so this one loses without touching the network.
    const auto [it, fresh_key] =
        w.participated.try_emplace(j->key, entry.instance.value);
    if (fresh_key || it->second != entry.instance.value) {
      it->second = entry.instance.value;
      const election::tas_result outcome = co_await election::leader_elect(
          node,
          election::leader_elect_params{entry.instance, config_.max_rounds});
      result.won = outcome == election::tas_result::win;
    }
    if (result.won) {
      registry_.record_winner(j->key, result.epoch, j->session_id);
    }
    result.latency_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - j->submitted)
            .count());
    metrics_.record_acquire(registry_.shard_of(j->key), result.won,
                            result.latency_ns);

    {
      // Notify under the lock — see the shutdown path above: the client
      // frees the job as soon as it observes done.
      const std::lock_guard<std::mutex> lock(j->mutex);
      j->result = result;
      j->done = true;
      j->cv.notify_all();
    }
  }
}

acquire_result service::run_acquire(int session_id, process_id pid,
                                    const std::string& key) {
  ELECT_CHECK_MSG(!stopped_.load(), "acquire after stop()");
  job j;
  j.key = key;
  j.session_id = session_id;
  j.submitted = std::chrono::steady_clock::now();
  submit(pid, j);
  std::unique_lock<std::mutex> lock(j.mutex);
  j.cv.wait(lock, [&] { return j.done; });
  return j.result;
}

// ---------------------------------------------------------------------
// Session API.

acquire_result service::session::try_acquire(const std::string& key) {
  return owner_->run_acquire(id_, pid_, key);
}

acquire_result service::session::acquire(const std::string& key) {
  for (;;) {
    const acquire_result result = try_acquire(key);
    if (result.won) return result;
    owner_->registry_.wait_for_epoch_above(key, result.epoch);
  }
}

void service::session::release(const std::string& key) {
  owner_->registry_.release(key, id_);
  owner_->metrics_.record_release(owner_->registry_.shard_of(key));
}

// ---------------------------------------------------------------------
// Reporting.

service_report service::report() const {
  service_report report = metrics_.snapshot();
  for (int s = 0; s < registry_.shard_count(); ++s) {
    report.shards[static_cast<std::size_t>(s)].keys =
        registry_.keys_in_shard(s);
  }
  report.total_messages = pool_->total_messages();
  report.mailbox_pushes = pool_->total_mailbox_pushes();
  report.messages_per_acquire =
      report.acquires == 0
          ? 0.0
          : static_cast<double>(report.total_messages) /
                static_cast<double>(report.acquires);
  const engine::metrics& pool_metrics = pool_->runtime_metrics();
  report.mean_communicate_calls = pool_metrics.mean_communicate_calls();
  report.max_communicate_calls = pool_metrics.max_communicate_calls();
  return report;
}

}  // namespace elect::svc
