#include "svc/service.hpp"

#include <algorithm>
#include <utility>

#include "obs/trace.hpp"

namespace elect::svc {

namespace {

std::chrono::milliseconds sweep_interval(const service_config& config) {
  if (config.sweep_interval_ms != 0) {
    return std::chrono::milliseconds(config.sweep_interval_ms);
  }
  return std::chrono::milliseconds(std::max<std::uint64_t>(
      1, config.lease_ttl_ms / 4));
}

std::uint64_t to_trace_ns(std::chrono::steady_clock::time_point tp) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          tp.time_since_epoch())
          .count());
}

}  // namespace

std::optional<std::string> service_config::validate() const {
  if (nodes <= 0) {
    return "service_config.nodes must be >= 1 (got " +
           std::to_string(nodes) + ")";
  }
  if (shards <= 0) {
    return "service_config.shards must be >= 1 (got " +
           std::to_string(shards) + ")";
  }
  if (max_rounds <= 0) {
    return "service_config.max_rounds must be >= 1 (got " +
           std::to_string(max_rounds) + ")";
  }
  if (participated_prune_threshold == 0) {
    return "service_config.participated_prune_threshold must be >= 1";
  }
  if (session_id_base < 0) {
    return "service_config.session_id_base must be >= 0 (got " +
           std::to_string(session_id_base) + ")";
  }
  if (sweep_interval_ms != 0 && lease_ttl_ms == 0) {
    return "service_config.sweep_interval_ms=" +
           std::to_string(sweep_interval_ms) +
           " without lease_ttl_ms: there are no leases to sweep — set "
           "lease_ttl_ms or drop the sweep interval";
  }
  if (!journal_path.empty() && !journal_events) {
    return "service_config.journal_path=\"" + journal_path +
           "\" without journal_events: nothing would be written — enable "
           "journal_events or drop the path";
  }
  if (journal_events && journal_capacity == 0) {
    return "service_config.journal_capacity must be >= 1 when "
           "journal_events is set";
  }
  const auto known_kind = [](election::strategy_kind kind) {
    const auto value = static_cast<int>(kind);
    return value >= 0 && value < election::strategy_kind_count;
  };
  if (!known_kind(default_strategy)) {
    return "service_config.default_strategy is not a known strategy_kind "
           "(raw value " + std::to_string(static_cast<int>(default_strategy)) +
           ")";
  }
  for (const auto& [key, kind] : key_strategies) {
    if (key.empty()) {
      return "service_config.key_strategies contains an empty key";
    }
    if (!known_kind(kind)) {
      return "service_config.key_strategies[\"" + key +
             "\"] is not a known strategy_kind (raw value " +
             std::to_string(static_cast<int>(kind)) + ")";
    }
  }
  return std::nullopt;
}

service::service(service_config config)
    : config_(std::move(config)),
      registry_(config_.shards >= 1 ? config_.shards : 1),
      metrics_(config_.shards >= 1 ? config_.shards : 1),
      pool_(std::make_unique<mt::cluster>(
          config_.nodes >= 1 ? config_.nodes : 1, config_.seed,
          mt::cluster_options{.batch_transport = config_.batch_transport})) {
  // Validate before anything observable starts; the clamped member
  // initializers above only keep the subobject constructors from
  // aborting with a less descriptive message first.
  const auto config_error = config_.validate();
  ELECT_CHECK_MSG(!config_error.has_value(), config_error.value_or(""));
  if (config_.slow_request_threshold_ms != 0) {
    obs::set_slow_threshold(
        std::chrono::milliseconds(config_.slow_request_threshold_ms));
  }
  if (config_.journal_events) {
    journal_ = std::make_unique<obs::journal>(config_.journal_capacity,
                                              config_.journal_path);
    // The journal consumes every transition, so the hook must fire even
    // with zero watch subscriptions.
    hub_.force_arm();
    hub_.set_drop_hook([this](const std::string& key) {
      journal_->append(obs::event_kind::watch_drop, key, 0, -1, "overflow");
    });
  }
  if (config_.record_commands) registry_.enable_command_log();
  next_session_ = config_.session_id_base;
  registry_.set_command_hook(
      hub_.armed(), [this](const cmd::command& c) { render_command(c); });
  for (int k = 0; k < election::strategy_kind_count; ++k) {
    strategies_[static_cast<std::size_t>(k)] =
        election::make_strategy(static_cast<election::strategy_kind>(k));
  }
  workers_.reserve(static_cast<std::size_t>(config_.nodes));
  for (process_id pid = 0; pid < config_.nodes; ++pid) {
    workers_.push_back(std::make_unique<worker>());
    worker* w = workers_.back().get();
    pool_->attach(pid, [this, w](engine::node& node) {
      return driver(node, *w);
    });
    pool_->set_idle_hook(pid, [this, w] { pump(*w); });
  }
  pool_->start();
  if (config_.lease_ttl_ms != 0) {
    sweeper_ = std::thread([this] { sweeper_main(); });
  }
}

service::~service() { stop(); }

service::session service::connect() {
  auto opened = try_connect();
  ELECT_CHECK_MSG(opened.has_value(), "connect() after stop()");
  return *opened;
}

std::optional<service::session> service::try_connect() {
  const std::lock_guard<std::mutex> lock(connect_mutex_);
  if (stopped_.load()) return std::nullopt;
  const int id = next_session_++;
  return session(*this, id, static_cast<process_id>(id % config_.nodes));
}

void service::stop() {
  if (stopped_.exchange(true)) return;
  if (sweeper_.joinable()) {
    {
      const std::lock_guard<std::mutex> lock(sweeper_mutex_);
      sweeper_stop_ = true;
    }
    sweeper_cv_.notify_all();
    sweeper_.join();
  }
  // Wake clients blocked in wait_for_epoch_above *before* draining: on
  // wakeup they retry the acquire and get a rejected result instead of
  // sleeping on an epoch bump that will never come.
  registry_.shutdown();
  // One shutdown job per driver; queued behind any in-flight acquires, so
  // drivers drain their queues before returning.
  std::vector<std::unique_ptr<job>> shutdowns;
  shutdowns.reserve(workers_.size());
  for (process_id pid = 0; pid < config_.nodes; ++pid) {
    auto j = std::make_unique<job>();
    j->shutdown = true;
    const bool queued = submit(pid, *j);
    ELECT_CHECK_MSG(queued, "second shutdown job on one worker");
    shutdowns.push_back(std::move(j));
  }
  pool_->wait();
  // Last: the drain above may still publish transitions (drained acquires
  // claiming wins); stopping the hub after the pool keeps those flowing
  // to watchers until the very end, then drops the remainder.
  hub_.stop();
  // After the hub: nothing publishes transitions anymore, so the journal
  // can drain its sink and join the flusher.
  if (journal_) journal_->stop();
}

std::uint64_t service::watch(const std::string& key, watch_hub::callback fn) {
  return hub_.add(key, std::move(fn));
}

void service::unwatch(std::uint64_t id) { hub_.remove(id); }

// ---------------------------------------------------------------------
// Lease sweeper: force-release expired holders on a fixed interval.

std::size_t service::sweep_now() {
  return registry_.sweep_expired(
      std::chrono::steady_clock::now(),
      [this](int shard) { metrics_.record_expiration(shard); });
}

lease_status service::force_release(const std::string& key) {
  const lease_status status = registry_.force_release(key);
  if (status == lease_status::ok) {
    metrics_.record_forced_release(registry_.shard_of(key));
  }
  return gate_lease_op(key, status);
}

void service::render_command(const cmd::command& c) {
  // One source of truth: watch events and journal records are both
  // renderings of the command stream, never parallel bookkeeping.
  switch (c.kind) {
    case cmd::command_kind::acquire_granted:
      hub_.publish(c.key, c.epoch, transition::elected, c.session);
      if (journal_) {
        journal_->append(obs::event_kind::elected, c.key, c.epoch, c.session,
                         "");
      }
      break;
    case cmd::command_kind::released:
      hub_.publish(c.key, c.epoch, transition::released, c.session);
      if (journal_) {
        journal_->append(obs::event_kind::released, c.key, c.epoch,
                         c.session, "");
      }
      break;
    case cmd::command_kind::expired:
      hub_.publish(c.key, c.epoch, transition::expired, c.session);
      if (journal_) {
        journal_->append(obs::event_kind::expired, c.key, c.epoch, c.session,
                         "");
      }
      break;
    case cmd::command_kind::force_released:
      hub_.publish(c.key, c.epoch, transition::force_released, c.session);
      if (journal_) {
        journal_->append(obs::event_kind::force_released, c.key, c.epoch,
                         c.session, "admin");
      }
      break;
    case cmd::command_kind::disconnect_reclaimed:
      // Watchers see a release — the lease ended; *why* it ended is
      // journal detail, where the crash/politeness distinction lives.
      hub_.publish(c.key, c.epoch, transition::released, c.session);
      if (journal_) {
        journal_->append(obs::event_kind::disconnect_reclaim, c.key, c.epoch,
                         c.session, "connection closed");
      }
      break;
    case cmd::command_kind::epoch_bumped:
      // Restore-time fencing: no holder changed hands, so watchers see
      // nothing; the journal records the fence.
      if (journal_) {
        journal_->append(obs::event_kind::epoch_bumped, c.key, c.epoch, -1,
                         "restore");
      }
      break;
    case cmd::command_kind::renewed:
      // Log-only; the registry never publishes renewals.
      break;
  }
}

void service::sweeper_main() {
  const auto interval = sweep_interval(config_);
  std::unique_lock<std::mutex> lock(sweeper_mutex_);
  while (!sweeper_stop_) {
    sweeper_cv_.wait_for(lock, interval, [this] { return sweeper_stop_; });
    if (sweeper_stop_) return;
    // Suspended (cluster follower): keep the thread, skip the sweep —
    // expiry is the primary's decision, replicated as a command.
    if (sweeper_suspended_.load(std::memory_order_relaxed)) continue;
    lock.unlock();
    sweep_now();
    lock.lock();
  }
}

// ---------------------------------------------------------------------
// Commit gating: in cluster mode no mutation is acked before a quorum
// has it. The gate itself lives in the repl layer; the service only
// converts a failed wait into the sever verdict.

acquire_result service::gate_acquire(acquire_result result,
                                     const std::string& key) {
  if (!result.won || !commit_gate_ || commit_gate_(key)) return result;
  // The grant applied locally but never reached a quorum: this primary
  // may not confirm it. Failover reconciles the registry; the caller
  // must treat the lease as never granted.
  result.won = false;
  result.fast_path = false;
  result.rejected = true;
  result.connection_lost = true;
  return result;
}

lease_status service::gate_lease_op(const std::string& key,
                                    lease_status status) {
  if (status != lease_status::ok || !commit_gate_ || commit_gate_(key)) {
    return status;
  }
  return lease_status::connection_lost;
}

std::size_t service::gate_multi_release(std::size_t count) {
  if (count != 0 && commit_gate_) commit_gate_(std::string());
  return count;
}

// ---------------------------------------------------------------------
// Job handoff: client thread -> per-node queue -> driver coroutine.

bool service::submit(process_id pid, job& j) {
  worker& w = *workers_[static_cast<std::size_t>(pid)];
  {
    const std::lock_guard<std::mutex> lock(w.mutex);
    // Checked under the queue lock so a submit racing stop() either lands
    // ahead of the shutdown job (and is served) or is turned away — never
    // hangs behind a driver that already returned.
    if (w.draining && !j.shutdown) return false;
    if (j.shutdown) {
      if (w.draining) return false;
      w.draining = true;
    }
    w.queue.push_back(&j);
  }
  pool_->poke(pid);
  return true;
}

void service::pump(worker& w) {
  std::coroutine_handle<> handle;
  {
    const std::lock_guard<std::mutex> lock(w.mutex);
    if (!w.parked || w.queue.empty()) return;
    w.current = w.queue.front();
    w.queue.pop_front();
    handle = std::exchange(w.parked, nullptr);
  }
  handle.resume();  // on the node's own thread, via its idle hook
}

bool service::next_job::await_ready() {
  const std::lock_guard<std::mutex> lock(w.mutex);
  if (w.queue.empty()) return false;
  w.current = w.queue.front();
  w.queue.pop_front();
  return true;
}

bool service::next_job::await_suspend(std::coroutine_handle<> handle) {
  const std::lock_guard<std::mutex> lock(w.mutex);
  if (!w.queue.empty()) {
    // A job arrived between await_ready and here; take it and keep going.
    w.current = w.queue.front();
    w.queue.pop_front();
    return false;
  }
  ELECT_CHECK(!w.parked);
  w.parked = handle;
  return true;
}

service::job* service::next_job::await_resume() {
  ELECT_CHECK(w.current != nullptr);
  return std::exchange(w.current, nullptr);
}

// ---------------------------------------------------------------------
// The driver: one long-lived protocol coroutine per pool node.

void service::prune_participated(worker& w) {
  if (w.participated_prune_at == 0) {
    w.participated_prune_at = config_.participated_prune_threshold;
  }
  if (w.participated.size() < w.participated_prune_at) return;
  for (auto it = w.participated.begin(); it != w.participated.end();) {
    // An entry is only consulted while its instance is the key's current
    // one; after any epoch bump (release, expiry, disconnect) the stored
    // instance can never be handed out again, so the entry is dead
    // weight. Entries still matching the current instance must stay —
    // dropping one would let a second invocation of a live instance
    // through.
    const auto current = registry_.peek(it->first);
    if (!current.has_value() || current->instance.value != it->second) {
      it = w.participated.erase(it);
    } else {
      ++it;
    }
  }
  // Re-arm relative to what survived: entries a pass cannot evict are
  // live instances, and re-scanning them on every acquire would make the
  // pass O(live keys) per operation. Doubling keeps total prune work
  // linear in the number of insertions.
  w.participated_prune_at = std::max(config_.participated_prune_threshold,
                                     2 * w.participated.size());
  w.participated_size.store(w.participated.size(),
                            std::memory_order_relaxed);
}

election::strategy_kind service::strategy_for(const std::string& key) const {
  const auto it = config_.key_strategies.find(key);
  return it != config_.key_strategies.end() ? it->second
                                            : config_.default_strategy;
}

election::strategy& service::protocol_for(
    election::strategy_kind kind) const {
  return *strategies_[static_cast<std::size_t>(kind)];
}

engine::task<std::int64_t> service::driver(engine::node& node, worker& w) {
  for (;;) {
    job* j = co_await next_job{w};
    if (j->shutdown) {
      // Notify under the lock: the moment a waiter can observe done the
      // job (on its owner's stack) may be destroyed, so an unlocked
      // notify would race the cv's destruction.
      {
        const std::lock_guard<std::mutex> lock(j->mutex);
        j->done = true;
        j->cv.notify_all();
      }
      co_return 0;
    }

    const instance_entry entry = j->entry;
    acquire_result result;
    result.epoch = entry.epoch;
    result.instance = entry.instance;
    // Spans are recorded against the job's trace id explicitly (not via
    // a thread-local scope): the driver suspends across co_await while
    // this node's thread serves other instances' protocol messages.
    if (j->trace != 0) {
      obs::record_for(j->trace, obs::phase::queue_wait,
                      to_trace_ns(j->submitted), obs::now_ns());
    }

    // Gate the distributed path on the registry's grant mode: if the
    // epoch was already granted (fast-claimed while this job queued, or
    // decided by an earlier protocol winner) or moved on entirely, this
    // attempt loses without touching the network. Arming also pins the
    // adaptive fast path off this epoch, so the two grant paths stay
    // mutually exclusive.
    if (!registry_.arm_protocol(j->key, entry.epoch)) {
      metrics_.record_short_circuit_loss();
    } else {
      // TAS is one invocation per processor per instance: if this node
      // already contended in (key, epoch) — a second session bound to the
      // same node — the instance is decided or being decided by the
      // earlier invocation, so this one loses without touching the
      // network.
      const auto [it, fresh_key] =
          w.participated.try_emplace(j->key, entry.instance.value);
      if (fresh_key || it->second != entry.instance.value) {
        it->second = entry.instance.value;
        election::strategy_context ctx;
        ctx.instance = entry.instance;
        ctx.max_rounds = config_.max_rounds;
        // The claim arbiter behind sifter_pill / doorway_only survivors
        // (and the full protocol's winner report): an epoch-fenced CAS
        // in the registry. Runs on this node's thread, synchronously.
        ctx.claim = [this, j, &result] {
          const std::uint64_t t0 = j->trace != 0 ? obs::now_ns() : 0;
          const auto deadline = registry_.claim_win(
              j->key, result.epoch, j->session_id, lease_ttl());
          if (j->trace != 0) {
            obs::record_for(j->trace, obs::phase::lease_grant, t0,
                            obs::now_ns());
          }
          if (!deadline.has_value()) return false;
          result.lease_deadline = *deadline;
          return true;
        };
        const std::uint64_t elect_start =
            j->trace != 0 ? obs::now_ns() : 0;
        const election::tas_result outcome =
            co_await protocol_for(j->kind).elect(node, std::move(ctx));
        if (j->trace != 0) {
          obs::record_for(j->trace, obs::phase::election, elect_start,
                          obs::now_ns());
        }
        result.won = outcome == election::tas_result::win;
      }
    }
    w.participated_size.store(w.participated.size(),
                              std::memory_order_relaxed);
    prune_participated(w);
    result.latency_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - j->submitted)
            .count());
    metrics_.record_acquire(registry_.shard_of(j->key), j->kind, result.won,
                            result.latency_ns);

    {
      // Notify under the lock — see the shutdown path above: the client
      // frees the job as soon as it observes done.
      const std::lock_guard<std::mutex> lock(j->mutex);
      j->result = result;
      j->done = true;
      j->cv.notify_all();
    }
  }
}

acquire_result service::run_acquire(int session_id, process_id pid,
                                    const std::string& key) {
  // Shared early-out for the three ways stop() turns an acquire away.
  const auto reject = [this] {
    metrics_.record_rejected_acquire();
    acquire_result rejected;
    rejected.rejected = true;
    return rejected;
  };

  job j;
  j.key = key;
  j.session_id = session_id;
  j.kind = strategy_for(key);
  j.trace = obs::current();
  j.submitted = std::chrono::steady_clock::now();
  // A cheap unlocked early-out; the authoritative stop() check is inside
  // submit() (under the worker lock, via draining).
  if (stopped_.load(std::memory_order_relaxed)) return reject();
  // Register the attempt (this is the contention estimate's input) and
  // pin the (instance, epoch) the attempt contends. For `adaptive` the
  // registration is fused with the fast path, on the *client* thread:
  // when no contention is observed — this attempt is the epoch's first
  // and the previous epoch saw at most one acquirer — the epoch is
  // taken with a fenced CAS under the same shard lock and the node pool
  // is skipped entirely. On conflict the epoch is simply lost (epoch
  // fencing makes a double grant impossible); only an armed protocol
  // sends us down the distributed path ourselves.
  if (j.kind == election::strategy_kind::adaptive) {
    const std::uint64_t fast_start = j.trace != 0 ? obs::now_ns() : 0;
    const adaptive_attempt attempt =
        registry_.begin_adaptive_attempt(key, session_id, lease_ttl());
    if (j.trace != 0) {
      obs::record_for(j.trace, obs::phase::fast_path, fast_start,
                      obs::now_ns());
    }
    j.entry = attempt.attempt.entry;
    if (attempt.fast_attempted) {
      const fast_claim_result& fast = attempt.fast;
      if (fast.outcome == fast_claim_outcome::shutdown) return reject();
      if (fast.outcome != fast_claim_outcome::armed) {
        acquire_result result;
        result.epoch = j.entry.epoch;
        result.instance = j.entry.instance;
        result.won = fast.outcome == fast_claim_outcome::claimed;
        result.fast_path = result.won;
        result.lease_deadline = fast.deadline;
        result.latency_ns = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - j.submitted)
                .count());
        if (result.won) {
          metrics_.record_fast_path_hit();
        } else {
          metrics_.record_fast_path_conflict();
        }
        metrics_.record_acquire(registry_.shard_of(key), j.kind, result.won,
                                result.latency_ns);
        return gate_acquire(std::move(result), key);
      }
      metrics_.record_fast_path_fallback();
    }
  } else {
    j.entry = registry_.begin_attempt(key).entry;
  }

  // A refused submit means the drivers are shutting down; fail the
  // acquire softly.
  if (!submit(pid, j)) return reject();
  std::unique_lock<std::mutex> lock(j.mutex);
  j.cv.wait(lock, [&] { return j.done; });
  return gate_acquire(std::move(j.result), key);
}

// ---------------------------------------------------------------------
// Session API.

acquire_result service::session::try_acquire(const std::string& key) {
  return owner_->run_acquire(id_, pid_, key);
}

acquire_result service::session::acquire(const std::string& key) {
  for (;;) {
    const acquire_result result = try_acquire(key);
    if (result.won || result.rejected) return result;
    const obs::scoped_span span(obs::phase::epoch_wait);
    owner_->registry_.wait_for_epoch_above(key, result.epoch);
  }
}

acquire_result service::session::try_acquire_for(
    const std::string& key, std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    acquire_result result = try_acquire(key);
    if (result.won || result.rejected) return result;
    // Bound only the sleep: an attempt in flight when the deadline hits
    // still runs to completion above. wait returns true on epoch
    // advance *and* on service shutdown — the retry then comes back
    // rejected, so a stopped service never strands a timed waiter.
    const obs::scoped_span span(obs::phase::epoch_wait);
    if (!owner_->registry_.wait_for_epoch_above_until(key, result.epoch,
                                                      deadline)) {
      result.timed_out = true;
      return result;
    }
  }
}

lease_status service::count_lease_op(const std::string& key,
                                     lease_status status, bool renewal,
                                     std::uint64_t epoch) {
  const int shard = registry_.shard_of(key);
  if (status != lease_status::ok) {
    metrics_.record_stale_fence(shard);
    if (journal_) {
      journal_->append(obs::event_kind::stale_fence, key, epoch, -1,
                       renewal ? "renew" : "release");
    }
  } else if (renewal) {
    metrics_.record_renewal(shard);
  } else {
    metrics_.record_release(shard);
  }
  return status;
}

lease_status service::session::release(const std::string& key) {
  const obs::scoped_span span(obs::phase::lease_op);
  return owner_->gate_lease_op(
      key, owner_->count_lease_op(key, owner_->registry_.release(key, id_),
                                  /*renewal=*/false, 0));
}

lease_status service::session::release(const std::string& key,
                                       std::uint64_t epoch) {
  const obs::scoped_span span(obs::phase::lease_op);
  return owner_->gate_lease_op(
      key,
      owner_->count_lease_op(key, owner_->registry_.release(key, id_, epoch),
                             /*renewal=*/false, epoch));
}

lease_status service::session::renew(const std::string& key,
                                     std::uint64_t epoch) {
  const obs::scoped_span span(obs::phase::lease_op);
  return owner_->gate_lease_op(
      key, owner_->count_lease_op(
               key,
               owner_->registry_.renew(key, id_, epoch, owner_->lease_ttl()),
               /*renewal=*/true, epoch));
}

std::size_t service::session::disconnect() {
  return owner_->gate_multi_release(owner_->registry_.release_all(
      id_, [this](int shard) { owner_->metrics_.record_release(shard); }));
}

lease_status service::session::reclaim(const std::string& key,
                                       std::uint64_t epoch) {
  const obs::scoped_span span(obs::phase::lease_op);
  return owner_->gate_lease_op(
      key,
      owner_->count_lease_op(key, owner_->registry_.reclaim(key, id_, epoch),
                             /*renewal=*/false, epoch));
}

std::size_t service::session::reclaim_all() {
  return owner_->gate_multi_release(owner_->registry_.reclaim_all(
      id_, [this](int shard) { owner_->metrics_.record_release(shard); }));
}

std::vector<std::string> service::session::held_keys() const {
  return owner_->registry_.keys_held_by(id_);
}

// ---------------------------------------------------------------------
// Reporting.

service_report service::report() const {
  service_report report = metrics_.snapshot();
  for (int s = 0; s < registry_.shard_count(); ++s) {
    report.shards[static_cast<std::size_t>(s)].keys =
        registry_.keys_in_shard(s);
  }
  for (const auto& w : workers_) {
    report.participated_entries +=
        w->participated_size.load(std::memory_order_relaxed);
  }
  report.total_messages = pool_->total_messages();
  report.mailbox_pushes = pool_->total_mailbox_pushes();
  report.messages_per_acquire =
      report.acquires == 0
          ? 0.0
          : static_cast<double>(report.total_messages) /
                static_cast<double>(report.acquires);
  const engine::metrics& pool_metrics = pool_->runtime_metrics();
  report.mean_communicate_calls = pool_metrics.mean_communicate_calls();
  report.max_communicate_calls = pool_metrics.max_communicate_calls();
  report.watch = hub_.report();
  if (journal_) report.journal = journal_->report();
  return report;
}

}  // namespace elect::svc
