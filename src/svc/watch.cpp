#include "svc/watch.hpp"

#include <algorithm>
#include <utility>

namespace elect::svc {

watch_hub::watch_hub() {
  notifier_ = std::thread([this] { notifier_main(); });
}

watch_hub::~watch_hub() { stop(); }

void watch_hub::stop() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) return;
    stopped_ = true;
    dropped_.fetch_add(queue_.size(), std::memory_order_relaxed);
    queue_.clear();
    armed_.store(false, std::memory_order_relaxed);
  }
  queue_cv_.notify_all();
  if (notifier_.joinable()) notifier_.join();
}

std::uint64_t watch_hub::add(std::string key, callback fn) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (stopped_) return 0;
  const std::uint64_t id = next_id_++;
  by_key_[key].push_back(id);
  watchers_.emplace(
      id, watcher{std::move(key),
                  std::make_shared<const callback>(std::move(fn))});
  armed_.store(true, std::memory_order_relaxed);
  return id;
}

void watch_hub::remove(std::uint64_t id) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = watchers_.find(id);
  if (it != watchers_.end()) {
    const auto by_key = by_key_.find(it->second.key);
    if (by_key != by_key_.end()) {
      auto& ids = by_key->second;
      ids.erase(std::remove(ids.begin(), ids.end(), id), ids.end());
      if (ids.empty()) by_key_.erase(by_key);
    }
    watchers_.erase(it);
    if (watchers_.empty() && !forced_) {
      armed_.store(false, std::memory_order_relaxed);
    }
  }
  // The after-remove guarantee: wait out any in-flight delivery to this
  // id, so the caller can destroy callback state the moment we return.
  // The notifier itself (a callback cancelling its own subscription)
  // must not wait on its own delivery.
  if (std::this_thread::get_id() == notifier_.get_id()) return;
  delivered_cv_.wait(lock, [&] {
    return std::find(delivering_.begin(), delivering_.end(), id) ==
           delivering_.end();
  });
}

void watch_hub::force_arm() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (stopped_) return;
  forced_ = true;
  armed_.store(true, std::memory_order_relaxed);
}

void watch_hub::set_drop_hook(std::function<void(const std::string&)> fn) {
  const std::lock_guard<std::mutex> lock(mutex_);
  drop_hook_ = std::move(fn);
}

void watch_hub::publish(const std::string& key, std::uint64_t epoch,
                        transition kind, int session) {
  // armed() already gated the common no-watcher case before this call;
  // here we only pay when somebody, somewhere, is watching something.
  bool dropped = false;
  bool notify = false;
  std::function<void(const std::string&)> drop_hook;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_ || by_key_.find(key) == by_key_.end()) return;
    if (queue_.size() >= max_queued_events) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      dropped = true;
      drop_hook = drop_hook_;
    } else {
      // The notifier only sleeps on an empty queue, so only the
      // empty→non-empty edge needs a wakeup; a publisher appending to a
      // backlog skips the notify (and its futex syscall) entirely.
      notify = queue_.empty();
      queue_.push_back(watch_event{key, epoch, kind, session});
      published_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (dropped) {
    // Hook runs outside the mutex: it appends to the journal, which must
    // never serialize against delivery or other publishers.
    if (drop_hook) drop_hook(key);
    return;
  }
  if (notify) queue_cv_.notify_one();
}

void watch_hub::notifier_main() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    queue_cv_.wait(lock, [this] { return stopped_ || !queue_.empty(); });
    if (stopped_) return;
    watch_event event = std::move(queue_.front());
    queue_.pop_front();
    // Snapshot the matching callbacks (refcount bumps, not function
    // copies); invoke outside the mutex so a callback can publish,
    // subscribe, or call back into the service.
    std::vector<std::pair<std::uint64_t, std::shared_ptr<const callback>>>
        targets;
    const auto by_key = by_key_.find(event.key);
    if (by_key != by_key_.end()) {
      targets.reserve(by_key->second.size());
      for (const std::uint64_t id : by_key->second) {
        targets.emplace_back(id, watchers_.at(id).fn);
      }
      for (const auto& [id, fn] : targets) delivering_.push_back(id);
    }
    if (targets.empty()) continue;
    lock.unlock();
    for (const auto& [id, fn] : targets) (*fn)(event);
    delivered_.fetch_add(targets.size(), std::memory_order_relaxed);
    lock.lock();
    delivering_.clear();
    delivered_cv_.notify_all();
  }
}

watch_report watch_hub::report() const {
  watch_report r;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    r.active = watchers_.size();
  }
  r.published = published_.load(std::memory_order_relaxed);
  r.delivered = delivered_.load(std::memory_order_relaxed);
  r.dropped = dropped_.load(std::memory_order_relaxed);
  return r;
}

}  // namespace elect::svc
