#include "svc/registry.hpp"

#include <functional>

#include "common/check.hpp"

namespace elect::svc {

namespace {

/// Lease deadline for a grant/renewal: zero TTL means "never expires".
instance_registry::clock::time_point deadline_for(
    instance_registry::clock::duration ttl) {
  return ttl == instance_registry::clock::duration::zero()
             ? instance_registry::clock::time_point::max()
             : instance_registry::clock::now() + ttl;
}

}  // namespace

std::string_view to_string(transition t) {
  switch (t) {
    case transition::elected: return "elected";
    case transition::released: return "released";
    case transition::expired: return "expired";
  }
  return "unknown";
}

void instance_registry::set_transition_hook(const std::atomic<bool>& armed,
                                            transition_hook hook) {
  hook_armed_ = &armed;
  hook_ = std::move(hook);
}

instance_registry::instance_registry(int shard_count,
                                     std::uint64_t first_instance)
    : next_instance_(first_instance) {
  ELECT_CHECK(shard_count >= 1);
  ELECT_CHECK_MSG(first_instance < instance_id_limit,
                  "first_instance starts past the election-id guard");
  shards_.reserve(static_cast<std::size_t>(shard_count));
  for (int i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<shard>());
  }
}

int instance_registry::shard_of(const std::string& key) const {
  return static_cast<int>(std::hash<std::string>{}(key) % shards_.size());
}

instance_registry::shard& instance_registry::shard_for(
    const std::string& key) {
  return *shards_[static_cast<std::size_t>(shard_of(key))];
}

election::election_id instance_registry::allocate_instance() {
  const std::uint64_t id = next_instance_.fetch_add(1);
  // Fail fast with headroom: aborting here, 64K ids short of the uint32
  // var_id namespace, is a clean "restart the service" signal; wrapping
  // would silently alias long-decided instances' replicated variables.
  ELECT_CHECK_MSG(id < instance_id_limit,
                  "election-id space exhausted (~4e9 instances served) — "
                  "var_id.instance would alias; restart the service");
  return election::election_id{static_cast<std::uint32_t>(id)};
}

std::uint64_t instance_registry::remaining_instance_ids() const noexcept {
  const std::uint64_t next = next_instance_.load(std::memory_order_relaxed);
  return next >= instance_id_limit ? 0 : instance_id_limit - next;
}

instance_registry::key_state& instance_registry::state_locked(
    shard& s, const std::string& key) {
  auto [it, inserted] = s.keys.try_emplace(key);
  if (inserted) {
    it->second.entry.instance = allocate_instance();
    it->second.entry.epoch = 0;
  }
  return it->second;
}

void instance_registry::bump_epoch_locked(key_state& state) {
  state.leader = -1;
  state.lease_deadline = clock::time_point::max();
  state.entry.epoch++;
  state.entry.instance = allocate_instance();
  state.mode = grant_mode::open;
  state.last_epoch_attempts = state.attempts_this_epoch;
  state.attempts_this_epoch = 0;
}

instance_entry instance_registry::current(const std::string& key) {
  shard& s = shard_for(key);
  const std::lock_guard<std::mutex> lock(s.mutex);
  return state_locked(s, key).entry;
}

attempt_info instance_registry::begin_attempt(const std::string& key) {
  shard& s = shard_for(key);
  const std::lock_guard<std::mutex> lock(s.mutex);
  key_state& state = state_locked(s, key);
  state.attempts_this_epoch++;
  return attempt_info{state.entry, state.attempts_this_epoch,
                      state.last_epoch_attempts};
}

std::optional<instance_entry> instance_registry::peek(const std::string& key) {
  shard& s = shard_for(key);
  const std::lock_guard<std::mutex> lock(s.mutex);
  const auto it = s.keys.find(key);
  if (it == s.keys.end()) return std::nullopt;
  return it->second.entry;
}

adaptive_attempt instance_registry::begin_adaptive_attempt(
    const std::string& key, int session, clock::duration ttl) {
  shard& s = shard_for(key);
  adaptive_attempt result;
  {
    const std::lock_guard<std::mutex> lock(s.mutex);
    key_state& state = state_locked(s, key);
    state.attempts_this_epoch++;

    result.attempt = attempt_info{state.entry, state.attempts_this_epoch,
                                  state.last_epoch_attempts};
    // Contention observed (a rival already attempted this epoch, or the
    // previous epoch was contended): no CAS, the caller runs the
    // protocol.
    if (state.attempts_this_epoch != 1 || state.last_epoch_attempts > 1) {
      return result;
    }
    result.fast_attempted = true;
    // The protocol path's stop() gate lives in service::submit(); the
    // fast path never submits, so it must refuse here. shutdown() stores
    // the flag before briefly taking every shard mutex, so once it has
    // returned, any later fast claim (which holds this shard's mutex)
    // observes the flag — a completed stop() can never be followed by a
    // fast-path grant.
    if (shutdown_.load(std::memory_order_relaxed)) {
      result.fast = {fast_claim_outcome::shutdown, {}};
      return result;
    }
    if (state.mode == grant_mode::protocol_armed) {
      // An election is (or was) running for this epoch: the fast path
      // must stay off it — the protocol's winner owns the grant.
      result.fast = {fast_claim_outcome::armed, {}};
      return result;
    }
    if (state.leader != -1) {
      result.fast = {fast_claim_outcome::held, {}};
      return result;
    }
    state.leader = session;
    state.mode = grant_mode::fast_claimed;
    state.lease_deadline = deadline_for(ttl);
    result.fast = {fast_claim_outcome::claimed, state.lease_deadline};
  }
  // Grants publish like any other transition, outside the shard lock.
  if (hook_live()) {
    hook_(key, result.attempt.entry.epoch, transition::elected, session);
  }
  return result;
}

bool instance_registry::arm_protocol(const std::string& key,
                                     std::uint64_t epoch) {
  shard& s = shard_for(key);
  const std::lock_guard<std::mutex> lock(s.mutex);
  const auto it = s.keys.find(key);
  if (it == s.keys.end() || it->second.entry.epoch != epoch) return false;
  key_state& state = it->second;
  // A granted epoch — fast-claimed, or already decided by a protocol
  // winner — turns arriving acquirers away: they lose without running
  // the protocol (the short-circuit the metrics count). Concurrent
  // participants of a still-undecided election all arm the same epoch
  // (idempotent) and contend in one instance.
  if (state.leader != -1) return false;
  state.mode = grant_mode::protocol_armed;
  return true;
}

std::optional<instance_registry::clock::time_point>
instance_registry::claim_win(const std::string& key, std::uint64_t epoch,
                             int session, clock::duration ttl) {
  shard& s = shard_for(key);
  clock::time_point deadline;
  {
    const std::lock_guard<std::mutex> lock(s.mutex);
    const auto it = s.keys.find(key);
    if (it == s.keys.end() || it->second.entry.epoch != epoch) {
      return std::nullopt;
    }
    key_state& state = it->second;
    ELECT_CHECK_MSG(state.mode != grant_mode::fast_claimed,
                    "protocol claim on a fast-claimed epoch — the fencing "
                    "that keeps the two grant paths apart is broken");
    if (state.leader != -1) return std::nullopt;
    state.leader = session;
    state.lease_deadline = deadline_for(ttl);
    deadline = state.lease_deadline;
  }
  if (hook_live()) hook_(key, epoch, transition::elected, session);
  return deadline;
}

int instance_registry::leader_of(const std::string& key) {
  shard& s = shard_for(key);
  const std::lock_guard<std::mutex> lock(s.mutex);
  return state_locked(s, key).leader;
}

std::optional<instance_registry::clock::time_point>
instance_registry::lease_deadline_of(const std::string& key) {
  shard& s = shard_for(key);
  const std::lock_guard<std::mutex> lock(s.mutex);
  const auto it = s.keys.find(key);
  if (it == s.keys.end() || it->second.leader == -1) return std::nullopt;
  return it->second.lease_deadline;
}

lease_status instance_registry::release(const std::string& key, int session,
                                        std::uint64_t epoch) {
  shard& s = shard_for(key);
  {
    const std::lock_guard<std::mutex> lock(s.mutex);
    const auto it = s.keys.find(key);
    if (it == s.keys.end()) {
      // A never-acquired key sits at epoch 0 implicitly: presenting
      // epoch 0 is *current* but holds nothing (not_leader), anything
      // higher is genuinely stale. Keeps the fenced verdicts meaning
      // one thing on every path: stale_epoch <=> the epoch moved on.
      return epoch == 0 ? lease_status::not_leader
                        : lease_status::stale_epoch;
    }
    if (it->second.entry.epoch != epoch) return lease_status::stale_epoch;
    if (it->second.leader != session) return lease_status::not_leader;
    bump_epoch_locked(it->second);
  }
  s.epoch_changed.notify_all();
  if (hook_live()) hook_(key, epoch, transition::released, session);
  return lease_status::ok;
}

lease_status instance_registry::release(const std::string& key, int session) {
  shard& s = shard_for(key);
  std::uint64_t released_epoch = 0;
  {
    const std::lock_guard<std::mutex> lock(s.mutex);
    const auto it = s.keys.find(key);
    if (it == s.keys.end() || it->second.leader != session) {
      return lease_status::not_leader;
    }
    released_epoch = it->second.entry.epoch;
    bump_epoch_locked(it->second);
  }
  s.epoch_changed.notify_all();
  if (hook_live()) hook_(key, released_epoch, transition::released, session);
  return lease_status::ok;
}

lease_status instance_registry::renew(const std::string& key, int session,
                                      std::uint64_t epoch,
                                      clock::duration ttl) {
  shard& s = shard_for(key);
  const std::lock_guard<std::mutex> lock(s.mutex);
  const auto it = s.keys.find(key);
  if (it == s.keys.end()) {
    // Same implicit-epoch-0 rule as the fenced release above.
    return epoch == 0 ? lease_status::not_leader : lease_status::stale_epoch;
  }
  if (it->second.entry.epoch != epoch) return lease_status::stale_epoch;
  if (it->second.leader != session) return lease_status::not_leader;
  it->second.lease_deadline = deadline_for(ttl);
  return lease_status::ok;
}

std::size_t instance_registry::bump_matching(
    const std::function<bool(const key_state&)>& predicate,
    const std::function<void(int)>& on_bumped, transition kind) {
  /// What a bumped key looked like before the bump — collected under the
  /// shard lock, published after it.
  struct ended {
    std::string key;
    std::uint64_t epoch;
    int session;
  };
  std::size_t bumped = 0;
  std::vector<ended> events;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shard& s = *shards_[i];
    // Sampled once per shard: a watcher subscribing mid-scan may miss
    // this sweep's transitions, which the delivery bound tolerates (its
    // clock starts at subscription).
    const bool publish = hook_live();
    std::size_t bumped_here = 0;
    {
      const std::lock_guard<std::mutex> lock(s.mutex);
      for (auto& [key, state] : s.keys) {
        if (!predicate(state)) continue;
        if (publish) {
          events.push_back(ended{key, state.entry.epoch, state.leader});
        }
        bump_epoch_locked(state);
        ++bumped_here;
      }
    }
    if (bumped_here == 0) continue;
    s.epoch_changed.notify_all();
    bumped += bumped_here;
    if (on_bumped) {
      for (std::size_t k = 0; k < bumped_here; ++k) {
        on_bumped(static_cast<int>(i));
      }
    }
    for (const ended& e : events) hook_(e.key, e.epoch, kind, e.session);
    events.clear();
  }
  return bumped;
}

std::size_t instance_registry::release_all(
    int session, const std::function<void(int)>& on_released) {
  // A disconnect is a voluntary release from the watch layer's point of
  // view — the network edge's crash reclaim lands here too, which is how
  // a remote crash is observed faster than the lease TTL.
  return bump_matching(
      [session](const key_state& state) { return state.leader == session; },
      on_released, transition::released);
}

namespace {

std::string_view grant_mode_name(int raw) {
  switch (raw) {
    case 0: return "open";
    case 1: return "fast_claimed";
    case 2: return "protocol_armed";
  }
  return "unknown";
}

}  // namespace

std::vector<key_inspection> instance_registry::list_keys() const {
  std::vector<key_inspection> out;
  for (const auto& shard_ptr : shards_) {
    const std::lock_guard<std::mutex> lock(shard_ptr->mutex);
    for (const auto& [key, state] : shard_ptr->keys) {
      key_inspection info;
      info.key = key;
      info.entry = state.entry;
      info.leader = state.leader;
      info.lease_deadline = state.lease_deadline;
      info.mode = grant_mode_name(static_cast<int>(state.mode));
      info.attempts_this_epoch = state.attempts_this_epoch;
      info.last_epoch_attempts = state.last_epoch_attempts;
      out.push_back(std::move(info));
    }
  }
  return out;
}

std::optional<key_inspection> instance_registry::inspect(
    const std::string& key) const {
  const shard& s =
      *shards_[static_cast<std::size_t>(shard_of(key))];
  const std::lock_guard<std::mutex> lock(s.mutex);
  const auto it = s.keys.find(key);
  if (it == s.keys.end()) return std::nullopt;
  key_inspection info;
  info.key = key;
  info.entry = it->second.entry;
  info.leader = it->second.leader;
  info.lease_deadline = it->second.lease_deadline;
  info.mode = grant_mode_name(static_cast<int>(it->second.mode));
  info.attempts_this_epoch = it->second.attempts_this_epoch;
  info.last_epoch_attempts = it->second.last_epoch_attempts;
  return info;
}

lease_status instance_registry::force_release(const std::string& key) {
  shard& s = shard_for(key);
  std::uint64_t released_epoch = 0;
  int released_holder = -1;
  {
    const std::lock_guard<std::mutex> lock(s.mutex);
    const auto it = s.keys.find(key);
    if (it == s.keys.end() || it->second.leader == -1) {
      return lease_status::not_leader;
    }
    released_epoch = it->second.entry.epoch;
    released_holder = it->second.leader;
    bump_epoch_locked(it->second);
  }
  s.epoch_changed.notify_all();
  if (hook_live()) {
    hook_(key, released_epoch, transition::released, released_holder);
  }
  return lease_status::ok;
}

std::vector<std::string> instance_registry::keys_held_by(int session) const {
  std::vector<std::string> held;
  for (const auto& shard_ptr : shards_) {
    const std::lock_guard<std::mutex> lock(shard_ptr->mutex);
    for (const auto& [key, state] : shard_ptr->keys) {
      if (state.leader == session) held.push_back(key);
    }
  }
  return held;
}

std::size_t instance_registry::sweep_expired(
    clock::time_point now, const std::function<void(int)>& on_expired) {
  return bump_matching(
      [now](const key_state& state) {
        return state.leader != -1 && state.lease_deadline <= now;
      },
      on_expired, transition::expired);
}

bool instance_registry::wait_for_epoch_above_impl(
    const std::string& key, std::uint64_t epoch,
    const clock::time_point* deadline) {
  shard& s = shard_for(key);
  std::unique_lock<std::mutex> lock(s.mutex);
  // Resolve the key's state once; unordered_map references are stable
  // across inserts, so later wakeups only re-probe while the key is still
  // absent. A never-acquired key sits at epoch 0 implicitly — waiting
  // must not create state or burn an instance id for it.
  const key_state* state = nullptr;
  const auto it = s.keys.find(key);
  if (it != s.keys.end()) state = &it->second;
  // shutdown() counts as "woken" so a waiter parked across stop()
  // retries immediately and comes back rejected instead of sleeping
  // forever (or, timed, sleeping out its timeout).
  const auto woken = [&] {
    if (shutdown_.load(std::memory_order_relaxed)) return true;
    if (state == nullptr) {
      const auto probe = s.keys.find(key);
      if (probe == s.keys.end()) return false;  // implicit epoch 0, never > epoch
      state = &probe->second;
    }
    return state->entry.epoch > epoch;
  };
  if (deadline == nullptr) {
    s.epoch_changed.wait(lock, woken);
    return true;
  }
  // Not wait_until(time_point::max()) for the untimed path: libstdc++
  // implements non-system-clock waits via a now()-relative delta, which
  // overflows on max().
  return s.epoch_changed.wait_until(lock, *deadline, woken);
}

void instance_registry::wait_for_epoch_above(const std::string& key,
                                             std::uint64_t epoch) {
  (void)wait_for_epoch_above_impl(key, epoch, /*deadline=*/nullptr);
}

bool instance_registry::wait_for_epoch_above_until(const std::string& key,
                                                   std::uint64_t epoch,
                                                   clock::time_point deadline) {
  return wait_for_epoch_above_impl(key, epoch, &deadline);
}

void instance_registry::shutdown() {
  shutdown_.store(true, std::memory_order_relaxed);
  for (auto& shard_ptr : shards_) {
    // Empty critical section: a waiter between its predicate check and
    // its wait must observe the flag before we notify, or it would sleep
    // through the only wakeup.
    { const std::lock_guard<std::mutex> lock(shard_ptr->mutex); }
    shard_ptr->epoch_changed.notify_all();
  }
}

std::size_t instance_registry::keys_in_shard(int shard_index) const {
  ELECT_CHECK(shard_index >= 0 &&
              shard_index < static_cast<int>(shards_.size()));
  const shard& s = *shards_[static_cast<std::size_t>(shard_index)];
  const std::lock_guard<std::mutex> lock(s.mutex);
  return s.keys.size();
}

std::size_t instance_registry::key_count() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    total += keys_in_shard(static_cast<int>(i));
  }
  return total;
}

}  // namespace elect::svc
