#include "svc/registry.hpp"

#include <functional>

#include "common/check.hpp"

namespace elect::svc {

instance_registry::instance_registry(int shard_count,
                                     std::uint32_t first_instance)
    : next_instance_(first_instance) {
  ELECT_CHECK(shard_count >= 1);
  shards_.reserve(static_cast<std::size_t>(shard_count));
  for (int i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<shard>());
  }
}

int instance_registry::shard_of(const std::string& key) const {
  return static_cast<int>(std::hash<std::string>{}(key) % shards_.size());
}

instance_registry::shard& instance_registry::shard_for(
    const std::string& key) {
  return *shards_[static_cast<std::size_t>(shard_of(key))];
}

instance_registry::key_state& instance_registry::state_locked(
    shard& s, const std::string& key) {
  auto [it, inserted] = s.keys.try_emplace(key);
  if (inserted) {
    it->second.entry.instance =
        election::election_id{next_instance_.fetch_add(1)};
    it->second.entry.epoch = 0;
  }
  return it->second;
}

void instance_registry::bump_epoch_locked(key_state& state) {
  state.leader = -1;
  state.lease_deadline = clock::time_point::max();
  state.entry.epoch++;
  state.entry.instance = election::election_id{next_instance_.fetch_add(1)};
}

instance_entry instance_registry::current(const std::string& key) {
  shard& s = shard_for(key);
  const std::lock_guard<std::mutex> lock(s.mutex);
  return state_locked(s, key).entry;
}

std::optional<instance_entry> instance_registry::peek(const std::string& key) {
  shard& s = shard_for(key);
  const std::lock_guard<std::mutex> lock(s.mutex);
  const auto it = s.keys.find(key);
  if (it == s.keys.end()) return std::nullopt;
  return it->second.entry;
}

instance_registry::clock::time_point instance_registry::record_winner(
    const std::string& key, std::uint64_t epoch, int session,
    clock::duration ttl) {
  shard& s = shard_for(key);
  const std::lock_guard<std::mutex> lock(s.mutex);
  key_state& state = state_locked(s, key);
  // Still an invariant under leases: the epoch cannot move past an
  // instance with no recorded winner (release and sweep both require a
  // recorded holder), and winners are unique per instance.
  ELECT_CHECK_MSG(state.entry.epoch == epoch,
                  "winner recorded for a bumped epoch — release raced an "
                  "unfinished election");
  ELECT_CHECK_MSG(state.leader == -1,
                  "two winners for one election instance — test-and-set "
                  "safety violated");
  state.leader = session;
  state.lease_deadline = ttl == clock::duration::zero()
                             ? clock::time_point::max()
                             : clock::now() + ttl;
  return state.lease_deadline;
}

int instance_registry::leader_of(const std::string& key) {
  shard& s = shard_for(key);
  const std::lock_guard<std::mutex> lock(s.mutex);
  return state_locked(s, key).leader;
}

std::optional<instance_registry::clock::time_point>
instance_registry::lease_deadline_of(const std::string& key) {
  shard& s = shard_for(key);
  const std::lock_guard<std::mutex> lock(s.mutex);
  const auto it = s.keys.find(key);
  if (it == s.keys.end() || it->second.leader == -1) return std::nullopt;
  return it->second.lease_deadline;
}

lease_status instance_registry::release(const std::string& key, int session,
                                        std::uint64_t epoch) {
  shard& s = shard_for(key);
  {
    const std::lock_guard<std::mutex> lock(s.mutex);
    const auto it = s.keys.find(key);
    if (it == s.keys.end() || it->second.entry.epoch != epoch) {
      return lease_status::stale_epoch;
    }
    if (it->second.leader != session) return lease_status::not_leader;
    bump_epoch_locked(it->second);
  }
  s.epoch_changed.notify_all();
  return lease_status::ok;
}

lease_status instance_registry::release(const std::string& key, int session) {
  shard& s = shard_for(key);
  {
    const std::lock_guard<std::mutex> lock(s.mutex);
    const auto it = s.keys.find(key);
    if (it == s.keys.end() || it->second.leader != session) {
      return lease_status::not_leader;
    }
    bump_epoch_locked(it->second);
  }
  s.epoch_changed.notify_all();
  return lease_status::ok;
}

lease_status instance_registry::renew(const std::string& key, int session,
                                      std::uint64_t epoch,
                                      clock::duration ttl) {
  shard& s = shard_for(key);
  const std::lock_guard<std::mutex> lock(s.mutex);
  const auto it = s.keys.find(key);
  if (it == s.keys.end() || it->second.entry.epoch != epoch) {
    return lease_status::stale_epoch;
  }
  if (it->second.leader != session) return lease_status::not_leader;
  it->second.lease_deadline = ttl == clock::duration::zero()
                                  ? clock::time_point::max()
                                  : clock::now() + ttl;
  return lease_status::ok;
}

std::size_t instance_registry::bump_matching(
    const std::function<bool(const key_state&)>& predicate,
    const std::function<void(int)>& on_bumped) {
  std::size_t bumped = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shard& s = *shards_[i];
    std::size_t bumped_here = 0;
    {
      const std::lock_guard<std::mutex> lock(s.mutex);
      for (auto& [key, state] : s.keys) {
        if (!predicate(state)) continue;
        bump_epoch_locked(state);
        ++bumped_here;
      }
    }
    if (bumped_here == 0) continue;
    s.epoch_changed.notify_all();
    bumped += bumped_here;
    if (on_bumped) {
      for (std::size_t k = 0; k < bumped_here; ++k) {
        on_bumped(static_cast<int>(i));
      }
    }
  }
  return bumped;
}

std::size_t instance_registry::release_all(
    int session, const std::function<void(int)>& on_released) {
  return bump_matching(
      [session](const key_state& state) { return state.leader == session; },
      on_released);
}

std::size_t instance_registry::sweep_expired(
    clock::time_point now, const std::function<void(int)>& on_expired) {
  return bump_matching(
      [now](const key_state& state) {
        return state.leader != -1 && state.lease_deadline <= now;
      },
      on_expired);
}

void instance_registry::wait_for_epoch_above(const std::string& key,
                                             std::uint64_t epoch) {
  shard& s = shard_for(key);
  std::unique_lock<std::mutex> lock(s.mutex);
  // Resolve the key's state once; unordered_map references are stable
  // across inserts, so later wakeups only re-probe while the key is still
  // absent. A never-acquired key sits at epoch 0 implicitly — waiting
  // must not create state or burn an instance id for it.
  const key_state* state = nullptr;
  const auto it = s.keys.find(key);
  if (it != s.keys.end()) state = &it->second;
  s.epoch_changed.wait(lock, [&] {
    if (shutdown_.load(std::memory_order_relaxed)) return true;
    if (state == nullptr) {
      const auto probe = s.keys.find(key);
      if (probe == s.keys.end()) return false;  // implicit epoch 0, never > epoch
      state = &probe->second;
    }
    return state->entry.epoch > epoch;
  });
}

void instance_registry::shutdown() {
  shutdown_.store(true, std::memory_order_relaxed);
  for (auto& shard_ptr : shards_) {
    // Empty critical section: a waiter between its predicate check and
    // its wait must observe the flag before we notify, or it would sleep
    // through the only wakeup.
    { const std::lock_guard<std::mutex> lock(shard_ptr->mutex); }
    shard_ptr->epoch_changed.notify_all();
  }
}

std::size_t instance_registry::keys_in_shard(int shard_index) const {
  ELECT_CHECK(shard_index >= 0 &&
              shard_index < static_cast<int>(shards_.size()));
  const shard& s = *shards_[static_cast<std::size_t>(shard_index)];
  const std::lock_guard<std::mutex> lock(s.mutex);
  return s.keys.size();
}

std::size_t instance_registry::key_count() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    total += keys_in_shard(static_cast<int>(i));
  }
  return total;
}

}  // namespace elect::svc
