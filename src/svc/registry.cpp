#include "svc/registry.hpp"

#include <functional>

#include "common/check.hpp"

namespace elect::svc {

instance_registry::instance_registry(int shard_count,
                                     std::uint32_t first_instance)
    : next_instance_(first_instance) {
  ELECT_CHECK(shard_count >= 1);
  shards_.reserve(static_cast<std::size_t>(shard_count));
  for (int i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<shard>());
  }
}

int instance_registry::shard_of(const std::string& key) const {
  return static_cast<int>(std::hash<std::string>{}(key) % shards_.size());
}

instance_registry::shard& instance_registry::shard_for(
    const std::string& key) {
  return *shards_[static_cast<std::size_t>(shard_of(key))];
}

instance_registry::key_state& instance_registry::state_locked(
    shard& s, const std::string& key) {
  auto [it, inserted] = s.keys.try_emplace(key);
  if (inserted) {
    it->second.entry.instance =
        election::election_id{next_instance_.fetch_add(1)};
    it->second.entry.epoch = 0;
  }
  return it->second;
}

instance_entry instance_registry::current(const std::string& key) {
  shard& s = shard_for(key);
  const std::lock_guard<std::mutex> lock(s.mutex);
  return state_locked(s, key).entry;
}

void instance_registry::record_winner(const std::string& key,
                                      std::uint64_t epoch, int session) {
  shard& s = shard_for(key);
  const std::lock_guard<std::mutex> lock(s.mutex);
  key_state& state = state_locked(s, key);
  ELECT_CHECK_MSG(state.entry.epoch == epoch,
                  "winner recorded for a bumped epoch — release raced an "
                  "unfinished election");
  ELECT_CHECK_MSG(state.leader == -1,
                  "two winners for one election instance — test-and-set "
                  "safety violated");
  state.leader = session;
}

int instance_registry::leader_of(const std::string& key) {
  shard& s = shard_for(key);
  const std::lock_guard<std::mutex> lock(s.mutex);
  return state_locked(s, key).leader;
}

std::uint64_t instance_registry::release(const std::string& key,
                                         int session) {
  shard& s = shard_for(key);
  std::uint64_t new_epoch = 0;
  {
    const std::lock_guard<std::mutex> lock(s.mutex);
    key_state& state = state_locked(s, key);
    ELECT_CHECK_MSG(state.leader == session,
                    "release by a session that does not hold the key");
    state.leader = -1;
    state.entry.epoch++;
    state.entry.instance = election::election_id{next_instance_.fetch_add(1)};
    new_epoch = state.entry.epoch;
  }
  s.epoch_changed.notify_all();
  return new_epoch;
}

void instance_registry::wait_for_epoch_above(const std::string& key,
                                             std::uint64_t epoch) {
  shard& s = shard_for(key);
  std::unique_lock<std::mutex> lock(s.mutex);
  s.epoch_changed.wait(
      lock, [&] { return state_locked(s, key).entry.epoch > epoch; });
}

std::size_t instance_registry::keys_in_shard(int shard_index) const {
  ELECT_CHECK(shard_index >= 0 &&
              shard_index < static_cast<int>(shards_.size()));
  const shard& s = *shards_[static_cast<std::size_t>(shard_index)];
  const std::lock_guard<std::mutex> lock(s.mutex);
  return s.keys.size();
}

std::size_t instance_registry::key_count() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    total += keys_in_shard(static_cast<int>(i));
  }
  return total;
}

}  // namespace elect::svc
