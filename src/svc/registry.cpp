#include "svc/registry.hpp"

#include <algorithm>
#include <functional>

#include "cmd/snapshot.hpp"
#include "common/check.hpp"

namespace elect::svc {

namespace {

/// A grant's TTL on the command stream's logical clock: zero means
/// "never expires" (cmd::lease_forever); sub-millisecond TTLs round up
/// so they cannot collapse to an already-expired lease.
std::uint64_t lease_ms_for(instance_registry::clock::duration ttl) {
  if (ttl == instance_registry::clock::duration::zero()) {
    return cmd::lease_forever;
  }
  const auto ms = std::chrono::ceil<std::chrono::milliseconds>(ttl).count();
  return ms <= 0 ? 1 : static_cast<std::uint64_t>(ms);
}

}  // namespace

std::string_view to_string(transition t) {
  switch (t) {
    case transition::elected: return "elected";
    case transition::released: return "released";
    case transition::expired: return "expired";
    case transition::force_released: return "force_released";
  }
  return "unknown";
}

void instance_registry::set_command_hook(const std::atomic<bool>& armed,
                                         command_hook hook) {
  hook_armed_ = &armed;
  hook_ = std::move(hook);
}

void instance_registry::enable_command_log() {
  recording_.store(true, std::memory_order_relaxed);
}

instance_registry::instance_registry(int shard_count,
                                     std::uint64_t first_instance)
    : next_instance_(first_instance), base_(clock::now()) {
  ELECT_CHECK(shard_count >= 1);
  ELECT_CHECK_MSG(first_instance < instance_id_limit,
                  "first_instance starts past the election-id guard");
  shards_.reserve(static_cast<std::size_t>(shard_count));
  for (int i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<shard>());
  }
}

int instance_registry::shard_of(const std::string& key) const {
  return static_cast<int>(std::hash<std::string>{}(key) % shards_.size());
}

instance_registry::shard& instance_registry::shard_for(
    const std::string& key) {
  return *shards_[static_cast<std::size_t>(shard_of(key))];
}

std::uint64_t instance_registry::logical_now_ms() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(clock::now() -
                                                            base_)
          .count());
}

election::election_id instance_registry::allocate_instance() {
  const std::uint64_t id = next_instance_.fetch_add(1);
  // Fail fast with headroom: aborting here, 64K ids short of the uint32
  // var_id namespace, is a clean "restart the service" signal; wrapping
  // would silently alias long-decided instances' replicated variables.
  ELECT_CHECK_MSG(id < instance_id_limit,
                  "election-id space exhausted (~4e9 instances served) — "
                  "var_id.instance would alias; restart the service");
  return election::election_id{static_cast<std::uint32_t>(id)};
}

std::uint64_t instance_registry::remaining_instance_ids() const noexcept {
  const std::uint64_t next = next_instance_.load(std::memory_order_relaxed);
  return next >= instance_id_limit ? 0 : instance_id_limit - next;
}

instance_registry::key_state& instance_registry::state_locked(
    shard& s, const std::string& key) {
  auto [it, inserted] = s.keys.try_emplace(key);
  if (inserted) {
    it->second.entry.instance = allocate_instance();
    it->second.entry.epoch = 0;
  }
  return it->second;
}

void instance_registry::bump_epoch_locked(key_state& state) {
  state.leader = -1;
  state.lease_deadline = clock::time_point::max();
  state.logical_deadline_ms = cmd::lease_forever;
  state.entry.epoch++;
  state.entry.instance = allocate_instance();
  state.mode = grant_mode::open;
  state.last_epoch_attempts = state.attempts_this_epoch;
  state.attempts_this_epoch = 0;
}

void instance_registry::set_lease_locked(key_state& state,
                                         const cmd::command& c) {
  // The >= guard keeps a pathological near-forever TTL from wrapping the
  // logical deadline back into the past.
  if (c.lease_ms == cmd::lease_forever ||
      c.lease_ms >= cmd::lease_forever - c.at_ms) {
    state.logical_deadline_ms = cmd::lease_forever;
    state.lease_deadline = clock::time_point::max();
    return;
  }
  state.logical_deadline_ms = c.at_ms + c.lease_ms;
  state.lease_deadline =
      base_ + std::chrono::milliseconds(state.logical_deadline_ms);
}

void instance_registry::apply_command_locked(shard& s, key_state& state,
                                             cmd::command& c,
                                             bool from_replay) {
  // The executor half of the funnel: everything below is a pure function
  // of (state, command) — no clock reads, no id ordering — which is what
  // replay determinism rests on. Decisions were made by the caller.
  switch (c.kind) {
    case cmd::command_kind::acquire_granted:
      state.leader = c.session;
      state.mode = c.mode == cmd::grant_mode_fast_claimed
                       ? grant_mode::fast_claimed
                       : grant_mode::protocol_armed;
      set_lease_locked(state, c);
      break;
    case cmd::command_kind::renewed:
      set_lease_locked(state, c);
      break;
    case cmd::command_kind::released:
    case cmd::command_kind::expired:
    case cmd::command_kind::force_released:
    case cmd::command_kind::disconnect_reclaimed:
      bump_epoch_locked(state);
      break;
    case cmd::command_kind::epoch_bumped:
      // A bump ends every epoch <= c.epoch, not just the current one:
      // restore-time fencing records c.epoch = restored + (bump - 1) so
      // the key lands at c.epoch + 1, clear of anything a crash gap
      // could have granted. The ordinary emit sites use c.epoch ==
      // current, which makes this the same +1 it always was.
      state.entry.epoch = c.epoch;
      bump_epoch_locked(state);
      break;
  }
  s.last_at_ms = c.at_ms;
  if (from_replay) {
    // Replayed commands keep their recorded seq; advancing the watermark
    // (instead of re-appending) is what makes a post-replay snapshot
    // byte-identical to the recorder's.
    if (c.seq != 0) {
      s.last_seq = c.seq;
      if (s.next_seq <= c.seq) s.next_seq = c.seq + 1;
    }
  } else if (recording_.load(std::memory_order_relaxed)) {
    c.seq = s.next_seq++;
    s.last_seq = c.seq;
    s.log.push_back(c);
  }
}

instance_entry instance_registry::current(const std::string& key) {
  shard& s = shard_for(key);
  const std::lock_guard<std::mutex> lock(s.mutex);
  return state_locked(s, key).entry;
}

attempt_info instance_registry::begin_attempt(const std::string& key) {
  shard& s = shard_for(key);
  const std::lock_guard<std::mutex> lock(s.mutex);
  key_state& state = state_locked(s, key);
  state.attempts_this_epoch++;
  return attempt_info{state.entry, state.attempts_this_epoch,
                      state.last_epoch_attempts};
}

std::optional<instance_entry> instance_registry::peek(const std::string& key) {
  shard& s = shard_for(key);
  const std::lock_guard<std::mutex> lock(s.mutex);
  const auto it = s.keys.find(key);
  if (it == s.keys.end()) return std::nullopt;
  return it->second.entry;
}

adaptive_attempt instance_registry::begin_adaptive_attempt(
    const std::string& key, int session, clock::duration ttl) {
  const int shard_index = shard_of(key);
  shard& s = *shards_[static_cast<std::size_t>(shard_index)];
  adaptive_attempt result;
  // Stack command, empty key: assembling it allocates nothing until a
  // consumer (recording or an armed hook) asks for the key string — the
  // zero-subscriber fast path stays allocation-free.
  cmd::command c;
  bool publish = false;
  {
    const std::lock_guard<std::mutex> lock(s.mutex);
    key_state& state = state_locked(s, key);
    state.attempts_this_epoch++;

    result.attempt = attempt_info{state.entry, state.attempts_this_epoch,
                                  state.last_epoch_attempts};
    // Contention observed (a rival already attempted this epoch, or the
    // previous epoch was contended): no CAS, the caller runs the
    // protocol.
    if (state.attempts_this_epoch != 1 || state.last_epoch_attempts > 1) {
      return result;
    }
    result.fast_attempted = true;
    // The protocol path's stop() gate lives in service::submit(); the
    // fast path never submits, so it must refuse here. shutdown() stores
    // the flag before briefly taking every shard mutex, so once it has
    // returned, any later fast claim (which holds this shard's mutex)
    // observes the flag — a completed stop() can never be followed by a
    // fast-path grant.
    if (shutdown_.load(std::memory_order_relaxed)) {
      result.fast = {fast_claim_outcome::shutdown, {}};
      return result;
    }
    if (state.mode == grant_mode::protocol_armed) {
      // An election is (or was) running for this epoch: the fast path
      // must stay off it — the protocol's winner owns the grant.
      result.fast = {fast_claim_outcome::armed, {}};
      return result;
    }
    if (state.leader != -1) {
      result.fast = {fast_claim_outcome::held, {}};
      return result;
    }
    // Decision made — the CAS wins. Emit the grant as a command and let
    // the funnel execute it.
    c.shard = shard_index;
    c.kind = cmd::command_kind::acquire_granted;
    c.session = session;
    c.epoch = state.entry.epoch;
    c.mode = cmd::grant_mode_fast_claimed;
    c.at_ms = logical_now_ms();
    c.lease_ms = lease_ms_for(ttl);
    publish = hook_live();
    if (publish || recording_.load(std::memory_order_relaxed)) c.key = key;
    apply_command_locked(s, state, c, /*from_replay=*/false);
    result.fast = {fast_claim_outcome::claimed, state.lease_deadline};
  }
  // Grants publish like any other mutation, outside the shard lock.
  if (publish) hook_(c);
  return result;
}

bool instance_registry::arm_protocol(const std::string& key,
                                     std::uint64_t epoch) {
  shard& s = shard_for(key);
  const std::lock_guard<std::mutex> lock(s.mutex);
  const auto it = s.keys.find(key);
  if (it == s.keys.end() || it->second.entry.epoch != epoch) return false;
  key_state& state = it->second;
  // A granted epoch — fast-claimed, or already decided by a protocol
  // winner — turns arriving acquirers away: they lose without running
  // the protocol (the short-circuit the metrics count). Concurrent
  // participants of a still-undecided election all arm the same epoch
  // (idempotent) and contend in one instance.
  //
  // Arming is an observation latch, not a command: it grants nothing.
  // If nobody ever claims the armed epoch, replay (which sees no
  // command) leaves the key open — snapshots normalize an unheld key's
  // mode to open for exactly this reason.
  if (state.leader != -1) return false;
  state.mode = grant_mode::protocol_armed;
  return true;
}

std::optional<instance_registry::clock::time_point>
instance_registry::claim_win(const std::string& key, std::uint64_t epoch,
                             int session, clock::duration ttl) {
  const int shard_index = shard_of(key);
  shard& s = *shards_[static_cast<std::size_t>(shard_index)];
  clock::time_point deadline;
  cmd::command c;
  bool publish = false;
  {
    const std::lock_guard<std::mutex> lock(s.mutex);
    const auto it = s.keys.find(key);
    if (it == s.keys.end() || it->second.entry.epoch != epoch) {
      return std::nullopt;
    }
    key_state& state = it->second;
    ELECT_CHECK_MSG(state.mode != grant_mode::fast_claimed,
                    "protocol claim on a fast-claimed epoch — the fencing "
                    "that keeps the two grant paths apart is broken");
    if (state.leader != -1) return std::nullopt;
    c.shard = shard_index;
    c.kind = cmd::command_kind::acquire_granted;
    c.session = session;
    c.epoch = epoch;
    c.mode = cmd::grant_mode_protocol;
    c.at_ms = logical_now_ms();
    c.lease_ms = lease_ms_for(ttl);
    publish = hook_live();
    if (publish || recording_.load(std::memory_order_relaxed)) c.key = key;
    apply_command_locked(s, state, c, /*from_replay=*/false);
    deadline = state.lease_deadline;
  }
  if (publish) hook_(c);
  return deadline;
}

int instance_registry::leader_of(const std::string& key) {
  shard& s = shard_for(key);
  const std::lock_guard<std::mutex> lock(s.mutex);
  return state_locked(s, key).leader;
}

std::optional<instance_registry::clock::time_point>
instance_registry::lease_deadline_of(const std::string& key) {
  shard& s = shard_for(key);
  const std::lock_guard<std::mutex> lock(s.mutex);
  const auto it = s.keys.find(key);
  if (it == s.keys.end() || it->second.leader == -1) return std::nullopt;
  return it->second.lease_deadline;
}

std::optional<cmd::command> instance_registry::fence_after_end_locked(
    shard& s, key_state& state, const std::string& key,
    std::int32_t shard_index, std::uint64_t at_ms) {
  if (state.pending_fence == 0) return std::nullopt;
  // The ended epoch's bump just ran: the key sits at E+1 unheld. The
  // deposed primary's uncommitted tail could have journaled grants a
  // few epochs past E; jumping to E+pending_fence+1 clears them the
  // same way restore-time fencing clears a crash gap.
  cmd::command c;
  c.shard = shard_index;
  c.kind = cmd::command_kind::epoch_bumped;
  c.session = -1;
  c.epoch = state.entry.epoch + (state.pending_fence - 1);
  c.at_ms = at_ms;
  state.pending_fence = 0;
  const bool publish = hook_live();
  if (publish || recording_.load(std::memory_order_relaxed)) c.key = key;
  apply_command_locked(s, state, c, /*from_replay=*/false);
  if (!publish) return std::nullopt;
  return c;
}

lease_status instance_registry::end_epoch_fenced(const std::string& key,
                                                 int session,
                                                 std::uint64_t epoch,
                                                 cmd::command_kind kind) {
  const int shard_index = shard_of(key);
  shard& s = *shards_[static_cast<std::size_t>(shard_index)];
  cmd::command c;
  bool publish = false;
  std::optional<cmd::command> fenced;
  {
    const std::lock_guard<std::mutex> lock(s.mutex);
    const auto it = s.keys.find(key);
    if (it == s.keys.end()) {
      // A never-acquired key sits at epoch 0 implicitly: presenting
      // epoch 0 is *current* but holds nothing (not_leader), anything
      // higher is genuinely stale. Keeps the fenced verdicts meaning
      // one thing on every path: stale_epoch <=> the epoch moved on.
      return epoch == 0 ? lease_status::not_leader
                        : lease_status::stale_epoch;
    }
    if (it->second.entry.epoch != epoch) return lease_status::stale_epoch;
    if (it->second.leader != session) return lease_status::not_leader;
    c.shard = shard_index;
    c.kind = kind;
    c.session = session;
    c.epoch = epoch;
    c.at_ms = logical_now_ms();
    publish = hook_live();
    if (publish || recording_.load(std::memory_order_relaxed)) c.key = key;
    apply_command_locked(s, it->second, c, /*from_replay=*/false);
    fenced = fence_after_end_locked(s, it->second, key, shard_index, c.at_ms);
  }
  s.epoch_changed.notify_all();
  if (publish) hook_(c);
  if (fenced.has_value()) hook_(*fenced);
  return lease_status::ok;
}

lease_status instance_registry::release(const std::string& key, int session,
                                        std::uint64_t epoch) {
  return end_epoch_fenced(key, session, epoch, cmd::command_kind::released);
}

lease_status instance_registry::reclaim(const std::string& key, int session,
                                        std::uint64_t epoch) {
  return end_epoch_fenced(key, session, epoch,
                          cmd::command_kind::disconnect_reclaimed);
}

lease_status instance_registry::release(const std::string& key, int session) {
  const int shard_index = shard_of(key);
  shard& s = *shards_[static_cast<std::size_t>(shard_index)];
  cmd::command c;
  bool publish = false;
  std::optional<cmd::command> fenced;
  {
    const std::lock_guard<std::mutex> lock(s.mutex);
    const auto it = s.keys.find(key);
    if (it == s.keys.end() || it->second.leader != session) {
      return lease_status::not_leader;
    }
    c.shard = shard_index;
    c.kind = cmd::command_kind::released;
    c.session = session;
    c.epoch = it->second.entry.epoch;
    c.at_ms = logical_now_ms();
    publish = hook_live();
    if (publish || recording_.load(std::memory_order_relaxed)) c.key = key;
    apply_command_locked(s, it->second, c, /*from_replay=*/false);
    fenced = fence_after_end_locked(s, it->second, key, shard_index, c.at_ms);
  }
  s.epoch_changed.notify_all();
  if (publish) hook_(c);
  if (fenced.has_value()) hook_(*fenced);
  return lease_status::ok;
}

lease_status instance_registry::renew(const std::string& key, int session,
                                      std::uint64_t epoch,
                                      clock::duration ttl) {
  const int shard_index = shard_of(key);
  shard& s = *shards_[static_cast<std::size_t>(shard_index)];
  const std::lock_guard<std::mutex> lock(s.mutex);
  const auto it = s.keys.find(key);
  if (it == s.keys.end()) {
    // Same implicit-epoch-0 rule as the fenced release above.
    return epoch == 0 ? lease_status::not_leader : lease_status::stale_epoch;
  }
  if (it->second.entry.epoch != epoch) return lease_status::stale_epoch;
  if (it->second.leader != session) return lease_status::not_leader;
  // Renewals move no leadership: logged for replay (the deadline is
  // state), but not published through the hook.
  cmd::command c;
  c.shard = shard_index;
  c.kind = cmd::command_kind::renewed;
  c.session = session;
  c.epoch = epoch;
  c.at_ms = logical_now_ms();
  c.lease_ms = lease_ms_for(ttl);
  if (recording_.load(std::memory_order_relaxed)) c.key = key;
  apply_command_locked(s, it->second, c, /*from_replay=*/false);
  return lease_status::ok;
}

std::size_t instance_registry::bump_matching(
    const std::function<bool(const key_state&)>& predicate,
    const std::function<void(int)>& on_bumped, cmd::command_kind kind) {
  std::size_t bumped = 0;
  /// Commands emitted this shard — executed under the shard lock,
  /// published after it.
  std::vector<cmd::command> events;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shard& s = *shards_[i];
    // Sampled once per shard: a watcher subscribing mid-scan may miss
    // this sweep's transitions, which the delivery bound tolerates (its
    // clock starts at subscription).
    const bool publish = hook_live();
    const bool record = recording_.load(std::memory_order_relaxed);
    std::size_t bumped_here = 0;
    {
      const std::lock_guard<std::mutex> lock(s.mutex);
      const std::uint64_t at = logical_now_ms();
      for (auto& [key, state] : s.keys) {
        if (!predicate(state)) continue;
        cmd::command c;
        c.shard = static_cast<std::int32_t>(i);
        c.kind = kind;
        c.session = state.leader;
        c.epoch = state.entry.epoch;
        c.at_ms = at;
        if (publish || record) c.key = key;
        apply_command_locked(s, state, c, /*from_replay=*/false);
        if (publish) events.push_back(std::move(c));
        if (auto fenced = fence_after_end_locked(
                s, state, key, static_cast<std::int32_t>(i), at)) {
          events.push_back(std::move(*fenced));
        }
        ++bumped_here;
      }
    }
    if (bumped_here == 0) continue;
    s.epoch_changed.notify_all();
    bumped += bumped_here;
    if (on_bumped) {
      for (std::size_t k = 0; k < bumped_here; ++k) {
        on_bumped(static_cast<int>(i));
      }
    }
    for (const cmd::command& c : events) hook_(c);
    events.clear();
  }
  return bumped;
}

std::size_t instance_registry::release_all(
    int session, const std::function<void(int)>& on_released) {
  // A graceful disconnect is a voluntary release from the watch layer's
  // point of view; the network edge's *crash* reclaim goes through
  // reclaim_all instead so the stream can tell the two apart.
  return bump_matching(
      [session](const key_state& state) { return state.leader == session; },
      on_released, cmd::command_kind::released);
}

std::size_t instance_registry::reclaim_all(
    int session, const std::function<void(int)>& on_reclaimed) {
  return bump_matching(
      [session](const key_state& state) { return state.leader == session; },
      on_reclaimed, cmd::command_kind::disconnect_reclaimed);
}

namespace {

std::string_view grant_mode_name(int raw) {
  switch (raw) {
    case 0: return "open";
    case 1: return "fast_claimed";
    case 2: return "protocol_armed";
  }
  return "unknown";
}

}  // namespace

std::vector<key_inspection> instance_registry::list_keys() const {
  std::vector<key_inspection> out;
  for (const auto& shard_ptr : shards_) {
    const std::lock_guard<std::mutex> lock(shard_ptr->mutex);
    for (const auto& [key, state] : shard_ptr->keys) {
      key_inspection info;
      info.key = key;
      info.entry = state.entry;
      info.leader = state.leader;
      info.lease_deadline = state.lease_deadline;
      info.mode = grant_mode_name(static_cast<int>(state.mode));
      info.attempts_this_epoch = state.attempts_this_epoch;
      info.last_epoch_attempts = state.last_epoch_attempts;
      out.push_back(std::move(info));
    }
  }
  return out;
}

std::optional<key_inspection> instance_registry::inspect(
    const std::string& key) const {
  const shard& s =
      *shards_[static_cast<std::size_t>(shard_of(key))];
  const std::lock_guard<std::mutex> lock(s.mutex);
  const auto it = s.keys.find(key);
  if (it == s.keys.end()) return std::nullopt;
  key_inspection info;
  info.key = key;
  info.entry = it->second.entry;
  info.leader = it->second.leader;
  info.lease_deadline = it->second.lease_deadline;
  info.mode = grant_mode_name(static_cast<int>(it->second.mode));
  info.attempts_this_epoch = it->second.attempts_this_epoch;
  info.last_epoch_attempts = it->second.last_epoch_attempts;
  return info;
}

lease_status instance_registry::force_release(const std::string& key) {
  const int shard_index = shard_of(key);
  shard& s = *shards_[static_cast<std::size_t>(shard_index)];
  cmd::command c;
  bool publish = false;
  std::optional<cmd::command> fenced;
  {
    const std::lock_guard<std::mutex> lock(s.mutex);
    const auto it = s.keys.find(key);
    if (it == s.keys.end() || it->second.leader == -1) {
      return lease_status::not_leader;
    }
    c.shard = shard_index;
    c.kind = cmd::command_kind::force_released;
    c.session = it->second.leader;
    c.epoch = it->second.entry.epoch;
    c.at_ms = logical_now_ms();
    publish = hook_live();
    if (publish || recording_.load(std::memory_order_relaxed)) c.key = key;
    apply_command_locked(s, it->second, c, /*from_replay=*/false);
    fenced = fence_after_end_locked(s, it->second, key, shard_index, c.at_ms);
  }
  s.epoch_changed.notify_all();
  if (publish) hook_(c);
  if (fenced.has_value()) hook_(*fenced);
  return lease_status::ok;
}

std::vector<std::string> instance_registry::keys_held_by(int session) const {
  std::vector<std::string> held;
  for (const auto& shard_ptr : shards_) {
    const std::lock_guard<std::mutex> lock(shard_ptr->mutex);
    for (const auto& [key, state] : shard_ptr->keys) {
      if (state.leader == session) held.push_back(key);
    }
  }
  return held;
}

std::size_t instance_registry::sweep_expired(
    clock::time_point now, const std::function<void(int)>& on_expired) {
  return bump_matching(
      [now](const key_state& state) {
        return state.leader != -1 && state.lease_deadline <= now;
      },
      on_expired, cmd::command_kind::expired);
}

std::vector<cmd::command> instance_registry::collect_commands() const {
  std::vector<cmd::command> out;
  for (const auto& shard_ptr : shards_) {
    const std::lock_guard<std::mutex> lock(shard_ptr->mutex);
    out.insert(out.end(), shard_ptr->log.begin(), shard_ptr->log.end());
  }
  return out;
}

std::vector<cmd::command> instance_registry::collect_commands_after(
    const std::vector<std::uint64_t>& floors) const {
  ELECT_CHECK_MSG(floors.size() == shards_.size(),
                  "collect_commands_after: one floor per shard");
  std::vector<cmd::command> out;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const shard& s = *shards_[i];
    const std::uint64_t floor = floors[i];
    const std::lock_guard<std::mutex> lock(s.mutex);
    // The retained log is in seq order (append order); skip the shipped
    // prefix with a binary search instead of rescanning it every drain.
    const auto first = std::lower_bound(
        s.log.begin(), s.log.end(), floor,
        [](const cmd::command& c, std::uint64_t f) { return c.seq <= f; });
    out.insert(out.end(), first, s.log.end());
  }
  return out;
}

std::uint64_t instance_registry::shard_last_seq(int shard_index) const {
  ELECT_CHECK(shard_index >= 0 &&
              shard_index < static_cast<int>(shards_.size()));
  const shard& s = *shards_[static_cast<std::size_t>(shard_index)];
  const std::lock_guard<std::mutex> lock(s.mutex);
  return s.last_seq;
}

cmd::log_stats instance_registry::log_stats() const {
  cmd::log_stats stats;
  stats.recording = recording_.load(std::memory_order_relaxed);
  for (const auto& shard_ptr : shards_) {
    const std::lock_guard<std::mutex> lock(shard_ptr->mutex);
    stats.recorded += shard_ptr->next_seq - 1;
    stats.retained += shard_ptr->log.size();
  }
  return stats;
}

std::optional<std::string> instance_registry::apply(const cmd::command& c) {
  const int shard_index = shard_of(c.key);
  if (c.shard >= 0 && c.shard != shard_index) {
    return "command seq " + std::to_string(c.seq) + " was recorded for shard " +
           std::to_string(c.shard) + " but key '" + c.key +
           "' maps to shard " + std::to_string(shard_index) +
           " here — replaying into a registry with a different shard count?";
  }
  shard& s = *shards_[static_cast<std::size_t>(shard_index)];
  cmd::command local = c;
  {
    const std::lock_guard<std::mutex> lock(s.mutex);
    if (local.seq != 0 && s.last_seq != 0 && local.seq != s.last_seq + 1) {
      return "sequence gap in shard " + std::to_string(shard_index) +
             ": expected seq " + std::to_string(s.last_seq + 1) + ", got " +
             std::to_string(local.seq);
    }
    key_state& state = state_locked(s, local.key);
    const auto epoch_mismatch = [&]() -> std::string {
      return std::string(cmd::to_string(local.kind)) + " for '" + local.key +
             "' claims epoch " + std::to_string(local.epoch) +
             " but the key is at epoch " +
             std::to_string(state.entry.epoch) +
             " — corrupt or mis-ordered stream";
    };
    switch (local.kind) {
      case cmd::command_kind::acquire_granted:
        if (state.entry.epoch != local.epoch) return epoch_mismatch();
        if (state.leader != -1) {
          return "acquire_granted for '" + local.key + "' epoch " +
                 std::to_string(local.epoch) +
                 " but the epoch is already held by session " +
                 std::to_string(state.leader);
        }
        break;
      case cmd::command_kind::renewed:
      case cmd::command_kind::released:
      case cmd::command_kind::expired:
      case cmd::command_kind::force_released:
      case cmd::command_kind::disconnect_reclaimed:
        if (state.entry.epoch != local.epoch) return epoch_mismatch();
        if (state.leader != local.session) {
          return std::string(cmd::to_string(local.kind)) + " for '" +
                 local.key + "' names holder " +
                 std::to_string(local.session) + " but the holder is " +
                 std::to_string(state.leader);
        }
        break;
      case cmd::command_kind::epoch_bumped:
        // Forward jumps are legal (restore fencing records the highest
        // epoch the bump ends, which may exceed the current one); only
        // a bump that would move the epoch backwards is corruption.
        if (local.epoch < state.entry.epoch) return epoch_mismatch();
        break;
    }
    apply_command_locked(s, state, local, /*from_replay=*/true);
  }
  s.epoch_changed.notify_all();
  return std::nullopt;
}

std::optional<std::string> instance_registry::replay(
    const std::vector<cmd::command>& log) {
  for (const cmd::command& c : log) {
    if (auto error = apply(c)) return error;
  }
  return std::nullopt;
}

std::vector<std::uint8_t> instance_registry::snapshot(bool trim_log) {
  cmd::snapshot_data data;
  data.shards.resize(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shard& s = *shards_[i];
    cmd::snapshot_shard& out = data.shards[i];
    const std::lock_guard<std::mutex> lock(s.mutex);
    out.last_seq = s.last_seq;
    out.last_at_ms = s.last_at_ms;
    for (const auto& [key, state] : s.keys) {
      // Epoch 0, unheld == the implicit default for a key nobody ever
      // touched: indistinguishable from absent, so not state.
      if (state.entry.epoch == 0 && state.leader == -1) continue;
      cmd::snapshot_key k;
      k.key = key;
      k.epoch = state.entry.epoch;
      k.leader = state.leader;
      // Unheld modes normalize to open: an armed-but-never-claimed
      // election emitted no command, so replay cannot know about it.
      k.mode = state.leader == -1 ? cmd::grant_mode_open
                                  : static_cast<std::uint8_t>(state.mode);
      k.lease_rel_ms =
          (state.leader == -1 ||
           state.logical_deadline_ms == cmd::lease_forever)
              ? cmd::lease_rel_none
              : static_cast<std::int64_t>(state.logical_deadline_ms) -
                    static_cast<std::int64_t>(s.last_at_ms);
      out.keys.push_back(std::move(k));
    }
    std::sort(out.keys.begin(), out.keys.end(),
              [](const cmd::snapshot_key& a, const cmd::snapshot_key& b) {
                return a.key < b.key;
              });
    if (trim_log) {
      // The snapshot covers everything up to last_seq — which is every
      // retained entry — so the log's job is done; drop it.
      s.log.clear();
      s.log.shrink_to_fit();
    }
  }
  return cmd::encode_snapshot(data);
}

std::optional<std::string> instance_registry::restore(
    const std::vector<std::uint8_t>& bytes, bool fence_restored,
    std::uint64_t fence_bump) {
  if (fence_restored && fence_bump == 0) {
    return "fence_bump must be >= 1 when fencing restored epochs";
  }
  auto decoded = cmd::decode_snapshot(bytes);
  if (!decoded.data.has_value()) return decoded.error;
  cmd::snapshot_data& data = *decoded.data;
  if (data.shards.size() != shards_.size()) {
    return "snapshot has " + std::to_string(data.shards.size()) +
           " shards but this registry has " + std::to_string(shards_.size());
  }
  if (key_count() != 0) {
    return "restore requires an empty registry";
  }
  const std::uint64_t logical = logical_now_ms();
  const clock::time_point now = clock::now();
  /// Fence bumps, published after all shard locks are released.
  std::vector<cmd::command> fenced;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shard& s = *shards_[i];
    const cmd::snapshot_shard& in = data.shards[i];
    const bool publish = hook_live();
    const bool record = recording_.load(std::memory_order_relaxed);
    const std::lock_guard<std::mutex> lock(s.mutex);
    s.last_seq = in.last_seq;
    s.next_seq = in.last_seq + 1;
    s.last_at_ms = logical;
    for (const cmd::snapshot_key& k : in.keys) {
      if (shard_of(k.key) != static_cast<int>(i)) {
        return "snapshot key '" + k.key + "' does not map to shard " +
               std::to_string(i) + " — corrupt snapshot or hash mismatch";
      }
      key_state& state = state_locked(s, k.key);
      state.entry.epoch = k.epoch;
      state.leader = k.leader;
      state.mode = static_cast<grant_mode>(k.mode);
      if (k.leader == -1 || k.lease_rel_ms == cmd::lease_rel_none) {
        state.logical_deadline_ms = cmd::lease_forever;
        state.lease_deadline = clock::time_point::max();
      } else {
        // Re-anchor the remaining TTL (possibly negative: past due and
        // unswept at snapshot time — the first sweep here expires it)
        // to this registry's clock.
        const std::int64_t deadline =
            static_cast<std::int64_t>(logical) + k.lease_rel_ms;
        state.logical_deadline_ms =
            deadline < 0 ? 0 : static_cast<std::uint64_t>(deadline);
        state.lease_deadline =
            now + std::chrono::milliseconds(k.lease_rel_ms);
      }
      if (fence_restored) {
        // Bump every restored key: a pre-snapshot leaseholder may have
        // lost its lease in the gap the snapshot cannot see, so it must
        // not be resurrected — its first fenced op answers stale_epoch
        // and it re-acquires like everyone else. The bump ends epochs
        // up to restored + (fence_bump - 1), jumping clear of grants
        // the crash gap may have issued past the snapshot.
        cmd::command c;
        c.shard = static_cast<std::int32_t>(i);
        c.kind = cmd::command_kind::epoch_bumped;
        c.session = -1;
        c.epoch = state.entry.epoch + (fence_bump - 1);
        c.at_ms = logical;
        if (publish || record) c.key = k.key;
        apply_command_locked(s, state, c, /*from_replay=*/false);
        if (publish) fenced.push_back(std::move(c));
      }
    }
  }
  if (fence_restored) {
    for (auto& shard_ptr : shards_) shard_ptr->epoch_changed.notify_all();
    for (const cmd::command& c : fenced) hook_(c);
  }
  return std::nullopt;
}

std::optional<std::string> instance_registry::install_snapshot(
    const std::vector<std::uint8_t>& bytes) {
  // The snapshot replaces local state wholesale: a diverged follower
  // (applied entries its new primary never committed) or a lagging one
  // (its primary compacted the suffix it was missing) converges by
  // adoption, not by reconciliation.
  for (auto& shard_ptr : shards_) {
    shard& s = *shard_ptr;
    const std::lock_guard<std::mutex> lock(s.mutex);
    s.keys.clear();
    s.log.clear();
    s.log.shrink_to_fit();
    s.next_seq = 1;
    s.last_seq = 0;
    s.last_at_ms = 0;
  }
  const auto error = restore(bytes, /*fence_restored=*/false);
  // Waiters re-evaluate against the installed (or cleared) state; the
  // wait predicate re-probes the key map on every wakeup, so the clear
  // above cannot leave one holding a dangling reference.
  for (auto& shard_ptr : shards_) shard_ptr->epoch_changed.notify_all();
  return error;
}

std::size_t instance_registry::fence_all(std::uint64_t bump) {
  ELECT_CHECK_MSG(bump >= 1, "fence_all: bump must be >= 1");
  std::size_t fenced = 0;
  std::vector<cmd::command> events;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shard& s = *shards_[i];
    const bool publish = hook_live();
    const bool record = recording_.load(std::memory_order_relaxed);
    std::size_t fenced_here = 0;
    {
      const std::lock_guard<std::mutex> lock(s.mutex);
      const std::uint64_t at = logical_now_ms();
      for (auto& [key, state] : s.keys) {
        if (state.leader != -1) {
          // A committed lease survives the failover under its epoch —
          // the holder's fenced ops keep answering ok. The bump lands
          // when this epoch ends (fence_after_end_locked), so the next
          // grant still jumps clear of the deposed primary's tail.
          state.pending_fence = std::max(state.pending_fence, bump);
          ++fenced_here;
          continue;
        }
        // Unheld (epoch 0 included — first grants are epoch 0): jump
        // now. Ends epochs <= current + (bump - 1), same arithmetic as
        // restore-time fencing.
        cmd::command c;
        c.shard = static_cast<std::int32_t>(i);
        c.kind = cmd::command_kind::epoch_bumped;
        c.session = -1;
        c.epoch = state.entry.epoch + (bump - 1);
        c.at_ms = at;
        if (publish || record) c.key = key;
        apply_command_locked(s, state, c, /*from_replay=*/false);
        if (publish) events.push_back(std::move(c));
        ++fenced_here;
      }
    }
    if (fenced_here == 0) continue;
    s.epoch_changed.notify_all();
    fenced += fenced_here;
    for (const cmd::command& c : events) hook_(c);
    events.clear();
  }
  return fenced;
}

bool instance_registry::wait_for_epoch_above_impl(
    const std::string& key, std::uint64_t epoch,
    const clock::time_point* deadline) {
  shard& s = shard_for(key);
  std::unique_lock<std::mutex> lock(s.mutex);
  // Re-probe the key on every wakeup rather than caching a reference:
  // install_snapshot() clears and repopulates the key map under this
  // same lock, so a reference resolved before the install would dangle.
  // A never-acquired key sits at epoch 0 implicitly — waiting must not
  // create state or burn an instance id for it.
  //
  // shutdown() counts as "woken" so a waiter parked across stop()
  // retries immediately and comes back rejected instead of sleeping
  // forever (or, timed, sleeping out its timeout).
  const auto woken = [&] {
    if (shutdown_.load(std::memory_order_relaxed)) return true;
    const auto probe = s.keys.find(key);
    if (probe == s.keys.end()) return false;  // implicit epoch 0, never > epoch
    return probe->second.entry.epoch > epoch;
  };
  if (deadline == nullptr) {
    s.epoch_changed.wait(lock, woken);
    return true;
  }
  // Not wait_until(time_point::max()) for the untimed path: libstdc++
  // implements non-system-clock waits via a now()-relative delta, which
  // overflows on max().
  return s.epoch_changed.wait_until(lock, *deadline, woken);
}

void instance_registry::wait_for_epoch_above(const std::string& key,
                                             std::uint64_t epoch) {
  (void)wait_for_epoch_above_impl(key, epoch, /*deadline=*/nullptr);
}

bool instance_registry::wait_for_epoch_above_until(const std::string& key,
                                                   std::uint64_t epoch,
                                                   clock::time_point deadline) {
  return wait_for_epoch_above_impl(key, epoch, &deadline);
}

void instance_registry::shutdown() {
  shutdown_.store(true, std::memory_order_relaxed);
  for (auto& shard_ptr : shards_) {
    // Empty critical section: a waiter between its predicate check and
    // its wait must observe the flag before we notify, or it would sleep
    // through the only wakeup.
    { const std::lock_guard<std::mutex> lock(shard_ptr->mutex); }
    shard_ptr->epoch_changed.notify_all();
  }
}

std::size_t instance_registry::keys_in_shard(int shard_index) const {
  ELECT_CHECK(shard_index >= 0 &&
              shard_index < static_cast<int>(shards_.size()));
  const shard& s = *shards_[static_cast<std::size_t>(shard_index)];
  const std::lock_guard<std::mutex> lock(s.mutex);
  return s.keys.size();
}

std::size_t instance_registry::key_count() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    total += keys_in_shard(static_cast<int>(i));
  }
  return total;
}

}  // namespace elect::svc
