#include "svc/metrics.hpp"

#include <sstream>

namespace elect::svc {

service_report service_metrics::snapshot() const {
  service_report report;
  report.shards.reserve(shards_.size());
  for (const shard_counters& s : shards_) {
    shard_report sr;
    sr.acquires = s.acquires.load(std::memory_order_relaxed);
    sr.wins = s.wins.load(std::memory_order_relaxed);
    sr.releases = s.releases.load(std::memory_order_relaxed);
    sr.expirations = s.expirations.load(std::memory_order_relaxed);
    sr.renewals = s.renewals.load(std::memory_order_relaxed);
    sr.stale_fences = s.stale_fences.load(std::memory_order_relaxed);
    report.acquires += sr.acquires;
    report.wins += sr.wins;
    report.releases += sr.releases;
    report.expirations += sr.expirations;
    report.renewals += sr.renewals;
    report.stale_fences += sr.stale_fences;
    report.shards.push_back(sr);
  }
  report.rejected_acquires =
      rejected_acquires_.load(std::memory_order_relaxed);
  report.acquire_p50_ms = acquire_latency_.quantile(0.50) / 1e6;
  report.acquire_p99_ms = acquire_latency_.quantile(0.99) / 1e6;
  return report;
}

std::string service_report::to_json() const {
  std::ostringstream out;
  out << "{";
  out << "\"acquires\":" << acquires << ",";
  out << "\"wins\":" << wins << ",";
  out << "\"releases\":" << releases << ",";
  out << "\"expirations\":" << expirations << ",";
  out << "\"renewals\":" << renewals << ",";
  out << "\"stale_fences\":" << stale_fences << ",";
  out << "\"rejected_acquires\":" << rejected_acquires << ",";
  out << "\"acquire_p50_ms\":" << acquire_p50_ms << ",";
  out << "\"acquire_p99_ms\":" << acquire_p99_ms << ",";
  out << "\"participated_entries\":" << participated_entries << ",";
  out << "\"total_messages\":" << total_messages << ",";
  out << "\"mailbox_pushes\":" << mailbox_pushes << ",";
  out << "\"messages_per_acquire\":" << messages_per_acquire << ",";
  out << "\"mean_communicate_calls\":" << mean_communicate_calls << ",";
  out << "\"max_communicate_calls\":" << max_communicate_calls << ",";
  out << "\"shards\":[";
  for (std::size_t i = 0; i < shards.size(); ++i) {
    if (i > 0) out << ",";
    out << "{\"acquires\":" << shards[i].acquires
        << ",\"wins\":" << shards[i].wins
        << ",\"releases\":" << shards[i].releases
        << ",\"expirations\":" << shards[i].expirations
        << ",\"renewals\":" << shards[i].renewals
        << ",\"stale_fences\":" << shards[i].stale_fences
        << ",\"keys\":" << shards[i].keys << "}";
  }
  out << "]}";
  return out.str();
}

}  // namespace elect::svc
