#include "svc/metrics.hpp"

#include <sstream>

namespace elect::svc {

service_report service_metrics::snapshot() const {
  service_report report;
  report.shards.reserve(shards_.size());
  for (const shard_counters& s : shards_) {
    shard_report sr;
    sr.acquires = s.acquires.load(std::memory_order_relaxed);
    sr.wins = s.wins.load(std::memory_order_relaxed);
    sr.releases = s.releases.load(std::memory_order_relaxed);
    sr.expirations = s.expirations.load(std::memory_order_relaxed);
    sr.renewals = s.renewals.load(std::memory_order_relaxed);
    sr.stale_fences = s.stale_fences.load(std::memory_order_relaxed);
    sr.forced_releases = s.forced_releases.load(std::memory_order_relaxed);
    report.acquires += sr.acquires;
    report.wins += sr.wins;
    report.releases += sr.releases;
    report.expirations += sr.expirations;
    report.renewals += sr.renewals;
    report.stale_fences += sr.stale_fences;
    report.forced_releases += sr.forced_releases;
    report.shards.push_back(sr);
  }
  report.rejected_acquires =
      rejected_acquires_.load(std::memory_order_relaxed);
  for (std::size_t k = 0; k < strategies_.size(); ++k) {
    report.strategies[k].acquires =
        strategies_[k].acquires.load(std::memory_order_relaxed);
    report.strategies[k].wins =
        strategies_[k].wins.load(std::memory_order_relaxed);
  }
  report.fast_path.hits = fast_path_hits_.load(std::memory_order_relaxed);
  report.fast_path.conflicts =
      fast_path_conflicts_.load(std::memory_order_relaxed);
  report.fast_path.fallbacks =
      fast_path_fallbacks_.load(std::memory_order_relaxed);
  report.short_circuit_losses =
      short_circuit_losses_.load(std::memory_order_relaxed);
  report.acquire_p50_ms = acquire_latency_.quantile(0.50) / 1e6;
  report.acquire_p99_ms = acquire_latency_.quantile(0.99) / 1e6;
  report.acquire_latency_count = acquire_latency_.count();
  report.acquire_latency_sum_us =
      static_cast<double>(acquire_latency_.sum_ns()) / 1e3;
  report.acquire_latency_buckets = acquire_latency_.bucket_counts();
  report.trace = obs::counters();
  return report;
}

std::string service_report::to_json() const {
  std::ostringstream out;
  out << "{";
  out << "\"acquires\":" << acquires << ",";
  out << "\"wins\":" << wins << ",";
  out << "\"releases\":" << releases << ",";
  out << "\"expirations\":" << expirations << ",";
  out << "\"renewals\":" << renewals << ",";
  out << "\"stale_fences\":" << stale_fences << ",";
  out << "\"forced_releases\":" << forced_releases << ",";
  out << "\"rejected_acquires\":" << rejected_acquires << ",";
  out << "\"strategies\":{";
  for (int k = 0; k < election::strategy_kind_count; ++k) {
    if (k > 0) out << ",";
    const strategy_report& sr = strategies[static_cast<std::size_t>(k)];
    out << "\"" << election::to_string(static_cast<election::strategy_kind>(k))
        << "\":{\"acquires\":" << sr.acquires << ",\"wins\":" << sr.wins
        << "}";
  }
  out << "},";
  out << "\"fast_path\":{\"hits\":" << fast_path.hits
      << ",\"conflicts\":" << fast_path.conflicts
      << ",\"fallbacks\":" << fast_path.fallbacks
      << ",\"hit_rate\":" << fast_path.hit_rate() << "},";
  out << "\"short_circuit_losses\":" << short_circuit_losses << ",";
  out << "\"acquire_p50_ms\":" << acquire_p50_ms << ",";
  out << "\"acquire_p99_ms\":" << acquire_p99_ms << ",";
  out << "\"acquire_latency\":{\"count\":" << acquire_latency_count
      << ",\"sum_us\":" << acquire_latency_sum_us << "},";
  out << "\"participated_entries\":" << participated_entries << ",";
  out << "\"total_messages\":" << total_messages << ",";
  out << "\"mailbox_pushes\":" << mailbox_pushes << ",";
  out << "\"messages_per_acquire\":" << messages_per_acquire << ",";
  out << "\"mean_communicate_calls\":" << mean_communicate_calls << ",";
  out << "\"max_communicate_calls\":" << max_communicate_calls << ",";
  out << "\"watch\":{\"active\":" << watch.active
      << ",\"published\":" << watch.published
      << ",\"delivered\":" << watch.delivered
      << ",\"dropped\":" << watch.dropped << "},";
  out << "\"trace\":{\"minted\":" << trace.minted
      << ",\"spans\":" << trace.spans
      << ",\"slow_captured\":" << trace.slow_captured
      << ",\"slow_evicted\":" << trace.slow_evicted << "},";
  out << "\"journal\":{\"appended\":" << journal.appended
      << ",\"evicted\":" << journal.evicted
      << ",\"flushed\":" << journal.flushed
      << ",\"flush_errors\":" << journal.flush_errors << "},";
  if (!net_json.empty()) out << "\"net\":" << net_json << ",";
  if (!repl_json.empty()) out << "\"repl\":" << repl_json << ",";
  out << "\"shards\":[";
  for (std::size_t i = 0; i < shards.size(); ++i) {
    if (i > 0) out << ",";
    out << "{\"acquires\":" << shards[i].acquires
        << ",\"wins\":" << shards[i].wins
        << ",\"releases\":" << shards[i].releases
        << ",\"expirations\":" << shards[i].expirations
        << ",\"renewals\":" << shards[i].renewals
        << ",\"stale_fences\":" << shards[i].stale_fences
        << ",\"forced_releases\":" << shards[i].forced_releases
        << ",\"keys\":" << shards[i].keys << "}";
  }
  out << "]}";
  return out.str();
}

}  // namespace elect::svc
