// Aggregated service metrics: per-shard operation counters plus a
// lock-free log-bucketed latency histogram for acquire calls.
//
// Counters are plain atomics bumped on the hot path; quantiles are read
// from the histogram only when a report is taken. The service folds in
// the node pool's engine::metrics (communicate calls) and the transport's
// message / mailbox-push counters so one report covers the whole stack.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace elect::svc {

/// Histogram over latencies in nanoseconds; bucket b holds samples in
/// [2^b, 2^(b+1)). Concurrent add(), single-threaded quantile reads.
class latency_histogram {
 public:
  static constexpr int bucket_count = 48;  // up to ~78 hours

  void add(std::uint64_t nanos) noexcept {
    const int bucket =
        nanos == 0 ? 0 : std::min(bucket_count - 1,
                                  static_cast<int>(std::bit_width(nanos)) - 1);
    counts_[static_cast<std::size_t>(bucket)].fetch_add(
        1, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    std::uint64_t total = 0;
    for (const auto& c : counts_) total += c.load(std::memory_order_relaxed);
    return total;
  }

  /// Approximate quantile (q in [0,1]): the geometric midpoint of the
  /// bucket holding the nearest-rank sample; 0 when empty.
  [[nodiscard]] double quantile(double q) const {
    ELECT_CHECK(q >= 0.0 && q <= 1.0);
    const std::uint64_t total = count();
    if (total == 0) return 0.0;
    const auto rank = static_cast<std::uint64_t>(
        q * static_cast<double>(total - 1) + 0.5);
    std::uint64_t seen = 0;
    for (int b = 0; b < bucket_count; ++b) {
      seen += counts_[static_cast<std::size_t>(b)].load(
          std::memory_order_relaxed);
      if (seen > rank) {
        const double low = b == 0 ? 0.0 : static_cast<double>(1ULL << b);
        const double high = static_cast<double>(2ULL << b);
        return (low + high) / 2.0;
      }
    }
    return static_cast<double>(1ULL << (bucket_count - 1));
  }

 private:
  std::array<std::atomic<std::uint64_t>, bucket_count> counts_{};
};

/// Hot-path counters for one registry shard.
struct shard_counters {
  std::atomic<std::uint64_t> acquires{0};
  std::atomic<std::uint64_t> wins{0};
  std::atomic<std::uint64_t> releases{0};
};

/// Point-in-time snapshot of one shard.
struct shard_report {
  std::uint64_t acquires = 0;
  std::uint64_t wins = 0;
  std::uint64_t releases = 0;
  std::size_t keys = 0;
};

/// Point-in-time snapshot of the whole service.
struct service_report {
  std::vector<shard_report> shards;
  std::uint64_t acquires = 0;
  std::uint64_t wins = 0;
  std::uint64_t releases = 0;
  double acquire_p50_ms = 0.0;
  double acquire_p99_ms = 0.0;
  // Pool-level counters (engine::metrics + transport).
  std::uint64_t total_messages = 0;
  std::uint64_t mailbox_pushes = 0;
  double messages_per_acquire = 0.0;
  double mean_communicate_calls = 0.0;
  std::uint64_t max_communicate_calls = 0;

  [[nodiscard]] std::string to_json() const;
};

class service_metrics {
 public:
  explicit service_metrics(int shard_count)
      : shards_(static_cast<std::size_t>(shard_count)) {}

  void record_acquire(int shard, bool won, std::uint64_t latency_ns) {
    auto& s = shards_[static_cast<std::size_t>(shard)];
    s.acquires.fetch_add(1, std::memory_order_relaxed);
    if (won) s.wins.fetch_add(1, std::memory_order_relaxed);
    acquire_latency_.add(latency_ns);
  }

  void record_release(int shard) {
    shards_[static_cast<std::size_t>(shard)].releases.fetch_add(
        1, std::memory_order_relaxed);
  }

  [[nodiscard]] int shard_count() const noexcept {
    return static_cast<int>(shards_.size());
  }
  [[nodiscard]] const latency_histogram& acquire_latency() const noexcept {
    return acquire_latency_;
  }

  /// Snapshot the per-shard counters and latency quantiles. The caller
  /// (service::report) fills in the pool-level fields.
  [[nodiscard]] service_report snapshot() const;

 private:
  std::vector<shard_counters> shards_;
  latency_histogram acquire_latency_;
};

}  // namespace elect::svc
