// Aggregated service metrics: per-shard operation counters plus a
// lock-free log-bucketed latency histogram for acquire calls.
//
// Counters are plain atomics bumped on the hot path; quantiles are read
// from the histogram only when a report is taken. The service folds in
// the node pool's engine::metrics (communicate calls) and the transport's
// message / mailbox-push counters so one report covers the whole stack.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "election/strategy.hpp"
#include "obs/journal.hpp"
#include "obs/trace.hpp"
#include "svc/watch.hpp"

namespace elect::svc {

/// Histogram over latencies in nanoseconds; bucket b holds samples in
/// [2^b, 2^(b+1)) (bucket 0 holds [0, 2)); the last bucket additionally
/// absorbs everything at or above 2^(bucket_count-1). Concurrent add(),
/// single-threaded quantile reads.
class latency_histogram {
 public:
  static constexpr int bucket_count = 48;  // up to ~78 hours

  void add(std::uint64_t nanos) noexcept {
    const int bucket =
        nanos == 0 ? 0 : std::min(bucket_count - 1,
                                  static_cast<int>(std::bit_width(nanos)) - 1);
    counts_[static_cast<std::size_t>(bucket)].fetch_add(
        1, std::memory_order_relaxed);
    sum_ns_.fetch_add(nanos, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    std::uint64_t total = 0;
    for (const auto& c : counts_) total += c.load(std::memory_order_relaxed);
    return total;
  }

  /// Sum of all recorded samples, in nanoseconds — with count(), the
  /// `_count`/`_sum` pair a Prometheus histogram exposes directly.
  [[nodiscard]] std::uint64_t sum_ns() const noexcept {
    return sum_ns_.load(std::memory_order_relaxed);
  }

  /// Per-bucket counts (non-cumulative), bucket b covering [2^b, 2^(b+1)).
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const {
    std::vector<std::uint64_t> out(bucket_count);
    for (int b = 0; b < bucket_count; ++b) {
      out[static_cast<std::size_t>(b)] =
          counts_[static_cast<std::size_t>(b)].load(std::memory_order_relaxed);
    }
    return out;
  }

  /// Midpoint reported for samples landing in bucket `b` — the estimate
  /// quantile() returns when the nearest-rank sample falls there. Every
  /// bucket, including the overflow bucket, reports the midpoint of its
  /// nominal [2^b, 2^(b+1)) range, so the tail is consistent with the
  /// body (the overflow midpoint understates true >= 2^47 samples, but
  /// never jumps *below* the previous bucket's estimate the way the old
  /// lower-bound tail did).
  [[nodiscard]] static double bucket_midpoint(int b) noexcept {
    const double low = b == 0 ? 0.0 : static_cast<double>(1ULL << b);
    const double high = static_cast<double>(2ULL << b);
    return (low + high) / 2.0;
  }

  /// Approximate quantile (q in [0,1]): the midpoint of the bucket
  /// holding the nearest-rank sample; 0 when empty.
  [[nodiscard]] double quantile(double q) const {
    ELECT_CHECK(q >= 0.0 && q <= 1.0);
    const std::uint64_t total = count();
    if (total == 0) return 0.0;
    const auto rank = static_cast<std::uint64_t>(
        q * static_cast<double>(total - 1) + 0.5);
    std::uint64_t seen = 0;
    for (int b = 0; b < bucket_count; ++b) {
      seen += counts_[static_cast<std::size_t>(b)].load(
          std::memory_order_relaxed);
      if (seen > rank) return bucket_midpoint(b);
    }
    // Unreachable when counts only grow (seen ends >= total > rank), but
    // keep the fallback consistent with the overflow bucket's midpoint.
    return bucket_midpoint(bucket_count - 1);
  }

 private:
  std::array<std::atomic<std::uint64_t>, bucket_count> counts_{};
  std::atomic<std::uint64_t> sum_ns_{0};
};

/// Hot-path counters for one registry shard.
struct shard_counters {
  std::atomic<std::uint64_t> acquires{0};
  std::atomic<std::uint64_t> wins{0};
  std::atomic<std::uint64_t> releases{0};
  /// Leases force-released by the expiry sweeper.
  std::atomic<std::uint64_t> expirations{0};
  /// Successful renew() calls.
  std::atomic<std::uint64_t> renewals{0};
  /// release()/renew() calls rejected by epoch/holder fencing (zombies).
  std::atomic<std::uint64_t> stale_fences{0};
  /// Epochs ended by admin force-release (the operator's lever).
  std::atomic<std::uint64_t> forced_releases{0};
};

/// Acquire traffic attributed to one election strategy.
struct strategy_counters {
  std::atomic<std::uint64_t> acquires{0};
  std::atomic<std::uint64_t> wins{0};
};

struct strategy_report {
  std::uint64_t acquires = 0;
  std::uint64_t wins = 0;
};

/// Contention-adaptive fast-path traffic (strategy_kind::adaptive only).
struct fast_path_report {
  /// Epochs granted by the CAS fast path — no election ran.
  std::uint64_t hits = 0;
  /// Fast-path attempts that lost outright (epoch already held/stale).
  std::uint64_t conflicts = 0;
  /// Fast-path attempts that found a protocol armed and fell back to
  /// the full distributed election.
  std::uint64_t fallbacks = 0;

  /// hits / (hits + conflicts + fallbacks); 0 when no attempts.
  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t attempts = hits + conflicts + fallbacks;
    return attempts == 0
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(attempts);
  }
};

/// Point-in-time snapshot of one shard.
struct shard_report {
  std::uint64_t acquires = 0;
  std::uint64_t wins = 0;
  std::uint64_t releases = 0;
  std::uint64_t expirations = 0;
  std::uint64_t renewals = 0;
  std::uint64_t stale_fences = 0;
  std::uint64_t forced_releases = 0;
  std::size_t keys = 0;
};

/// Point-in-time snapshot of the whole service.
struct service_report {
  std::vector<shard_report> shards;
  std::uint64_t acquires = 0;
  std::uint64_t wins = 0;
  std::uint64_t releases = 0;
  std::uint64_t expirations = 0;
  std::uint64_t renewals = 0;
  std::uint64_t stale_fences = 0;
  /// Epochs ended by admin force-release across all shards.
  std::uint64_t forced_releases = 0;
  /// Acquires turned away by a concurrent/completed stop() (not counted
  /// in `acquires`; they never reached an election).
  std::uint64_t rejected_acquires = 0;
  /// Acquire traffic per strategy, indexed by election::strategy_kind.
  std::array<strategy_report, election::strategy_kind_count> strategies{};
  /// Adaptive CAS fast-path traffic.
  fast_path_report fast_path;
  /// Protocol-path acquires that lost without running the protocol
  /// because the epoch was already granted (arm_protocol refused).
  std::uint64_t short_circuit_losses = 0;
  double acquire_p50_ms = 0.0;
  double acquire_p99_ms = 0.0;
  /// Acquire latency totals (histogram count/sum — what Prometheus
  /// renders as elect_acquire_latency_seconds_count/_sum).
  std::uint64_t acquire_latency_count = 0;
  double acquire_latency_sum_us = 0.0;
  /// Non-cumulative per-bucket counts, bucket b = [2^b, 2^(b+1)) ns.
  std::vector<std::uint64_t> acquire_latency_buckets;
  /// Per-node participated-map entries, summed over the pool (bounded by
  /// live keys x nodes, not by total epochs — see service::worker).
  std::uint64_t participated_entries = 0;
  // Pool-level counters (engine::metrics + transport).
  std::uint64_t total_messages = 0;
  std::uint64_t mailbox_pushes = 0;
  double messages_per_acquire = 0.0;
  double mean_communicate_calls = 0.0;
  std::uint64_t max_communicate_calls = 0;
  /// Watch-hub subscription/delivery counters (svc/watch.hpp).
  watch_report watch;
  /// Tracer counters (obs/trace.hpp).
  obs::trace_counters trace;
  /// Event-journal counters (obs/journal.hpp); zeros when journaling is
  /// disabled.
  obs::journal_report journal;
  /// Optional pre-serialized JSON object from the layer wrapping the
  /// service (the TCP front-end's per-connection/frame counters —
  /// net::server::report()). Emitted verbatim as `"net":{...}` when
  /// non-empty, so one report covers the wire and the elections.
  std::string net_json;
  /// Same contract for the replication layer (elect::repl): the cluster
  /// node's role/term/commit/lag counters, emitted verbatim as
  /// `"repl":{...}` when non-empty.
  std::string repl_json;

  [[nodiscard]] std::string to_json() const;
};

class service_metrics {
 public:
  explicit service_metrics(int shard_count)
      : shards_(static_cast<std::size_t>(shard_count)) {}

  void record_acquire(int shard, election::strategy_kind kind, bool won,
                      std::uint64_t latency_ns) {
    auto& s = shards_[static_cast<std::size_t>(shard)];
    s.acquires.fetch_add(1, std::memory_order_relaxed);
    if (won) s.wins.fetch_add(1, std::memory_order_relaxed);
    auto& by_kind = strategies_[static_cast<std::size_t>(kind)];
    by_kind.acquires.fetch_add(1, std::memory_order_relaxed);
    if (won) by_kind.wins.fetch_add(1, std::memory_order_relaxed);
    acquire_latency_.add(latency_ns);
  }

  void record_fast_path_hit() {
    fast_path_hits_.fetch_add(1, std::memory_order_relaxed);
  }

  void record_fast_path_conflict() {
    fast_path_conflicts_.fetch_add(1, std::memory_order_relaxed);
  }

  void record_fast_path_fallback() {
    fast_path_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  }

  void record_short_circuit_loss() {
    short_circuit_losses_.fetch_add(1, std::memory_order_relaxed);
  }

  void record_release(int shard) {
    shards_[static_cast<std::size_t>(shard)].releases.fetch_add(
        1, std::memory_order_relaxed);
  }

  void record_expiration(int shard) {
    shards_[static_cast<std::size_t>(shard)].expirations.fetch_add(
        1, std::memory_order_relaxed);
  }

  void record_renewal(int shard) {
    shards_[static_cast<std::size_t>(shard)].renewals.fetch_add(
        1, std::memory_order_relaxed);
  }

  void record_forced_release(int shard) {
    shards_[static_cast<std::size_t>(shard)].forced_releases.fetch_add(
        1, std::memory_order_relaxed);
  }

  void record_stale_fence(int shard) {
    shards_[static_cast<std::size_t>(shard)].stale_fences.fetch_add(
        1, std::memory_order_relaxed);
  }

  void record_rejected_acquire() {
    rejected_acquires_.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] int shard_count() const noexcept {
    return static_cast<int>(shards_.size());
  }
  [[nodiscard]] const latency_histogram& acquire_latency() const noexcept {
    return acquire_latency_;
  }

  /// Snapshot the per-shard counters and latency quantiles. The caller
  /// (service::report) fills in the pool-level fields.
  [[nodiscard]] service_report snapshot() const;

 private:
  std::vector<shard_counters> shards_;
  std::array<strategy_counters, election::strategy_kind_count> strategies_{};
  latency_histogram acquire_latency_;
  std::atomic<std::uint64_t> rejected_acquires_{0};
  std::atomic<std::uint64_t> fast_path_hits_{0};
  std::atomic<std::uint64_t> fast_path_conflicts_{0};
  std::atomic<std::uint64_t> fast_path_fallbacks_{0};
  std::atomic<std::uint64_t> short_circuit_losses_{0};
};

}  // namespace elect::svc
