// Instance registry: maps string election keys onto leader_elect
// instances.
//
// The service multiplexes many logical elections (one per key) over one
// node pool. Each key is owned by a shard (lock-striped: hash(key) mod
// shard_count); the shard lazily creates per-key state the first time the
// key is touched and hands out the key's *current* (election_id, epoch)
// pair. Releasing leadership bumps the epoch and allocates a fresh
// election_id, so the next acquirers contend in a brand-new Figure-6
// instance — repeated test-and-set built from one-shot instances.
//
// Ownership is lease-based: record_winner stamps a deadline (now + TTL),
// renew() pushes it out, and sweep_expired() force-releases holders whose
// deadline has passed by bumping the epoch. The epoch doubles as a
// fencing token — a crashed-and-resurrected holder ("zombie") presenting
// its old epoch to release()/renew() is rejected with `stale_epoch`
// instead of corrupting the new holder's state.
//
// Election ids are drawn from a global atomic counter starting high above
// the ids examples and tests hand-pick, so registry-managed instances
// never collide with manually created ones on the same pool. Known
// limit: the 32-bit id space caps a service lifetime at ~4e9 elections
// (var_id.instance is uint32); wrapping would alias long-decided
// instances' replicated variables.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "election/vars.hpp"

namespace elect::svc {

/// The (instance, epoch) pair a key currently resolves to.
struct instance_entry {
  election::election_id instance{0};
  std::uint64_t epoch = 0;
};

/// Outcome of a fenced lease operation (release / renew).
enum class lease_status {
  ok,
  /// The presented epoch is no longer the key's current epoch: the lease
  /// expired (or was released) and the key moved on. The caller is a
  /// zombie; its operation had no effect.
  stale_epoch,
  /// The epoch is current but the caller is not the recorded holder
  /// (nobody is, or someone else won). No effect.
  not_leader,
};

class instance_registry {
 public:
  using clock = std::chrono::steady_clock;

  /// `first_instance` is the id given to the first key; subsequent
  /// instances count up from there.
  explicit instance_registry(int shard_count,
                             std::uint32_t first_instance = 1u << 20);

  instance_registry(const instance_registry&) = delete;
  instance_registry& operator=(const instance_registry&) = delete;

  [[nodiscard]] int shard_count() const noexcept {
    return static_cast<int>(shards_.size());
  }

  /// Which shard owns `key`. Stable for the registry's lifetime.
  [[nodiscard]] int shard_of(const std::string& key) const;

  /// Current (instance, epoch) for `key`; lazily creates epoch 0.
  [[nodiscard]] instance_entry current(const std::string& key);

  /// Current (instance, epoch) for `key` without creating state; empty
  /// when the key has never been acquired.
  [[nodiscard]] std::optional<instance_entry> peek(const std::string& key);

  /// Record that `session` won `key`'s election for `epoch`, starting a
  /// lease of `ttl` (ttl == zero() means the lease never expires).
  /// Returns the lease deadline. Aborts if a different winner is already
  /// recorded for the same epoch (that would be a test-and-set safety
  /// violation — winners are unique per instance, and the epoch cannot
  /// move past an instance that has no recorded winner).
  clock::time_point record_winner(const std::string& key, std::uint64_t epoch,
                                  int session, clock::duration ttl);

  /// Session currently holding `key` (-1 if none / not yet elected).
  [[nodiscard]] int leader_of(const std::string& key);

  /// Lease deadline of `key`'s current holder (time_point::max() for a
  /// non-expiring lease; empty when nobody holds the key).
  [[nodiscard]] std::optional<clock::time_point> lease_deadline_of(
      const std::string& key);

  /// Fenced release: only the recorded winner of exactly `epoch` — which
  /// must still be the current epoch — releases. On `ok` the epoch is
  /// bumped, a fresh election instance is allocated, and epoch waiters
  /// wake. A zombie presenting a stale epoch gets `stale_epoch` and
  /// changes nothing.
  lease_status release(const std::string& key, int session,
                       std::uint64_t epoch);

  /// Unfenced convenience release: releases whatever epoch `session`
  /// currently holds on `key` (`not_leader` when it holds nothing). Used
  /// by single-threaded holders that didn't keep the acquire epoch; a
  /// session racing its own expiry should use the fenced overload.
  lease_status release(const std::string& key, int session);

  /// Fenced renewal: extend the holder's lease to now + ttl. Same fencing
  /// as release(); `stale_epoch` tells a holder it lost the key.
  lease_status renew(const std::string& key, int session, std::uint64_t epoch,
                     clock::duration ttl);

  /// Release every key currently held by `session` (graceful
  /// disconnect). `on_released` (if set) is called with the shard index
  /// once per released key, under no lock. Returns the number of keys
  /// released.
  std::size_t release_all(int session,
                          const std::function<void(int)>& on_released = {});

  /// Force-release every holder whose lease deadline is <= now: bump the
  /// epoch, allocate a fresh instance, wake epoch waiters. `on_expired`
  /// (if set) is called with the shard index once per expired key, under
  /// no lock. Returns the number of leases expired.
  std::size_t sweep_expired(clock::time_point now,
                            const std::function<void(int)>& on_expired = {});

  /// Block until `key`'s epoch exceeds `epoch` (i.e. a release or expiry
  /// happened after the caller lost that epoch's election), or until
  /// shutdown(). A key that has never been acquired counts as epoch 0;
  /// waiting does not create key state or burn an instance id.
  void wait_for_epoch_above(const std::string& key, std::uint64_t epoch);

  /// Wake every epoch waiter and make current/future waits return
  /// immediately. Called by the service's stop() so blocked acquirers
  /// fail over to a rejected acquire instead of sleeping forever.
  void shutdown();

  /// Keys registered in one shard / in total (for distribution checks).
  [[nodiscard]] std::size_t keys_in_shard(int shard) const;
  [[nodiscard]] std::size_t key_count() const;

 private:
  struct key_state {
    instance_entry entry;
    int leader = -1;
    clock::time_point lease_deadline = clock::time_point::max();
  };

  struct shard {
    mutable std::mutex mutex;
    std::condition_variable epoch_changed;
    std::unordered_map<std::string, key_state> keys;
  };

  shard& shard_for(const std::string& key);
  key_state& state_locked(shard& s, const std::string& key);
  /// Bump `key` to a fresh (instance, epoch) with no holder. Caller holds
  /// the shard lock and must notify epoch_changed after unlocking.
  void bump_epoch_locked(key_state& state);
  /// Scan every shard and bump every key matching `predicate` (checked
  /// under the shard lock); waiters are notified per shard and
  /// `on_bumped(shard_index)` runs once per bumped key, under no lock.
  /// Shared engine of release_all (match: held by one session) and
  /// sweep_expired (match: lease deadline passed).
  std::size_t bump_matching(const std::function<bool(const key_state&)>& predicate,
                            const std::function<void(int)>& on_bumped);

  std::vector<std::unique_ptr<shard>> shards_;
  std::atomic<std::uint32_t> next_instance_;
  std::atomic<bool> shutdown_{false};
};

}  // namespace elect::svc
