// Instance registry: maps string election keys onto leader_elect
// instances.
//
// The service multiplexes many logical elections (one per key) over one
// node pool. Each key is owned by a shard (lock-striped: hash(key) mod
// shard_count); the shard lazily creates per-key state the first time the
// key is touched and hands out the key's *current* (election_id, epoch)
// pair. Releasing leadership bumps the epoch and allocates a fresh
// election_id, so the next acquirers contend in a brand-new Figure-6
// instance — repeated test-and-set built from one-shot instances.
//
// Election ids are drawn from a global atomic counter starting high above
// the ids examples and tests hand-pick, so registry-managed instances
// never collide with manually created ones on the same pool. Known
// limit: the 32-bit id space caps a service lifetime at ~4e9 elections
// (var_id.instance is uint32); wrapping would alias long-decided
// instances' replicated variables.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "election/vars.hpp"

namespace elect::svc {

/// The (instance, epoch) pair a key currently resolves to.
struct instance_entry {
  election::election_id instance{0};
  std::uint64_t epoch = 0;
};

class instance_registry {
 public:
  /// `first_instance` is the id given to the first key; subsequent
  /// instances count up from there.
  explicit instance_registry(int shard_count,
                             std::uint32_t first_instance = 1u << 20);

  instance_registry(const instance_registry&) = delete;
  instance_registry& operator=(const instance_registry&) = delete;

  [[nodiscard]] int shard_count() const noexcept {
    return static_cast<int>(shards_.size());
  }

  /// Which shard owns `key`. Stable for the registry's lifetime.
  [[nodiscard]] int shard_of(const std::string& key) const;

  /// Current (instance, epoch) for `key`; lazily creates epoch 0.
  [[nodiscard]] instance_entry current(const std::string& key);

  /// Record that `session` won `key`'s election for `epoch`. Aborts if a
  /// different winner is already recorded for the same epoch (that would
  /// be a test-and-set safety violation).
  void record_winner(const std::string& key, std::uint64_t epoch,
                     int session);

  /// Session currently holding `key` (-1 if none / not yet elected).
  [[nodiscard]] int leader_of(const std::string& key);

  /// Release leadership of `key`: only the recorded winner of the current
  /// epoch may call this. Bumps the epoch, allocates a fresh election
  /// instance, and wakes epoch waiters. Returns the new epoch.
  std::uint64_t release(const std::string& key, int session);

  /// Block until `key`'s epoch exceeds `epoch` (i.e. a release happened
  /// after the caller lost that epoch's election).
  void wait_for_epoch_above(const std::string& key, std::uint64_t epoch);

  /// Keys registered in one shard / in total (for distribution checks).
  [[nodiscard]] std::size_t keys_in_shard(int shard) const;
  [[nodiscard]] std::size_t key_count() const;

 private:
  struct key_state {
    instance_entry entry;
    int leader = -1;
  };

  struct shard {
    mutable std::mutex mutex;
    std::condition_variable epoch_changed;
    std::unordered_map<std::string, key_state> keys;
  };

  shard& shard_for(const std::string& key);
  key_state& state_locked(shard& s, const std::string& key);

  std::vector<std::unique_ptr<shard>> shards_;
  std::atomic<std::uint32_t> next_instance_;
};

}  // namespace elect::svc
